"""Serialisation round-trips."""

import pytest

from repro.core.result import DeploymentReport, SearchResult, TrialRecord
from repro.core.scenarios import Scenario
from repro.core.search_space import Deployment
from repro.io import (
    load_report,
    report_from_json,
    report_to_json,
    save_report,
)


@pytest.fixture
def report():
    trials = tuple(
        TrialRecord(
            step=i + 1,
            deployment=Deployment("c5.4xlarge", i + 1),
            measured_speed=float(10 * (i + 1)),
            profile_seconds=600.0,
            profile_dollars=0.5,
            elapsed_seconds=600.0 * (i + 1),
            spent_dollars=0.5 * (i + 1),
            note="explore" if i else "initial",
        )
        for i in range(3)
    )
    search = SearchResult(
        strategy="heterbo",
        scenario=Scenario.fastest_within(100.0),
        trials=trials,
        best=Deployment("c5.4xlarge", 3),
        best_measured_speed=30.0,
        profile_seconds=1800.0,
        profile_dollars=1.5,
        stop_reason="converged",
    )
    return DeploymentReport(
        search=search,
        train_seconds=7200.0,
        train_dollars=40.0,
        trained=True,
        tags={"experiment": "unit-test"},
    )


class TestRoundTrip:
    def test_full_round_trip(self, report):
        restored = report_from_json(report_to_json(report))
        assert restored == report

    def test_totals_preserved(self, report):
        restored = report_from_json(report_to_json(report))
        assert restored.total_dollars == report.total_dollars
        assert restored.constraint_met == report.constraint_met

    def test_scenario_kinds_round_trip(self, report):
        for scenario in (
            Scenario.fastest(),
            Scenario.cheapest_within(3600.0),
            Scenario.fastest_within(10.0),
        ):
            src = DeploymentReport(search=SearchResult(
                strategy="x", scenario=scenario, trials=(), best=None,
                best_measured_speed=0.0, profile_seconds=0.0,
                profile_dollars=0.0, stop_reason="t",
            ))
            restored = report_from_json(report_to_json(src))
            assert restored.search.scenario == scenario

    def test_none_best_round_trips(self):
        src = DeploymentReport(search=SearchResult(
            strategy="x", scenario=Scenario.fastest(), trials=(),
            best=None, best_measured_speed=0.0,
            profile_seconds=0.0, profile_dollars=0.0, stop_reason="t",
        ))
        assert report_from_json(report_to_json(src)).search.best is None

    def test_file_round_trip(self, report, tmp_path):
        path = save_report(report, tmp_path / "run.json")
        assert load_report(path) == report

    def test_live_search_round_trips(self, small_space, profiler,
                                     charrnn_job):
        from repro.core.engine import SearchContext
        from repro.core.heterbo import HeterBO

        context = SearchContext(
            space=small_space, profiler=profiler,
            job=charrnn_job, scenario=Scenario.fastest(),
        )
        result = HeterBO(seed=0).search(context)
        live = DeploymentReport(search=result)
        assert report_from_json(report_to_json(live)) == live


class TestValidation:
    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            report_from_json("{nope")

    def test_wrong_schema_rejected(self, report):
        text = report_to_json(report).replace(
            '"schema_version": 1', '"schema_version": 99'
        )
        with pytest.raises(ValueError, match="schema version"):
            report_from_json(text)
