"""Failure injection: transient capacity errors through the stack."""

import pytest

from repro.cloud.catalog import paper_catalog
from repro.cloud.provider import InsufficientCapacityError, SimulatedCloud
from repro.core.engine import SearchContext
from repro.core.heterbo import HeterBO
from repro.core.scenarios import Scenario
from repro.core.search_space import DeploymentSpace
from repro.profiling.profiler import Profiler
from repro.sim.noise import NoiseModel
from repro.sim.throughput import TrainingSimulator


@pytest.fixture
def flaky_world(charrnn_job):
    catalog = paper_catalog().subset(
        ["c5.xlarge", "c5.4xlarge", "p2.xlarge"]
    )

    def make(rate: float, retries: int = 2):
        cloud = SimulatedCloud(
            catalog, launch_failure_rate=rate, failure_seed=7
        )
        profiler = Profiler(
            cloud,
            TrainingSimulator(),
            noise=NoiseModel(sigma=0.03, seed=7),
            launch_retries=retries,
        )
        space = DeploymentSpace(catalog, max_count=20)
        return cloud, profiler, space

    return make, charrnn_job


class TestProviderInjection:
    def test_zero_rate_never_fails(self, flaky_world):
        make, _ = flaky_world
        cloud, _, _ = make(0.0)
        for _ in range(50):
            c = cloud.launch("c5.xlarge", 1)
            cloud.wait_until_ready(c)
            cloud.terminate(c, purpose="x")

    def test_nonzero_rate_fails_sometimes(self, flaky_world):
        make, _ = flaky_world
        cloud, _, _ = make(0.5)
        failures = 0
        for _ in range(40):
            try:
                c = cloud.launch("c5.xlarge", 1)
                cloud.wait_until_ready(c)
                cloud.terminate(c, purpose="x")
            except InsufficientCapacityError:
                failures += 1
        assert 5 < failures < 35

    def test_rate_validated(self):
        with pytest.raises(ValueError, match="launch_failure_rate"):
            SimulatedCloud(paper_catalog(), launch_failure_rate=1.0)

    def test_failures_deterministic(self, flaky_world):
        make, _ = flaky_world

        def failure_pattern():
            cloud, _, _ = make(0.5)
            pattern = []
            for _ in range(20):
                try:
                    c = cloud.launch("c5.xlarge", 1)
                    cloud.wait_until_ready(c)
                    cloud.terminate(c, purpose="x")
                    pattern.append(True)
                except InsufficientCapacityError:
                    pattern.append(False)
            return pattern

        assert failure_pattern() == failure_pattern()


class TestProfilerRetry:
    def test_retry_recovers(self, flaky_world):
        """With retries, a moderate failure rate still yields
        measurements for most probes."""
        make, job = flaky_world
        _, profiler, _ = make(0.3, retries=3)
        results = [
            profiler.profile("c5.4xlarge", n, job) for n in range(1, 9)
        ]
        measured = [r for r in results if not r.failed]
        assert len(measured) >= 6

    def test_exhausted_retries_mark_capacity(self, flaky_world):
        make, job = flaky_world
        _, profiler, _ = make(0.9, retries=0)
        results = [
            profiler.profile("c5.4xlarge", n, job) for n in range(1, 12)
        ]
        capacity_failures = [
            r for r in results if r.failure_reason == "capacity"
        ]
        assert capacity_failures
        for r in capacity_failures:
            assert r.dollars == 0.0  # nothing launched, nothing billed
            assert r.seconds > 0.0  # but wall clock burned on backoff

    def test_backoff_advances_clock(self, flaky_world):
        make, job = flaky_world
        cloud, profiler, _ = make(0.9, retries=1)
        before = cloud.elapsed()
        result = profiler.profile("c5.4xlarge", 1, job)
        if result.failure_reason == "capacity":
            assert cloud.elapsed() - before == pytest.approx(
                2 * profiler.retry_backoff_seconds
            )


class TestSearchResilience:
    def test_heterbo_completes_despite_flaky_cloud(self, flaky_world):
        make, job = flaky_world
        _, profiler, space = make(0.25, retries=2)
        context = SearchContext(
            space=space, profiler=profiler, job=job,
            scenario=Scenario.fastest(),
        )
        result = HeterBO(seed=7).search(context)
        assert result.best is not None

    def test_capacity_failures_do_not_poison_prior(self, flaky_world):
        """A capacity failure at high n must not cap the type."""
        from repro.profiling.profiler import ProfileResult

        strategy = HeterBO(seed=0)
        strategy.on_observation(None, ProfileResult(
            instance_type="c5.4xlarge", count=16, speed=0.0,
            seconds=60.0, dollars=0.0, iteration_speeds=(),
            extensions=0, failed=True, failure_reason="capacity",
        ))
        assert strategy.prior.max_allowed("c5.4xlarge") is None

    def test_capacity_failures_stay_out_of_gp(self, flaky_world):
        from repro.core.engine import GPSearchEngine
        from repro.profiling.profiler import ProfileResult

        make, job = flaky_world
        _, profiler, space = make(0.0)
        context = SearchContext(
            space=space, profiler=profiler, job=job,
            scenario=Scenario.fastest(),
        )
        engine = GPSearchEngine(context)
        d = engine.add_observation(ProfileResult(
            instance_type="c5.4xlarge", count=4, speed=0.0,
            seconds=60.0, dollars=0.0, iteration_speeds=(),
            extensions=0, failed=True, failure_reason="capacity",
        ))
        assert engine.n_observations == 0
        assert not engine.visited(d)  # may be retried later
