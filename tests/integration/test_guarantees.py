"""Cross-seed guarantee properties: HeterBO's constraint compliance.

The paper's core claim is not just that HeterBO is faster on average
but that it "provide[s] guarantees for user-defined deployment
requirements".  These tests sweep seeds and constraint levels and
require the end-to-end (profiling + training) totals to respect the
constraint every single time.
"""

import pytest

from repro.baselines.convbo import ConvBO
from repro.core.heterbo import HeterBO
from repro.core.scenarios import Scenario
from repro.experiments.runner import ExperimentConfig, run_strategy


def config(seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        model="char-rnn",
        dataset="char-corpus",
        epochs=4.0,
        seed=seed,
        instance_types=("c5.xlarge", "c5.4xlarge", "p2.xlarge"),
        max_count=24,
    )


class TestBudgetGuarantee:
    @pytest.mark.parametrize("seed", range(6))
    def test_budget_never_violated(self, seed):
        budget = 60.0
        run = run_strategy(
            HeterBO(seed=seed),
            Scenario.fastest_within(budget),
            config(seed),
        )
        assert run.report.trained
        assert run.report.total_dollars <= budget * 1.001, (
            f"seed {seed}: spent ${run.report.total_dollars:.2f}"
        )

    @pytest.mark.parametrize("budget", [25.0, 60.0, 150.0])
    def test_budget_levels(self, budget):
        run = run_strategy(
            HeterBO(seed=0),
            Scenario.fastest_within(budget),
            config(0),
        )
        assert run.report.trained
        assert run.report.total_dollars <= budget * 1.001


class TestDeadlineGuarantee:
    @pytest.mark.parametrize("seed", range(6))
    def test_deadline_never_violated(self, seed):
        deadline = 14 * 3600.0
        run = run_strategy(
            HeterBO(seed=seed),
            Scenario.cheapest_within(deadline),
            config(seed),
        )
        assert run.report.trained
        assert run.report.total_seconds <= deadline * 1.001, (
            f"seed {seed}: took {run.report.total_seconds / 3600:.2f} h"
        )


class TestHeterBOvsConvBO:
    @pytest.mark.parametrize("seed", range(4))
    def test_heterbo_profiling_cheaper_under_budget(self, seed):
        """Under a budget, HeterBO's profiling spend never exceeds
        ConvBO's (cost-aware acquisition + protective stop)."""
        scenario = Scenario.fastest_within(60.0)
        h = run_strategy(HeterBO(seed=seed), scenario, config(seed))
        c = run_strategy(ConvBO(seed=seed), scenario, config(seed))
        assert (
            h.report.search.profile_dollars
            <= c.report.search.profile_dollars * 1.001
        )
