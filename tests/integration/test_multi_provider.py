"""Multi-provider generality: the same search code on a different cloud.

The paper's MLCD claims provider-independence through its Cloud
Interface.  These tests run the full HeterBO pipeline against the
Azure-flavoured catalog — different SKU names, sizes and price
structure — and require the same behavioural guarantees to hold.
"""

import pytest

from repro.cloud.catalog import azure_like_catalog
from repro.cloud.provider import SimulatedCloud
from repro.core.engine import SearchContext
from repro.core.heterbo import HeterBO
from repro.core.scenarios import Scenario
from repro.core.search_space import DeploymentSpace
from repro.profiling.profiler import Profiler
from repro.sim.noise import NoiseModel
from repro.sim.throughput import TrainingSimulator


@pytest.fixture
def azure_world(charrnn_job):
    catalog = azure_like_catalog().subset(
        ["F4s_v2", "F16s_v2", "NC6", "NC6s_v3"]
    )
    cloud = SimulatedCloud(catalog)
    profiler = Profiler(
        cloud, TrainingSimulator(), noise=NoiseModel(sigma=0.03, seed=1)
    )
    space = DeploymentSpace(catalog, max_count=20)
    return space, profiler, charrnn_job


class TestCatalog:
    def test_azure_catalog_valid(self):
        catalog = azure_like_catalog()
        assert len(catalog) == 11
        assert catalog.cheapest().name == "F4s_v2"
        assert {t.name for t in catalog.gpu_types()} == {
            "NC6", "NC12", "NC24", "NC6s_v3", "NC24s_v3",
        }

    def test_price_structure_differs_from_aws(self):
        """Not a renamed copy: the normalised price ladder differs."""
        from repro.cloud.catalog import paper_catalog

        azure = sorted(azure_like_catalog().normalized_prices().values())
        aws = sorted(paper_catalog().normalized_prices().values())
        assert azure != aws


class TestSearchOnAzure:
    def test_unconstrained_search_finds_good_deployment(self, azure_world):
        space, profiler, job = azure_world
        context = SearchContext(
            space=space, profiler=profiler, job=job,
            scenario=Scenario.fastest(),
        )
        result = HeterBO(seed=1).search(context)
        sim = profiler.simulator
        best_true = max(
            sim.true_speed(space.catalog[d.instance_type], d.count, job)
            for d in space
            if sim.is_feasible(space.catalog[d.instance_type], d.count, job)
        )
        chosen_true = sim.true_speed(
            space.catalog[result.best.instance_type],
            result.best.count, job,
        )
        assert chosen_true > 0.7 * best_true

    def test_rnn_still_prefers_cpus_per_dollar(self, azure_world):
        """The model-family crossover is a hardware fact, not an
        AWS-catalog artefact."""
        space, profiler, job = azure_world
        sim = profiler.simulator
        cpu_cost = sim.training_cost(space.catalog["F16s_v2"], 8, job)
        gpu_cost = sim.training_cost(space.catalog["NC6"], 8, job)
        assert cpu_cost < gpu_cost

    def test_budget_guarantee_holds_on_azure(self, azure_world):
        space, profiler, job = azure_world
        budget = 60.0
        context = SearchContext(
            space=space, profiler=profiler, job=job,
            scenario=Scenario.fastest_within(budget),
        )
        result = HeterBO(seed=1).search(context)
        assert result.best is not None
        train = context.train_dollars(result.best, result.best_measured_speed)
        assert result.profile_dollars + train <= budget * 1.01

    def test_initial_design_adapts_to_catalog(self, azure_world):
        space, profiler, job = azure_world
        context = SearchContext(
            space=space, profiler=profiler, job=job,
            scenario=Scenario.fastest(),
        )
        initial = HeterBO().initial_deployments(context)
        assert [d.instance_type for d in initial] == [
            "F4s_v2", "F16s_v2", "NC6", "NC6s_v3",
        ]
