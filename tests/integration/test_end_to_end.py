"""End-to-end integration: full-stack flows across subsystems."""

import pytest

from repro.baselines import CherryPick, ConvBO, Paleo, RandomSearch
from repro.core.heterbo import HeterBO
from repro.core.scenarios import Scenario
from repro.experiments.runner import ExperimentConfig, run_strategy
from repro.mlcd.system import MLCD
from repro.mlcd.scenario_analyzer import UserRequirements
from repro.cloud.catalog import paper_catalog


class TestAllStrategiesComplete:
    """Every strategy completes every scenario kind on every workload
    family (CNN/RNN/transformer) without raising."""

    @pytest.fixture(params=["char-rnn", "resnet", "bert"])
    def config(self, request):
        settings = {
            "char-rnn": dict(dataset="char-corpus", epochs=2.0, protocol=None),
            "resnet": dict(dataset="cifar10", epochs=5.0, protocol=None),
            "bert": dict(dataset="bert-corpus", epochs=0.005, protocol="ring"),
        }[request.param]
        return ExperimentConfig(
            model=request.param,
            seed=1,
            instance_types=("c5.4xlarge", "c5n.4xlarge", "p2.xlarge"),
            max_count=16,
            **settings,
        )

    @pytest.mark.parametrize("strategy_factory", [
        lambda: HeterBO(seed=1),
        lambda: ConvBO(seed=1, max_steps=10),
        lambda: CherryPick(seed=1, max_steps=10),
        lambda: RandomSearch(n_probes=5, seed=1),
        lambda: Paleo(),
    ], ids=["heterbo", "convbo", "cherrypick", "random", "paleo"])
    def test_scenario1_completes(self, config, strategy_factory):
        run = run_strategy(strategy_factory(), Scenario.fastest(), config)
        assert run.report.search.stop_reason
        assert run.report.trained or run.report.search.best is None

    def test_scenario2_and_3_heterbo(self, config):
        for scenario in (
            Scenario.cheapest_within(24 * 3600.0),
            Scenario.fastest_within(100.0),
        ):
            run = run_strategy(HeterBO(seed=1), scenario, config)
            assert run.report.trained


class TestAccountingConsistency:
    def test_ledger_equals_report_totals(self):
        config = ExperimentConfig(
            model="char-rnn", dataset="char-corpus", epochs=2.0, seed=2,
            instance_types=("c5.xlarge", "c5.4xlarge"), max_count=12,
        )
        run = run_strategy(HeterBO(seed=2), Scenario.fastest(), config)
        cloud = run.engine.cloud
        assert run.report.total_dollars == pytest.approx(
            cloud.total_spend()
        )
        assert run.report.search.profile_dollars == pytest.approx(
            cloud.total_spend("profiling")
        )
        assert run.report.train_dollars == pytest.approx(
            cloud.total_spend("training")
        )

    def test_trial_cumulative_matches_final(self):
        config = ExperimentConfig(
            model="char-rnn", dataset="char-corpus", epochs=2.0, seed=2,
            instance_types=("c5.xlarge", "c5.4xlarge"), max_count=12,
        )
        run = run_strategy(HeterBO(seed=2), Scenario.fastest(), config)
        trials = run.report.search.trials
        assert trials[-1].spent_dollars == pytest.approx(
            run.report.search.profile_dollars
        )
        assert trials[-1].spent_dollars == pytest.approx(
            sum(t.profile_dollars for t in trials)
        )


class TestMLCDSmoke:
    def test_mlcd_full_catalog_budget(self):
        mlcd = MLCD(seed=5, max_count=20)
        report = mlcd.deploy(
            model="inception-v3", dataset="cifar10", epochs=3,
            requirements=UserRequirements(budget_dollars=80.0),
        )
        assert report.trained
        assert report.constraint_met

    def test_mlcd_respects_subset_catalog(self):
        catalog = paper_catalog().subset(["c5.xlarge", "c5.4xlarge"])
        mlcd = MLCD(catalog=catalog, max_count=10, seed=5)
        report = mlcd.deploy(
            model="char-rnn", dataset="char-corpus", epochs=1,
        )
        assert report.search.best.instance_type in (
            "c5.xlarge", "c5.4xlarge"
        )


class TestFailureRecovery:
    def test_search_survives_infeasible_regions(self):
        """ZeRO-20B: single-node probes of every type fail, yet the
        search recovers and selects a working scale-out deployment."""
        config = ExperimentConfig(
            model="zero-20b", dataset="bert-corpus", epochs=0.002,
            protocol="ring", seed=0,
            instance_types=("p3.8xlarge", "p3.16xlarge"), max_count=16,
        )
        run = run_strategy(HeterBO(seed=0), Scenario.fastest(), config)
        failed = [t for t in run.report.search.trials if t.failed]
        assert failed, "expected some failed single-node probes"
        assert run.report.trained
        assert run.report.search.best.count > 1
