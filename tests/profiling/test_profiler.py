"""Profiler: measurement, billing, stability extension, failures."""

import pytest

from repro.cloud.provider import SimulatedCloud
from repro.profiling.profiler import Profiler
from repro.sim.noise import NoiseModel
from repro.sim.throughput import TrainingSimulator


class TestMeasurement:
    def test_speed_close_to_truth(self, profiler, small_catalog, charrnn_job):
        result = profiler.profile("c5.4xlarge", 4, charrnn_job)
        truth = profiler.simulator.true_speed(
            small_catalog["c5.4xlarge"], 4, charrnn_job
        )
        assert result.speed == pytest.approx(truth, rel=0.05)
        assert not result.failed

    def test_result_identifies_deployment(self, profiler, charrnn_job):
        result = profiler.profile("c5.xlarge", 3, charrnn_job)
        assert result.instance_type == "c5.xlarge"
        assert result.count == 3

    def test_iteration_speeds_recorded(self, profiler, charrnn_job):
        result = profiler.profile("c5.xlarge", 1, charrnn_job)
        assert len(result.iteration_speeds) >= 10

    def test_deterministic_given_seed(
        self, small_catalog, simulator, charrnn_job
    ):
        speeds = []
        for _ in range(2):
            cloud = SimulatedCloud(small_catalog)
            profiler = Profiler(
                cloud, simulator, noise=NoiseModel(sigma=0.03, seed=9)
            )
            speeds.append(profiler.profile("c5.4xlarge", 4, charrnn_job).speed)
        assert speeds[0] == speeds[1]

    def test_metrics_pushed_to_cloudwatch(self, profiler, charrnn_job):
        profiler.profile("c5.xlarge", 1, charrnn_job)
        namespaces = profiler.cloud.metrics.namespaces()
        assert len(namespaces) == 1
        values = profiler.cloud.metrics.values(namespaces[0], "training_speed")
        assert len(values) >= 10


class TestCostAccounting:
    def test_clock_advances_by_profiling_window(self, profiler, charrnn_job):
        result = profiler.profile("c5.xlarge", 1, charrnn_job)
        assert profiler.cloud.elapsed() == pytest.approx(result.seconds)
        assert result.seconds == pytest.approx(
            profiler.profiling_seconds(1)
        )

    def test_ledger_charged_under_profiling(self, profiler, charrnn_job):
        result = profiler.profile("c5.4xlarge", 4, charrnn_job)
        assert profiler.cloud.total_spend("profiling") == pytest.approx(
            result.dollars
        )

    def test_dollars_match_preview(self, profiler, charrnn_job):
        preview = profiler.profiling_dollars("c5.4xlarge", 4)
        result = profiler.profile("c5.4xlarge", 4, charrnn_job)
        assert result.dollars == pytest.approx(preview)

    def test_bigger_cluster_costs_more(self, profiler, charrnn_job):
        small = profiler.profile("c5.xlarge", 1, charrnn_job)
        large = profiler.profile("c5.xlarge", 10, charrnn_job)
        assert large.dollars > 5 * small.dollars


class TestStabilityExtension:
    def test_quiet_deployment_not_extended(self, profiler, charrnn_job):
        result = profiler.profile("c5.4xlarge", 4, charrnn_job)
        assert result.extensions == 0

    def test_noisy_deployment_extended(
        self, small_catalog, simulator, charrnn_job
    ):
        cloud = SimulatedCloud(small_catalog)
        profiler = Profiler(
            cloud,
            simulator,
            noise=NoiseModel(sigma=0.10, seed=0, unstable_fraction=1.0),
            stability_cv=0.05,
            max_extensions=2,
        )
        result = profiler.profile("c5.4xlarge", 4, charrnn_job)
        assert result.extensions >= 1
        assert result.seconds > profiler.profiling_seconds(4)

    def test_extension_bounded(self, small_catalog, simulator, charrnn_job):
        cloud = SimulatedCloud(small_catalog)
        profiler = Profiler(
            cloud,
            simulator,
            noise=NoiseModel(sigma=0.5, seed=0, unstable_fraction=1.0),
            stability_cv=0.01,
            max_extensions=3,
        )
        result = profiler.profile("c5.4xlarge", 4, charrnn_job)
        assert result.extensions == 3


class TestFailedProbes:
    @pytest.fixture
    def oom_job(self):
        """ZeRO-20B cannot fit any single node in the small catalog."""
        from repro.sim.comm import CommProtocol
        from repro.sim.datasets import get_dataset
        from repro.sim.platforms import get_platform
        from repro.sim.throughput import TrainingJob
        from repro.sim.zoo import get_model

        return TrainingJob(
            model=get_model("zero-20b"),
            dataset=get_dataset("bert-corpus"),
            platform=get_platform("tensorflow"),
            protocol=CommProtocol.RING_ALLREDUCE,
        )

    def test_infeasible_probe_fails_gracefully(self, profiler, oom_job):
        result = profiler.profile("p2.xlarge", 1, oom_job)
        assert result.failed
        assert result.speed == 0.0
        assert result.iteration_speeds == ()

    def test_failed_probe_still_billed(self, profiler, oom_job):
        result = profiler.profile("p2.xlarge", 1, oom_job)
        assert result.dollars > 0
        assert profiler.cloud.total_spend("profiling") == pytest.approx(
            result.dollars
        )


class TestValidation:
    def test_bad_stability_cv_rejected(self, cloud, simulator):
        with pytest.raises(ValueError, match="stability_cv"):
            Profiler(cloud, simulator, stability_cv=0.0)

    def test_negative_extensions_rejected(self, cloud, simulator):
        with pytest.raises(ValueError, match="max_extensions"):
            Profiler(cloud, simulator, max_extensions=-1)
