"""ProfilingCostModel: the paper's profiling-cost formula."""

import pytest

from repro.cloud.catalog import paper_catalog
from repro.profiling.cost import ProfilingCostModel


@pytest.fixture
def model():
    return ProfilingCostModel()


class TestTime:
    def test_single_node_is_10_minutes(self, model):
        assert model.profiling_seconds(1) == 600.0

    def test_paper_increment_every_3_nodes(self, model):
        """'extra 1 minute ... for every increase of 3 extra nodes'."""
        assert model.profiling_seconds(4) == 660.0
        assert model.profiling_seconds(7) == 720.0

    def test_no_increment_below_threshold(self, model):
        assert model.profiling_seconds(3) == 600.0

    def test_fifty_nodes(self, model):
        # 49 extra nodes -> 16 full increments of 3
        assert model.profiling_seconds(50) == 600.0 + 16 * 60.0

    def test_nondecreasing(self, model):
        times = [model.profiling_seconds(n) for n in range(1, 101)]
        assert times == sorted(times)

    def test_zero_count_rejected(self, model):
        with pytest.raises(ValueError, match="count"):
            model.profiling_seconds(0)


class TestMoney:
    def test_formula_p_times_n_times_t(self, model):
        itype = paper_catalog()["c5.xlarge"]
        expected = (
            itype.price_per_second * 4 * model.profiling_seconds(4)
        )
        assert model.profiling_dollars(itype, 4) == pytest.approx(expected)

    def test_heterogeneity_spans_orders_of_magnitude(self, model):
        """The core premise: probes differ enormously in price."""
        catalog = paper_catalog()
        cheap = model.profiling_dollars(catalog["c5.xlarge"], 1)
        pricey = model.profiling_dollars(catalog["p3.16xlarge"], 50)
        assert pricey > 1000 * cheap


class TestValidation:
    def test_zero_base_rejected(self):
        with pytest.raises(ValueError, match="base_seconds"):
            ProfilingCostModel(base_seconds=0.0)

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="extra_seconds"):
            ProfilingCostModel(extra_seconds_per_3_nodes=-1.0)
