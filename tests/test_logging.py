"""Logging: the search narrates itself at DEBUG/INFO."""

import logging

import pytest

from repro.core.engine import SearchContext
from repro.core.heterbo import HeterBO
from repro.core.scenarios import Scenario


@pytest.fixture
def context(small_space, profiler, charrnn_job):
    return SearchContext(
        space=small_space,
        profiler=profiler,
        job=charrnn_job,
        scenario=Scenario.fastest(),
    )


class TestSearchLogging:
    def test_probes_logged_at_debug(self, context, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.core.engine"):
            HeterBO(seed=1).search(context)
        probe_lines = [
            r for r in caplog.records if "samples/s" in r.getMessage()
        ]
        assert len(probe_lines) >= 3

    def test_summary_logged_at_info(self, context, caplog):
        # the loop summary is emitted by the session (the loop's home
        # since the SearchSession inversion)
        with caplog.at_level(logging.INFO, logger="repro.core.session"):
            HeterBO(seed=1).search(context)
        finished = [
            r for r in caplog.records if "finished after" in r.getMessage()
        ]
        assert len(finished) == 1
        assert "stop:" in finished[0].getMessage()

    def test_prior_caps_logged(self, context, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.core.heterbo"):
            HeterBO(seed=1).search(context)
        capped = [
            r for r in caplog.records
            if "concave prior caps" in r.getMessage()
        ]
        assert capped  # the Char-RNN curve declines in range

    def test_silent_at_warning_level(self, context, caplog):
        with caplog.at_level(logging.WARNING):
            HeterBO(seed=1).search(context)
        assert not [
            r for r in caplog.records if r.name.startswith("repro.")
        ]


class TestProfilerLogging:
    def test_capacity_abandonment_warned(self, charrnn_job, caplog):
        from repro.cloud.catalog import paper_catalog
        from repro.cloud.provider import SimulatedCloud
        from repro.profiling.profiler import Profiler
        from repro.sim.noise import NoiseModel
        from repro.sim.throughput import TrainingSimulator

        cloud = SimulatedCloud(
            paper_catalog().subset(["c5.xlarge"]),
            launch_failure_rate=0.95, failure_seed=1,
        )
        profiler = Profiler(
            cloud, TrainingSimulator(),
            noise=NoiseModel(seed=1), launch_retries=0,
        )
        with caplog.at_level(logging.WARNING, logger="repro.profiling"):
            for n in range(1, 8):
                profiler.profile("c5.xlarge", n, charrnn_job)
        assert any(
            "abandoning probe" in r.getMessage() for r in caplog.records
        )
