"""Search benchmark harness: schema, identity gate, CLI round-trip."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    append_history,
    compare_history,
    history_entry,
    run_bench,
    validate_bench,
)


@pytest.fixture(scope="module")
def quick_doc():
    return run_bench(quick=True, seed=0)


class TestRunBench:
    def test_quick_doc_validates_clean(self, quick_doc):
        assert validate_bench(quick_doc) == []
        assert quick_doc["schema_version"] == BENCH_SCHEMA_VERSION

    def test_identity_gate_holds(self, quick_doc):
        assert quick_doc["identity"]["checked"] is True
        assert quick_doc["identity"]["byte_identical"] is True

    def test_speedups_are_positive(self, quick_doc):
        for section in ("gp_fit", "scoring", "end_to_end"):
            assert quick_doc[section]["speedup"] > 0.0

    def test_both_lanes_find_a_deployment(self, quick_doc):
        assert quick_doc["end_to_end"]["slow_trials"] >= 1
        assert quick_doc["end_to_end"]["fast_trials"] >= 1

    def test_incremental_fits_counted(self, quick_doc):
        # the recorded fast-lane run uses the doubling schedule, so at
        # least one rank-1 update must have happened
        assert quick_doc["metrics"]["gp_fit_total_incremental"] > 0

    def test_observability_overhead_measured(self, quick_doc):
        obs = quick_doc["observability"]
        assert obs["decision_mode"] == "topk"
        assert obs["n_decisions"] > 0
        assert obs["recorded_seconds"] > 0.0
        assert obs["unrecorded_seconds"] > 0.0
        assert 0.5 < obs["overhead_ratio"] < 2.0

    def test_sampled_recording_overhead_under_ten_percent(self, quick_doc):
        # acceptance criterion: end-to-end regression < 10% with
        # sampled (top-k) decision records and the watchdog armed
        assert quick_doc["observability"]["overhead_ratio"] < 1.10


class TestValidateBench:
    def test_rejects_wrong_schema_version(self, quick_doc):
        doc = dict(quick_doc, schema_version=99)
        errors = validate_bench(doc)
        assert any("schema_version" in e for e in errors)

    def test_rejects_missing_section(self, quick_doc):
        doc = {k: v for k, v in quick_doc.items() if k != "gp_fit"}
        errors = validate_bench(doc)
        assert any("gp_fit" in e for e in errors)

    def test_rejects_missing_key_inside_section(self, quick_doc):
        doc = dict(quick_doc)
        doc["scoring"] = {
            k: v for k, v in quick_doc["scoring"].items() if k != "speedup"
        }
        errors = validate_bench(doc)
        assert any("scoring" in e and "speedup" in e for e in errors)

    def test_rejects_non_mapping(self):
        assert validate_bench([]) != []

    def test_observability_section_is_optional(self, quick_doc):
        doc = {k: v for k, v in quick_doc.items() if k != "observability"}
        assert validate_bench(doc) == []

    def test_partial_observability_section_rejected(self, quick_doc):
        doc = dict(quick_doc)
        doc["observability"] = {"recorded_seconds": 1.0}
        errors = validate_bench(doc)
        assert any("observability.overhead_ratio" in e for e in errors)


class TestProfileSection:
    def test_profile_identity_gate_holds(self, quick_doc):
        profile = quick_doc["profile"]
        assert profile["checked"] is True
        assert profile["byte_identical"] is True
        assert "first_divergence" not in profile

    def test_profile_phases_cover_the_hot_path(self, quick_doc):
        phases = quick_doc["profile"]["phases"]
        assert "gp.fit.full" in phases
        assert "candidate-scoring" in phases
        for stat in phases.values():
            assert stat["count"] >= 1
            assert stat["inclusive_seconds"] >= stat["exclusive_seconds"]

    def test_profile_overhead_ratio_measured(self, quick_doc):
        ratio = quick_doc["observability"]["profile_overhead_ratio"]
        assert 0.5 < ratio < 2.0

    def test_profile_section_is_optional_for_old_artifacts(self, quick_doc):
        doc = {k: v for k, v in quick_doc.items() if k != "profile"}
        assert validate_bench(doc) == []

    def test_broken_profile_identity_rejected(self, quick_doc):
        doc = json.loads(json.dumps(quick_doc))
        doc["profile"]["byte_identical"] = False
        errors = validate_bench(doc)
        assert any("profile.byte_identical" in e for e in errors)


class TestHistory:
    def test_append_assigns_sequential_numbers(self, quick_doc, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        first = append_history(quick_doc, path)
        second = append_history(quick_doc, path)
        assert (first["seq"], second["seq"]) == (1, 2)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(ln)["config"]["quick"] for ln in lines)

    def test_entry_carries_no_timestamp(self, quick_doc):
        # entries are pure functions of the artifact: no wall-clock
        # stamps, so identical runs produce identical history lines
        entry = history_entry(quick_doc)
        assert entry == history_entry(quick_doc)
        assert "timestamp" not in entry and "created_at" not in entry
        assert json.dumps(entry, sort_keys=True) == json.dumps(
            history_entry(quick_doc), sort_keys=True
        )

    def test_compare_against_missing_history(self, quick_doc, tmp_path):
        lines, regressed = compare_history(
            quick_doc, tmp_path / "absent.jsonl"
        )
        assert regressed is False
        assert "no comparable history entry" in lines[0]

    def test_compare_flags_regression(self, quick_doc, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        append_history(quick_doc, path)
        slower = json.loads(json.dumps(quick_doc))
        slower["end_to_end"]["fast_seconds"] *= 2.0
        lines, regressed = compare_history(slower, path, threshold=0.10)
        assert regressed is True
        assert any(
            "end_to_end_fast_seconds" in ln and "REGRESSION" in ln
            for ln in lines
        )

    def test_compare_tolerates_noise_within_threshold(
        self, quick_doc, tmp_path
    ):
        path = tmp_path / "BENCH_history.jsonl"
        append_history(quick_doc, path)
        noisy = json.loads(json.dumps(quick_doc))
        noisy["end_to_end"]["fast_seconds"] *= 1.05
        _, regressed = compare_history(noisy, path, threshold=0.10)
        assert regressed is False

    def test_compare_skips_different_configs(self, quick_doc, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        other = json.loads(json.dumps(quick_doc))
        other["config"]["seed"] = 999
        append_history(other, path)
        lines, regressed = compare_history(quick_doc, path)
        assert regressed is False
        assert "no comparable history entry" in lines[0]

    def test_compare_reports_why_entries_were_skipped(
        self, quick_doc, tmp_path
    ):
        # the satellite regression: mismatched-config entries are
        # named with the offending keys, never silently passed over
        path = tmp_path / "BENCH_history.jsonl"
        other = json.loads(json.dumps(quick_doc))
        other["config"]["seed"] = 999
        append_history(other, path)
        append_history(quick_doc, path)
        lines, _ = compare_history(quick_doc, path)
        assert lines[0] == "vs history entry seq=2:"
        assert any(
            "skipped seq=1" not in ln for ln in lines
        )  # seq=2 matched directly, nothing skipped on the way
        # now bury the match under a mismatched entry
        append_history(other, path)
        lines, _ = compare_history(quick_doc, path)
        assert any(
            "skipped seq=3" in ln and "seed=999" in ln for ln in lines
        )

    def test_compare_reports_skips_when_nothing_matches(
        self, quick_doc, tmp_path
    ):
        path = tmp_path / "BENCH_history.jsonl"
        other = json.loads(json.dumps(quick_doc))
        other["config"]["seed"] = 999
        append_history(other, path)
        lines, regressed = compare_history(quick_doc, path)
        assert regressed is False
        assert "no comparable history entry" in lines[0]
        assert any("skipped seq=1" in ln and "seed" in ln for ln in lines)

    def test_history_entry_carries_per_phase_rows(self, quick_doc):
        entry = history_entry(quick_doc)
        assert "observability_profile_overhead_ratio" in entry
        phase_keys = [
            k for k in entry if k.startswith("profile_phase_")
        ]
        assert any("gp.fit.full" in k for k in phase_keys)
        assert all(k.endswith("_exclusive_seconds") for k in phase_keys)

    def test_compare_gates_phase_level_regressions(
        self, quick_doc, tmp_path
    ):
        path = tmp_path / "BENCH_history.jsonl"
        append_history(quick_doc, path)
        slower = json.loads(json.dumps(quick_doc))
        for stat in slower["profile"]["phases"].values():
            stat["exclusive_seconds"] *= 10.0
        lines, regressed = compare_history(slower, path, threshold=0.10)
        assert regressed is True
        assert any(
            "profile_phase_" in ln and "REGRESSION" in ln for ln in lines
        )

    def test_compare_tolerates_entries_without_phase_rows(
        self, quick_doc, tmp_path
    ):
        # pre-profiler history entries lack profile_phase_* keys; the
        # compare must skip those keys, not crash
        path = tmp_path / "BENCH_history.jsonl"
        old = history_entry(quick_doc)
        old = {
            k: v for k, v in old.items()
            if not k.startswith("profile_phase_")
        }
        path.write_text(json.dumps({"seq": 1, **old}) + "\n")
        lines, regressed = compare_history(quick_doc, path)
        assert regressed is False
        assert lines[0] == "vs history entry seq=1:"

    def test_negative_threshold_rejected(self, quick_doc, tmp_path):
        with pytest.raises(ValueError, match="threshold"):
            compare_history(quick_doc, tmp_path / "h.jsonl", threshold=-1.0)

    def test_corrupt_history_line_named(self, quick_doc, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        path.write_text('{"seq": 1}\n{broken\n')
        with pytest.raises(ValueError, match=r"BENCH_history\.jsonl:2"):
            compare_history(quick_doc, path)


class TestBenchCLI:
    def test_quick_run_writes_valid_artifact(self, tmp_path, capsys):
        out = tmp_path / "BENCH_search.json"
        history = tmp_path / "BENCH_history.jsonl"
        rc = main(["bench", "--quick", "--max-steps", "25",
                   "-o", str(out), "--history", str(history)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_bench(doc) == []
        stdout = capsys.readouterr().out
        assert "end-to-end" in stdout
        # the run also landed in the history file
        entries = history.read_text().strip().splitlines()
        assert json.loads(entries[-1])["seq"] == 1

    def test_no_history_flag_skips_append(self, tmp_path, capsys):
        out = tmp_path / "BENCH_search.json"
        history = tmp_path / "BENCH_history.jsonl"
        rc = main(["bench", "--quick", "--max-steps", "25",
                   "-o", str(out), "--history", str(history),
                   "--no-history"])
        assert rc == 0
        assert not history.exists()

    def test_compare_reports_deltas(self, tmp_path, capsys):
        history = tmp_path / "BENCH_history.jsonl"
        rc = main(["bench", "--quick", "--max-steps", "25",
                   "--history", str(history)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["bench", "--quick", "--max-steps", "25",
                   "--history", str(history), "--compare",
                   "--regression-threshold", "1000"])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "vs history entry seq=1" in stdout
        assert "end_to_end_fast_seconds" in stdout

    def test_validate_accepts_committed_artifact(self, capsys):
        artifact = (
            Path(__file__).parents[2] / "benchmarks/perf/BENCH_search.json"
        )
        rc = main(["bench", "--validate", str(artifact)])
        assert rc == 0

    def test_validate_rejects_bad_artifact(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 1}))
        assert main(["bench", "--validate", str(bad)]) == 2
        assert capsys.readouterr().err

    def test_max_overhead_gate_passes_with_headroom(self, tmp_path, capsys):
        out = tmp_path / "BENCH_search.json"
        rc = main(["bench", "--quick", "--max-steps", "25",
                   "-o", str(out), "--no-history",
                   "--max-overhead", "5.0"])
        assert rc == 0
        assert "--max-overhead" not in capsys.readouterr().err

    def test_max_overhead_gate_fails_when_exceeded(self, tmp_path, capsys):
        # a negative ceiling always trips: any measured ratio exceeds it
        out = tmp_path / "BENCH_search.json"
        rc = main(["bench", "--quick", "--max-steps", "25",
                   "-o", str(out), "--no-history",
                   "--max-overhead", "-0.99"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "recording overhead" in err
        assert "exceeds the -99.0% ceiling" in err
