"""Search benchmark harness: schema, identity gate, CLI round-trip."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    run_bench,
    validate_bench,
)


@pytest.fixture(scope="module")
def quick_doc():
    return run_bench(quick=True, seed=0)


class TestRunBench:
    def test_quick_doc_validates_clean(self, quick_doc):
        assert validate_bench(quick_doc) == []
        assert quick_doc["schema_version"] == BENCH_SCHEMA_VERSION

    def test_identity_gate_holds(self, quick_doc):
        assert quick_doc["identity"]["checked"] is True
        assert quick_doc["identity"]["byte_identical"] is True

    def test_speedups_are_positive(self, quick_doc):
        for section in ("gp_fit", "scoring", "end_to_end"):
            assert quick_doc[section]["speedup"] > 0.0

    def test_both_lanes_find_a_deployment(self, quick_doc):
        assert quick_doc["end_to_end"]["slow_trials"] >= 1
        assert quick_doc["end_to_end"]["fast_trials"] >= 1

    def test_incremental_fits_counted(self, quick_doc):
        # the recorded fast-lane run uses the doubling schedule, so at
        # least one rank-1 update must have happened
        assert quick_doc["metrics"]["gp_fit_total_incremental"] > 0


class TestValidateBench:
    def test_rejects_wrong_schema_version(self, quick_doc):
        doc = dict(quick_doc, schema_version=99)
        errors = validate_bench(doc)
        assert any("schema_version" in e for e in errors)

    def test_rejects_missing_section(self, quick_doc):
        doc = {k: v for k, v in quick_doc.items() if k != "gp_fit"}
        errors = validate_bench(doc)
        assert any("gp_fit" in e for e in errors)

    def test_rejects_missing_key_inside_section(self, quick_doc):
        doc = dict(quick_doc)
        doc["scoring"] = {
            k: v for k, v in quick_doc["scoring"].items() if k != "speedup"
        }
        errors = validate_bench(doc)
        assert any("scoring" in e and "speedup" in e for e in errors)

    def test_rejects_non_mapping(self):
        assert validate_bench([]) != []


class TestBenchCLI:
    def test_quick_run_writes_valid_artifact(self, tmp_path, capsys):
        out = tmp_path / "BENCH_search.json"
        rc = main(["bench", "--quick", "--max-steps", "25",
                   "-o", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_bench(doc) == []
        stdout = capsys.readouterr().out
        assert "end-to-end" in stdout

    def test_validate_accepts_committed_artifact(self, capsys):
        artifact = (
            Path(__file__).parents[2] / "benchmarks/perf/BENCH_search.json"
        )
        rc = main(["bench", "--validate", str(artifact)])
        assert rc == 0

    def test_validate_rejects_bad_artifact(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 1}))
        assert main(["bench", "--validate", str(bad)]) == 2
        assert capsys.readouterr().err
