"""Service workload-replay benchmark: schema, identity, history, CLI."""

import json

import pytest

from repro.cli import main
from repro.perf.workload import (
    SERVICE_BENCH_SCHEMA_VERSION,
    append_service_history,
    compare_service_history,
    generate_workload,
    run_service_bench,
    service_history_entry,
    validate_service_bench,
)


@pytest.fixture(scope="module")
def quick_doc():
    return run_service_bench(quick=True, seed=0)


class TestGenerateWorkload:
    def test_deterministic_for_a_seed(self):
        first = generate_workload(n_jobs=20, seed=7)
        second = generate_workload(n_jobs=20, seed=7)
        assert first == second
        assert first != generate_workload(n_jobs=20, seed=8)

    def test_arrivals_are_ordered_and_sized(self):
        arrivals = generate_workload(n_jobs=50, seed=0)
        assert len(arrivals) == 50
        ticks = [a.tick for a in arrivals]
        assert ticks == sorted(ticks)
        assert {a.tenant for a in arrivals} == {"alice", "bob", "carol"}
        assert all(4 <= a.max_steps <= 16 for a in arrivals)
        assert all(1 <= a.max_count <= 4 for a in arrivals)
        # heavy tail: not every job is the minimum size
        assert len({a.max_steps for a in arrivals}) > 1

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError, match="n_jobs"):
            generate_workload(n_jobs=0, seed=0)


class TestRunServiceBench:
    def test_quick_doc_validates_clean(self, quick_doc):
        assert validate_service_bench(quick_doc) == []
        assert quick_doc["schema_version"] == SERVICE_BENCH_SCHEMA_VERSION
        assert quick_doc["benchmark"] == "service-workload"

    def test_identity_gates_hold(self, quick_doc):
        identity = quick_doc["identity"]
        assert identity["service_stream_byte_identical"] is True
        assert identity["per_job_traces_byte_identical"] is True
        assert identity["n_job_traces_compared"] == (
            quick_doc["config"]["n_jobs"]
        )

    def test_every_job_reaches_a_terminal_state(self, quick_doc):
        jobs = quick_doc["jobs"]
        assert jobs["queued"] == 0 and jobs["running"] == 0
        terminal = sum(
            jobs[s] for s in ("done", "failed", "cancelled",
                              "budget-stopped")
        )
        assert terminal == quick_doc["throughput"]["jobs_submitted"]

    def test_throughput_and_latency_measured(self, quick_doc):
        thr = quick_doc["throughput"]
        assert thr["jobs_per_second"] > 0
        assert thr["probes_dispatched"] > 0
        assert quick_doc["queueing"]["count"] == thr["jobs_completed"]
        assert quick_doc["queueing"]["p99"] >= 0

    def test_slo_attainment_reported(self, quick_doc):
        slo = quick_doc["slo"]
        assert len(slo["targets"]) == 3
        assert slo["attainment"] is None or 0 <= slo["attainment"] <= 1


class TestProfileSection:
    def test_profiled_replay_is_byte_identical(self, quick_doc):
        profile = quick_doc["profile"]
        assert profile["checked"] is True
        assert profile["per_job_traces_byte_identical"] is True
        assert profile["service_stream_byte_identical"] is True
        assert "first_divergence" not in profile

    def test_ledger_covers_daemon_and_search_phases(self, quick_doc):
        phases = quick_doc["profile"]["phases"]
        assert "scheduler.tick" in phases
        assert "gp.fit.full" in phases
        tick = phases["scheduler.tick"]
        assert tick["count"] >= 1
        assert tick["inclusive_seconds"] >= tick["exclusive_seconds"] >= 0

    def test_profile_overhead_ratio_is_sane(self, quick_doc):
        ratio = quick_doc["observability"]["profile_overhead_ratio"]
        assert 0.5 < ratio < 2.0

    def test_profile_section_is_optional_for_old_artifacts(self, quick_doc):
        doc = {k: v for k, v in quick_doc.items() if k != "profile"}
        assert validate_service_bench(doc) == []

    def test_broken_profile_identity_is_rejected(self, quick_doc):
        doc = json.loads(json.dumps(quick_doc))
        doc["profile"]["service_stream_byte_identical"] = False
        assert any(
            "profile" in e for e in validate_service_bench(doc)
        )


class TestValidateServiceBench:
    def test_rejects_wrong_schema_version(self, quick_doc):
        doc = dict(quick_doc, schema_version=99)
        assert any(
            "schema_version" in e for e in validate_service_bench(doc)
        )

    def test_rejects_missing_section(self, quick_doc):
        doc = {k: v for k, v in quick_doc.items() if k != "queueing"}
        assert any("queueing" in e for e in validate_service_bench(doc))

    def test_rejects_broken_identity(self, quick_doc):
        doc = json.loads(json.dumps(quick_doc))
        doc["identity"]["service_stream_byte_identical"] = False
        assert any(
            "nondeterministic" in e for e in validate_service_bench(doc)
        )

    def test_rejects_non_mapping(self):
        assert validate_service_bench([]) != []


class TestServiceHistory:
    def test_entries_are_pure_functions_of_the_artifact(self, quick_doc):
        entry = service_history_entry(quick_doc)
        assert entry == service_history_entry(quick_doc)
        assert "timestamp" not in entry

    def test_append_and_compare_round_trip(self, quick_doc, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        first = append_service_history(quick_doc, path)
        assert first["seq"] == 1
        lines, regressed = compare_service_history(quick_doc, path)
        assert regressed is False
        assert "vs history entry seq=1" in lines[0]

    def test_compare_flags_regression(self, quick_doc, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        append_service_history(quick_doc, path)
        slower = json.loads(json.dumps(quick_doc))
        slower["throughput"]["wall_seconds"] *= 2.0
        lines, regressed = compare_service_history(
            slower, path, threshold=0.10
        )
        assert regressed is True
        assert any("REGRESSION" in ln for ln in lines)

    def test_history_entry_carries_per_phase_rows(self, quick_doc):
        entry = service_history_entry(quick_doc)
        assert entry["observability_profile_overhead_ratio"] > 0
        phase_rows = [
            key for key in entry if key.startswith("profile_phase_")
        ]
        assert phase_rows
        assert all(
            key.endswith("_exclusive_seconds") for key in phase_rows
        )
        assert "profile_phase_scheduler.tick_exclusive_seconds" in entry

    def test_compare_gates_phase_level_regressions(
        self, quick_doc, tmp_path
    ):
        path = tmp_path / "BENCH_history.jsonl"
        append_service_history(quick_doc, path)
        slower = json.loads(json.dumps(quick_doc))
        for stat in slower["profile"]["phases"].values():
            stat["exclusive_seconds"] *= 10.0
        lines, regressed = compare_service_history(
            slower, path, threshold=0.10
        )
        assert regressed is True
        assert any(
            "REGRESSION" in ln and "profile_phase_" in ln
            for ln in lines
        )

    def test_compare_reports_why_entries_were_skipped(
        self, quick_doc, tmp_path
    ):
        path = tmp_path / "BENCH_history.jsonl"
        append_service_history(quick_doc, path)
        mismatched = json.loads(json.dumps(quick_doc))
        mismatched["config"]["seed"] = 999
        append_service_history(mismatched, path)
        lines, regressed = compare_service_history(quick_doc, path)
        assert regressed is False
        assert "vs history entry seq=1" in lines[0]
        assert any(
            "skipped seq=2" in ln and "seed" in ln for ln in lines
        )

    def test_search_entries_never_cross_match(self, quick_doc, tmp_path):
        # a search-bench entry in the shared history file must be
        # invisible to the service compare (different config shape)
        path = tmp_path / "BENCH_history.jsonl"
        path.write_text(json.dumps({
            "seq": 1,
            "config": {"quick": True, "n_deployments": 36,
                       "max_steps": 25, "seed": 0},
            "end_to_end_fast_seconds": 1.0,
        }) + "\n")
        lines, regressed = compare_service_history(quick_doc, path)
        assert regressed is False
        assert "no comparable history entry" in lines[0]


class TestServiceBenchCLI:
    def test_quick_run_writes_valid_artifact(self, tmp_path, capsys):
        out = tmp_path / "BENCH_service.json"
        history = tmp_path / "BENCH_history.jsonl"
        rc = main(["bench", "--service", "--quick", "-o", str(out),
                   "--history", str(history), "--max-overhead", "0.10"])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_service_bench(doc) == []
        stdout = capsys.readouterr().out
        assert "service workload bench" in stdout
        entries = history.read_text().strip().splitlines()
        assert json.loads(entries[-1])["seq"] == 1

    def test_validate_dispatches_on_benchmark_kind(
        self, tmp_path, capsys
    ):
        out = tmp_path / "BENCH_service.json"
        rc = main(["bench", "--service", "--quick", "-o", str(out),
                   "--no-history"])
        assert rc == 0
        capsys.readouterr()
        assert main(["bench", "--validate", str(out)]) == 0
        assert "valid BENCH_service.json" in capsys.readouterr().out

    def test_max_overhead_gate_fails_when_exceeded(
        self, tmp_path, capsys
    ):
        rc = main(["bench", "--service", "--quick", "--no-history",
                   "--max-overhead", "-0.99"])
        assert rc == 1
        assert "service telemetry overhead" in capsys.readouterr().err
