"""Property-based tests: kernel PSD, posterior sanity, acquisition.

Hypothesis drives randomised hyperparameters and data through the GP
stack; the properties here are the ones the runtime contracts
(:mod:`repro.contracts`) assume hold everywhere.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acquisition import expected_improvement_min
from repro.core.gp import GaussianProcess
from repro.core.kernels import default_deployment_kernel

#: Deployment features are ``[type index, log2 count]``; draw them
#: from the realistic ranges (3 types, up to 2^6 nodes).
_features = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.floats(min_value=0.0, max_value=6.0,
              allow_nan=False, allow_infinity=False),
)


def _X(rows):
    return np.array([[float(t), float(n)] for t, n in rows])


def _theta_strategy():
    kernel = default_deployment_kernel()
    return st.tuples(*[
        st.floats(min_value=lo, max_value=hi,
                  allow_nan=False, allow_infinity=False)
        for lo, hi in kernel.bounds
    ])


@settings(max_examples=40, deadline=None)
@given(theta=_theta_strategy(),
       rows=st.lists(_features, min_size=1, max_size=8))
def test_gram_matrix_is_psd_under_random_hyperparameters(theta, rows):
    kernel = default_deployment_kernel()
    kernel.theta = np.array(theta)
    K = kernel(_X(rows))
    assert np.all(np.isfinite(K))
    assert np.allclose(K, K.T)
    eigvals = np.linalg.eigvalsh((K + K.T) / 2.0)
    assert float(eigvals.min()) >= -1e-8 * max(1.0, float(eigvals.max()))


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(_features, min_size=2, max_size=6, unique=True),
    speeds=st.lists(
        st.floats(min_value=0.5, max_value=12.0,
                  allow_nan=False, allow_infinity=False),
        min_size=6, max_size=6,
    ),
)
def test_posterior_variance_nonnegative_and_shrinks_at_observations(
    rows, speeds
):
    X = _X(rows)
    y = np.array(speeds[: len(rows)])
    gp = GaussianProcess(optimize_restarts=0, seed=0).fit(X, y)

    grid = _X([(t, n) for t in range(3) for n in (0.0, 2.0, 4.0, 6.0)])
    _, sigma_grid = gp.predict(grid)
    assert np.all(np.isfinite(sigma_grid))
    assert np.all(sigma_grid >= 0.0)

    # at observed inputs the posterior deviation must not exceed the
    # prior deviation (conditioning only removes uncertainty)
    _, sigma_obs = gp.predict(X)
    prior_sigma = np.sqrt(gp.kernel.diag(X)) * gp._y_std
    assert np.all(sigma_obs <= prior_sigma + 1e-8)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(_features, min_size=2, max_size=6, unique=True),
    speeds=st.lists(
        st.floats(min_value=0.5, max_value=12.0,
                  allow_nan=False, allow_infinity=False),
        min_size=6, max_size=6,
    ),
)
def test_posterior_mean_finite_and_interpolates_scale(rows, speeds):
    X = _X(rows)
    y = np.array(speeds[: len(rows)])
    gp = GaussianProcess(optimize_restarts=0, seed=0).fit(X, y)
    mu, sigma = gp.predict(X)
    assert np.all(np.isfinite(mu))
    # noise-regularised interpolation stays within the observed range
    # plus a couple of posterior deviations
    slack = 2.0 * sigma + 1e-6
    assert np.all(mu >= y.min() - slack)
    assert np.all(mu <= y.max() + slack)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(_features, min_size=3, max_size=8, unique=True),
    speeds=st.lists(
        st.floats(min_value=0.5, max_value=12.0,
                  allow_nan=False, allow_infinity=False),
        min_size=8, max_size=8,
    ),
)
def test_rank1_update_matches_from_scratch_fit(rows, speeds):
    """observe() must reproduce fit() exactly at fixed hyperparameters.

    Start from the first two observations, grow one point at a time via
    the rank-1 Cholesky border update, then append a speed-floor point
    (the engine's encoding for failed probes — far below every drawn
    speed) via set_targets-style dynamics.  Mean, deviation and LML
    must match a from-scratch fit on the same data to 1e-8.
    """
    X = _X(rows)
    y = np.array(speeds[: len(rows)])
    # a failed-probe point: log2 count 7.5 is outside the 0..6 draw
    # range, so the row is guaranteed unique; the floor target is far
    # below every drawn speed
    X = np.vstack([X, [[1.0, 7.5]]])
    y = np.append(y, 0.01)

    inc = GaussianProcess(optimize_restarts=0, seed=0)
    inc.fit(X[:2], y[:2])
    for i in range(2, len(y)):
        inc.observe(X[i], float(y[i]))

    scratch = GaussianProcess(optimize_restarts=0, seed=0)
    scratch.fit(X, y)

    grid = _X([(t, n) for t in range(3) for n in (0.0, 3.0, 6.0)])
    mu_i, sigma_i = inc.predict(grid)
    mu_s, sigma_s = scratch.predict(grid)
    np.testing.assert_allclose(mu_i, mu_s, atol=1e-8)
    np.testing.assert_allclose(sigma_i, sigma_s, atol=1e-8)
    assert inc.log_marginal_likelihood() == pytest.approx(
        scratch.log_marginal_likelihood(), abs=1e-8
    )


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(_features, min_size=3, max_size=6, unique=True),
    speeds=st.lists(
        st.floats(min_value=0.5, max_value=12.0,
                  allow_nan=False, allow_infinity=False),
        min_size=6, max_size=6,
    ),
    floor=st.floats(min_value=0.01, max_value=0.4,
                    allow_nan=False, allow_infinity=False),
)
def test_set_targets_matches_refit_on_moved_targets(rows, speeds, floor):
    """Retargeting (the dynamic speed floor moving failed-probe values)
    must equal refitting from scratch on the moved targets."""
    X = _X(rows)
    y = np.array(speeds[: len(rows)])
    gp = GaussianProcess(optimize_restarts=0, seed=0).fit(X, y)
    moved = y.copy()
    moved[0] = floor
    gp.set_targets(moved)

    scratch = GaussianProcess(optimize_restarts=0, seed=0).fit(X, moved)
    grid = _X([(t, n) for t in range(3) for n in (1.0, 5.0)])
    np.testing.assert_allclose(
        gp.predict(grid)[0], scratch.predict(grid)[0], atol=1e-8
    )
    np.testing.assert_allclose(
        gp.predict(grid)[1], scratch.predict(grid)[1], atol=1e-8
    )


@settings(max_examples=100, deadline=None)
@given(
    mu=st.lists(
        st.floats(min_value=-50.0, max_value=50.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=8,
    ),
    sigma=st.lists(
        st.floats(min_value=0.0, max_value=25.0,
                  allow_nan=False, allow_infinity=False),
        min_size=8, max_size=8,
    ),
    best=st.floats(min_value=-50.0, max_value=50.0,
                   allow_nan=False, allow_infinity=False),
    xi=st.floats(min_value=0.0, max_value=2.0,
                 allow_nan=False, allow_infinity=False),
)
def test_acquisition_finite_and_nonnegative(mu, sigma, best, xi):
    n = len(mu)
    ei = expected_improvement_min(
        np.array(mu), np.array(sigma[:n]), best, xi
    )
    assert ei.shape == (n,)
    assert np.all(np.isfinite(ei))
    assert np.all(ei >= 0.0)


@settings(max_examples=40, deadline=None)
@given(
    mu=st.floats(min_value=-20.0, max_value=20.0,
                 allow_nan=False, allow_infinity=False),
    best=st.floats(min_value=-20.0, max_value=20.0,
                   allow_nan=False, allow_infinity=False),
)
def test_acquisition_zero_variance_is_hard_threshold(mu, best):
    """With sigma=0, EI reduces to max(best - mu, 0) (minimisation)."""
    [ei] = expected_improvement_min(
        np.array([mu]), np.array([0.0]), best, 0.0
    )
    assert ei == pytest.approx(max(best - mu, 0.0))
