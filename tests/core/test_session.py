"""SearchSession: the inverted loop must not change a single byte.

The legacy closed ``while`` loops (sequential and batched) are kept
here verbatim as reference drivers; seeded searches run through both
the reference and the session-backed ``SearchStrategy.search()``, and
the canonicalised ``SearchTrace`` artifacts must be byte identical —
the fast-lane-gate pattern applied to the control-flow inversion.
On top of that: snapshot/restore equivalence mid-search, the
NaN-argmax guard, and the terminal decision records the legacy loop
never committed.
"""

import json

import numpy as np
import pytest

from repro import contracts
from repro.baselines.convbo import ConvBO
from repro.cloud.catalog import paper_catalog
from repro.cloud.provider import SimulatedCloud
from repro.core.engine import SearchContext
from repro.core.heterbo import HeterBO
from repro.core.parallel import ParallelHeterBO
from repro.core.result import SearchResult, TrialRecord
from repro.core.scenarios import Scenario
from repro.core.search_space import Deployment, DeploymentSpace
from repro.core.session import SearchSession, Stop
from repro.obs import RunRecorder, render_explain
from repro.perf.bench import canonical_trace_jsonl
from repro.profiling.profiler import Profiler
from repro.sim.datasets import get_dataset
from repro.sim.noise import NoiseModel
from repro.sim.platforms import get_platform
from repro.sim.throughput import TrainingJob, TrainingSimulator
from repro.sim.zoo import get_model


def _world(*, seed=3, types=("c5.xlarge", "c5.4xlarge", "c4.xlarge"),
           max_count=8, scenario=None, decisions=False):
    catalog = paper_catalog().subset(list(types))
    cloud = SimulatedCloud(catalog)
    recorder = RunRecorder(
        clock=lambda: cloud.clock.now,
        decisions="full" if decisions else "off",
    )
    profiler = Profiler(
        cloud, TrainingSimulator(),
        noise=NoiseModel(sigma=0.03, seed=seed),
        tracer=recorder.tracer, metrics=recorder.metrics,
    )
    job = TrainingJob(
        model=get_model("char-rnn"),
        dataset=get_dataset("char-corpus"),
        platform=get_platform("tensorflow"),
        epochs=1.0,
    )
    context = SearchContext(
        space=DeploymentSpace(catalog, max_count=max_count),
        profiler=profiler,
        job=job,
        scenario=scenario or Scenario.fastest_within(40.0),
        tracer=recorder.tracer,
        metrics=recorder.metrics,
        decisions=recorder.decisions,
        watchdog=recorder.watchdog,
    )
    return context, recorder


# -- the legacy loops, verbatim ----------------------------------------------
# These are the pre-inversion bodies of SearchStrategy.search() and
# ParallelHeterBO.search(), kept as the ground truth the session-backed
# drivers are compared against (``self`` -> ``strategy`` is the only
# edit).


def _legacy_sequential_search(strategy, context):
    engine = strategy._make_engine(context)
    trials = []
    stop_reason = "max steps reached"
    profiling_before = context.profiler.cloud.ledger.total("profiling")
    context.decisions.begin_run(fast_lane=strategy.fast_lane)

    with context.tracer.span("search", {
        "strategy": strategy.name,
        "scenario": context.scenario.describe(),
    }) as search_span:
        for deployment in strategy.initial_deployments(context):
            if len(trials) >= strategy.max_steps:
                break
            with context.tracer.span("step", {"phase": "initial"}):
                strategy._probe(
                    context, engine, deployment, trials, "initial"
                )

        while len(trials) < strategy.max_steps:
            if engine.n_observations == 0:
                stop_reason = "no observations possible"
                break
            with context.tracer.span(
                "step", {"phase": "explore"}
            ) as step_span:
                engine.fit()
                candidates = strategy.candidate_deployments(context, engine)
                if not candidates:
                    stop_reason = "search space exhausted"
                    break
                with context.tracer.span(
                    "candidate-scoring",
                    {"n_candidates": len(candidates)},
                ) as scoring_span:
                    scores = strategy.score_candidates(
                        context, engine, candidates
                    )
                    reason = strategy.should_stop(
                        context, engine, candidates, scores
                    )
                    if reason is None:
                        best_idx = int(np.argmax(scores))
                        chosen = candidates[best_idx]
                        scoring_span.set_attribute("chosen", str(chosen))
                        scoring_span.set_attribute(
                            "acquisition_value", float(scores[best_idx])
                        )
                        scoring_span.set_attribute(
                            "pl_penalty", context.probe_penalty(chosen)
                        )
                if reason is not None:
                    stop_reason = reason
                    step_span.set_attribute("stop_reason", reason)
                    strategy._commit_decision(
                        context, engine, stop_reason=reason
                    )
                    break
                strategy._commit_decision(context, engine, chosen=chosen)
                strategy._probe(context, engine, chosen, trials, "explore")

        selection = strategy.select_best(context, engine)
        best, best_speed = (
            (None, 0.0) if selection is None else selection
        )
        search_span.set_attribute("stop_reason", stop_reason)
        search_span.set_attribute("n_steps", len(trials))
        search_span.set_attribute(
            "best", None if best is None else str(best)
        )
    ledger = context.profiler.cloud.ledger
    contracts.check_search_billing(
        trials, ledger.total("profiling") - profiling_before
    )
    contracts.check_ledger(ledger)
    contracts.check_fleet_attribution(ledger, context.profiler.cloud.fleet)
    context.metrics.gauge("search.steps_to_stop").set(
        len(trials), strategy=strategy.name
    )
    return SearchResult(
        strategy=strategy.name,
        scenario=context.scenario,
        trials=tuple(trials),
        best=best,
        best_measured_speed=best_speed,
        profile_seconds=context.elapsed_seconds(),
        profile_dollars=context.spent_dollars(),
        stop_reason=stop_reason,
    )


def _legacy_parallel_search(strategy, context):
    engine = strategy._make_engine(context)
    trials = []
    stop_reason = "max steps reached"
    profiling_before = context.profiler.cloud.ledger.total("profiling")
    context.decisions.begin_run(fast_lane=strategy.fast_lane)

    with context.tracer.span("search", {
        "strategy": strategy.name,
        "scenario": context.scenario.describe(),
        "batch_size": strategy.batch_size,
    }) as search_span:
        initial = strategy.initial_deployments(context)[: strategy.max_steps]
        if initial:
            with context.tracer.span("step", {
                "phase": "initial", "batch": len(initial),
            }):
                fleet = context.profiler.cloud.fleet
                fleet.begin_batch(
                    phase="initial", first_trial=len(trials) + 1
                )
                try:
                    results = context.profiler.profile_batch(
                        [(d.instance_type, d.count) for d in initial],
                        context.job,
                    )
                finally:
                    fleet.clear()
                strategy._record_batch(
                    context, engine, results, trials, "initial"
                )

        while len(trials) < strategy.max_steps:
            if engine.n_observations == 0:
                stop_reason = "no observations possible"
                break
            with context.tracer.span(
                "step", {"phase": "explore"}
            ) as step_span:
                engine.fit()
                candidates = strategy.candidate_deployments(context, engine)
                if not candidates:
                    stop_reason = "search space exhausted"
                    break
                with context.tracer.span(
                    "candidate-scoring",
                    {"n_candidates": len(candidates)},
                ) as scoring_span:
                    scores = strategy.score_candidates(
                        context, engine, candidates
                    )
                    reason = strategy.should_stop(
                        context, engine, candidates, scores
                    )
                    batch = []
                    if reason is None:
                        batch = strategy._select_batch(
                            context, engine, candidates, scores
                        )
                        batch = batch[: strategy.max_steps - len(trials)]
                        if batch:
                            scoring_span.set_attribute(
                                "batch", [str(d) for d in batch]
                            )
                if reason is not None:
                    stop_reason = reason
                    step_span.set_attribute("stop_reason", reason)
                    strategy._commit_decision(
                        context, engine, stop_reason=reason
                    )
                    break
                if not batch:
                    stop_reason = (
                        "protective stop: no batch fits the constraint"
                    )
                    step_span.set_attribute("stop_reason", stop_reason)
                    strategy._commit_decision(
                        context, engine, stop_reason=stop_reason
                    )
                    break
                step_span.set_attribute("batch", len(batch))
                strategy._commit_decision(
                    context, engine, chosen=batch[0], batch=batch
                )
                fleet = context.profiler.cloud.fleet
                fleet.begin_batch(
                    phase="explore", first_trial=len(trials) + 1
                )
                try:
                    results = context.profiler.profile_batch(
                        [(d.instance_type, d.count) for d in batch],
                        context.job,
                    )
                finally:
                    fleet.clear()
                strategy._record_batch(
                    context, engine, results, trials, "explore"
                )

        selection = strategy.select_best(context, engine)
        best, best_speed = (
            (None, 0.0) if selection is None else selection
        )
        search_span.set_attribute("stop_reason", stop_reason)
        search_span.set_attribute("n_steps", len(trials))
        search_span.set_attribute(
            "best", None if best is None else str(best)
        )
    ledger = context.profiler.cloud.ledger
    contracts.check_search_billing(
        trials, ledger.total("profiling") - profiling_before
    )
    contracts.check_ledger(ledger)
    contracts.check_fleet_attribution(ledger, context.profiler.cloud.fleet)
    context.metrics.gauge("search.steps_to_stop").set(
        len(trials), strategy=strategy.name
    )
    return SearchResult(
        strategy=strategy.name,
        scenario=context.scenario,
        trials=tuple(trials),
        best=best,
        best_measured_speed=best_speed,
        profile_seconds=context.elapsed_seconds(),
        profile_dollars=context.spent_dollars(),
        stop_reason=stop_reason,
    )


STRATEGIES = {
    "heterbo": lambda: HeterBO(seed=3, max_steps=8),
    "convbo": lambda: ConvBO(seed=3, max_steps=8),
    "parallel-heterbo": lambda: ParallelHeterBO(
        seed=3, max_steps=8, batch_size=2
    ),
}

LEGACY = {
    "heterbo": _legacy_sequential_search,
    "convbo": _legacy_sequential_search,
    "parallel-heterbo": _legacy_parallel_search,
}


class TestLoopInversionByteIdentity:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_session_trace_matches_legacy_loop(self, name):
        context, recorder = _world()
        legacy_result = LEGACY[name](STRATEGIES[name](), context)
        legacy = canonical_trace_jsonl(recorder.finalize(legacy_result))

        context, recorder = _world()
        result = STRATEGIES[name]().search(context)
        inverted = canonical_trace_jsonl(recorder.finalize(result))

        assert inverted == legacy
        assert result.stop_reason == legacy_result.stop_reason
        assert result.best == legacy_result.best

    def test_traces_are_nontrivial(self):
        context, recorder = _world()
        result = STRATEGIES["heterbo"]().search(context)
        trace = canonical_trace_jsonl(recorder.finalize(result))
        assert len(result.trials) >= 3
        assert trace.count('"kind": "span"') > 0


class TestSnapshotResume:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_mid_search_snapshot_restore_is_byte_identical(self, name):
        # uninterrupted reference
        context, recorder = _world()
        reference_result = STRATEGIES[name]().search(context)
        reference = canonical_trace_jsonl(recorder.finalize(reference_result))

        # interrupted: drive a few probes, snapshot, restore, finish
        context, recorder = _world()
        session = SearchSession(STRATEGIES[name](), context)
        for _ in range(2):
            action = session.next_action()
            if isinstance(action, Stop):
                break
            session.execute_pending()
        snapshot = json.loads(json.dumps(session.to_dict()))  # wire trip
        restored = SearchSession.from_dict(
            snapshot, strategy=STRATEGIES[name](), context=context
        )
        result = restored.run()
        resumed = canonical_trace_jsonl(recorder.finalize(result))

        assert resumed == reference
        assert result.stop_reason == reference_result.stop_reason
        assert [t.deployment for t in result.trials] == [
            t.deployment for t in reference_result.trials
        ]

    def test_snapshot_refused_while_pending(self):
        context, _ = _world()
        session = SearchSession(STRATEGIES["heterbo"](), context)
        session.next_action()
        with pytest.raises(RuntimeError, match="pending"):
            session.to_dict()

    def test_snapshot_refused_after_stop(self):
        context, _ = _world()
        session = SearchSession(HeterBO(seed=3, max_steps=1), context)
        session.run()
        with pytest.raises(RuntimeError, match="stopped"):
            session.to_dict()

    def test_snapshot_validates_strategy_and_version(self):
        context, _ = _world()
        session = SearchSession(STRATEGIES["heterbo"](), context)
        session.next_action()
        session.execute_pending()
        snapshot = session.to_dict()
        with pytest.raises(ValueError, match="strategy"):
            SearchSession.from_dict(
                snapshot, strategy=ConvBO(seed=3, max_steps=8),
                context=context,
            )
        with pytest.raises(ValueError, match="max_steps"):
            SearchSession.from_dict(
                snapshot, strategy=HeterBO(seed=3, max_steps=9),
                context=context,
            )
        bad = dict(snapshot, version=99)
        with pytest.raises(ValueError, match="version"):
            SearchSession.from_dict(
                bad, strategy=STRATEGIES["heterbo"](), context=context
            )

    def test_feed_accepts_external_results_in_order(self):
        """Results produced against the session's cloud can be fed
        back one by one; a mismatched deployment is rejected."""
        context, _ = _world()
        session = SearchSession(HeterBO(seed=3, max_steps=4), context)
        request = session.next_action()
        wrong = Deployment("c5.4xlarge", 7)
        assert request.deployment != wrong
        with pytest.raises(ValueError, match="expected"):
            session.feed(context.profiler.profile(
                wrong.instance_type, wrong.count, context.job
            ))
        result = context.profiler.profile(
            request.deployment.instance_type,
            request.deployment.count,
            context.job,
        )
        session.feed(result)
        assert session.pending is None
        assert len(session.trials) == 1
        assert session.trials[0].deployment == request.deployment


class TestNaNGuard:
    def test_non_finite_argmax_raises(self):
        class NaNScores(HeterBO):
            def score_candidates(self, context, engine, candidates):
                return np.full(len(candidates), np.nan)

            def should_stop(self, context, engine, candidates, scores):
                return None

        context, _ = _world()
        with pytest.raises(ValueError, match="not finite"):
            NaNScores(seed=3, max_steps=8).search(context)


class TestTerminalDecisionRecords:
    """Every stop path leaves a decision record naming its reason."""

    def _stop_record(self, recorder):
        stops = [
            r for r in recorder.decisions.records
            if r.stop_reason is not None
        ]
        assert len(stops) == 1
        return stops[0]

    def test_search_space_exhausted_commits_record(self):
        context, recorder = _world(
            types=("c5.xlarge",), max_count=1, decisions=True,
            scenario=Scenario.fastest(),
        )
        result = HeterBO(seed=3, max_steps=8).search(context)
        assert result.stop_reason == "search space exhausted"
        record = self._stop_record(recorder)
        assert record.stop_reason == "search space exhausted"
        explained = render_explain(
            recorder.finalize(result), stop=True
        )
        assert "search space exhausted" in explained
        assert "did not stop on a recorded decision" not in explained

    def test_no_observations_possible_commits_record(self):
        # a deadline so tight no probe fits the constraint: the initial
        # design is empty and the explore loop sees zero observations
        context, recorder = _world(
            decisions=True, scenario=Scenario.cheapest_within(1.0),
        )
        result = HeterBO(seed=3, max_steps=8).search(context)
        assert result.stop_reason == "no observations possible"
        record = self._stop_record(recorder)
        assert record.stop_reason == "no observations possible"
        explained = render_explain(recorder.finalize(result), stop=True)
        assert "no observations possible" in explained

    def test_initial_design_only_max_steps_commits_record(self):
        # max_steps below the initial-design size: the legacy loop
        # finished without ever entering candidate scoring, and the
        # artifact carried no decision record at all
        context, recorder = _world(decisions=True)
        result = HeterBO(seed=3, max_steps=2).search(context)
        assert result.stop_reason == "max steps reached"
        assert all(t.note == "initial" for t in result.trials)
        record = self._stop_record(recorder)
        assert record.stop_reason == "max steps reached"
        explained = render_explain(recorder.finalize(result), stop=True)
        assert "max steps reached" in explained

    def test_converged_stop_still_single_record(self):
        """Explore-loop stops already committed a record in the legacy
        loop; the single-exit-point refactor must not double-commit."""
        context, recorder = _world(decisions=True)
        result = HeterBO(seed=3, max_steps=30).search(context)
        stops = [
            r for r in recorder.decisions.records
            if r.stop_reason is not None
        ]
        assert len(stops) == 1
        assert stops[0].stop_reason == result.stop_reason
