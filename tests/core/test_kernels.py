"""Kernels: PSD-ness, analytic gradients vs finite differences, bounds."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kernels import (
    CategoricalKernel,
    ConstantKernel,
    Matern52Kernel,
    ProductKernel,
    RBFKernel,
    SumKernel,
    WhiteKernel,
    default_deployment_kernel,
)

RNG = np.random.default_rng(0)


def sample_X(n=6, d=2):
    return RNG.normal(size=(n, d))


def all_kernels():
    return [
        ConstantKernel(2.0),
        WhiteKernel(0.1),
        RBFKernel(1.3),
        RBFKernel([0.7, 1.9]),
        Matern52Kernel(0.8),
        CategoricalKernel(1.5, dim=0),
        ConstantKernel(1.5) * RBFKernel(0.9),
        RBFKernel(1.1) + WhiteKernel(0.05),
        ConstantKernel(1.0)
        * (CategoricalKernel(1.0, dim=0) * Matern52Kernel(1.0, dims=[1]))
        + WhiteKernel(1e-3),
    ]


def finite_diff_grads(kernel, X, eps=1e-6):
    theta0 = kernel.theta.copy()
    grads = []
    for i in range(len(theta0)):
        theta_plus, theta_minus = theta0.copy(), theta0.copy()
        theta_plus[i] += eps
        theta_minus[i] -= eps
        kernel.theta = theta_plus
        K_plus = kernel(X)
        kernel.theta = theta_minus
        K_minus = kernel(X)
        grads.append((K_plus - K_minus) / (2 * eps))
    kernel.theta = theta0
    return np.stack(grads)


class TestGradients:
    @pytest.mark.parametrize(
        "kernel", all_kernels(), ids=lambda k: type(k).__name__ + str(id(k) % 97)
    )
    def test_analytic_matches_finite_difference(self, kernel):
        X = sample_X()
        K, dK = kernel.gradient(X)
        np.testing.assert_allclose(K, kernel(X), atol=1e-12)
        fd = finite_diff_grads(kernel, X)
        np.testing.assert_allclose(dK, fd, rtol=1e-4, atol=1e-6)

    def test_gradient_shape(self):
        kernel = RBFKernel([1.0, 2.0])
        X = sample_X(5, 2)
        K, dK = kernel.gradient(X)
        assert K.shape == (5, 5)
        assert dK.shape == (2, 5, 5)


class TestPSD:
    @pytest.mark.parametrize(
        "kernel", all_kernels(), ids=lambda k: type(k).__name__ + str(id(k) % 97)
    )
    def test_covariance_psd(self, kernel):
        X = sample_X(8)
        K = kernel(X)
        eigvals = np.linalg.eigvalsh((K + K.T) / 2)
        assert eigvals.min() > -1e-9

    @pytest.mark.parametrize(
        "kernel", all_kernels(), ids=lambda k: type(k).__name__ + str(id(k) % 97)
    )
    def test_symmetric(self, kernel):
        X = sample_X(7)
        K = kernel(X)
        np.testing.assert_allclose(K, K.T, atol=1e-12)


class TestThetaRoundTrip:
    @pytest.mark.parametrize(
        "kernel", all_kernels(), ids=lambda k: type(k).__name__ + str(id(k) % 97)
    )
    def test_set_get_roundtrip(self, kernel):
        theta = kernel.theta + 0.1
        kernel.theta = theta
        np.testing.assert_allclose(kernel.theta, theta)

    def test_wrong_length_rejected(self):
        k = RBFKernel([1.0, 2.0])
        with pytest.raises(ValueError, match="hyperparameters"):
            k.theta = np.array([1.0])

    def test_nonfinite_rejected(self):
        k = RBFKernel(1.0)
        with pytest.raises(ValueError, match="non-finite"):
            k.theta = np.array([np.nan])

    def test_bounds_length_matches_theta(self):
        for kernel in all_kernels():
            assert len(kernel.bounds) == kernel.n_params


class TestSpecificKernels:
    def test_constant_value(self):
        K = ConstantKernel(3.0)(sample_X(4))
        np.testing.assert_allclose(K, 3.0)

    def test_white_diag_only(self):
        k = WhiteKernel(0.5)
        X = sample_X(4)
        np.testing.assert_allclose(k(X), 0.5 * np.eye(4))

    def test_white_cross_is_zero(self):
        k = WhiteKernel(0.5)
        X = sample_X(4)
        np.testing.assert_allclose(k(X, X), np.zeros((4, 4)))

    def test_rbf_unit_diagonal(self):
        K = RBFKernel(1.0)(sample_X(5))
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_rbf_decays_with_distance(self):
        k = RBFKernel(1.0)
        X = np.array([[0.0], [1.0], [5.0]])
        K = k(X)
        assert K[0, 1] > K[0, 2]

    def test_matern_unit_diagonal(self):
        K = Matern52Kernel(1.0)(sample_X(5))
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_categorical_same_category_is_one(self):
        k = CategoricalKernel(1.0, dim=0)
        X = np.array([[0.0, 1.0], [0.0, 9.0]])
        np.testing.assert_allclose(k(X), 1.0)

    def test_categorical_cross_below_one(self):
        k = CategoricalKernel(1.0, dim=0)
        X = np.array([[0.0, 0.0], [1.0, 0.0]])
        K = k(X)
        assert 0 < K[0, 1] < 1

    def test_categorical_lengthscale_controls_pooling(self):
        X = np.array([[0.0], [1.0]])
        tight = CategoricalKernel(0.1)(X)[0, 1]
        loose = CategoricalKernel(10.0)(X)[0, 1]
        assert tight < loose

    def test_dims_selects_columns(self):
        k = Matern52Kernel(1.0, dims=[1])
        X = np.array([[0.0, 1.0], [99.0, 1.0]])
        # dim 0 differs wildly, dim 1 equal -> correlation 1
        assert k(X)[0, 1] == pytest.approx(1.0)

    def test_validation_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            RBFKernel(0.0)
        with pytest.raises(ValueError):
            ConstantKernel(-1.0)
        with pytest.raises(ValueError):
            WhiteKernel(0.0)
        with pytest.raises(ValueError):
            Matern52Kernel(-2.0)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError, match="bounds"):
            ConstantKernel(1.0, bounds=(2.0, 1.0))


class TestComposites:
    def test_product_is_elementwise(self):
        X = sample_X(4)
        a, b = RBFKernel(1.0), ConstantKernel(2.0)
        np.testing.assert_allclose(
            ProductKernel(a, b)(X), a(X) * b(X)
        )

    def test_sum_is_elementwise(self):
        X = sample_X(4)
        a, b = RBFKernel(1.0), WhiteKernel(0.1)
        np.testing.assert_allclose(SumKernel(a, b)(X), a(X) + b(X))

    def test_operator_sugar(self):
        assert isinstance(RBFKernel() * ConstantKernel(), ProductKernel)
        assert isinstance(RBFKernel() + WhiteKernel(), SumKernel)

    def test_composite_theta_concatenates(self):
        k = RBFKernel([1.0, 2.0]) + WhiteKernel(0.1)
        assert k.n_params == 3

    def test_composite_theta_routing(self):
        left, right = RBFKernel(1.0), WhiteKernel(0.1)
        k = left + right
        k.theta = np.array([np.log(3.0), np.log(0.2)])
        assert left.lengthscales[0] == pytest.approx(3.0)
        assert right.noise == pytest.approx(0.2)


class TestDefaultDeploymentKernel:
    def test_shape_on_deployment_features(self):
        k = default_deployment_kernel()
        X = np.array([[0, 0], [0, 3], [1, 0], [2, 5]], dtype=float)
        assert k(X).shape == (4, 4)

    def test_same_type_near_counts_correlate_most(self):
        k = default_deployment_kernel()
        X = np.array([[0, 2.0], [0, 2.3], [1, 2.0]])
        K = k(X)
        assert K[0, 1] > K[0, 2]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.floats(min_value=0.0, max_value=6.0),
            ),
            min_size=2,
            max_size=12,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_psd_on_arbitrary_deployment_sets(self, rows):
        X = np.array(rows, dtype=float)
        K = default_deployment_kernel()(X)
        eigvals = np.linalg.eigvalsh((K + K.T) / 2)
        assert eigvals.min() > -1e-8


class TestDiag:
    @pytest.mark.parametrize(
        "kernel", all_kernels(), ids=lambda k: type(k).__name__ + str(id(k) % 97)
    )
    def test_diag_matches_full_matrix(self, kernel):
        X = sample_X(7)
        np.testing.assert_allclose(kernel.diag(X), np.diag(kernel(X)))

    def test_diag_shape(self):
        k = default_deployment_kernel()
        X = sample_X(11)
        assert k.diag(X).shape == (11,)
