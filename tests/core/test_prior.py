"""Concave scale-out prior: decline and plateau detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.prior import ConcaveScaleOutPrior


class TestDeclineRule:
    def test_no_cap_before_any_decline(self):
        prior = ConcaveScaleOutPrior()
        prior.observe("t", 1, 10.0)
        prior.observe("t", 4, 40.0)
        assert prior.max_allowed("t") is None
        assert prior.allows("t", 50)

    def test_decline_caps_at_high_point(self):
        prior = ConcaveScaleOutPrior()
        prior.observe("t", 8, 100.0)
        prior.observe("t", 16, 80.0)
        assert prior.max_allowed("t") == 16
        assert prior.allows("t", 16)
        assert not prior.allows("t", 17)

    def test_small_decline_within_tolerance_ignored(self):
        prior = ConcaveScaleOutPrior(decline_tolerance=0.05, plateau_tolerance=0.0)
        prior.observe("t", 8, 100.0)
        prior.observe("t", 16, 97.0)  # 3% < 5% tolerance
        assert prior.max_allowed("t") is None

    def test_out_of_order_observations_sorted(self):
        prior = ConcaveScaleOutPrior()
        prior.observe("t", 16, 80.0)
        prior.observe("t", 8, 100.0)  # arrives later but is smaller n
        assert prior.max_allowed("t") == 16

    def test_types_tracked_independently(self):
        prior = ConcaveScaleOutPrior()
        prior.observe("a", 8, 100.0)
        prior.observe("a", 16, 50.0)
        prior.observe("b", 8, 100.0)
        assert not prior.allows("a", 32)
        assert prior.allows("b", 32)

    def test_failed_probe_is_decline_signal(self):
        prior = ConcaveScaleOutPrior()
        prior.observe("t", 8, 100.0)
        prior.observe("t", 16, 0.0)
        assert prior.max_allowed("t") == 16

    def test_cap_only_tightens(self):
        prior = ConcaveScaleOutPrior()
        prior.observe("t", 8, 100.0)
        prior.observe("t", 32, 50.0)
        assert prior.max_allowed("t") == 32
        prior.observe("t", 16, 60.0)  # earlier decline discovered
        assert prior.max_allowed("t") == 16


class TestPlateauRule:
    def test_plateau_caps(self):
        prior = ConcaveScaleOutPrior(plateau_tolerance=0.10)
        prior.observe("t", 8, 100.0)
        prior.observe("t", 16, 104.0)  # 4% gain per doubling < 10%
        assert prior.max_allowed("t") == 16

    def test_healthy_speedup_not_capped(self):
        prior = ConcaveScaleOutPrior(plateau_tolerance=0.10)
        prior.observe("t", 8, 100.0)
        prior.observe("t", 16, 170.0)
        assert prior.max_allowed("t") is None

    def test_close_pairs_ignored(self):
        """n=10 vs n=11 is 0.14 doublings — too noisy to judge."""
        prior = ConcaveScaleOutPrior(
            plateau_tolerance=0.10, min_doubling_gap=0.4
        )
        prior.observe("t", 10, 100.0)
        prior.observe("t", 11, 100.5)
        assert prior.max_allowed("t") is None

    def test_plateau_disabled_at_zero_tolerance(self):
        prior = ConcaveScaleOutPrior(plateau_tolerance=0.0)
        prior.observe("t", 8, 100.0)
        prior.observe("t", 16, 100.0)  # flat, but tolerance 0 => equal ok
        assert prior.max_allowed("t") is None


class TestValidation:
    def test_bad_decline_tolerance(self):
        with pytest.raises(ValueError, match="decline_tolerance"):
            ConcaveScaleOutPrior(decline_tolerance=1.0)

    def test_bad_plateau_tolerance(self):
        with pytest.raises(ValueError, match="plateau_tolerance"):
            ConcaveScaleOutPrior(plateau_tolerance=-0.1)

    def test_bad_gap(self):
        with pytest.raises(ValueError, match="min_doubling_gap"):
            ConcaveScaleOutPrior(min_doubling_gap=0.0)

    def test_bad_observation(self):
        prior = ConcaveScaleOutPrior()
        with pytest.raises(ValueError, match="count"):
            prior.observe("t", 0, 1.0)
        with pytest.raises(ValueError, match="speed"):
            prior.observe("t", 1, -1.0)

    def test_pruned_types_snapshot(self):
        prior = ConcaveScaleOutPrior()
        prior.observe("a", 4, 100.0)
        prior.observe("a", 8, 10.0)
        assert prior.pruned_types() == {"a": 8}


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=64),
                st.floats(min_value=0.0, max_value=1e4),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=100)
    def test_allows_below_or_at_cap_always(self, observations):
        prior = ConcaveScaleOutPrior()
        for n, s in observations:
            prior.observe("t", n, s)
        cap = prior.max_allowed("t")
        if cap is not None:
            assert prior.allows("t", cap)
            assert not prior.allows("t", cap + 1)
        else:
            assert prior.allows("t", 10**6)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=64),
                st.floats(min_value=1.0, max_value=1e4),
            ),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=100)
    def test_observation_order_irrelevant(self, observations):
        forward, backward = ConcaveScaleOutPrior(), ConcaveScaleOutPrior()
        for n, s in observations:
            forward.observe("t", n, s)
        for n, s in reversed(observations):
            backward.observe("t", n, s)
        # caps may differ transiently during insertion but the final
        # series is identical, so the final cap must agree
        assert forward.max_allowed("t") == backward.max_allowed("t")
