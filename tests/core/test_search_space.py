"""DeploymentSpace: enumeration, pricing, GP feature encoding."""

import numpy as np
import pytest

from repro.core.search_space import Deployment, DeploymentSpace


class TestDeployment:
    def test_str(self):
        assert str(Deployment("c5.xlarge", 4)) == "4x c5.xlarge"

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            Deployment("c5.xlarge", 0)

    def test_empty_type_rejected(self):
        with pytest.raises(ValueError, match="instance_type"):
            Deployment("", 1)

    def test_hashable_and_equal(self):
        assert Deployment("a", 1) == Deployment("a", 1)
        assert len({Deployment("a", 1), Deployment("a", 1)}) == 1

    def test_ordering(self):
        assert Deployment("a", 1) < Deployment("a", 2) < Deployment("b", 1)


class TestEnumeration:
    def test_size_is_product(self, small_catalog):
        """The paper's 62 x 50 = 3,100 arithmetic."""
        space = DeploymentSpace(small_catalog, max_count=50)
        assert len(space) == 3 * 50

    def test_iteration_covers_all(self, small_space):
        all_d = list(small_space)
        assert len(all_d) == len(small_space)
        assert len(set(all_d)) == len(all_d)

    def test_contains(self, small_space):
        assert Deployment("c5.xlarge", 5) in small_space
        assert Deployment("c5.xlarge", 999) not in small_space
        assert Deployment("m5.xlarge", 1) not in small_space

    def test_explicit_counts(self, small_catalog):
        space = DeploymentSpace(small_catalog, counts=[1, 4, 16])
        assert space.counts == [1, 4, 16]
        assert len(space) == 9

    def test_counts_deduplicated_sorted(self, small_catalog):
        space = DeploymentSpace(small_catalog, counts=[4, 1, 4])
        assert space.counts == [1, 4]

    def test_bad_counts_rejected(self, small_catalog):
        with pytest.raises(ValueError):
            DeploymentSpace(small_catalog, counts=[])
        with pytest.raises(ValueError):
            DeploymentSpace(small_catalog, counts=[0, 1])
        with pytest.raises(ValueError):
            DeploymentSpace(small_catalog, max_count=0)

    def test_deployments_for_type(self, small_space):
        ds = small_space.deployments_for_type("c5.4xlarge")
        assert all(d.instance_type == "c5.4xlarge" for d in ds)
        assert [d.count for d in ds] == small_space.counts

    def test_deployments_for_unknown_type_raises(self, small_space):
        with pytest.raises(KeyError):
            small_space.deployments_for_type("m5.large")

    def test_filtered(self, small_space):
        singles = small_space.filtered(lambda d: d.count == 1)
        assert len(singles) == 3


class TestPricing:
    def test_hourly_price(self, small_space, small_catalog):
        d = Deployment("c5.4xlarge", 10)
        assert small_space.hourly_price(d) == pytest.approx(
            small_catalog["c5.4xlarge"].hourly_price * 10
        )


class TestEncoding:
    def test_encode_shape(self, small_space):
        x = small_space.encode(Deployment("c5.4xlarge", 8))
        assert x.shape == (2,)

    def test_type_index_stable(self, small_space):
        assert small_space.type_index("c5.xlarge") == 0
        assert small_space.type_index("p2.xlarge") == 2

    def test_count_encoded_log2(self, small_space):
        x = small_space.encode(Deployment("c5.xlarge", 8))
        assert x[1] == pytest.approx(3.0)

    def test_encode_many_stacks(self, small_space):
        X = small_space.encode_many([
            Deployment("c5.xlarge", 1), Deployment("p2.xlarge", 4),
        ])
        np.testing.assert_allclose(X, [[0, 0], [2, 2]])

    def test_encode_many_empty(self, small_space):
        assert small_space.encode_many([]).shape == (0, 2)

    def test_encode_unknown_type_raises(self, small_space):
        with pytest.raises(KeyError, match="not in space"):
            small_space.encode(Deployment("m5.large", 1))


class TestRestriction:
    def test_restrict_types(self, small_space):
        sub = small_space.restrict_types(["c5.4xlarge"])
        assert sub.instance_types == ["c5.4xlarge"]
        assert sub.counts == small_space.counts


class TestPerTypeMax:
    def test_caps_counts_per_type(self, small_catalog):
        space = DeploymentSpace(
            small_catalog, max_count=20,
            per_type_max={"p2.xlarge": 5},
        )
        assert len(space.deployments_for_type("p2.xlarge")) == 5
        assert len(space.deployments_for_type("c5.xlarge")) == 20
        assert Deployment("p2.xlarge", 6) not in space
        assert Deployment("c5.xlarge", 6) in space

    def test_len_accounts_for_caps(self, small_catalog):
        space = DeploymentSpace(
            small_catalog, max_count=10,
            per_type_max={"p2.xlarge": 4, "c5.xlarge": 2},
        )
        assert len(space) == 2 + 10 + 4

    def test_iteration_respects_caps(self, small_catalog):
        space = DeploymentSpace(
            small_catalog, max_count=10, per_type_max={"p2.xlarge": 3}
        )
        gpu_counts = [
            d.count for d in space if d.instance_type == "p2.xlarge"
        ]
        assert gpu_counts == [1, 2, 3]

    def test_unknown_type_rejected(self, small_catalog):
        with pytest.raises(KeyError, match="unknown type"):
            DeploymentSpace(
                small_catalog, per_type_max={"m5.large": 5}
            )

    def test_bad_cap_rejected(self, small_catalog):
        with pytest.raises(ValueError, match="per_type_max"):
            DeploymentSpace(
                small_catalog, per_type_max={"c5.xlarge": 0}
            )

    def test_restrict_types_keeps_caps(self, small_catalog):
        space = DeploymentSpace(
            small_catalog, max_count=10, per_type_max={"p2.xlarge": 3}
        )
        sub = space.restrict_types(["p2.xlarge"])
        assert len(sub) == 3

    def test_paper_testbed_limits(self, catalog):
        """The paper's testbed: 100 CPU / 50 GPU instances."""
        caps = {
            t.name: (50 if t.is_gpu else 100) for t in catalog
        }
        space = DeploymentSpace(catalog, max_count=100, per_type_max=caps)
        assert Deployment("c5.xlarge", 100) in space
        assert Deployment("p3.16xlarge", 51) not in space
