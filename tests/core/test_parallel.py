"""ParallelHeterBO and Profiler.profile_batch."""

import pytest

from repro.cloud.provider import AccountLimits, SimulatedCloud
from repro.core.engine import SearchContext
from repro.core.heterbo import HeterBO
from repro.core.parallel import ParallelHeterBO
from repro.core.scenarios import Scenario
from repro.core.search_space import Deployment


@pytest.fixture
def make_context(small_space, profiler, charrnn_job):
    def _make(scenario):
        return SearchContext(
            space=small_space,
            profiler=profiler,
            job=charrnn_job,
            scenario=scenario,
        )
    return _make


class TestProfileBatch:
    def test_empty_batch(self, profiler, charrnn_job):
        assert profiler.profile_batch([], charrnn_job) == []

    def test_results_in_input_order(self, profiler, charrnn_job):
        results = profiler.profile_batch(
            [("c5.4xlarge", 4), ("c5.xlarge", 1), ("p2.xlarge", 2)],
            charrnn_job,
        )
        assert [(r.instance_type, r.count) for r in results] == [
            ("c5.4xlarge", 4), ("c5.xlarge", 1), ("p2.xlarge", 2),
        ]

    def test_wallclock_is_longest_probe(self, profiler, charrnn_job):
        profiler.profile_batch(
            [("c5.xlarge", 1), ("c5.4xlarge", 10)], charrnn_job
        )
        # 10-node window = 600 + 3*60 = 780s; single node 600s
        assert profiler.cloud.elapsed() == pytest.approx(
            profiler.profiling_seconds(10)
        )

    def test_spend_is_sum_of_probes(self, profiler, charrnn_job):
        results = profiler.profile_batch(
            [("c5.xlarge", 1), ("c5.4xlarge", 4)], charrnn_job
        )
        assert profiler.cloud.total_spend("profiling") == pytest.approx(
            sum(r.dollars for r in results)
        )

    def test_batch_matches_sequential_measurements(
        self, small_catalog, simulator, charrnn_job
    ):
        """Same deployment, same seed: batched and sequential probes
        measure the same speed (noise keyed by deployment, not order)."""
        from repro.cloud.provider import SimulatedCloud
        from repro.profiling.profiler import Profiler
        from repro.sim.noise import NoiseModel

        seq = Profiler(
            SimulatedCloud(small_catalog), simulator,
            noise=NoiseModel(sigma=0.03, seed=5),
        )
        par = Profiler(
            SimulatedCloud(small_catalog), simulator,
            noise=NoiseModel(sigma=0.03, seed=5),
        )
        a = seq.profile("c5.4xlarge", 4, charrnn_job)
        [b] = par.profile_batch([("c5.4xlarge", 4)], charrnn_job)
        assert a.speed == pytest.approx(b.speed)
        assert a.dollars == pytest.approx(b.dollars)

    def test_batch_over_capacity_raises(self, profiler, charrnn_job):
        with pytest.raises(RuntimeError, match="limit"):
            profiler.profile_batch(
                [("c5.xlarge", 60), ("c5.4xlarge", 60)], charrnn_job
            )

    def test_failed_member_does_not_poison_batch(self, profiler):
        from repro.sim.comm import CommProtocol
        from repro.sim.datasets import get_dataset
        from repro.sim.platforms import get_platform
        from repro.sim.throughput import TrainingJob
        from repro.sim.zoo import get_model

        oom_job = TrainingJob(
            model=get_model("zero-20b"),
            dataset=get_dataset("bert-corpus"),
            platform=get_platform("tensorflow"),
            protocol=CommProtocol.RING_ALLREDUCE,
        )
        results = profiler.profile_batch(
            [("p2.xlarge", 1), ("p2.xlarge", 2)], oom_job
        )
        assert all(r.failed for r in results)
        assert all(r.dollars > 0 for r in results)


class TestParallelHeterBO:
    def test_validation(self):
        with pytest.raises(ValueError, match="batch_size"):
            ParallelHeterBO(batch_size=0)

    def test_initial_design_is_one_wave(self, make_context):
        context = make_context(Scenario.fastest())
        result = ParallelHeterBO(seed=1, batch_size=3).search(context)
        initial = [t for t in result.trials if t.note == "initial"]
        assert len(initial) == 3
        # all initial probes share the same post-batch elapsed time
        assert len({t.elapsed_seconds for t in initial}) == 1

    def test_profiling_wallclock_beats_sequential(
        self, small_catalog, simulator, charrnn_job, small_space
    ):
        from repro.cloud.provider import SimulatedCloud
        from repro.profiling.profiler import Profiler
        from repro.sim.noise import NoiseModel

        def run(strategy):
            cloud = SimulatedCloud(small_catalog)
            profiler = Profiler(
                cloud, simulator, noise=NoiseModel(sigma=0.03, seed=2)
            )
            context = SearchContext(
                space=small_space, profiler=profiler,
                job=charrnn_job, scenario=Scenario.fastest(),
            )
            return strategy.search(context)

        seq = run(HeterBO(seed=2))
        par = run(ParallelHeterBO(seed=2, batch_size=3))
        assert par.profile_seconds < seq.profile_seconds

    def test_budget_guarantee_holds(self, make_context):
        budget = 60.0
        context = make_context(Scenario.fastest_within(budget))
        result = ParallelHeterBO(seed=3, batch_size=3).search(context)
        assert result.profile_dollars <= budget
        if result.best is not None:
            train = context.train_dollars(
                result.best, result.best_measured_speed
            )
            assert result.profile_dollars + train <= budget * 1.01

    def test_batch_diversity_no_near_duplicates(self, make_context):
        context = make_context(Scenario.fastest())
        result = ParallelHeterBO(seed=4, batch_size=4).search(context)
        # group trials by recorded elapsed time = one batch each
        batches: dict[float, list] = {}
        for t in result.trials:
            if t.note == "explore":
                batches.setdefault(t.elapsed_seconds, []).append(t)
        import numpy as np
        for members in batches.values():
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    if a.deployment.instance_type == b.deployment.instance_type:
                        gap = abs(
                            np.log2(a.deployment.count)
                            - np.log2(b.deployment.count)
                        )
                        assert gap >= 0.5


class _PerTypeCaps(AccountLimits):
    """Limits that differ across two CPU types — the shape that exposed
    the mixed-batch capacity bug (summed class demand checked against
    whichever member type happened to come first)."""

    def cap_for(self, itype):
        return 4 if itype.name == "c5.xlarge" else 100


class TestMixedTypeBatchCapacity:
    @pytest.fixture
    def tight_world(self, small_catalog, simulator, charrnn_job):
        from repro.core.search_space import DeploymentSpace
        from repro.profiling.profiler import Profiler
        from repro.sim.noise import NoiseModel

        cloud = SimulatedCloud(small_catalog, limits=_PerTypeCaps())
        profiler = Profiler(
            cloud, simulator, noise=NoiseModel(sigma=0.03, seed=0)
        )
        context = SearchContext(
            space=DeploymentSpace(small_catalog, max_count=20),
            profiler=profiler,
            job=charrnn_job,
            scenario=Scenario.fastest(),
        )
        return context, ParallelHeterBO(batch_size=2)

    def test_rejects_member_over_its_own_type_cap(self, tight_world):
        """8x c5.4xlarge then 2x c5.xlarge: the summed CPU demand (10)
        fits the first member's cap (100), but the c5.xlarge launch
        itself cannot fit its own cap of 4 once 8 same-class instances
        are up.  The old check admitted this batch; launching it raised
        InsufficientCapacityError mid-batch."""
        context, strategy = tight_world
        batch = [Deployment("c5.4xlarge", 8)]
        extra = Deployment("c5.xlarge", 2)
        assert not strategy._capacity_allows(context, batch, extra)
        # the predicate must agree with the real launcher
        with pytest.raises(RuntimeError, match="limit"):
            context.profiler.profile_batch(
                [("c5.4xlarge", 8), ("c5.xlarge", 2)], context.job
            )

    def test_admits_batch_the_old_check_wrongly_rejected(self, tight_world):
        """2x c5.xlarge then 8x c5.4xlarge: same members, other order.
        The summed CPU demand (10) exceeds the *first* member's cap of
        4, so the old check rejected it — yet every launch fits."""
        context, strategy = tight_world
        batch = [Deployment("c5.xlarge", 2)]
        extra = Deployment("c5.4xlarge", 8)
        assert strategy._capacity_allows(context, batch, extra)
        results = context.profiler.profile_batch(
            [("c5.xlarge", 2), ("c5.4xlarge", 8)], context.job
        )
        assert [r.failed for r in results] == [False, False]

    def test_classes_accumulate_independently(self, tight_world):
        """GPU members never eat into the CPU allowance and vice versa."""
        context, strategy = tight_world
        batch = [Deployment("c5.4xlarge", 95)]
        assert strategy._capacity_allows(
            context, batch, Deployment("p2.xlarge", 40)
        )
        assert not strategy._capacity_allows(
            context, batch, Deployment("c5.4xlarge", 6)
        )
