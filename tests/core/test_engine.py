"""GPSearchEngine + SearchContext: objective transforms and the loop."""

import numpy as np
import pytest

from repro.core.engine import GPSearchEngine, SearchContext, SearchStrategy
from repro.core.scenarios import Objective, Scenario
from repro.core.search_space import Deployment
from repro.profiling.profiler import ProfileResult


@pytest.fixture
def context(small_space, profiler, charrnn_job):
    return SearchContext(
        space=small_space,
        profiler=profiler,
        job=charrnn_job,
        scenario=Scenario.fastest(),
    )


def fake_result(itype="c5.4xlarge", count=1, speed=20.0):
    return ProfileResult(
        instance_type=itype, count=count, speed=speed,
        seconds=600.0, dollars=0.2,
        iteration_speeds=(speed,), extensions=0, failed=speed == 0.0,
    )


class TestSearchContext:
    def test_train_seconds(self, context):
        d = Deployment("c5.4xlarge", 4)
        assert context.train_seconds(d, 100.0) == pytest.approx(
            context.total_samples / 100.0
        )

    def test_train_dollars(self, context, small_catalog):
        d = Deployment("c5.4xlarge", 4)
        seconds = context.train_seconds(d, 100.0)
        expected = seconds * small_catalog["c5.4xlarge"].hourly_price * 4 / 3600
        assert context.train_dollars(d, 100.0) == pytest.approx(expected)

    def test_objective_value_time_vs_cost(self, context):
        d = Deployment("c5.4xlarge", 4)
        assert context.objective_value(
            d, 10.0, Objective.TIME
        ) == context.train_seconds(d, 10.0)
        assert context.objective_value(
            d, 10.0, Objective.COST
        ) == context.train_dollars(d, 10.0)

    def test_nonpositive_speed_rejected(self, context):
        with pytest.raises(ValueError, match="speed"):
            context.train_seconds(Deployment("c5.xlarge", 1), 0.0)

    def test_probe_costs_delegate_to_profiler(self, context):
        d = Deployment("c5.4xlarge", 7)
        assert context.probe_seconds(d) == context.profiler.profiling_seconds(7)
        assert context.probe_dollars(d) == pytest.approx(
            context.profiler.profiling_dollars("c5.4xlarge", 7)
        )

    def test_penalty_resource_switches(
        self, small_space, profiler, charrnn_job
    ):
        d = Deployment("c5.4xlarge", 4)
        time_ctx = SearchContext(
            small_space, profiler, charrnn_job, Scenario.fastest()
        )
        cost_ctx = SearchContext(
            small_space, profiler, charrnn_job, Scenario.fastest_within(100.0)
        )
        assert time_ctx.probe_penalty(d) == time_ctx.probe_seconds(d)
        assert cost_ctx.probe_penalty(d) == cost_ctx.probe_dollars(d)


class TestEngineObservations:
    def test_add_and_visit(self, context):
        engine = GPSearchEngine(context)
        d = engine.add_observation(fake_result())
        assert engine.visited(d)
        assert engine.n_observations == 1

    def test_successful_observations_exclude_failures(self, context):
        engine = GPSearchEngine(context)
        engine.add_observation(fake_result(speed=10.0))
        engine.add_observation(fake_result(count=2, speed=0.0))
        assert len(engine.successful_observations()) == 1

    def test_best_incumbent_none_when_all_failed(self, context):
        engine = GPSearchEngine(context)
        engine.add_observation(fake_result(speed=0.0))
        assert engine.best_incumbent() is None

    def test_best_incumbent_minimises_objective(self, context):
        engine = GPSearchEngine(context)
        engine.add_observation(fake_result(count=1, speed=10.0))
        engine.add_observation(fake_result(count=2, speed=30.0))
        best, speed, _ = engine.best_incumbent()
        assert best.count == 2  # faster = less time objective

    def test_incumbent_filter(self, context):
        engine = GPSearchEngine(context)
        engine.add_observation(fake_result(count=1, speed=10.0))
        engine.add_observation(fake_result(count=2, speed=30.0))
        best, _, _ = engine.best_incumbent(
            incumbent_filter=lambda d, y: d.count == 1
        )
        assert best.count == 1

    def test_fit_before_observations_raises(self, context):
        with pytest.raises(RuntimeError, match="no observations"):
            GPSearchEngine(context).fit()

    def test_predict_before_fit_raises(self, context):
        engine = GPSearchEngine(context)
        engine.add_observation(fake_result())
        with pytest.raises(RuntimeError, match="fit"):
            engine.predict_log2_speed([Deployment("c5.xlarge", 1)])


class TestEngineSurrogate:
    def test_prediction_tracks_observations(self, context):
        engine = GPSearchEngine(context)
        for count, speed in [(1, 20.0), (2, 38.0), (4, 70.0)]:
            engine.add_observation(fake_result(count=count, speed=speed))
        engine.fit()
        mu, _ = engine.predict_log2_speed([Deployment("c5.4xlarge", 2)])
        assert mu[0] == pytest.approx(np.log2(38.0), abs=0.3)

    def test_ei_zero_without_incumbent(self, context):
        engine = GPSearchEngine(context)
        engine.add_observation(fake_result(speed=0.0))
        engine.fit()
        ei = engine.objective_ei([Deployment("c5.xlarge", 2)])
        np.testing.assert_array_equal(ei, [0.0])

    def test_ei_positive_for_promising_region(self, context):
        engine = GPSearchEngine(context)
        for count, speed in [(1, 20.0), (2, 38.0)]:
            engine.add_observation(fake_result(count=count, speed=speed))
        engine.fit()
        ei = engine.objective_ei([Deployment("c5.4xlarge", 8)])
        assert ei[0] > 0.0

    def test_improvement_probability_in_unit_interval(self, context):
        engine = GPSearchEngine(context)
        for count, speed in [(1, 20.0), (2, 38.0), (8, 90.0)]:
            engine.add_observation(fake_result(count=count, speed=speed))
        engine.fit()
        cands = [Deployment("c5.4xlarge", n) for n in (3, 4, 16)]
        poi = engine.improvement_probability(cands)
        assert ((poi >= 0) & (poi <= 1)).all()

    def test_dynamic_floor_for_failures(self, context):
        """A failure enters the GP a bounded distance below successes,
        not at the absolute floor."""
        engine = GPSearchEngine(context)
        engine.add_observation(fake_result(count=1, speed=64.0))
        engine.add_observation(
            fake_result(itype="c5.xlarge", count=1, speed=0.0)
        )
        engine.fit()
        mu, _ = engine.predict_log2_speed([Deployment("c5.xlarge", 1)])
        assert mu[0] > np.log2(1e-3)


class _GreedyStrategy(SearchStrategy):
    """Minimal concrete strategy for loop tests."""

    name = "greedy-test"

    def initial_deployments(self, context):
        return [Deployment("c5.4xlarge", 1), Deployment("c5.4xlarge", 2)]

    def score_candidates(self, context, engine, candidates):
        return engine.objective_ei(candidates)

    def should_stop(self, context, engine, candidates, scores):
        if engine.n_observations >= 4:
            return "enough"
        return None


class TestLoop:
    def test_loop_respects_max_steps(self, context):
        strategy = _GreedyStrategy(max_steps=3)
        result = strategy.search(context)
        assert result.n_steps == 3

    def test_loop_stop_reason_from_hook(self, context):
        strategy = _GreedyStrategy(max_steps=10)
        result = strategy.search(context)
        assert result.stop_reason == "enough"
        assert result.n_steps == 4

    def test_trials_have_cumulative_accounting(self, context):
        result = _GreedyStrategy(max_steps=4).search(context)
        spends = [t.spent_dollars for t in result.trials]
        assert spends == sorted(spends)
        assert result.profile_dollars == pytest.approx(spends[-1])

    def test_no_deployment_probed_twice(self, context):
        result = _GreedyStrategy(max_steps=6).search(context)
        probed = [t.deployment for t in result.trials]
        assert len(probed) == len(set(probed))

    def test_validation(self):
        with pytest.raises(ValueError, match="max_steps"):
            _GreedyStrategy(max_steps=0)


class TestUCBScores:
    def test_ucb_shape_and_nonnegative(self, context):
        engine = GPSearchEngine(context)
        for count, speed in [(1, 20.0), (2, 38.0), (4, 70.0)]:
            engine.add_observation(fake_result(count=count, speed=speed))
        engine.fit()
        cands = [Deployment("c5.4xlarge", n) for n in (3, 8, 16)]
        scores = engine.objective_ucb(cands)
        assert scores.shape == (3,)
        assert (scores >= 0).all()

    def test_ucb_prefers_predicted_better_objective(self, context):
        engine = GPSearchEngine(context)
        for count, speed in [(1, 20.0), (2, 38.0), (4, 70.0)]:
            engine.add_observation(fake_result(count=count, speed=speed))
        engine.fit()
        # n=8 extrapolates the rising curve; n=1 neighborhood is known slow
        fast, slow = Deployment("c5.4xlarge", 8), Deployment("c5.4xlarge", 1)
        scores = engine.objective_ucb([fast, slow])
        assert scores[0] > scores[1]

    def test_ucb_empty_candidates(self, context):
        engine = GPSearchEngine(context)
        engine.add_observation(fake_result())
        engine.fit()
        assert engine.objective_ucb([]).shape == (0,)


class TestConsumedResource:
    def test_scenario1_consumes_time(self, small_space, profiler,
                                     charrnn_job):
        ctx = SearchContext(
            small_space, profiler, charrnn_job, Scenario.fastest()
        )
        profiler.profile("c5.xlarge", 1, charrnn_job)
        assert ctx.consumed() == ctx.elapsed_seconds()

    def test_scenario2_consumes_time(self, small_space, profiler,
                                     charrnn_job):
        ctx = SearchContext(
            small_space, profiler, charrnn_job,
            Scenario.cheapest_within(3600.0),
        )
        profiler.profile("c5.xlarge", 1, charrnn_job)
        assert ctx.consumed() == ctx.elapsed_seconds()

    def test_scenario3_consumes_dollars(self, small_space, profiler,
                                        charrnn_job):
        ctx = SearchContext(
            small_space, profiler, charrnn_job,
            Scenario.fastest_within(100.0),
        )
        profiler.profile("c5.xlarge", 1, charrnn_job)
        assert ctx.consumed() == ctx.spent_dollars()
