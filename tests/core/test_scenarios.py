"""Scenario formulation (Eqs. 1-3)."""

import pytest

from repro.core.scenarios import Objective, Scenario, ScenarioKind


class TestFactories:
    def test_scenario1(self):
        s = Scenario.fastest()
        assert s.kind is ScenarioKind.MIN_TIME_UNBOUNDED
        assert not s.is_constrained
        assert s.objective is Objective.TIME
        assert s.constraint_limit is None

    def test_scenario2(self):
        s = Scenario.cheapest_within(6 * 3600.0)
        assert s.kind is ScenarioKind.MIN_COST_DEADLINE
        assert s.is_constrained
        assert s.objective is Objective.COST
        assert s.constraint_limit == 6 * 3600.0

    def test_scenario3(self):
        s = Scenario.fastest_within(100.0)
        assert s.kind is ScenarioKind.MIN_TIME_BUDGET
        assert s.objective is Objective.TIME
        assert s.constraint_limit == 100.0


class TestPenaltyResource:
    def test_scenario1_penalises_time(self):
        assert Scenario.fastest().penalty_resource is Objective.TIME

    def test_scenario2_penalises_time(self):
        assert (
            Scenario.cheapest_within(3600.0).penalty_resource
            is Objective.TIME
        )

    def test_scenario3_penalises_money(self):
        assert (
            Scenario.fastest_within(50.0).penalty_resource
            is Objective.COST
        )


class TestValidation:
    def test_scenario1_rejects_constraints(self):
        with pytest.raises(ValueError, match="no constraints"):
            Scenario(ScenarioKind.MIN_TIME_UNBOUNDED, deadline_seconds=10.0)

    def test_scenario2_needs_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            Scenario(ScenarioKind.MIN_COST_DEADLINE)

    def test_scenario2_rejects_zero_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            Scenario.cheapest_within(0.0)

    def test_scenario2_rejects_budget(self):
        with pytest.raises(ValueError, match="budget"):
            Scenario(
                ScenarioKind.MIN_COST_DEADLINE,
                deadline_seconds=10.0,
                budget_dollars=5.0,
            )

    def test_scenario3_needs_budget(self):
        with pytest.raises(ValueError, match="budget"):
            Scenario(ScenarioKind.MIN_TIME_BUDGET)

    def test_scenario3_rejects_negative_budget(self):
        with pytest.raises(ValueError, match="budget"):
            Scenario.fastest_within(-5.0)

    def test_scenario3_rejects_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            Scenario(
                ScenarioKind.MIN_TIME_BUDGET,
                budget_dollars=5.0,
                deadline_seconds=10.0,
            )


class TestDescribe:
    def test_descriptions_are_distinct_and_informative(self):
        d1 = Scenario.fastest().describe()
        d2 = Scenario.cheapest_within(7200.0).describe()
        d3 = Scenario.fastest_within(42.0).describe()
        assert "scenario-1" in d1
        assert "2.00 h" in d2
        assert "$42.00" in d3
        assert len({d1, d2, d3}) == 3
