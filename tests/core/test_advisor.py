"""OfflineAdvisor: re-planning from recorded traces."""

import pytest

from repro.core.advisor import OfflineAdvisor, Recommendation
from repro.core.engine import SearchContext
from repro.core.heterbo import HeterBO
from repro.core.result import SearchResult, TrialRecord
from repro.core.scenarios import Scenario
from repro.core.search_space import Deployment


def trace_with(measurements, scenario=None):
    """Build a synthetic SearchResult from (type, count, speed) triples."""
    trials = tuple(
        TrialRecord(
            step=i + 1,
            deployment=Deployment(itype, count),
            measured_speed=speed,
            profile_seconds=600.0,
            profile_dollars=0.5,
            elapsed_seconds=600.0 * (i + 1),
            spent_dollars=0.5 * (i + 1),
            failure_reason="" if speed > 0 else "probe failed",
        )
        for i, (itype, count, speed) in enumerate(measurements)
    )
    best = max(
        (t for t in trials if not t.failed),
        key=lambda t: t.measured_speed,
        default=None,
    )
    return SearchResult(
        strategy="heterbo",
        scenario=scenario or Scenario.fastest(),
        trials=trials,
        best=best.deployment if best else None,
        best_measured_speed=best.measured_speed if best else 0.0,
        profile_seconds=600.0 * len(trials),
        profile_dollars=0.5 * len(trials),
        stop_reason="t",
    )


@pytest.fixture
def advisor(small_space):
    trace = trace_with([
        ("c5.xlarge", 1, 5.0),
        ("c5.4xlarge", 4, 70.0),
        ("c5.4xlarge", 12, 128.0),
        ("p2.xlarge", 1, 24.0),
    ])
    return OfflineAdvisor(trace, small_space, total_samples=800_000)


class TestOptions:
    def test_sorted_by_time(self, advisor):
        opts = advisor.options()
        times = [o.train_seconds for o in opts]
        assert times == sorted(times)

    def test_projection_arithmetic(self, advisor, small_space):
        opts = {o.deployment: o for o in advisor.options()}
        o = opts[Deployment("c5.4xlarge", 12)]
        assert o.train_seconds == pytest.approx(800_000 / 128.0)
        assert o.train_dollars == pytest.approx(
            o.train_seconds * small_space.hourly_price(o.deployment) / 3600
        )

    def test_failed_probes_excluded(self, small_space):
        trace = trace_with([("c5.xlarge", 1, 0.0), ("c5.xlarge", 2, 10.0)])
        advisor = OfflineAdvisor(trace, small_space, total_samples=1000)
        assert len(advisor.options()) == 1

    def test_latest_measurement_wins(self, small_space):
        trace = trace_with([
            ("c5.xlarge", 2, 10.0), ("c5.xlarge", 2, 12.0),
        ])
        advisor = OfflineAdvisor(trace, small_space, total_samples=1000)
        [only] = advisor.options()
        assert only.measured_speed == 12.0

    def test_bad_samples_rejected(self, small_space):
        with pytest.raises(ValueError, match="total_samples"):
            OfflineAdvisor(trace_with([]), small_space, total_samples=0)


class TestRecommend:
    def test_unconstrained_picks_fastest(self, advisor):
        rec = advisor.recommend(Scenario.fastest())
        assert rec.deployment == Deployment("c5.4xlarge", 12)

    def test_budget_reranks(self, advisor):
        # 12x c5.4xlarge costs ~$14.2; a tight budget forces cheaper
        rec = advisor.recommend(Scenario.fastest_within(10.0))
        assert rec is not None
        assert rec.train_dollars <= 10.0
        assert rec.deployment != Deployment("c5.4xlarge", 12)

    def test_deadline_picks_cheapest_feasible(self, advisor):
        rec = advisor.recommend(Scenario.cheapest_within(4 * 3600.0))
        assert rec is not None
        assert rec.train_seconds <= 4 * 3600.0
        feasible = [
            o for o in advisor.options()
            if o.train_seconds <= 4 * 3600.0
        ]
        assert rec.train_dollars == min(o.train_dollars for o in feasible)

    def test_impossible_constraint_returns_none(self, advisor):
        assert advisor.recommend(Scenario.fastest_within(0.001)) is None


class TestSuggestProbes:
    def test_suggestions_are_unmeasured(self, advisor):
        suggestions = advisor.suggest_probes(3)
        measured = {o.deployment for o in advisor.options()}
        assert len(suggestions) == 3
        assert not set(suggestions) & measured

    def test_k_validated(self, advisor):
        with pytest.raises(ValueError, match="k"):
            advisor.suggest_probes(0)

    def test_empty_trace_raises(self, small_space):
        advisor = OfflineAdvisor(
            trace_with([("c5.xlarge", 1, 0.0)]), small_space, 1000
        )
        with pytest.raises(RuntimeError, match="no successful"):
            advisor.suggest_probes(1)

    def test_suggestions_favor_promising_region(self, advisor):
        """With a rising measured curve on c5.4xlarge, the top
        suggestions cluster near/beyond the measured frontier rather
        than at the known-slow single nodes."""
        suggestions = advisor.suggest_probes(3)
        assert any(
            d.instance_type == "c5.4xlarge" and d.count > 4
            for d in suggestions
        )


class TestRoundTripIntegration:
    def test_advisor_from_serialized_live_trace(
        self, small_space, profiler, charrnn_job, tmp_path
    ):
        from repro.io import load_report, save_report
        from repro.core.result import DeploymentReport

        context = SearchContext(
            space=small_space, profiler=profiler,
            job=charrnn_job, scenario=Scenario.fastest(),
        )
        result = HeterBO(seed=0).search(context)
        path = save_report(
            DeploymentReport(search=result), tmp_path / "trace.json"
        )
        reloaded = load_report(path)
        advisor = OfflineAdvisor(
            reloaded.search, small_space, charrnn_job.total_samples
        )
        rec = advisor.recommend(Scenario.fastest())
        assert rec is not None
        assert rec.deployment == result.best
