"""TrialRecord / SearchResult / DeploymentReport semantics."""

import pytest

from repro.core.result import DeploymentReport, SearchResult, TrialRecord
from repro.core.scenarios import Scenario
from repro.core.search_space import Deployment


def trial(step=1, itype="c5.xlarge", count=1, speed=10.0, note="",
          failure_reason=""):
    if not failure_reason and not speed > 0:
        failure_reason = "probe failed"
    return TrialRecord(
        step=step,
        deployment=Deployment(itype, count),
        measured_speed=speed,
        profile_seconds=600.0,
        profile_dollars=0.03,
        elapsed_seconds=600.0 * step,
        spent_dollars=0.03 * step,
        note=note,
        failure_reason=failure_reason,
    )


def search(scenario=None, best=Deployment("c5.xlarge", 4), speed=40.0,
           trials=(), strategy="heterbo"):
    return SearchResult(
        strategy=strategy,
        scenario=scenario or Scenario.fastest(),
        trials=tuple(trials),
        best=best,
        best_measured_speed=speed,
        profile_seconds=1200.0,
        profile_dollars=5.0,
        stop_reason="test",
    )


class TestTrialRecord:
    def test_failed_property(self):
        assert trial(speed=0.0, failure_reason="capacity").failed
        assert not trial(speed=1.0).failed

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError, match="step"):
            trial(step=0)

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError, match="speed"):
            trial(speed=-1.0)

    def test_failure_reason_with_measurement_rejected(self):
        with pytest.raises(ValueError, match="cannot carry"):
            trial(speed=5.0, failure_reason="capacity")

    def test_zero_speed_without_reason_rejected(self):
        with pytest.raises(ValueError, match="failure_reason"):
            TrialRecord(
                step=1, deployment=Deployment("c5.xlarge", 1),
                measured_speed=0.0, profile_seconds=600.0,
                profile_dollars=0.03, elapsed_seconds=600.0,
                spent_dollars=0.03,
            )


class TestSearchResult:
    def test_best_requires_positive_speed(self):
        with pytest.raises(ValueError, match="positive measured speed"):
            search(speed=0.0)

    def test_no_best_allowed(self):
        assert search(best=None, speed=0.0).best is None

    def test_n_steps(self):
        assert search(trials=[trial(1), trial(2)]).n_steps == 2

    def test_trials_for_type(self):
        s = search(trials=[
            trial(1, "c5.xlarge"), trial(2, "p2.xlarge"),
            trial(3, "c5.xlarge"),
        ])
        assert len(s.trials_for_type("c5.xlarge")) == 2

    def test_summary_contains_key_facts(self):
        text = search().summary()
        assert "heterbo" in text
        assert "4x c5.xlarge" in text


class TestDeploymentReport:
    def test_totals_sum_profile_and_train(self):
        r = DeploymentReport(
            search=search(), train_seconds=3600.0, train_dollars=10.0,
            trained=True,
        )
        assert r.total_seconds == pytest.approx(1200.0 + 3600.0)
        assert r.total_dollars == pytest.approx(15.0)

    def test_untrained_never_meets_constraint(self):
        r = DeploymentReport(search=search())
        assert not r.constraint_met

    def test_scenario1_always_met_when_trained(self):
        r = DeploymentReport(search=search(), trained=True)
        assert r.constraint_met

    def test_deadline_met_and_missed(self):
        s = search(scenario=Scenario.cheapest_within(2 * 3600.0))
        met = DeploymentReport(search=s, train_seconds=3600.0, trained=True)
        missed = DeploymentReport(
            search=s, train_seconds=3 * 3600.0, trained=True
        )
        assert met.constraint_met
        assert not missed.constraint_met

    def test_budget_met_and_missed(self):
        s = search(scenario=Scenario.fastest_within(20.0))
        met = DeploymentReport(search=s, train_dollars=10.0, trained=True)
        missed = DeploymentReport(search=s, train_dollars=16.0, trained=True)
        assert met.constraint_met
        assert not missed.constraint_met

    def test_objective_value_by_scenario(self):
        time_r = DeploymentReport(
            search=search(), train_seconds=100.0, trained=True
        )
        assert time_r.objective_value() == time_r.total_seconds
        cost_r = DeploymentReport(
            search=search(scenario=Scenario.cheapest_within(1e6)),
            train_dollars=3.0,
            trained=True,
        )
        assert cost_r.objective_value() == cost_r.total_dollars

    def test_summary_mentions_constraint(self):
        r = DeploymentReport(search=search(), trained=True)
        assert "constraint met" in r.summary()
