"""HeterBO: initial design, cost-aware acquisition, guarantees, prior."""

import pytest

from repro.core.engine import SearchContext
from repro.core.heterbo import HeterBO
from repro.core.scenarios import Scenario
from repro.core.search_space import Deployment


@pytest.fixture
def make_context(small_space, profiler, charrnn_job):
    def _make(scenario):
        return SearchContext(
            space=small_space,
            profiler=profiler,
            job=charrnn_job,
            scenario=scenario,
        )
    return _make


class TestConstruction:
    def test_defaults(self):
        h = HeterBO()
        assert h.cost_aware and h.use_concave_prior and h.protective_stop

    def test_validation(self):
        with pytest.raises(ValueError, match="ei_threshold"):
            HeterBO(ei_threshold=-1.0)
        with pytest.raises(ValueError, match="min_poi"):
            HeterBO(min_poi=1.0)
        with pytest.raises(ValueError, match="reserve_margin"):
            HeterBO(reserve_margin=0.9)


class TestInitialDesign:
    def test_single_node_per_type_cheapest_first(self, make_context):
        context = make_context(Scenario.fastest())
        initial = HeterBO().initial_deployments(context)
        assert all(d.count == 1 for d in initial)
        assert [d.instance_type for d in initial] == [
            "c5.xlarge", "c5.4xlarge", "p2.xlarge",
        ]

    def test_initial_probes_filtered_by_tiny_budget(self, make_context):
        """A budget below even a GPU single-node probe skips that probe."""
        context = make_context(Scenario.fastest_within(0.12))
        initial = HeterBO().initial_deployments(context)
        names = [d.instance_type for d in initial]
        assert "p2.xlarge" not in names  # 1x p2 probe costs $0.15
        assert "c5.xlarge" in names


class TestSearchBehaviour:
    def test_finds_near_optimal_scale_out(self, make_context):
        """On the concave Char-RNN curve the optimum is ~16-20 nodes of
        c5.4xlarge; HeterBO must land within 25% of the optimal speed."""
        context = make_context(Scenario.fastest())
        result = HeterBO(seed=1).search(context)
        sim = context.profiler.simulator
        catalog = context.space.catalog
        best_true = max(
            sim.true_speed(catalog[d.instance_type], d.count, context.job)
            for d in context.space
            if sim.is_feasible(catalog[d.instance_type], d.count, context.job)
        )
        chosen = result.best
        chosen_true = sim.true_speed(
            catalog[chosen.instance_type], chosen.count, context.job
        )
        assert chosen_true > 0.75 * best_true

    def test_trace_notes_initial_vs_explore(self, make_context):
        result = HeterBO(seed=1).search(make_context(Scenario.fastest()))
        notes = [t.note for t in result.trials]
        assert notes[:3] == ["initial"] * 3
        assert "explore" in notes[3:]

    def test_concave_prior_prunes_after_decline(self, make_context):
        context = make_context(Scenario.fastest())
        strategy = HeterBO(seed=1)
        strategy.search(context)
        # the Char-RNN curve declines within range for every type probed
        # deeply; at least one cap must be in force by the end
        assert strategy.prior.pruned_types()

    def test_ablation_flags_accepted(self, make_context):
        """Ablated variants still complete a search."""
        for kwargs in (
            dict(cost_aware=False),
            dict(use_concave_prior=False),
            dict(protective_stop=False),
        ):
            result = HeterBO(seed=1, **kwargs).search(
                make_context(Scenario.fastest())
            )
            assert result.best is not None


class TestGuarantees:
    @pytest.mark.parametrize("budget", [5.0, 20.0, 60.0])
    def test_profiling_never_exceeds_budget(self, make_context, budget):
        context = make_context(Scenario.fastest_within(budget))
        result = HeterBO(seed=2).search(context)
        assert result.profile_dollars <= budget

    def test_budget_selection_reserves_training(self, make_context):
        budget = 60.0
        context = make_context(Scenario.fastest_within(budget))
        result = HeterBO(seed=2).search(context)
        assert result.best is not None
        train = context.train_dollars(result.best, result.best_measured_speed)
        assert result.profile_dollars + train <= budget * 1.01

    def test_deadline_selection_reserves_time(self, make_context):
        deadline = 12 * 3600.0
        context = make_context(Scenario.cheapest_within(deadline))
        result = HeterBO(seed=2).search(context)
        assert result.best is not None
        train = context.train_seconds(result.best, result.best_measured_speed)
        assert result.profile_seconds + train <= deadline * 1.01

    def test_stop_reason_is_informative(self, make_context):
        result = HeterBO(seed=2).search(
            make_context(Scenario.fastest_within(3.0))
        )
        assert result.stop_reason  # non-empty, whatever branch fired


class TestAcquisitionVariants:
    def test_unknown_acquisition_rejected(self):
        with pytest.raises(ValueError, match="acquisition"):
            HeterBO(acquisition="thompson")

    def test_negative_kappa_rejected(self):
        with pytest.raises(ValueError, match="ucb_kappa"):
            HeterBO(acquisition="ucb", ucb_kappa=-1.0)

    @pytest.mark.parametrize("acq", ["ei", "poi", "ucb"])
    def test_all_acquisitions_complete_and_comply(self, make_context, acq):
        budget = 60.0
        context = make_context(Scenario.fastest_within(budget))
        result = HeterBO(seed=3, acquisition=acq).search(context)
        assert result.best is not None
        assert result.profile_dollars <= budget


class TestWarmStart:
    def _trace(self, context, seed=5):
        return HeterBO(seed=seed).search(context)

    def test_warm_anchors_probed_first(self, make_context):
        trace = self._trace(make_context(Scenario.fastest()))
        context = make_context(Scenario.fastest())
        strategy = HeterBO(seed=6, warm_start=trace, warm_top_k=2)
        initial = strategy.initial_deployments(context)
        best_two = sorted(
            (t for t in trace.trials if not t.failed),
            key=lambda t: t.measured_speed, reverse=True,
        )[:2]
        assert initial[:2] == [t.deployment for t in best_two]

    def test_warm_skips_known_type_singles(self, make_context):
        trace = self._trace(make_context(Scenario.fastest()))
        context = make_context(Scenario.fastest())
        strategy = HeterBO(seed=6, warm_start=trace)
        initial = strategy.initial_deployments(context)
        probed_types = {t.deployment.instance_type for t in trace.trials}
        singles = [d for d in initial if d.count == 1
                   and d not in strategy._warm_anchor_deployments(context)]
        assert all(
            d.instance_type not in probed_types for d in singles
        )

    def test_warm_top_k_validation(self):
        with pytest.raises(ValueError, match="warm_top_k"):
            HeterBO(warm_top_k=0)

    def test_warm_search_fewer_probes_same_quality(self, make_context):
        trace = self._trace(make_context(Scenario.fastest()))
        cold = HeterBO(seed=7).search(make_context(Scenario.fastest()))
        warm = HeterBO(seed=7, warm_start=trace).search(
            make_context(Scenario.fastest())
        )
        assert warm.n_steps <= cold.n_steps
        assert warm.best_measured_speed >= 0.9 * cold.best_measured_speed


class TestThompsonAcquisition:
    def test_ts_completes_and_complies(self, make_context):
        budget = 60.0
        context = make_context(Scenario.fastest_within(budget))
        result = HeterBO(seed=4, acquisition="ts").search(context)
        assert result.best is not None
        assert result.profile_dollars <= budget

    def test_ts_deterministic_given_seed(self, small_catalog, profiler,
                                         charrnn_job, small_space):
        from repro.cloud.provider import SimulatedCloud
        from repro.profiling.profiler import Profiler
        from repro.sim.noise import NoiseModel
        from repro.sim.throughput import TrainingSimulator

        def run():
            cloud = SimulatedCloud(small_catalog)
            prof = Profiler(
                cloud, TrainingSimulator(),
                noise=NoiseModel(sigma=0.03, seed=6),
            )
            ctx = SearchContext(
                space=small_space, profiler=prof,
                job=charrnn_job, scenario=Scenario.fastest(),
            )
            return HeterBO(seed=6, acquisition="ts").search(ctx)

        a, b = run(), run()
        assert [t.deployment for t in a.trials] == [
            t.deployment for t in b.trials
        ]
