"""Gaussian process: interpolation, uncertainty, LML fitting."""

from types import SimpleNamespace

import numpy as np
import pytest

import repro.core.gp as gp_module
from repro.core.gp import _CHOL_FAILURE_PENALTY, GaussianProcess
from repro.core.kernels import (
    ConstantKernel,
    Kernel,
    Matern52Kernel,
    RBFKernel,
    WhiteKernel,
)


def smooth_kernel():
    return ConstantKernel(1.0) * RBFKernel(1.0) + WhiteKernel(1e-5)


class TestBasics:
    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            GaussianProcess().predict(np.zeros((1, 2)))

    def test_fit_empty_rejected(self):
        with pytest.raises(ValueError, match="zero observations"):
            GaussianProcess().fit(np.zeros((0, 2)), np.zeros(0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            GaussianProcess().fit(np.zeros((3, 2)), np.zeros(2))

    def test_negative_restarts_rejected(self):
        with pytest.raises(ValueError, match="restarts"):
            GaussianProcess(optimize_restarts=-1)

    def test_n_observations(self):
        gp = GaussianProcess(smooth_kernel())
        gp.fit(np.arange(4.0)[:, None], np.arange(4.0))
        assert gp.n_observations == 4
        assert gp.is_fitted


class TestPosterior:
    def test_interpolates_training_points(self):
        X = np.linspace(0, 5, 8)[:, None]
        y = np.sin(X).ravel()
        gp = GaussianProcess(smooth_kernel(), optimize_restarts=0)
        gp.fit(X, y)
        mu, _ = gp.predict(X)
        np.testing.assert_allclose(mu, y, atol=0.02)

    def test_uncertainty_grows_away_from_data(self):
        X = np.array([[0.0], [1.0]])
        gp = GaussianProcess(smooth_kernel(), optimize_restarts=0)
        gp.fit(X, np.array([0.0, 1.0]))
        _, sigma_near = gp.predict(np.array([[0.5]]))
        _, sigma_far = gp.predict(np.array([[10.0]]))
        assert sigma_far[0] > sigma_near[0]

    def test_sigma_nonnegative_everywhere(self):
        X = np.linspace(0, 3, 5)[:, None]
        gp = GaussianProcess(smooth_kernel(), optimize_restarts=2, seed=0)
        gp.fit(X, np.random.default_rng(0).normal(size=5))
        _, sigma = gp.predict(np.linspace(-5, 8, 50)[:, None])
        assert (sigma >= 0).all()

    def test_far_extrapolation_reverts_to_mean(self):
        X = np.linspace(0, 2, 6)[:, None]
        y = 5.0 + np.sin(X).ravel()
        gp = GaussianProcess(smooth_kernel(), optimize_restarts=0)
        gp.fit(X, y)
        mu, _ = gp.predict(np.array([[100.0]]))
        assert mu[0] == pytest.approx(y.mean(), abs=0.5)

    def test_single_observation(self):
        gp = GaussianProcess(smooth_kernel(), optimize_restarts=0)
        gp.fit(np.array([[1.0]]), np.array([3.0]))
        mu, sigma = gp.predict(np.array([[1.0], [50.0]]))
        assert mu[0] == pytest.approx(3.0, abs=1e-3)
        assert sigma[1] > sigma[0]

    def test_target_scale_invariance(self):
        """Standardisation: same data at 1000x scale gives 1000x
        predictions."""
        X = np.linspace(0, 4, 7)[:, None]
        y = np.sin(X).ravel() + 2.0
        a = GaussianProcess(smooth_kernel(), optimize_restarts=0)
        a.fit(X, y)
        b = GaussianProcess(smooth_kernel(), optimize_restarts=0)
        b.fit(X, 1000.0 * y)
        mu_a, sigma_a = a.predict(np.array([[2.2]]))
        mu_b, sigma_b = b.predict(np.array([[2.2]]))
        assert mu_b[0] == pytest.approx(1000.0 * mu_a[0], rel=1e-6)
        assert sigma_b[0] == pytest.approx(1000.0 * sigma_a[0], rel=1e-6)


class TestHyperparameterFit:
    def test_fitting_improves_lml(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 6, size=(25, 1))
        y = np.sin(2 * X).ravel() + 0.05 * rng.normal(size=25)

        kernel = ConstantKernel(1.0) * RBFKernel(5.0) + WhiteKernel(0.5)
        frozen = GaussianProcess(kernel, optimize_restarts=0)
        frozen.fit(X, y)
        lml_frozen = frozen.log_marginal_likelihood()

        kernel2 = ConstantKernel(1.0) * RBFKernel(5.0) + WhiteKernel(0.5)
        fitted = GaussianProcess(kernel2, optimize_restarts=3, seed=0)
        fitted.fit(X, y)
        assert fitted.log_marginal_likelihood() > lml_frozen

    def test_learns_noise_level(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 6, size=(40, 1))
        y = np.sin(X).ravel() + 0.3 * rng.normal(size=40)
        kernel = ConstantKernel(1.0) * RBFKernel(1.0) + WhiteKernel(0.05)
        gp = GaussianProcess(kernel, optimize_restarts=6, seed=0)
        gp.fit(X, y)
        # standardised targets have unit variance; the 0.3 noise share
        # of std(y)~0.72 is ~0.17 in variance terms
        learned_noise = np.exp(kernel.theta[-1])
        assert learned_noise == pytest.approx(0.18, abs=0.1)

    def test_fit_deterministic_given_seed(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 4, size=(10, 1))
        y = np.cos(X).ravel()
        thetas = []
        for _ in range(2):
            kernel = ConstantKernel(1.0) * Matern52Kernel(1.0) + WhiteKernel(1e-3)
            gp = GaussianProcess(kernel, optimize_restarts=3, seed=11)
            gp.fit(X, y)
            thetas.append(kernel.theta.copy())
        np.testing.assert_allclose(thetas[0], thetas[1])

    def test_respects_bounds(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0.0, 0.0, 0.0001])
        kernel = (
            ConstantKernel(1.0, bounds=(0.5, 2.0))
            * RBFKernel(1.0, bounds=(0.5, 2.0))
            + WhiteKernel(1e-3, bounds=(1e-4, 1e-2))
        )
        gp = GaussianProcess(kernel, optimize_restarts=3, seed=0)
        gp.fit(X, y)
        for value, (lo, hi) in zip(kernel.theta, kernel.bounds):
            assert lo - 1e-9 <= value <= hi + 1e-9

    def test_refit_replaces_posterior(self):
        gp = GaussianProcess(smooth_kernel(), optimize_restarts=0)
        gp.fit(np.array([[0.0]]), np.array([1.0]))
        gp.fit(np.array([[0.0], [1.0]]), np.array([1.0, 2.0]))
        assert gp.n_observations == 2
        mu, _ = gp.predict(np.array([[1.0]]))
        assert mu[0] == pytest.approx(2.0, abs=0.05)

    def test_duplicate_inputs_dont_crash(self):
        """Jittered Cholesky handles repeated rows."""
        X = np.array([[1.0], [1.0], [1.0], [2.0]])
        y = np.array([1.0, 1.1, 0.9, 2.0])
        gp = GaussianProcess(smooth_kernel(), optimize_restarts=2, seed=0)
        gp.fit(X, y)
        mu, _ = gp.predict(np.array([[1.0]]))
        assert mu[0] == pytest.approx(1.0, abs=0.2)


class _NeverPD(Kernel):
    """Symmetric and finite but never positive definite for n >= 2.

    ``-1`` everywhere has eigenvalues ``{-n, 0}``; no jitter the ladder
    is willing to add repairs that, so every LML evaluation hits the
    Cholesky-failure penalty.
    """

    def __init__(self) -> None:
        self._theta = np.array([0.5])

    @property
    def theta(self) -> np.ndarray:
        return self._theta.copy()

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self._theta = np.asarray(value, dtype=float).copy()

    @property
    def bounds(self):
        return [(-2.0, 2.0)]

    def __call__(self, X, Z=None):
        X = np.atleast_2d(X)
        Z = X if Z is None else np.atleast_2d(Z)
        return -np.ones((X.shape[0], Z.shape[0]))

    def gradient(self, X):
        K = self(X)
        return K, np.zeros((1,) + K.shape)

    def diag(self, X):
        return -np.ones(np.atleast_2d(X).shape[0])


class TestDegenerateRefit:
    """Regressions for the failed-restart hyperparameter bug.

    Two coupled defects: a restart stuck at the Cholesky-failure
    penalty used to win ``res.fun < best_val`` against ``inf`` and have
    its meaningless theta adopted, and when no restart won at all the
    kernel was left at whatever theta the optimizer's *last evaluation*
    happened to touch (``_neg_lml_and_grad`` mutates ``kernel.theta``
    as a side effect).
    """

    def test_penalty_restart_theta_never_adopted(self, monkeypatch):
        X = np.linspace(0, 3, 6)[:, None]
        y = np.sin(X).ravel()
        kernel = smooth_kernel()
        gp = GaussianProcess(kernel, optimize_restarts=3, seed=0)
        incumbent = kernel.theta.copy()

        def fake_minimize(fun, x0, args=(), **kwargs):
            # mimic an optimizer that wandered into a non-PD region:
            # evaluations mutate kernel.theta as a side effect, and the
            # reported minimum is the failure penalty at garbage theta
            fun(np.asarray(x0) + 1.0, *args)
            return SimpleNamespace(
                fun=_CHOL_FAILURE_PENALTY,
                x=np.full_like(np.asarray(x0), -99.0),
            )

        monkeypatch.setattr(gp_module.optimize, "minimize", fake_minimize)
        gp.fit(X, y)
        np.testing.assert_array_equal(kernel.theta, incumbent)
        # and the posterior was factorised at the incumbent, so it works
        mu, _ = gp.predict(X)
        assert np.all(np.isfinite(mu))

    def test_unfactorisable_kernel_raises_with_theta_intact(self):
        kernel = _NeverPD()
        incumbent = kernel.theta.copy()
        gp = GaussianProcess(kernel, optimize_restarts=2, seed=0)
        with pytest.raises(np.linalg.LinAlgError, match="not positive definite"):
            gp.fit(np.array([[0.0], [1.0], [2.0]]), np.array([1.0, 2.0, 3.0]))
        # every restart hit the penalty; the incumbent must survive the
        # optimizer's side-effect mutations even on the error path
        np.testing.assert_array_equal(kernel.theta, incumbent)

    def test_restart_draws_depend_only_on_seed_and_n(self, monkeypatch):
        """A fit at n observations sees the same restart starts whether
        or not earlier fits happened — the refit *schedule* cannot
        perturb hyperparameter search."""
        rng = np.random.default_rng(7)
        X = rng.uniform(0, 4, size=(6, 1))
        y = np.cos(X).ravel()

        def record_starts(gp_obj, fits):
            starts: list[list[np.ndarray]] = []

            def fake_minimize(fun, x0, args=(), **kwargs):
                starts.append(np.asarray(x0, dtype=float).copy())
                return SimpleNamespace(fun=np.inf, x=np.asarray(x0))

            monkeypatch.setattr(
                gp_module.optimize, "minimize", fake_minimize
            )
            for n in fits:
                if n == fits[-1]:
                    starts.clear()  # keep only the final fit's starts
                gp_obj.fit(X[:n], y[:n])
            return starts

        direct = record_starts(
            GaussianProcess(smooth_kernel(), optimize_restarts=3, seed=5),
            [6],
        )
        resumed = record_starts(
            GaussianProcess(smooth_kernel(), optimize_restarts=3, seed=5),
            [3, 6],
        )
        assert len(direct) == len(resumed) == 3
        for a, b in zip(direct, resumed):
            np.testing.assert_array_equal(a, b)


class TestIncrementalObserve:
    def test_observe_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            GaussianProcess().observe(np.zeros(2), 1.0)

    def test_observe_rejects_wrong_width(self):
        gp = GaussianProcess(smooth_kernel(), optimize_restarts=0)
        gp.fit(np.array([[0.0], [1.0]]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError, match="single 1-feature row"):
            gp.observe(np.array([[1.0, 2.0]]), 1.0)

    def test_set_targets_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            GaussianProcess().set_targets(np.array([1.0]))

    def test_set_targets_rejects_length_mismatch(self):
        gp = GaussianProcess(smooth_kernel(), optimize_restarts=0)
        gp.fit(np.array([[0.0], [1.0]]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError, match="2 observations"):
            gp.set_targets(np.array([1.0, 2.0, 3.0]))

    def test_observe_duplicate_row_falls_back_to_refactorisation(self):
        """A repeated input makes the bordered matrix singular at the
        stored jitter; observe() must survive via the full-refactor
        fallback and still interpolate."""
        X = np.array([[0.0], [1.0]])
        gp = GaussianProcess(
            ConstantKernel(1.0) * RBFKernel(1.0),  # no White noise floor
            optimize_restarts=0,
        )
        gp.fit(X, np.array([0.0, 1.0]))
        gp.observe(np.array([1.0]), 1.0)
        assert gp.n_observations == 3
        mu, _ = gp.predict(np.array([[1.0]]))
        assert mu[0] == pytest.approx(1.0, abs=0.05)


class TestPosteriorSampling:
    def test_sample_shape(self):
        X = np.linspace(0, 3, 5)[:, None]
        gp = GaussianProcess(smooth_kernel(), optimize_restarts=0)
        gp.fit(X, np.sin(X).ravel())
        draws = gp.sample(np.linspace(0, 3, 7)[:, None], n_samples=4)
        assert draws.shape == (4, 7)

    def test_sample_mean_matches_posterior(self):
        X = np.linspace(0, 3, 6)[:, None]
        gp = GaussianProcess(smooth_kernel(), optimize_restarts=0)
        gp.fit(X, np.sin(X).ravel() + 2.0)
        Xs = np.array([[1.2], [2.7]])
        rng = np.random.default_rng(0)
        draws = gp.sample(Xs, n_samples=4000, rng=rng)
        mu, sigma = gp.predict(Xs)
        np.testing.assert_allclose(draws.mean(axis=0), mu, atol=0.05)
        np.testing.assert_allclose(
            draws.std(axis=0), sigma, atol=0.05
        )

    def test_sample_pins_training_points(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1.0, 3.0, 2.0])
        gp = GaussianProcess(smooth_kernel(), optimize_restarts=0)
        gp.fit(X, y)
        draws = gp.sample(X, n_samples=50, rng=np.random.default_rng(1))
        np.testing.assert_allclose(draws.std(axis=0), 0.0, atol=0.05)

    def test_unfitted_sample_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            GaussianProcess().sample(np.zeros((1, 2)))

    def test_bad_n_samples_rejected(self):
        gp = GaussianProcess(smooth_kernel(), optimize_restarts=0)
        gp.fit(np.array([[0.0]]), np.array([1.0]))
        with pytest.raises(ValueError, match="n_samples"):
            gp.sample(np.array([[1.0]]), n_samples=0)
