"""HeterBO internals: the constraint machinery, unit by unit."""

import numpy as np
import pytest

from repro.core.engine import GPSearchEngine, SearchContext
from repro.core.heterbo import HeterBO
from repro.core.scenarios import Objective, Scenario
from repro.core.search_space import Deployment
from repro.profiling.profiler import ProfileResult


@pytest.fixture
def make_context(small_space, profiler, charrnn_job):
    def _make(scenario):
        return SearchContext(
            space=small_space,
            profiler=profiler,
            job=charrnn_job,
            scenario=scenario,
        )
    return _make


def observe(engine, count=4, speed=50.0, itype="c5.4xlarge"):
    engine.add_observation(ProfileResult(
        instance_type=itype, count=count, speed=speed,
        seconds=600.0, dollars=0.5, iteration_speeds=(speed,),
        extensions=0, failed=False,
    ))


class TestProbeFitsConstraint:
    def test_unconstrained_always_fits(self, make_context):
        context = make_context(Scenario.fastest())
        strategy = HeterBO()
        assert strategy._probe_fits_constraint(
            context, Deployment("p2.xlarge", 20), incumbent_cost=1e12
        )

    def test_budget_reserve_arithmetic(self, make_context):
        budget = 10.0
        context = make_context(Scenario.fastest_within(budget))
        strategy = HeterBO(reserve_margin=1.0)
        d = Deployment("c5.xlarge", 1)
        probe = context.probe_dollars(d)
        # fits exactly at the boundary
        assert strategy._probe_fits_constraint(
            context, d, incumbent_cost=budget - probe
        )
        assert not strategy._probe_fits_constraint(
            context, d, incumbent_cost=budget - probe + 0.01
        )

    def test_margin_scales_reserve(self, make_context):
        budget = 10.0
        context = make_context(Scenario.fastest_within(budget))
        d = Deployment("c5.xlarge", 1)
        probe = context.probe_dollars(d)
        incumbent = (budget - probe) / 1.05
        tight = HeterBO(reserve_margin=1.05)
        loose = HeterBO(reserve_margin=1.0)
        assert tight._probe_fits_constraint(context, d, incumbent)
        assert not tight._probe_fits_constraint(
            context, d, incumbent * 1.01
        )
        assert loose._probe_fits_constraint(context, d, incumbent * 1.01)


class TestIncumbentCompletionCost:
    def test_no_observations_zero(self, make_context):
        context = make_context(Scenario.fastest_within(100.0))
        strategy = HeterBO()
        engine = GPSearchEngine(context)
        assert strategy._incumbent_completion_cost(context, engine) == 0.0

    def test_feasible_selection_costed(self, make_context):
        context = make_context(Scenario.fastest_within(1000.0))
        strategy = HeterBO()
        engine = GPSearchEngine(context)
        observe(engine, count=4, speed=100.0)
        cost = strategy._incumbent_completion_cost(context, engine)
        expected = context.train_dollars(Deployment("c5.4xlarge", 4), 100.0)
        assert cost == pytest.approx(expected)

    def test_doomed_selection_zero(self, make_context):
        """If even the best observation cannot finish within what is
        left, there is nothing to reserve for."""
        context = make_context(Scenario.fastest_within(0.5))
        strategy = HeterBO()
        engine = GPSearchEngine(context)
        observe(engine, count=4, speed=1.0)  # absurdly slow = expensive
        assert strategy._incumbent_completion_cost(context, engine) == 0.0


class TestAcquisitionView:
    def test_scenario1_uses_time_unfiltered(self, make_context):
        context = make_context(Scenario.fastest())
        strategy = HeterBO()
        engine = GPSearchEngine(context)
        objective, flt = strategy._acquisition_view(context, engine)
        assert objective is Objective.TIME
        assert flt is None

    def test_scenario3_uses_time_unfiltered(self, make_context):
        context = make_context(Scenario.fastest_within(100.0))
        strategy = HeterBO()
        engine = GPSearchEngine(context)
        objective, flt = strategy._acquisition_view(context, engine)
        assert objective is Objective.TIME
        assert flt is None

    def test_scenario2_without_feasible_chases_time(self, make_context):
        context = make_context(Scenario.cheapest_within(3600.0))
        strategy = HeterBO()
        engine = GPSearchEngine(context)
        observe(engine, count=1, speed=1.0)  # needs ~9 days: infeasible
        objective, flt = strategy._acquisition_view(context, engine)
        assert objective is Objective.TIME
        assert flt is None

    def test_scenario2_with_feasible_minimises_cost(self, make_context):
        context = make_context(Scenario.cheapest_within(100 * 3600.0))
        strategy = HeterBO()
        engine = GPSearchEngine(context)
        observe(engine, count=4, speed=100.0)  # ~2.2h: feasible
        objective, flt = strategy._acquisition_view(context, engine)
        assert objective is Objective.COST
        assert flt is not None
        assert flt(Deployment("c5.4xlarge", 4), 100.0)
        assert not flt(Deployment("c5.4xlarge", 1), 0.1)


class TestOptimisticCompletion:
    def test_time_units_for_deadline(self, make_context):
        context = make_context(Scenario.cheapest_within(3600.0))
        strategy = HeterBO()
        candidates = [Deployment("c5.4xlarge", 4)]
        mu = np.array([np.log2(100.0)])
        sigma = np.array([0.0])
        completion = strategy._optimistic_completion(
            context, GPSearchEngine(context), candidates, mu, sigma
        )
        assert completion[0] == pytest.approx(
            context.total_samples / 100.0
        )

    def test_dollar_units_for_budget(self, make_context):
        context = make_context(Scenario.fastest_within(100.0))
        strategy = HeterBO()
        d = Deployment("c5.4xlarge", 4)
        mu, sigma = np.array([np.log2(100.0)]), np.array([0.0])
        completion = strategy._optimistic_completion(
            context, GPSearchEngine(context), [d], mu, sigma
        )
        seconds = context.total_samples / 100.0
        assert completion[0] == pytest.approx(
            seconds * context.price_per_second(d)
        )

    def test_sigma_makes_completion_optimistic(self, make_context):
        context = make_context(Scenario.fastest_within(100.0))
        strategy = HeterBO()
        d = Deployment("c5.4xlarge", 4)
        mu = np.array([np.log2(100.0)])
        certain = strategy._optimistic_completion(
            context, GPSearchEngine(context), [d], mu, np.array([0.0])
        )
        uncertain = strategy._optimistic_completion(
            context, GPSearchEngine(context), [d], mu, np.array([1.0])
        )
        assert uncertain[0] < certain[0]  # optimism shrinks the bill
