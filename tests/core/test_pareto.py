"""Pareto-front analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pareto import ParetoPoint, pareto_front, search_pareto_front
from repro.core.search_space import Deployment


def point(seconds, dollars, name="t", count=1):
    return ParetoPoint(
        deployment=Deployment(name, count),
        measured_speed=1.0,
        train_seconds=seconds,
        train_dollars=dollars,
    )


class TestDominates:
    def test_strictly_better_both(self):
        assert point(1, 1).dominates(point(2, 2))

    def test_better_one_equal_other(self):
        assert point(1, 2).dominates(point(2, 2))

    def test_identical_does_not_dominate(self):
        assert not point(1, 1).dominates(point(1, 1))

    def test_tradeoff_neither_dominates(self):
        a, b = point(1, 5), point(5, 1)
        assert not a.dominates(b)
        assert not b.dominates(a)


class TestFront:
    def test_simple_front(self):
        pts = [point(1, 10), point(5, 5), point(10, 1), point(6, 6)]
        front = pareto_front(pts)
        assert [(p.train_seconds, p.train_dollars) for p in front] == [
            (1, 10), (5, 5), (10, 1),
        ]

    def test_dominated_point_excluded(self):
        pts = [point(1, 1), point(2, 2)]
        assert len(pareto_front(pts)) == 1

    def test_duplicates_collapse(self):
        pts = [point(1, 1), point(1, 1)]
        assert len(pareto_front(pts)) == 1

    def test_empty(self):
        assert pareto_front([]) == []

    def test_sorted_by_time(self):
        pts = [point(10, 1), point(1, 10), point(5, 5)]
        front = pareto_front(pts)
        times = [p.train_seconds for p in front]
        assert times == sorted(times)

    @given(st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=1e4),
            st.floats(min_value=0.1, max_value=1e4),
        ),
        max_size=40,
    ))
    @settings(max_examples=100)
    def test_front_is_mutually_nondominated(self, pairs):
        pts = [point(s, d, count=i + 1) for i, (s, d) in enumerate(pairs)]
        front = pareto_front(pts)
        for a in front:
            for b in front:
                if a is not b:
                    assert not a.dominates(b)

    @given(st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=1e4),
            st.floats(min_value=0.1, max_value=1e4),
        ),
        min_size=1,
        max_size=40,
    ))
    @settings(max_examples=100)
    def test_every_point_dominated_by_or_on_front(self, pairs):
        pts = [point(s, d, count=i + 1) for i, (s, d) in enumerate(pairs)]
        front = pareto_front(pts)
        for p in pts:
            on_front = any(
                f.train_seconds == p.train_seconds
                and f.train_dollars == p.train_dollars
                for f in front
            )
            dominated = any(f.dominates(p) for f in front)
            assert on_front or dominated


class TestSearchFront:
    def test_front_from_search(self, small_space, profiler, charrnn_job):
        from repro.core.engine import SearchContext
        from repro.core.heterbo import HeterBO
        from repro.core.scenarios import Scenario

        context = SearchContext(
            space=small_space, profiler=profiler,
            job=charrnn_job, scenario=Scenario.fastest(),
        )
        result = HeterBO(seed=0).search(context)
        front = search_pareto_front(
            result, small_space, charrnn_job.total_samples
        )
        assert front
        # the scenario's pick projects onto the front
        speeds = [p.measured_speed for p in front]
        assert result.best_measured_speed in speeds

    def test_failed_probes_excluded(self, small_space):
        from repro.core.result import SearchResult, TrialRecord
        from repro.core.scenarios import Scenario

        trials = (TrialRecord(
            step=1, deployment=Deployment("c5.xlarge", 1),
            measured_speed=0.0, profile_seconds=600, profile_dollars=0.03,
            elapsed_seconds=600, spent_dollars=0.03,
            failure_reason="capacity",
        ),)
        result = SearchResult(
            strategy="x", scenario=Scenario.fastest(), trials=trials,
            best=None, best_measured_speed=0.0,
            profile_seconds=600, profile_dollars=0.03, stop_reason="t",
        )
        assert search_pareto_front(result, small_space, 1000) == []

    def test_bad_samples_rejected(self, small_space):
        from repro.core.result import SearchResult
        from repro.core.scenarios import Scenario

        result = SearchResult(
            strategy="x", scenario=Scenario.fastest(), trials=(),
            best=None, best_measured_speed=0.0,
            profile_seconds=0, profile_dollars=0, stop_reason="t",
        )
        with pytest.raises(ValueError, match="total_samples"):
            search_pareto_front(result, small_space, 0)
