"""Acquisition functions: EI/POI/UCB/TEI identities and properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.acquisition import (
    expected_improvement_max,
    expected_improvement_min,
    probability_of_improvement,
    true_expected_improvement,
    upper_confidence_bound,
)

floats = st.floats(min_value=-50, max_value=50)
sigmas = st.floats(min_value=0.0, max_value=20.0)


class TestExpectedImprovementMin:
    def test_zero_sigma_deterministic_improvement(self):
        ei = expected_improvement_min(
            np.array([3.0, 7.0]), np.array([0.0, 0.0]), best=5.0
        )
        np.testing.assert_allclose(ei, [2.0, 0.0])

    def test_worse_mean_high_sigma_still_positive(self):
        ei = expected_improvement_min(
            np.array([10.0]), np.array([5.0]), best=5.0
        )
        assert ei[0] > 0

    def test_ei_increases_with_sigma(self):
        mu = np.array([6.0, 6.0])
        ei = expected_improvement_min(mu, np.array([0.5, 3.0]), best=5.0)
        assert ei[1] > ei[0]

    def test_ei_decreases_with_mu(self):
        sigma = np.array([1.0, 1.0])
        ei = expected_improvement_min(np.array([4.0, 6.0]), sigma, best=5.0)
        assert ei[0] > ei[1]

    def test_xi_reduces_ei(self):
        mu, sigma = np.array([4.0]), np.array([1.0])
        assert expected_improvement_min(mu, sigma, 5.0, xi=1.0) < (
            expected_improvement_min(mu, sigma, 5.0, xi=0.0)
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            expected_improvement_min(np.zeros(2), np.zeros(3), 0.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError, match="sigma"):
            expected_improvement_min(np.zeros(1), np.array([-1.0]), 0.0)

    @given(mu=floats, sigma=sigmas, best=floats)
    @settings(max_examples=200)
    def test_nonnegative(self, mu, sigma, best):
        ei = expected_improvement_min(
            np.array([mu]), np.array([sigma]), best
        )
        assert ei[0] >= 0.0

    @given(mu=floats, sigma=st.floats(min_value=0.01, max_value=20), best=floats)
    @settings(max_examples=200)
    def test_bounded_by_expectation_identity(self, mu, sigma, best):
        """EI <= E|best - Y| and EI >= max(best - mu, 0) - analytic
        sanity from the closed form."""
        ei = expected_improvement_min(
            np.array([mu]), np.array([sigma]), best
        )[0]
        assert ei >= max(best - mu, 0.0) - 1e-9
        assert ei <= abs(best - mu) + sigma

    def test_monte_carlo_agreement(self):
        """The closed form equals E[max(best - Y, 0)]."""
        rng = np.random.default_rng(0)
        mu, sigma, best = 4.0, 2.0, 5.0
        samples = rng.normal(mu, sigma, size=400_000)
        mc = np.maximum(best - samples, 0.0).mean()
        ei = expected_improvement_min(
            np.array([mu]), np.array([sigma]), best
        )[0]
        assert ei == pytest.approx(mc, rel=0.01)


class TestMaxMinDuality:
    @given(mu=floats, sigma=sigmas, best=floats)
    @settings(max_examples=100)
    def test_max_equals_reflected_min(self, mu, sigma, best):
        a = expected_improvement_max(
            np.array([mu]), np.array([sigma]), best
        )[0]
        b = expected_improvement_min(
            np.array([-mu]), np.array([sigma]), -best
        )[0]
        assert a == pytest.approx(b, rel=1e-9, abs=1e-12)


class TestPOI:
    def test_symmetric_point_is_half(self):
        poi = probability_of_improvement(
            np.array([5.0]), np.array([1.0]), best=5.0
        )
        assert poi[0] == pytest.approx(0.5)

    def test_zero_sigma_indicator(self):
        poi = probability_of_improvement(
            np.array([3.0, 7.0]), np.array([0.0, 0.0]), best=5.0
        )
        np.testing.assert_allclose(poi, [1.0, 0.0])

    @given(mu=floats, sigma=sigmas, best=floats)
    @settings(max_examples=200)
    def test_in_unit_interval(self, mu, sigma, best):
        poi = probability_of_improvement(
            np.array([mu]), np.array([sigma]), best
        )[0]
        assert 0.0 <= poi <= 1.0

    def test_monotone_in_mu(self):
        sigma = np.array([1.0, 1.0])
        poi = probability_of_improvement(
            np.array([4.0, 6.0]), sigma, best=5.0
        )
        assert poi[0] > poi[1]


class TestUCB:
    def test_prefers_lower_mean(self):
        ucb = upper_confidence_bound(
            np.array([1.0, 2.0]), np.array([0.5, 0.5])
        )
        assert ucb[0] > ucb[1]

    def test_prefers_higher_sigma(self):
        ucb = upper_confidence_bound(
            np.array([2.0, 2.0]), np.array([0.1, 2.0])
        )
        assert ucb[1] > ucb[0]

    def test_kappa_zero_is_negated_mean(self):
        mu = np.array([1.5, -2.0])
        np.testing.assert_allclose(
            upper_confidence_bound(mu, np.array([1.0, 1.0]), kappa=0.0), -mu
        )

    def test_negative_kappa_rejected(self):
        with pytest.raises(ValueError, match="kappa"):
            upper_confidence_bound(np.zeros(1), np.zeros(1), kappa=-1.0)


class TestTEI:
    def test_positive_slack(self):
        tei = true_expected_improvement(
            np.array([0.1]),
            constraint_limit=100.0,
            consumed=10.0,
            probe_cost=np.array([5.0]),
            projected_completion=np.array([50.0]),
        )
        assert tei[0] == pytest.approx(35.0)

    def test_negative_marks_infeasible(self):
        tei = true_expected_improvement(
            np.array([0.1]),
            constraint_limit=100.0,
            consumed=90.0,
            probe_cost=np.array([5.0]),
            projected_completion=np.array([50.0]),
        )
        assert tei[0] < 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            true_expected_improvement(
                np.zeros(2),
                constraint_limit=1.0,
                consumed=0.0,
                probe_cost=np.zeros(3),
                projected_completion=np.zeros(2),
            )

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            true_expected_improvement(
                np.zeros(1),
                constraint_limit=1.0,
                consumed=0.0,
                probe_cost=np.array([-1.0]),
                projected_completion=np.zeros(1),
            )

    def test_negative_consumed_rejected(self):
        with pytest.raises(ValueError, match="consumed"):
            true_expected_improvement(
                np.zeros(1),
                constraint_limit=1.0,
                consumed=-0.1,
                probe_cost=np.zeros(1),
                projected_completion=np.zeros(1),
            )

    @given(
        limit=st.floats(min_value=1, max_value=1e4),
        consumed=st.floats(min_value=0, max_value=1e4),
        probe=st.floats(min_value=0, max_value=1e3),
        completion=st.floats(min_value=0, max_value=1e4),
    )
    @settings(max_examples=100)
    def test_monotone_in_all_costs(self, limit, consumed, probe, completion):
        base = true_expected_improvement(
            np.zeros(1),
            constraint_limit=limit,
            consumed=consumed,
            probe_cost=np.array([probe]),
            projected_completion=np.array([completion]),
        )[0]
        more_probe = true_expected_improvement(
            np.zeros(1),
            constraint_limit=limit,
            consumed=consumed,
            probe_cost=np.array([probe + 1.0]),
            projected_completion=np.array([completion]),
        )[0]
        assert more_probe < base
