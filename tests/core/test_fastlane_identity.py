"""The surrogate fast lane must not change a single decision.

Seeded HeterBO, ConvBO and ParallelHeterBO searches are run twice —
fast lane on and off, with the refit schedule forced to every step —
and the canonicalised ``SearchTrace`` JSONL artifacts must be byte
identical.  This is the PR-2 pattern (contracts on/off) applied to the
performance work: an optimisation that changes decisions is a bug, no
matter how fast it is.
"""

import pytest

from repro.baselines.convbo import ConvBO
from repro.cloud.catalog import paper_catalog
from repro.cloud.provider import SimulatedCloud
from repro.core.engine import SearchContext
from repro.core.heterbo import HeterBO
from repro.core.parallel import ParallelHeterBO
from repro.core.scenarios import Scenario
from repro.core.search_space import DeploymentSpace
from repro.obs import RunRecorder
from repro.perf.bench import canonical_trace_jsonl
from repro.profiling.profiler import Profiler
from repro.sim.datasets import get_dataset
from repro.sim.noise import NoiseModel
from repro.sim.platforms import get_platform
from repro.sim.throughput import TrainingJob, TrainingSimulator
from repro.sim.zoo import get_model


def _run(make_strategy, *, fast_lane, gp_refit="always", seed=3):
    catalog = paper_catalog().subset(
        ["c5.xlarge", "c5.4xlarge", "c4.xlarge"]
    )
    cloud = SimulatedCloud(catalog)
    profiler = Profiler(
        cloud, TrainingSimulator(),
        noise=NoiseModel(sigma=0.03, seed=seed),
    )
    job = TrainingJob(
        model=get_model("char-rnn"),
        dataset=get_dataset("char-corpus"),
        platform=get_platform("tensorflow"),
        epochs=1.0,
    )
    recorder = RunRecorder(clock=lambda: cloud.clock.now)
    context = SearchContext(
        space=DeploymentSpace(catalog, max_count=8),
        profiler=profiler,
        job=job,
        scenario=Scenario.fastest_within(40.0),
        tracer=recorder.tracer,
        metrics=recorder.metrics,
    )
    strategy = make_strategy(
        seed=seed, fast_lane=fast_lane, gp_refit=gp_refit
    )
    result = strategy.search(context)
    return result, canonical_trace_jsonl(recorder.finalize(result))


STRATEGIES = {
    "heterbo": lambda **kw: HeterBO(max_steps=8, **kw),
    "convbo": lambda **kw: ConvBO(max_steps=8, **kw),
    "parallel-heterbo": lambda **kw: ParallelHeterBO(
        max_steps=8, batch_size=2, **kw
    ),
}


class TestByteIdentity:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_fast_lane_traces_byte_identical(self, name):
        make = STRATEGIES[name]
        _, slow = _run(make, fast_lane=False)
        _, fast = _run(make, fast_lane=True)
        assert fast == slow

    def test_traces_are_nontrivial(self):
        # guard against vacuous identity: the runs must actually probe
        result, trace = _run(STRATEGIES["heterbo"], fast_lane=True)
        assert len(result.trials) >= 3
        assert trace.count('"kind": "span"') > 0


class TestDoublingSchedule:
    def test_incremental_fits_happen(self):
        """The doubling schedule must actually take the rank-1 path."""
        catalog = paper_catalog().subset(["c5.xlarge", "c5.4xlarge"])
        cloud = SimulatedCloud(catalog)
        recorder = RunRecorder(clock=lambda: cloud.clock.now)
        profiler = Profiler(
            cloud, TrainingSimulator(),
            noise=NoiseModel(sigma=0.03, seed=0),
            tracer=recorder.tracer, metrics=recorder.metrics,
        )
        job = TrainingJob(
            model=get_model("char-rnn"),
            dataset=get_dataset("char-corpus"),
            platform=get_platform("tensorflow"),
            epochs=1.0,
        )
        context = SearchContext(
            space=DeploymentSpace(catalog, max_count=8),
            profiler=profiler,
            job=job,
            scenario=Scenario.fastest_within(60.0),
            tracer=recorder.tracer,
            metrics=recorder.metrics,
        )
        result = HeterBO(
            seed=0, max_steps=10, gp_refit="doubling"
        ).search(context)
        fits = recorder.metrics.counter("gp.fit_total")
        assert fits.value(mode="incremental") > 0
        assert fits.value(mode="full") > 0
        assert result.best is not None

    def test_invalid_schedule_rejected(self):
        with pytest.raises(ValueError, match="gp_refit"):
            HeterBO(gp_refit="sometimes")


class TestUnvisitedBookkeeping:
    def test_incremental_list_matches_rescan(self):
        """After real probes, the fast lane's incrementally maintained
        candidate list equals a fresh grid rescan."""
        from repro.core.engine import GPSearchEngine

        catalog = paper_catalog().subset(["c5.xlarge", "c4.xlarge"])
        cloud = SimulatedCloud(catalog)
        profiler = Profiler(
            cloud, TrainingSimulator(),
            noise=NoiseModel(sigma=0.03, seed=0),
        )
        job = TrainingJob(
            model=get_model("char-rnn"),
            dataset=get_dataset("char-corpus"),
            platform=get_platform("tensorflow"),
            epochs=1.0,
        )
        context = SearchContext(
            space=DeploymentSpace(catalog, max_count=6),
            profiler=profiler,
            job=job,
            scenario=Scenario.fastest(),
        )
        fast = GPSearchEngine(context, fast_lane=True)
        slow = GPSearchEngine(context, fast_lane=False)
        assert fast.unvisited_candidates() == slow.unvisited_candidates()
        for name, count in [("c5.xlarge", 1), ("c4.xlarge", 3),
                            ("c5.xlarge", 1)]:  # revisit is a no-op
            result = profiler.profile(name, count, job)
            fast.add_observation(result)
            slow.add_observation(result)
            assert (
                fast.unvisited_candidates() == slow.unvisited_candidates()
            )
