"""Runtime contracts: gating, each check, and decision identity.

The decision-identity test is the load-bearing one: a seeded HeterBO
run must produce the *same* search artifact with contracts on and off
(modulo real wall-clock fields, which are nondeterministic either
way), proving the checks observe without steering.
"""

import json

import numpy as np
import pytest
from scipy import linalg

from repro import contracts
from repro.cloud.billing import BillingLedger
from repro.cloud.catalog import paper_catalog
from repro.cloud.provider import SimulatedCloud
from repro.core.engine import SearchContext
from repro.core.gp import _chol_with_jitter
from repro.core.heterbo import HeterBO
from repro.core.kernels import default_deployment_kernel
from repro.core.result import TrialRecord
from repro.core.scenarios import Scenario
from repro.core.search_space import Deployment, DeploymentSpace
from repro.obs import RunRecorder
from repro.profiling.profiler import Profiler
from repro.sim.noise import NoiseModel
from repro.sim.throughput import TrainingSimulator


@pytest.fixture
def armed(monkeypatch):
    monkeypatch.setenv(contracts.ENV_VAR, "1")


@pytest.fixture
def disarmed(monkeypatch):
    monkeypatch.setenv(contracts.ENV_VAR, "0")


class TestGating:
    def test_enabled_values(self, monkeypatch):
        for value, expected in [
            ("1", True), ("yes", True), ("on", True),
            ("", False), ("0", False), ("false", False), ("off", False),
            ("FALSE", False), ("OFF", False),
        ]:
            monkeypatch.setenv(contracts.ENV_VAR, value)
            assert contracts.enabled() is expected
        monkeypatch.delenv(contracts.ENV_VAR)
        assert not contracts.enabled()

    def test_disarmed_checks_are_noops(self, disarmed):
        contracts.check_posterior(np.array([np.nan]), np.array([-1.0]))
        contracts.check_acquisition(np.array([-np.inf]))
        contracts.check_probe_billing(1.0, 99.0)
        contracts.check_gram(np.full((2, 3), np.nan))

    def test_violation_is_assertion_error(self):
        assert issubclass(contracts.ContractViolation, AssertionError)


class TestNumericalChecks:
    def test_posterior_nan_mean_rejected(self, armed):
        with pytest.raises(contracts.ContractViolation, match="mean"):
            contracts.check_posterior(
                np.array([1.0, np.nan]), np.array([1.0, 1.0])
            )

    def test_posterior_negative_sigma_rejected(self, armed):
        with pytest.raises(contracts.ContractViolation, match="negative"):
            contracts.check_posterior(
                np.array([1.0]), np.array([-0.5])
            )

    def test_posterior_clean_passes(self, armed):
        contracts.check_posterior(np.array([1.0]), np.array([0.0]))

    def test_gram_nonfinite_rejected(self, armed):
        K = np.eye(3)
        K[1, 1] = np.inf
        with pytest.raises(contracts.ContractViolation, match="non-finite"):
            contracts.check_gram(K)

    def test_gram_asymmetric_rejected(self, armed):
        K = np.eye(3)
        K[0, 1] = 0.5
        with pytest.raises(contracts.ContractViolation, match="symmetric"):
            contracts.check_gram(K)

    def test_gram_nonsquare_rejected(self, armed):
        with pytest.raises(contracts.ContractViolation, match="square"):
            contracts.check_gram(np.ones((2, 3)))

    def test_acquisition_negative_rejected(self, armed):
        with pytest.raises(contracts.ContractViolation, match=">= 0"):
            contracts.check_acquisition(np.array([0.1, -0.2]))

    def test_acquisition_nan_rejected(self, armed):
        with pytest.raises(contracts.ContractViolation, match="finite"):
            contracts.check_acquisition(np.array([np.nan]))


class TestBillingChecks:
    def test_probe_reconciles(self, armed):
        contracts.check_probe_billing(0.5, 0.5)
        contracts.check_probe_billing(0.0, 0.0)

    def test_probe_mismatch_rejected(self, armed):
        with pytest.raises(
            contracts.ContractViolation, match="reconcile"
        ):
            contracts.check_probe_billing(0.5, 0.6)

    def test_probe_negative_dollars_rejected(self, armed):
        with pytest.raises(contracts.ContractViolation, match="negative"):
            contracts.check_probe_billing(-0.1, -0.1)

    def test_search_billing_reconciles(self, armed):
        trials = [
            TrialRecord(
                step=i + 1, deployment=Deployment("c5.xlarge", 1),
                measured_speed=10.0, profile_seconds=600.0,
                profile_dollars=0.25, elapsed_seconds=600.0 * (i + 1),
                spent_dollars=0.25 * (i + 1),
            )
            for i in range(3)
        ]
        contracts.check_search_billing(trials, 0.75)
        with pytest.raises(
            contracts.ContractViolation, match="profiling"
        ):
            contracts.check_search_billing(trials, 0.80)

    def test_ledger_invariants_hold_on_real_ledger(self, armed):
        ledger = BillingLedger()
        ledger.charge(
            timestamp=0.0, instance_type="c5.xlarge", count=2,
            seconds=600.0, dollars=0.5, purpose="profiling",
        )
        ledger.charge(
            timestamp=600.0, instance_type="c5.xlarge", count=2,
            seconds=3600.0, dollars=3.0, purpose="training",
        )
        contracts.check_ledger(ledger)


class TestCholeskyDiagnostics:
    def test_failure_message_names_theta_and_condition(self, armed):
        # eigenvalues 4 and -2: no jitter in the ladder can rescue it
        K = np.array([[1.0, 3.0], [3.0, 1.0]])
        kernel = default_deployment_kernel()
        with pytest.raises(linalg.LinAlgError) as err:
            _chol_with_jitter(K, kernel)
        message = str(err.value)
        assert "condition estimate" in message
        assert "kernel theta" in message
        assert "eigenvalues in" in message

    def test_failure_without_kernel_says_unknown(self, disarmed):
        K = np.array([[1.0, 3.0], [3.0, 1.0]])
        with pytest.raises(linalg.LinAlgError, match="unknown"):
            _chol_with_jitter(K)

    def test_near_singular_rescued_by_jitter(self, armed):
        # rank-1 PSD matrix: singular, but jitter makes it factorable
        v = np.array([[1.0], [2.0]])
        K = v @ v.T
        L = _chol_with_jitter(K, default_deployment_kernel())
        assert np.allclose(L @ L.T, K, atol=1e-6)


def _run_search(seed=3):
    catalog = paper_catalog().subset(["c5.xlarge", "c5.4xlarge"])
    cloud = SimulatedCloud(catalog)
    profiler = Profiler(
        cloud, TrainingSimulator(),
        noise=NoiseModel(sigma=0.03, seed=seed),
    )
    from repro.sim.datasets import get_dataset
    from repro.sim.platforms import get_platform
    from repro.sim.throughput import TrainingJob
    from repro.sim.zoo import get_model

    job = TrainingJob(
        model=get_model("char-rnn"),
        dataset=get_dataset("char-corpus"),
        platform=get_platform("tensorflow"),
        epochs=1.0,
    )
    recorder = RunRecorder(clock=lambda: cloud.clock.now)
    context = SearchContext(
        space=DeploymentSpace(catalog, max_count=8),
        profiler=profiler,
        job=job,
        scenario=Scenario.fastest_within(40.0),
        tracer=recorder.tracer,
        metrics=recorder.metrics,
    )
    result = HeterBO(seed=seed, max_steps=6).search(context)
    return recorder.finalize(result)


def _canonical(trace):
    """Trace JSONL with real-wall-clock fields stripped.

    ``wall_seconds`` (span timing) and the ``gp.fit_seconds``
    histogram measure host compute time: nondeterministic across runs
    regardless of contracts, and irrelevant to decision identity.
    """
    lines = []
    for line in trace.to_jsonl().splitlines():
        doc = json.loads(line)
        if doc["kind"] == "span":
            doc.pop("wall_seconds", None)
        elif doc["kind"] == "metrics":
            doc["data"] = {
                k: v for k, v in doc["data"].items()
                if "seconds" not in k or k.endswith("_total")
            }
        lines.append(json.dumps(doc, sort_keys=True))
    return "\n".join(lines)


class TestDecisionIdentity:
    def test_contracts_do_not_change_the_search(self, monkeypatch):
        monkeypatch.setenv(contracts.ENV_VAR, "1")
        with_contracts = _canonical(_run_search())
        monkeypatch.setenv(contracts.ENV_VAR, "0")
        without = _canonical(_run_search())
        assert with_contracts == without
