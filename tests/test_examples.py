"""Every example script runs end-to-end without error."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
