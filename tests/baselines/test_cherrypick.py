"""CherryPick: trimmed space, 10% EI stop."""

import numpy as np
import pytest

from repro.baselines.cherrypick import CherryPick
from repro.core.engine import SearchContext
from repro.core.scenarios import Scenario
from repro.core.search_space import Deployment


@pytest.fixture
def context(small_space, profiler, charrnn_job):
    return SearchContext(
        space=small_space,
        profiler=profiler,
        job=charrnn_job,
        scenario=Scenario.fastest(),
    )


class TestTrimming:
    def test_search_confined_to_allowed_types(self, context):
        strategy = CherryPick(seed=0, allowed_types=["c5.4xlarge"])
        result = strategy.search(context)
        assert all(
            t.deployment.instance_type == "c5.4xlarge"
            for t in result.trials
        )

    def test_initial_design_respects_allowlist(self, context):
        strategy = CherryPick(seed=0, allowed_types=["c5.xlarge"])
        initial = strategy.initial_deployments(context)
        assert all(d.instance_type == "c5.xlarge" for d in initial)

    def test_empty_allowlist_intersection_rejected(self, context):
        strategy = CherryPick(seed=0, allowed_types=["m5.24xlarge"])
        with pytest.raises(ValueError, match="excludes"):
            strategy.initial_deployments(context)

    def test_none_allowlist_keeps_full_space(self, context):
        strategy = CherryPick(seed=0, allowed_types=None)
        from repro.core.engine import GPSearchEngine
        engine = GPSearchEngine(context)
        assert len(strategy.candidate_deployments(context, engine)) == len(
            context.space
        )


class TestStopThreshold:
    def test_default_is_ten_percent(self):
        assert CherryPick().ei_threshold == pytest.approx(np.log2(1.1))

    def test_stops_earlier_than_convbo(self, small_space, charrnn_job,
                                       small_catalog, simulator):
        """The coarser threshold means fewer probes than ConvBO on the
        same world."""
        from repro.baselines.convbo import ConvBO
        from repro.cloud.provider import SimulatedCloud
        from repro.profiling.profiler import Profiler
        from repro.sim.noise import NoiseModel

        def run(strategy):
            cloud = SimulatedCloud(small_catalog)
            profiler = Profiler(
                cloud, simulator, noise=NoiseModel(sigma=0.03, seed=5)
            )
            context = SearchContext(
                space=small_space, profiler=profiler,
                job=charrnn_job, scenario=Scenario.fastest(),
            )
            return strategy.search(context)

        cherry = run(CherryPick(seed=5, max_steps=25))
        conv = run(ConvBO(seed=5, max_steps=25))
        assert cherry.n_steps <= conv.n_steps
