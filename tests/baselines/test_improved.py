"""Budget-aware strengthened baselines (BO_imprd / CP_imprd)."""

import pytest

from repro.baselines.improved import BudgetAwareCherryPick, BudgetAwareConvBO
from repro.core.engine import SearchContext
from repro.core.scenarios import Scenario


@pytest.fixture
def make_context(small_space, profiler, charrnn_job):
    def _make(scenario):
        return SearchContext(
            space=small_space,
            profiler=profiler,
            job=charrnn_job,
            scenario=scenario,
        )
    return _make


class TestBudgetAwareConvBO:
    def test_name(self):
        assert BudgetAwareConvBO().name == "bo_imprd"

    def test_stops_to_protect_incumbent(self, make_context):
        """Once a feasible incumbent exists, the next probe never eats
        the money needed to train it."""
        budget = 40.0
        context = make_context(Scenario.fastest_within(budget))
        result = BudgetAwareConvBO(seed=0, max_steps=20).search(context)
        if result.best is not None:
            train = context.train_dollars(
                result.best, result.best_measured_speed
            )
            assert result.profile_dollars + train <= budget * 1.02

    def test_unconstrained_behaves_like_convbo(self, make_context):
        from repro.baselines.convbo import ConvBO

        context = make_context(Scenario.fastest())
        improved = BudgetAwareConvBO(seed=0, max_steps=8).search(context)
        # fresh world for vanilla ConvBO
        assert improved.n_steps >= 3  # budget-awareness is a no-op here

    def test_selection_accounts_for_spend(self, make_context):
        """Unlike ConvBO, selection subtracts money already spent."""
        budget = 35.0
        context = make_context(Scenario.fastest_within(budget))
        result = BudgetAwareConvBO(seed=1, max_steps=15).search(context)
        if result.best is not None:
            train = context.train_dollars(
                result.best, result.best_measured_speed
            )
            assert result.profile_dollars + train <= budget * 1.02


class TestBudgetAwareCherryPick:
    def test_name(self):
        assert BudgetAwareCherryPick().name == "cp_imprd"

    def test_respects_allowlist_and_budget(self, make_context):
        budget = 40.0
        context = make_context(Scenario.fastest_within(budget))
        strategy = BudgetAwareCherryPick(
            seed=0, allowed_types=["c5.4xlarge"], max_steps=15
        )
        result = strategy.search(context)
        assert all(
            t.deployment.instance_type == "c5.4xlarge"
            for t in result.trials
        )
        if result.best is not None:
            train = context.train_dollars(
                result.best, result.best_measured_speed
            )
            assert result.profile_dollars + train <= budget * 1.02

    def test_deadline_scenario_protects_time(self, make_context):
        deadline = 10 * 3600.0
        context = make_context(Scenario.cheapest_within(deadline))
        result = BudgetAwareCherryPick(seed=0, max_steps=15).search(context)
        if result.best is not None:
            train = context.train_seconds(
                result.best, result.best_measured_speed
            )
            assert result.profile_seconds + train <= deadline * 1.02
