"""ConvBO: random init, uniform-cost acquisition, naive selection."""

import pytest

from repro.baselines.convbo import ConvBO
from repro.core.engine import SearchContext
from repro.core.scenarios import Scenario
from repro.core.search_space import Deployment


@pytest.fixture
def make_context(small_space, profiler, charrnn_job):
    def _make(scenario=None):
        return SearchContext(
            space=small_space,
            profiler=profiler,
            job=charrnn_job,
            scenario=scenario or Scenario.fastest(),
        )
    return _make


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="n_initial"):
            ConvBO(n_initial=0)
        with pytest.raises(ValueError, match="ei_threshold"):
            ConvBO(ei_threshold=-1.0)


class TestInitialDesign:
    def test_random_initial_count(self, make_context):
        initial = ConvBO(n_initial=3, seed=0).initial_deployments(
            make_context()
        )
        assert len(initial) == 3
        assert len(set(initial)) == 3

    def test_seed_controls_design(self, make_context):
        a = ConvBO(seed=0).initial_deployments(make_context())
        b = ConvBO(seed=1).initial_deployments(make_context())
        c = ConvBO(seed=0).initial_deployments(make_context())
        assert a == c
        assert a != b

    def test_initial_design_scale_oblivious(self, make_context):
        """Unlike HeterBO, random init routinely lands on multi-node
        deployments (this is what makes ConvBO's first steps costly)."""
        context = make_context()
        picks = []
        for seed in range(20):
            picks.extend(
                ConvBO(n_initial=3, seed=seed).initial_deployments(context)
            )
        assert any(d.count > 4 for d in picks)


class TestSearch:
    def test_completes_and_selects(self, make_context):
        result = ConvBO(seed=0, max_steps=12).search(make_context())
        assert result.best is not None
        assert result.stop_reason

    def test_converges_to_good_deployment(self, make_context):
        context = make_context()
        result = ConvBO(seed=0, max_steps=20).search(context)
        sim = context.profiler.simulator
        catalog = context.space.catalog
        best_true = max(
            sim.true_speed(catalog[d.instance_type], d.count, context.job)
            for d in context.space
            if sim.is_feasible(catalog[d.instance_type], d.count, context.job)
        )
        chosen_true = sim.true_speed(
            catalog[result.best.instance_type], result.best.count, context.job
        )
        assert chosen_true > 0.6 * best_true

    def test_constraint_oblivious_exploration(self, make_context):
        """ConvBO's probes ignore the budget entirely: with a tiny
        budget it spends like there is no budget at all."""
        tiny = ConvBO(seed=0, max_steps=10).search(
            make_context(Scenario.fastest_within(1.0))
        )
        assert tiny.profile_dollars > 1.0  # blew straight past it


class TestNaiveSelection:
    def test_budget_check_is_train_only(self, make_context):
        """ConvBO validates the budget against training cost alone,
        ignoring what profiling consumed — the paper's overrun
        mechanism."""
        budget = 40.0
        context = make_context(Scenario.fastest_within(budget))
        result = ConvBO(seed=0, max_steps=12).search(context)
        assert result.best is not None
        train = context.train_dollars(result.best, result.best_measured_speed)
        # the *training* fits ...
        assert train <= budget * 1.05
        # ... but no guarantee on train + profiling (usually violated;
        # at minimum ConvBO makes no attempt to reserve)
        assert result.profile_dollars > 0
