"""Paleo: zero-cost analytical selection and its blind spots."""

import pytest

from repro.baselines.paleo import Paleo
from repro.core.engine import SearchContext
from repro.core.scenarios import Scenario
from repro.core.search_space import Deployment


@pytest.fixture
def make_context(small_space, profiler, charrnn_job):
    def _make(scenario=None):
        return SearchContext(
            space=small_space,
            profiler=profiler,
            job=charrnn_job,
            scenario=scenario or Scenario.fastest(),
        )
    return _make


class TestZeroProfiling:
    def test_no_trials_no_cost(self, make_context):
        result = Paleo().search(make_context())
        assert result.trials == ()
        assert result.profile_seconds == 0.0
        assert result.profile_dollars == 0.0
        assert result.best is not None

    def test_cloud_untouched(self, make_context):
        context = make_context()
        Paleo().search(context)
        assert context.profiler.cloud.elapsed() == 0.0
        assert context.profiler.cloud.total_spend() == 0.0


class TestAnalyticalModel:
    def test_predicted_speed_positive_for_feasible(self, make_context):
        context = make_context()
        speed = Paleo().predicted_speed(context, Deployment("c5.4xlarge", 4))
        assert speed > 0

    def test_over_batch_deployment_zero(self, make_context):
        context = make_context()
        d = Deployment("c5.xlarge", context.job.batch + 1)
        assert Paleo().predicted_speed(context, d) == 0.0

    def test_no_latency_terms_means_monotone_scale_out(self, make_context):
        """Paleo's blindness: without incast/latency its predicted
        speed never declines with n — it cannot see the down-slope
        HeterBO's prior exploits."""
        context = make_context()
        paleo = Paleo()
        speeds = [
            paleo.predicted_speed(context, Deployment("c5.4xlarge", n))
            for n in range(1, 33)
        ]
        assert all(b >= a * 0.999 for a, b in zip(speeds, speeds[1:]))

    def test_overestimates_rnn_on_gpu(self, make_context):
        """Paleo's CNN-calibrated utilisation overrates GPUs for RNNs
        relative to the (family-aware) ground truth."""
        context = make_context()
        d = Deployment("p2.xlarge", 4)
        predicted = Paleo().predicted_speed(context, d)
        truth = context.profiler.simulator.true_speed(
            context.space.catalog["p2.xlarge"], 4, context.job
        )
        assert predicted > 1.5 * truth


class TestSelection:
    def test_respects_constraint_in_prediction_space(self, make_context):
        """Paleo filters by its *predicted* costs; its chosen
        deployment is predicted-feasible even if actually worse."""
        context = make_context(Scenario.fastest_within(50.0))
        result = Paleo().search(context)
        assert result.best is not None
        predicted_speed = result.best_measured_speed
        seconds = context.total_samples / predicted_speed
        dollars = seconds * context.price_per_second(result.best)
        assert dollars <= 50.0 * 1.001

    def test_infeasible_space_returns_no_best(self, make_context):
        context = make_context(Scenario.fastest_within(1e-6))
        result = Paleo().search(context)
        assert result.best is None
        assert "no feasible" in result.stop_reason
