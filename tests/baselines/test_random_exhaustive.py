"""RandomSearch, ExhaustiveSearch and the oracle."""

import pytest

from repro.baselines.exhaustive import ExhaustiveSearch, oracle_best
from repro.baselines.random_search import RandomSearch
from repro.core.engine import SearchContext
from repro.core.scenarios import Scenario
from repro.core.search_space import DeploymentSpace
from repro.sim.throughput import TrainingSimulator


@pytest.fixture
def context(small_space, profiler, charrnn_job):
    return SearchContext(
        space=small_space,
        profiler=profiler,
        job=charrnn_job,
        scenario=Scenario.fastest(),
    )


class TestRandomSearch:
    def test_probes_exactly_k(self, context):
        result = RandomSearch(n_probes=5, seed=0).search(context)
        assert result.n_steps == 5

    def test_zero_probes_rejected(self):
        with pytest.raises(ValueError, match="n_probes"):
            RandomSearch(n_probes=0)

    def test_picks_best_probe(self, context):
        result = RandomSearch(n_probes=6, seed=0).search(context)
        speeds = [t.measured_speed for t in result.trials]
        assert result.best_measured_speed == max(speeds)

    def test_seeds_vary_designs(self, context):
        a = RandomSearch(n_probes=4, seed=0).initial_deployments(context)
        b = RandomSearch(n_probes=4, seed=3).initial_deployments(context)
        assert a != b

    def test_k_capped_at_space_size(self, small_catalog, profiler,
                                    charrnn_job):
        space = DeploymentSpace(small_catalog, counts=[1, 2])
        context = SearchContext(
            space=space, profiler=profiler,
            job=charrnn_job, scenario=Scenario.fastest(),
        )
        result = RandomSearch(n_probes=100, seed=0).search(context)
        assert result.n_steps == len(space)


class TestExhaustiveSearch:
    def test_full_grid_coverage(self, small_catalog, profiler, charrnn_job):
        space = DeploymentSpace(small_catalog, counts=[1, 2, 4])
        context = SearchContext(
            space=space, profiler=profiler,
            job=charrnn_job, scenario=Scenario.fastest(),
        )
        result = ExhaustiveSearch().search(context)
        assert result.n_steps == len(space)

    def test_stride_subsamples(self, context):
        result = ExhaustiveSearch(count_stride=10).search(context)
        expected = len(context.space.counts[::10]) * 3
        assert result.n_steps == expected

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError, match="count_stride"):
            ExhaustiveSearch(count_stride=0)


class TestOracle:
    def test_oracle_beats_everything_probed(self, context):
        d, speed, obj = oracle_best(
            context.space, context.profiler.simulator, context.job,
            Scenario.fastest(),
        )
        sim = context.profiler.simulator
        catalog = context.space.catalog
        for cand in context.space:
            itype = catalog[cand.instance_type]
            if sim.is_feasible(itype, cand.count, context.job):
                assert speed >= sim.true_speed(itype, cand.count, context.job)

    def test_oracle_respects_budget(self, small_space, simulator,
                                    charrnn_job):
        scenario = Scenario.fastest_within(30.0)
        d, speed, obj = oracle_best(
            small_space, simulator, charrnn_job, scenario
        )
        seconds = charrnn_job.total_samples / speed
        dollars = seconds * small_space.hourly_price(d) / 3600.0
        assert dollars <= 30.0

    def test_oracle_respects_deadline(self, small_space, simulator,
                                      charrnn_job):
        scenario = Scenario.cheapest_within(4 * 3600.0)
        d, speed, obj = oracle_best(
            small_space, simulator, charrnn_job, scenario
        )
        assert charrnn_job.total_samples / speed <= 4 * 3600.0
        assert obj == pytest.approx(
            (charrnn_job.total_samples / speed)
            * small_space.hourly_price(d) / 3600.0
        )

    def test_impossible_constraint_raises(self, small_space, simulator,
                                          charrnn_job):
        with pytest.raises(ValueError, match="no feasible"):
            oracle_best(
                small_space, simulator, charrnn_job,
                Scenario.fastest_within(1e-9),
            )
