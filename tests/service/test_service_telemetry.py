"""Service-scope telemetry: determinism, read-only discipline, SLOs.

The two load-bearing guarantees (docs/service.md):

- identical multi-tenant replays produce a **byte-identical**
  ``kind=service`` stream (simulated clock + monotonic seq);
- telemetry on vs. off leaves every per-job canonical trace
  **byte-identical** — service recording is read-only over
  scheduling.

Plus the satellite regressions: lifecycle timestamps in ``status()``,
``/svcstats`` + ``/metrics`` over HTTP, and the cancel-storm test that
cancelled jobs release capacity in the same tick.
"""

import json

import pytest

from repro.cloud.provider import AccountLimits
from repro.obs import SearchTrace
from repro.perf.bench import canonical_trace_jsonl
from repro.service import (
    JobSpec,
    MLCDJobService,
    ServiceClient,
    ServiceHTTPServer,
    TenantQuota,
)

CATALOG = ("c5.xlarge", "c5.4xlarge", "c4.xlarge")

#: A contended multi-tenant workload: 4-node probes against 8 CPUs.
_WORKLOAD = (
    ("alice", 5, 4),
    ("bob", 4, 4),
    ("carol", 6, 2),
    ("alice", 4, 1),
)


def spec(tenant, max_steps=5, max_count=8, **overrides):
    defaults = dict(
        tenant=tenant,
        model="char-rnn",
        dataset="char-corpus",
        max_steps=max_steps,
        max_count=max_count,
        catalog=CATALOG,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


def replay(tmp_path, name, *, telemetry=True, profile=False):
    service = MLCDJobService(
        artifacts_dir=tmp_path / name,
        limits=AccountLimits(max_cpu_instances=8, max_gpu_instances=0),
        workers=4,
        telemetry=telemetry,
        profile=profile,
    )
    for tenant, steps, count in _WORKLOAD:
        service.submit(spec(tenant, max_steps=steps, max_count=count))
    service.run_until_idle()
    service.close_telemetry()
    return service


def job_traces(service):
    """Canonicalised per-job artifacts, keyed by file name."""
    return {
        path.name: canonical_trace_jsonl(SearchTrace.load(path))
        for path in sorted(service.artifacts_dir.glob("*.trace.jsonl"))
        if path.name != "service.trace.jsonl"
    }


class TestDeterminism:
    def test_identical_replays_yield_byte_identical_service_stream(
        self, tmp_path
    ):
        first = replay(tmp_path, "a")
        second = replay(tmp_path, "b")
        blob = first.service_trace_path.read_bytes()
        assert blob == second.service_trace_path.read_bytes()
        assert blob  # the stream actually recorded something

    def test_telemetry_off_leaves_job_traces_byte_identical(
        self, tmp_path
    ):
        on = replay(tmp_path, "on", telemetry=True)
        off = replay(tmp_path, "off", telemetry=False)
        on_traces, off_traces = job_traces(on), job_traces(off)
        assert set(on_traces) == set(off_traces)
        assert len(on_traces) == len(_WORKLOAD)
        for name in on_traces:
            assert on_traces[name] == off_traces[name], name
        # ...and the telemetry-off daemon wrote no service stream
        assert not off.service_trace_path.exists()

    def test_service_stream_is_pure_kind_service_plus_envelope(
        self, tmp_path
    ):
        service = replay(tmp_path, "kinds")
        kinds = set()
        events = []
        for line in service.service_trace_path.read_text().splitlines():
            doc = json.loads(line)
            kinds.add(doc["kind"])
            if doc["kind"] == "service":
                events.append(doc)
        assert "service" in kinds
        assert kinds <= {"header", "service", "progress", "metrics"}
        # monotonic seq, monotonic simulated time
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        times = [e["time"] for e in events]
        assert times == sorted(times)
        # the full lifecycle appears for at least one job
        names = {e["event"] for e in events}
        assert {"submitted", "started", "dispatched", "done"} <= names


class TestProfiledReplayIdentity:
    """Daemon replay with self-profiling on: sidecar only, no bytes."""

    def test_profiled_replay_changes_no_trace_bytes(self, tmp_path):
        on = replay(tmp_path, "on", telemetry=True)
        prof = replay(tmp_path, "prof", telemetry=True, profile=True)
        # per-job canonical traces AND the raw service stream match
        assert job_traces(prof) == job_traces(on)
        assert (
            prof.service_trace_path.read_bytes()
            == on.service_trace_path.read_bytes()
        )

    def test_profile_document_aggregates_daemon_and_jobs(self, tmp_path):
        service = replay(tmp_path, "ledger", profile=True)
        doc = service.profile_document()
        assert doc["kind"] == "profile"
        # daemon-side phases plus per-job search phases in one ledger
        assert "scheduler.tick" in doc["phases"]
        assert "gp.fit.full" in doc["phases"]
        assert doc["phases"]["scheduler.tick"]["count"] >= 1

    def test_write_profile_defaults_into_artifacts_dir(self, tmp_path):
        from repro.obs import load_profile

        service = replay(tmp_path, "sidecar", profile=True)
        path = service.write_profile()
        assert path == service.artifacts_dir / "profile.json"
        assert load_profile(path)["phases"]

    def test_unprofiled_daemon_has_an_empty_ledger(self, tmp_path):
        service = replay(tmp_path, "plain", profile=False)
        assert service.profile_document()["phases"] == {}


class TestLifecycleTimestamps:
    def test_status_carries_transition_timestamps(self, tmp_path):
        service = replay(tmp_path, "ts")
        for status in service.list_jobs():
            stamps = status["timestamps"]
            assert {"submitted", "started", "first_dispatched",
                    "finished"} <= set(stamps)
            assert (stamps["submitted"] <= stamps["started"]
                    <= stamps["first_dispatched"]
                    <= stamps["last_dispatched"]
                    <= stamps["finished"])
            # queueing delay is computable from the status dict alone
            assert status["queue_delay_seconds"] == pytest.approx(
                stamps["first_dispatched"] - stamps["submitted"]
            )
            assert status["dispatches"] >= 1

    def test_queueing_histograms_cover_every_job(self, tmp_path):
        service = replay(tmp_path, "lat")
        stats = service.svcstats()
        assert stats["queueing"]["count"] == len(_WORKLOAD)
        assert stats["queueing"]["p99"] >= stats["queueing"]["p50"] >= 0
        assert stats["dispatch"]["count"] >= len(_WORKLOAD)

    def test_capacity_contention_is_counted_and_waited_out(
        self, tmp_path
    ):
        # a one-instance account admits exactly one single-node probe
        # per tick: two jobs must take strict turns, so every round
        # one of them defers — deterministic, GP-independent contention
        service = MLCDJobService(
            artifacts_dir=tmp_path / "contend",
            limits=AccountLimits(
                max_cpu_instances=1, max_gpu_instances=0
            ),
            workers=4,
        )
        for tenant in ("alice", "bob"):
            service.submit(spec(tenant, max_steps=3, max_count=1))
        service.run_until_idle()
        stats = service.svcstats()
        assert stats["contention"]["reservation_conflicts"] > 0
        # deferred probes carry their wait into the dispatch histogram
        assert stats["dispatch"]["p99"] > 0

    def test_rolled_up_job_metrics_reach_service_registry(self, tmp_path):
        service = replay(tmp_path, "rollup")
        probes = service.metrics.get("svc.probes_total")
        assert probes is not None
        # every job clears at least its 3-probe initial design (jobs
        # may stop before max_steps, so the exact total varies)
        assert probes.total() >= 3 * len(_WORKLOAD)
        dollars = service.metrics.get("svc.probe_dollars_total")
        assert dollars is not None and dollars.total() > 0

    def test_slo_status_present_in_svcstats(self, tmp_path):
        service = replay(tmp_path, "slo")
        rows = service.svcstats()["slos"]
        assert [r["name"] for r in rows] == [
            "dispatch-p99", "queue-delay-p99", "admission-error-budget",
        ]
        dispatch = rows[0]
        assert dispatch["evaluated_ticks"] > 0
        assert dispatch["attainment"] == pytest.approx(1.0)


class TestCancelStorm:
    def test_cancel_storm_never_strands_capacity(self, tmp_path):
        service = MLCDJobService(
            artifacts_dir=tmp_path / "storm",
            limits=AccountLimits(
                max_cpu_instances=8, max_gpu_instances=0
            ),
            workers=4,
        )
        doomed = [
            service.submit(spec(t, max_steps=6, max_count=4))
            for t in ("alice", "bob", "carol", "alice")
        ]
        service.tick()  # start + dispatch into the shared capacity
        for job_id in doomed:
            assert service.cancel(job_id) is True
        # released in the same call: the gauges already read zero
        # before any further tick
        running = service.metrics.get("svc.jobs_running")
        assert all(
            running.value(tenant=t) == 0.0
            for t in ("alice", "bob", "carol")
        )
        # a fresh wave must find the full capacity available
        fresh = [
            service.submit(spec(t, max_steps=4, max_count=4))
            for t in ("bob", "carol")
        ]
        before = service.svcstats()["contention"]["reservation_conflicts"]
        service.run_until_idle()
        for job_id in fresh:
            assert service.status(job_id)["state"] == "done"
        after = service.svcstats()["contention"]["reservation_conflicts"]
        # two 4-node jobs fit 8 CPUs exactly: stranded reservations
        # from the cancelled wave would show up as new conflicts
        assert after == before
        for job_id in doomed:
            assert service.status(job_id)["state"] == "cancelled"

    def test_cancelled_job_artifact_is_complete(self, tmp_path):
        service = MLCDJobService(artifacts_dir=tmp_path / "c")
        job_id = service.submit(spec("alice"))
        service.tick()
        service.cancel(job_id)
        trace = SearchTrace.load(service.status(job_id)["trace_path"])
        assert trace.stop_reason == "cancelled"

    def test_budget_stop_emits_its_own_terminal_event(self, tmp_path):
        service = MLCDJobService(artifacts_dir=tmp_path / "b")
        service.register_tenant(
            "alice", TenantQuota(budget_dollars=0.01)
        )
        job_id = service.submit(spec("alice"))
        service.run_until_idle()
        assert service.status(job_id)["state"] == "budget-stopped"
        events = [e.event for e in service.svc.events]
        assert "budget-stopped" in events
        finished = service.metrics.get("svc.jobs_finished_total")
        assert finished.value(state="budget-stopped") == 1


class TestHTTPEndpoints:
    def test_svcstats_and_metrics_served(self, tmp_path):
        import urllib.request

        service = MLCDJobService(artifacts_dir=tmp_path / "http")
        service.register_tenant(
            "alice", TenantQuota(budget_dollars=50.0)
        )
        with service, ServiceHTTPServer(service) as server:
            client = ServiceClient(server.url)
            job_id = client.submit(spec("alice", max_steps=4))
            client.wait(job_id, timeout=60.0)
            stats = client.svcstats()
            assert stats["telemetry"] is True
            assert stats["jobs"]["done"] == 1
            alice = stats["tenants"]["alice"]
            assert alice["budget_dollars"] == pytest.approx(50.0)
            assert alice["budget_burn"] == pytest.approx(
                alice["spent_dollars"] / 50.0
            )
            assert stats["queueing"]["count"] == 1
            text = urllib.request.urlopen(
                server.url + "/metrics"
            ).read().decode()
        assert "svc_jobs_running" in text
        assert "svc_queue_delay_seconds" in text
