"""Multi-tenant job service: scheduling, isolation, billing, HTTP.

The deterministic driver is ``tick()`` / ``run_until_idle()`` — no
threads — so capacity contention and tenant-budget failures are exact.
One test exercises the HTTP server + urllib client end to end on an
ephemeral port.
"""

import pytest

from repro.cloud.provider import AccountLimits
from repro.obs import SearchTrace, render_explain
from repro.service import (
    JobSpec,
    MLCDJobService,
    ServiceAdmissionError,
    ServiceClient,
    ServiceHTTPServer,
    TenantQuota,
)
from repro.service.client import ServiceClientError

CATALOG = ("c5.xlarge", "c5.4xlarge", "c4.xlarge")


def spec(tenant="alice", **overrides):
    defaults = dict(
        tenant=tenant,
        model="char-rnn",
        dataset="char-corpus",
        max_steps=5,
        catalog=CATALOG,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


@pytest.fixture
def service(tmp_path):
    return MLCDJobService(artifacts_dir=tmp_path / "runs", workers=2)


class TestLifecycle:
    def test_two_jobs_complete_with_valid_traces(self, service):
        a = service.submit(spec(tenant="alice"))
        b = service.submit(spec(tenant="bob", strategy="parallel-heterbo"))
        service.run_until_idle()

        for job_id in (a, b):
            status = service.status(job_id)
            assert status["state"] == "done"
            assert status["n_trials"] == 5
            result = service.result(job_id)
            assert result["best"] is not None
            assert result["stop_reason"] == "max steps reached"
            # the streamed artifact is complete and self-describing:
            # explain --stop works from the file alone
            trace = SearchTrace.load(result["trace_path"])
            assert trace.stop_reason == "max steps reached"
            assert "max steps reached" in render_explain(trace, stop=True)

    def test_tenant_ledgers_track_per_job_spend(self, service):
        a = service.submit(spec(tenant="alice"))
        b = service.submit(spec(tenant="bob"))
        service.run_until_idle()
        tenants = service.tenants()
        assert tenants["alice"]["spent_dollars"] == pytest.approx(
            service.status(a)["spent_dollars"]
        )
        assert tenants["bob"]["spent_dollars"] == pytest.approx(
            service.status(b)["spent_dollars"]
        )
        assert tenants["alice"]["spent_dollars"] > 0

    def test_events_are_incrementally_readable(self, service):
        job_id = service.submit(spec())
        service.run_until_idle()
        page = service.events(job_id)
        assert page["events"], "streamed artifact should have events"
        assert not page["torn"]
        kinds = {e.get("kind") for e in page["events"]}
        assert {"header", "span", "summary"} <= kinds
        # resuming from the returned offset yields nothing new
        again = service.events(job_id, offset=page["offset"])
        assert again["events"] == []

    def test_cancel_stops_scheduling(self, service):
        job_id = service.submit(spec())
        service.tick()  # start the world
        assert service.cancel(job_id) is True
        assert service.cancel(job_id) is False  # already inactive
        service.run_until_idle()
        status = service.status(job_id)
        assert status["state"] == "cancelled"
        assert status["n_trials"] < 5

    def test_bad_job_fails_without_stalling_service(self, service):
        bad = service.submit(spec(dataset="no-such-dataset"))
        good = service.submit(spec(tenant="bob"))
        service.run_until_idle()
        assert service.status(bad)["state"] == "failed"
        assert "no-such-dataset" in service.status(bad)["error"]
        assert service.status(good)["state"] == "done"


class TestTenantIsolation:
    def test_concurrency_quota_refuses_only_that_tenant(self, service):
        service.register_tenant(
            "alice", TenantQuota(max_concurrent_jobs=1)
        )
        service.submit(spec(tenant="alice"))
        with pytest.raises(ServiceAdmissionError, match="concurrency"):
            service.submit(spec(tenant="alice"))
        # bob is untouched by alice's quota
        service.submit(spec(tenant="bob"))
        service.run_until_idle()
        # finished jobs free the quota slot
        service.submit(spec(tenant="alice"))

    def test_exhausted_budget_never_blocks_other_tenants(self, service):
        service.register_tenant(
            "alice", TenantQuota(budget_dollars=0.01)
        )
        poor = service.submit(spec(tenant="alice"))
        rich = service.submit(spec(tenant="bob"))
        service.run_until_idle()
        # alice's job stops at the first post-spend budget check — a
        # policy stop, not an error, so it gets its own terminal state
        assert service.status(poor)["state"] == "budget-stopped"
        assert "budget exhausted" in service.status(poor)["error"]
        # ...and her exhausted budget refuses *her* next submission...
        with pytest.raises(ServiceAdmissionError, match="budget"):
            service.submit(spec(tenant="alice"))
        # ...while bob's job completed and bob can submit again
        assert service.status(rich)["state"] == "done"
        service.submit(spec(tenant="bob"))

    def test_shared_capacity_serialises_but_completes_all(self, tmp_path):
        # capacity admits only one 8-node probe per tick: jobs take
        # turns on the shared account, but all of them finish
        service = MLCDJobService(
            artifacts_dir=tmp_path / "runs",
            limits=AccountLimits(max_cpu_instances=8, max_gpu_instances=0),
            workers=4,
        )
        jobs = [
            service.submit(spec(tenant=t, max_steps=3, max_count=8))
            for t in ("alice", "bob")
        ]
        service.run_until_idle()
        for job_id in jobs:
            assert service.status(job_id)["state"] == "done"

    def test_oversized_demand_fails_fast(self, tmp_path):
        service = MLCDJobService(
            artifacts_dir=tmp_path / "runs",
            limits=AccountLimits(max_cpu_instances=2, max_gpu_instances=0),
        )
        job_id = service.submit(spec(max_steps=3, max_count=8))
        service.run_until_idle()
        status = service.status(job_id)
        # heterbo's initial design probes every type at n=1, so the
        # job runs until it requests a cluster wider than the account
        assert status["state"] in ("failed", "done")
        if status["state"] == "failed":
            assert "exceeds service capacity" in status["error"]


class TestHTTPRoundTrip:
    def test_submit_status_result_events_over_http(self, tmp_path):
        service = MLCDJobService(artifacts_dir=tmp_path / "runs")
        service.register_tenant(
            "alice", TenantQuota(max_concurrent_jobs=1)
        )
        with service, ServiceHTTPServer(service) as server:
            client = ServiceClient(server.url)
            assert client.healthz() == {"status": "ok"}
            job_id = client.submit(spec(tenant="alice"))
            with pytest.raises(ServiceClientError) as refused:
                client.submit(spec(tenant="alice"))
            assert refused.value.status == 409
            status = client.wait(job_id, timeout=60.0)
            assert status["state"] == "done"
            result = client.result(job_id)
            assert result["stop_reason"] == "max steps reached"
            page = client.events(job_id)
            assert page["events"]
            assert len(client.jobs()) == 1
            assert client.tenants()["alice"]["spent_dollars"] > 0
            with pytest.raises(ServiceClientError) as missing:
                client.status("job-9999")
            assert missing.value.status == 404

    def test_bad_spec_rejected_with_400(self, tmp_path):
        import json
        import urllib.error
        import urllib.request

        service = MLCDJobService(artifacts_dir=tmp_path / "runs")
        with ServiceHTTPServer(service) as server:
            request = urllib.request.Request(
                server.url + "/api/submit",
                data=json.dumps({"tenant": "x", "bogus": 1}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10.0)
            assert err.value.code == 400
