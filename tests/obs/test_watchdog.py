"""Watchdog health rules: triggering, edge semantics, emission."""

import pytest

from repro.obs import (
    NOOP_WATCHDOG,
    MetricsRegistry,
    RecordingTracer,
    StepHealth,
    Watchdog,
    WatchdogConfig,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        WatchdogConfig()

    @pytest.mark.parametrize("kwargs", [
        {"budget_burn_fraction": 0.0},
        {"budget_burn_fraction": 1.5},
        {"ei_window": 1},
        {"lml_window": 1},
        {"ei_rel_tol": -0.1},
        {"gram_condition_limit": 1.0},
        {"protective_margin_fraction": 1.0},
    ])
    def test_bad_thresholds_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WatchdogConfig(**kwargs)


class TestBudgetBurn:
    def test_fires_at_threshold(self):
        dog = Watchdog(WatchdogConfig(budget_burn_fraction=0.8))
        assert dog.observe(StepHealth(consumed=70.0, limit=100.0)) == []
        fired = dog.observe(StepHealth(consumed=85.0, limit=100.0))
        assert [a.rule for a in fired] == ["budget-burn"]
        assert fired[0].detail["fraction"] == pytest.approx(0.85)

    def test_silent_without_limit(self):
        dog = Watchdog()
        assert dog.observe(StepHealth(consumed=1e9, limit=None)) == []


class TestEiStagnation:
    def test_fires_after_flat_window(self):
        dog = Watchdog(WatchdogConfig(ei_window=3, ei_rel_tol=0.05))
        fired = []
        for ei in (0.5, 0.501, 0.502):
            fired = dog.observe(StepHealth(best_feasible_ei=ei))
        assert [a.rule for a in fired] == ["ei-stagnation"]

    def test_moving_ei_stays_quiet(self):
        dog = Watchdog(WatchdogConfig(ei_window=3, ei_rel_tol=0.05))
        for ei in (0.5, 0.4, 0.3, 0.2):
            assert dog.observe(StepHealth(best_feasible_ei=ei)) == []

    def test_zero_ei_never_stagnates(self):
        # EI collapsing to 0 is convergence, not stagnation
        dog = Watchdog(WatchdogConfig(ei_window=2))
        for _ in range(4):
            assert dog.observe(StepHealth(best_feasible_ei=0.0)) == []


class TestSurrogateDegradation:
    def test_condition_number_crossing_fires(self):
        dog = Watchdog(WatchdogConfig(gram_condition_limit=1e6))
        assert dog.observe(StepHealth(gram_condition=1e3)) == []
        fired = dog.observe(StepHealth(gram_condition=1e7))
        assert [a.rule for a in fired] == ["surrogate-degradation"]
        assert "condition" in fired[0].message

    def test_non_finite_condition_fires(self):
        dog = Watchdog()
        fired = dog.observe(StepHealth(gram_condition=float("inf")))
        assert [a.rule for a in fired] == ["surrogate-degradation"]

    def test_declining_lml_trend_fires(self):
        dog = Watchdog(WatchdogConfig(lml_window=3))
        fired = []
        for i, lml in enumerate((-1.0, -2.5, -4.5)):
            fired = dog.observe(StepHealth(
                log_marginal_likelihood=lml, n_observations=i + 5,
            ))
        assert [a.rule for a in fired] == ["surrogate-degradation"]
        assert "likelihood" in fired[0].message

    def test_improving_lml_stays_quiet(self):
        dog = Watchdog(WatchdogConfig(lml_window=3))
        for i, lml in enumerate((-4.0, -3.0, -2.0, -1.0)):
            assert dog.observe(StepHealth(
                log_marginal_likelihood=lml, n_observations=i + 5,
            )) == []


class TestProtectiveMargin:
    def test_thin_slack_fires(self):
        dog = Watchdog(WatchdogConfig(protective_margin_fraction=0.05))
        ok = StepHealth(consumed=10.0, limit=100.0, incumbent_cost=50.0)
        assert dog.observe(ok) == []
        tight = StepHealth(consumed=47.0, limit=100.0, incumbent_cost=50.0)
        fired = dog.observe(tight)
        assert [a.rule for a in fired] == ["protective-margin"]
        assert fired[0].detail["slack_fraction"] == pytest.approx(0.03)

    def test_needs_positive_incumbent_cost(self):
        dog = Watchdog()
        health = StepHealth(consumed=99.0, limit=100.0, incumbent_cost=0.0)
        assert [a.rule for a in dog.observe(health)] == ["budget-burn"]


class TestEdgeTriggering:
    def test_sustained_condition_fires_once(self):
        dog = Watchdog(WatchdogConfig(budget_burn_fraction=0.5))
        for consumed in (60.0, 70.0, 80.0):
            dog.observe(StepHealth(consumed=consumed, limit=100.0))
        assert len(dog.anomalies) == 1

    def test_rearms_after_condition_clears(self):
        dog = Watchdog(WatchdogConfig(gram_condition_limit=1e6))
        dog.observe(StepHealth(gram_condition=1e7))
        dog.observe(StepHealth(gram_condition=1e2))  # clears, re-arms
        dog.observe(StepHealth(gram_condition=1e8))
        assert [a.rule for a in dog.anomalies] == [
            "surrogate-degradation", "surrogate-degradation",
        ]

    def test_steps_auto_number_when_unset(self):
        dog = Watchdog(WatchdogConfig(budget_burn_fraction=0.5))
        dog.observe(StepHealth(consumed=10.0, limit=100.0))
        dog.observe(StepHealth(consumed=90.0, limit=100.0))
        assert dog.anomalies[0].step == 2

    def test_explicit_step_wins(self):
        dog = Watchdog(WatchdogConfig(budget_burn_fraction=0.5))
        dog.observe(StepHealth(step=17, consumed=90.0, limit=100.0))
        assert dog.anomalies[0].step == 17


class TestEmission:
    def test_anomaly_span_and_counter(self):
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        dog = Watchdog(
            WatchdogConfig(budget_burn_fraction=0.5),
            tracer=tracer, metrics=metrics,
        )
        dog.observe(StepHealth(step=4, consumed=90.0, limit=100.0))
        spans = [s for s in tracer.spans if s.name == "anomaly"]
        assert len(spans) == 1
        assert spans[0].attributes["rule"] == "budget-burn"
        assert spans[0].attributes["step"] == 4
        assert spans[0].attributes["detail.fraction"] == pytest.approx(0.9)
        counter = metrics.counter("watchdog.anomalies_total")
        assert counter.value(rule="budget-burn") == 1.0

    def test_deterministic_for_identical_streams(self):
        def feed(dog):
            for consumed, ei in ((10, 0.5), (50, 0.49), (85, 0.5), (95, 0.1)):
                dog.observe(StepHealth(
                    consumed=float(consumed), limit=100.0,
                    best_feasible_ei=ei,
                ))
            return [(a.rule, a.step) for a in dog.anomalies]

        assert feed(Watchdog()) == feed(Watchdog())

    def test_noop_watchdog_is_inert(self):
        assert NOOP_WATCHDOG.enabled is False
        assert NOOP_WATCHDOG.observe(
            StepHealth(consumed=99.0, limit=100.0)
        ) == []
        assert NOOP_WATCHDOG.anomalies == ()
