"""The search narrates itself through spans and metrics.

Companion to ``tests/test_logging.py``: same worlds, but asserting on
the structured telemetry instead of log lines.
"""

import pytest

from repro.core.engine import SearchContext
from repro.core.heterbo import HeterBO
from repro.core.parallel import ParallelHeterBO
from repro.core.scenarios import Scenario
from repro.obs import MetricsRegistry, RecordingTracer, RunRecorder
from repro.profiling.profiler import Profiler
from repro.sim.noise import NoiseModel


@pytest.fixture
def recorder(cloud) -> RunRecorder:
    return RunRecorder(clock=lambda: cloud.clock.now)


@pytest.fixture
def context(small_space, cloud, simulator, charrnn_job, recorder):
    profiler = Profiler(
        cloud, simulator, noise=NoiseModel(sigma=0.03, seed=0),
        tracer=recorder.tracer, metrics=recorder.metrics,
    )
    # $30 is tight enough that every protective filter (prior, POI,
    # reserve, TEI) prunes at least once on this world
    return SearchContext(
        space=small_space,
        profiler=profiler,
        job=charrnn_job,
        scenario=Scenario.fastest_within(30.0),
        tracer=recorder.tracer,
        metrics=recorder.metrics,
    )


class TestSpanEmission:
    def test_one_probe_span_per_trial_with_cost(self, context, recorder):
        result = HeterBO(seed=1).search(context)
        probes = recorder.tracer.find("probe")
        assert len(probes) == len(result.trials)
        for span, trial in zip(probes, result.trials):
            assert span.attributes["cost_usd"] == pytest.approx(
                trial.profile_dollars
            )
            assert span.attributes["deployment"] == str(trial.deployment)

    def test_probe_dollars_reconcile_with_billing_ledger(
        self, context, recorder, cloud
    ):
        result = HeterBO(seed=1).search(context)
        trace = recorder.finalize(result)
        assert trace.probe_dollars_total == pytest.approx(
            cloud.total_spend("profiling")
        )

    def test_span_taxonomy_nests(self, context, recorder):
        HeterBO(seed=1).search(context)
        tracer = recorder.tracer
        roots = list(tracer.iter_roots())
        assert [s.name for s in roots] == ["search"]
        search = roots[0]
        steps = tracer.children(search)
        assert steps and all(s.name == "step" for s in steps)
        explore = [
            s for s in steps if s.attributes.get("phase") == "explore"
        ]
        assert explore
        child_names = {c.name for c in tracer.children(explore[0])}
        assert "gp-fit" in child_names
        assert "candidate-scoring" in child_names

    def test_profile_spans_nest_under_probe_spans(self, context, recorder):
        HeterBO(seed=1).search(context)
        tracer = recorder.tracer
        for probe in tracer.find("probe"):
            names = [c.name for c in tracer.children(probe)]
            assert names == ["profile"]

    def test_search_span_records_outcome(self, context, recorder):
        result = HeterBO(seed=1).search(context)
        (search,) = recorder.tracer.find("search")
        assert search.attributes["strategy"] == "heterbo"
        assert search.attributes["stop_reason"] == result.stop_reason
        assert search.attributes["n_steps"] == len(result.trials)
        assert search.attributes["best"] == str(result.best)

    def test_spans_timed_on_simulated_clock(self, context, recorder, cloud):
        HeterBO(seed=1).search(context)
        (search,) = recorder.tracer.find("search")
        assert search.duration == pytest.approx(cloud.elapsed())
        # computation costs no simulated time but real wall time
        fits = recorder.tracer.find("gp-fit")
        assert fits and all(f.duration == 0.0 for f in fits)
        assert all(f.wall_seconds > 0.0 for f in fits)


class TestMetricsEmission:
    def test_probe_counters(self, context, recorder):
        result = HeterBO(seed=1).search(context)
        metrics = recorder.metrics
        probes = metrics.counter("search.probes_total")
        assert probes.total() == len(result.trials)
        dollars = metrics.counter("search.probe_dollars_total")
        assert dollars.total() == pytest.approx(result.profile_dollars)
        # per-instance-type attribution covers the whole spend
        by_type = {
            tuple(labels.items()): dollars.value(**labels)
            for labels in dollars.labelsets()
        }
        assert len(by_type) >= 2

    def test_gp_fit_metrics(self, context, recorder):
        HeterBO(seed=1).search(context)
        metrics = recorder.metrics
        n_fits = metrics.counter("gp.fit_total").total()
        assert n_fits >= 1
        stats = metrics.histogram("gp.fit_seconds").stats()
        assert stats.count == n_fits
        assert stats.total > 0.0

    def test_pruning_counters(self, context, recorder):
        HeterBO(seed=2).search(context)
        pruned = recorder.metrics.counter("search.candidates_pruned_total")
        # the Char-RNN curve declines in range, so the concave prior
        # must prune, and the budget forces reserve blocking
        assert pruned.value(reason="prior") > 0
        assert pruned.value(reason="reserve") > 0

    def test_steps_to_stop_gauge(self, context, recorder):
        result = HeterBO(seed=1).search(context)
        gauge = recorder.metrics.gauge("search.steps_to_stop")
        assert gauge.value(strategy="heterbo") == len(result.trials)


class TestNoopDefault:
    def _run(self, small_space, small_catalog, charrnn_job, tracer=None,
             metrics=None):
        from repro.cloud.provider import SimulatedCloud
        from repro.sim.throughput import TrainingSimulator

        cloud = SimulatedCloud(small_catalog)
        kwargs = {}
        if tracer is not None:
            kwargs["tracer"] = tracer
        if metrics is not None:
            kwargs["metrics"] = metrics
        profiler = Profiler(
            cloud, TrainingSimulator(),
            noise=NoiseModel(sigma=0.03, seed=0), **kwargs,
        )
        context = SearchContext(
            space=small_space,
            profiler=profiler,
            job=charrnn_job,
            scenario=Scenario.fastest_within(80.0),
            **kwargs,
        )
        return HeterBO(seed=1).search(context)

    def test_tracing_does_not_change_the_search(
        self, small_space, small_catalog, charrnn_job
    ):
        plain = self._run(small_space, small_catalog, charrnn_job)
        tracer = RecordingTracer()
        traced = self._run(
            small_space, small_catalog, charrnn_job,
            tracer=tracer, metrics=MetricsRegistry(),
        )
        assert traced == plain
        assert tracer.spans  # the traced run really recorded

    def test_default_context_uses_shared_noop_tracer(
        self, small_space, profiler, charrnn_job
    ):
        from repro.obs import NOOP_TRACER

        context = SearchContext(
            space=small_space, profiler=profiler, job=charrnn_job,
            scenario=Scenario.fastest(),
        )
        assert context.tracer is NOOP_TRACER


class TestParallelInstrumentation:
    def test_batched_probe_spans(self, context, recorder):
        result = ParallelHeterBO(seed=1, batch_size=2).search(context)
        probes = recorder.tracer.find("probe")
        assert len(probes) == len(result.trials)
        assert all(p.attributes.get("batched") for p in probes)
        trace = recorder.finalize(result)
        assert trace.probe_dollars_total == pytest.approx(
            result.profile_dollars
        )


class TestBackfillIntoCloudWatch:
    def test_search_metrics_land_in_the_store(self, context, recorder, cloud):
        HeterBO(seed=1).search(context)
        written = recorder.metrics.backfill(
            cloud.metrics, timestamp=cloud.clock.now
        )
        assert written > 0
        names = cloud.metrics.list_metrics("repro/search")
        assert "search.probes_total" in names
