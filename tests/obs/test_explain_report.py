"""Explainability acceptance: `repro explain` / `repro report` on traces.

The canonical run is a seeded HeterBO search under a tight scenario-3
budget on a four-type world.  Everything asserted here is sourced from
the saved artifact alone (saved then re-loaded from disk): the step
where the concave prior pruned a scale-out neighbourhood, the step
where the protective stop fired, and the per-candidate landscape
behind them.
"""

import pytest

from repro.cli import main
from repro.obs import (
    RunRecorder,
    SearchTrace,
    render_comparison,
    render_explain,
)


@pytest.fixture(scope="module")
def trace_path(canonical_trace_path):
    return canonical_trace_path


@pytest.fixture(scope="module")
def trace(canonical_trace):
    return canonical_trace


class TestCanonicalRun:
    def test_prior_pruned_and_protective_stop_cooccur(self, trace):
        prior_steps = [
            r.step for r in trace.decisions if r.pruned.get("prior", 0) > 0
        ]
        stop = next(r for r in trace.decisions if r.stop_reason)
        assert prior_steps, "the concave prior never pruned"
        assert stop.stop_reason.startswith("protective stop")
        # deterministic for the fixed seed: both land on step 11
        assert prior_steps[0] == 11
        assert stop.step == 11

    def test_stop_record_shows_exhausted_landscape(self, trace):
        stop = next(r for r in trace.decisions if r.stop_reason)
        assert stop.n_feasible == 0
        assert stop.pruned["reserve"] > 0
        assert stop.prior_caps  # the prior was capping scale-out
        assert stop.incumbent is not None
        assert stop.surrogate["refit_mode"] in ("full", "incremental")


class TestRenderExplain:
    def test_overview_names_the_key_steps(self, trace):
        out = render_explain(trace)
        prior_step = next(
            r.step for r in trace.decisions if r.pruned.get("prior", 0) > 0
        )
        stop = next(r for r in trace.decisions if r.stop_reason)
        assert (
            f"concave prior first pruned a scale-out neighbourhood at "
            f"step {prior_step}" in out
        )
        assert f"search stopped at step {stop.step}: protective stop" in out

    def test_overview_uses_constraint_units(self, trace):
        # scenario-3 constraint amounts render as dollars
        out = render_explain(trace)
        assert "$25.00 consumed" in out or "of $25.00" in out

    def test_step_view_explains_a_probe(self, trace):
        record = next(r for r in trace.decisions if r.chosen is not None)
        out = render_explain(trace, step=record.step)
        assert f"decision      : probe {record.chosen}" in out
        assert "EI" in out and "score" in out
        assert "surrogate" in out

    def test_step_view_shows_fleet_state(self, trace):
        record = next(r for r in trace.decisions if r.chosen is not None)
        out = render_explain(trace, step=record.step)
        assert f"when {record.chosen} was requested" in out
        # profiling is sequential in this run: nothing else is up when
        # the probe's cluster is requested
        assert "fleet         : no instances running" in out

    def test_stop_view_explains_the_filters(self, trace):
        out = render_explain(trace, stop=True)
        assert "STOP" in out
        assert "protective filters" in out
        assert "reserve" in out

    def test_unknown_step_rejected(self, trace):
        with pytest.raises(ValueError, match="no decision record for step"):
            render_explain(trace, step=999)

    def test_traces_without_records_rejected(self, trace):
        bare = SearchTrace(
            strategy="x", scenario="scenario-1: fastest", stop_reason="s",
            best=None, summary={}, spans=(),
        )
        with pytest.raises(ValueError, match="no decision records"):
            render_explain(bare)


class TestRenderComparison:
    def test_markdown_table_covers_key_columns(self, trace):
        out = render_comparison([trace, trace])
        assert "cost-to-best" in out
        assert "protective stop" in out
        assert out.count("| heterbo |") == 2

    def test_attributed_column_matches_fleet_total(self, trace):
        from repro.experiments.reporting import format_dollars

        out = render_comparison([trace])
        assert "attributed $" in out
        assert format_dollars(trace.attributed_dollars_total) in out

    def test_attributed_column_dash_without_fleet(self, trace):
        import dataclasses

        bare = dataclasses.replace(trace, fleet=())
        row = render_comparison([bare]).splitlines()[6]
        # the attributed-$ cell (7th column) renders "-", not $0.00
        assert row.split(" | ")[6] == "-"

    def test_html_is_escaped_and_structured(self, trace):
        out = render_comparison([trace], fmt="html")
        assert out.startswith("<!DOCTYPE html>")
        assert "<table>" in out and "</table>" in out
        assert "scenario-3" in out
        # the scenario string's raw '$' survives but markdown isn't left
        assert "| heterbo |" not in out

    def test_unknown_format_rejected(self, trace):
        with pytest.raises(ValueError, match="unknown report format"):
            render_comparison([trace], fmt="pdf")

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="no traces"):
            render_comparison([])


class TestExplainCLI:
    def test_overview(self, trace_path, capsys):
        assert main(["explain", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "protective stop" in out
        assert "concave prior" in out

    def test_step_detail(self, trace_path, capsys):
        assert main(["explain", str(trace_path), "--step", "1"]) == 0
        assert "decision      : probe" in capsys.readouterr().out

    def test_stop_view(self, trace_path, capsys):
        assert main(["explain", str(trace_path), "--stop"]) == 0
        assert "STOP" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["explain", "/nonexistent.trace.jsonl"]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_trace_without_records_is_rc_1(self, tmp_path, capsys):
        from repro.core.result import SearchResult
        from repro.core.scenarios import Scenario as Sc

        recorder = RunRecorder(decisions="off", watchdog=False)
        result = SearchResult(
            strategy="heterbo", scenario=Sc.fastest(), trials=(),
            best=None, best_measured_speed=0.0, profile_seconds=0.0,
            profile_dollars=0.0, stop_reason="nothing happened",
        )
        path = tmp_path / "bare.trace.jsonl"
        recorder.finalize(result).save(path)
        assert main(["explain", str(path)]) == 1
        assert "no decision records" in capsys.readouterr().err


class TestReportCLI:
    def test_compare_two_traces_to_markdown(self, trace_path, tmp_path, capsys):
        out = tmp_path / "cmp.md"
        rc = main(["report", str(trace_path), str(trace_path),
                   "-o", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "# Search run comparison" in text
        assert "cost-to-best" in text

    def test_compare_html(self, trace_path, tmp_path):
        out = tmp_path / "cmp.html"
        rc = main(["report", str(trace_path), "--html", "-o", str(out)])
        assert rc == 0
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_html_without_traces_rejected(self, capsys):
        assert main(["report", "--html"]) == 2
        assert "requires trace arguments" in capsys.readouterr().err

    def test_bad_trace_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{nope\n")
        assert main(["report", str(bad)]) == 2
        assert "invalid trace file" in capsys.readouterr().err
