"""`repro timeline` / `repro attribute`: rendering saved fleet events.

Acceptance for the fleet-observability tentpole: both renderers work
from the canonical seeded artifact alone (the session-scoped fixture
saves it to disk and everything here reads the file), and their text
output is deterministic enough to pin golden lines.
"""

import dataclasses

import pytest

from repro.cli import main
from repro.experiments.reporting import format_dollars
from repro.obs import render_attribution, render_timeline
from repro.obs.timeline import attribution_rows, build_timeline


class TestBuildTimeline:
    def test_one_row_per_cluster_in_request_order(self, canonical_trace):
        rows = build_timeline(canonical_trace)
        requested = {
            e.cluster_id for e in canonical_trace.fleet
            if e.cluster_id is not None
        }
        assert len(rows) == len(requested)
        ids = [row["cluster_id"] for row in rows]
        assert ids == sorted(ids)

    def test_lifecycle_times_are_ordered(self, canonical_trace):
        for row in build_timeline(canonical_trace):
            assert row["requested"] <= row["running"] <= row["end"]
            assert row["end_event"] == "terminated"
            assert row["ledger_index"] is not None
            assert row["dollars"] > 0


class TestRenderTimelineText:
    def test_golden_header_lines(self, canonical_trace):
        lines = render_timeline(canonical_trace).splitlines()
        n = len(build_timeline(canonical_trace))
        t1 = max(e.time for e in canonical_trace.fleet)
        assert lines[0] == (
            "fleet timeline — heterbo / "
            "scenario-3: fastest training within $25.00"
        )
        assert lines[1] == (
            f"{n} cluster(s) over 0..{t1:.0f} s simulated; "
            f"0 revocation(s), 0 launch failure(s)"
        )
        assert lines[2] == "legend: ~ provisioning  # running  x revoked"

    def test_every_cluster_gets_a_table_row(self, canonical_trace):
        out = render_timeline(canonical_trace)
        for row in build_timeline(canonical_trace):
            assert row["deployment"] in out
        # sequential profiling: the run bars march left to right
        assert out.count("#") > 0

    def test_track_width_is_configurable(self, canonical_trace):
        narrow = render_timeline(canonical_trace, width=20)
        lines = narrow.splitlines()
        # first data row sits right under the dashed separator (cluster
        # ids are process-global, so their values can't be pinned here)
        first_row = lines[lines.index(next(
            line for line in lines if line.startswith("--")
        )) + 1]
        assert len(first_row.split()[-1]) == 20

    def test_tiny_width_rejected(self, canonical_trace):
        with pytest.raises(ValueError, match="width"):
            render_timeline(canonical_trace, width=5)

    def test_unknown_format_rejected(self, canonical_trace):
        with pytest.raises(ValueError, match="unknown timeline format"):
            render_timeline(canonical_trace, fmt="svg")

    def test_traces_without_fleet_events_rejected(self, canonical_trace):
        bare = dataclasses.replace(canonical_trace, fleet=())
        with pytest.raises(ValueError, match="no fleet events"):
            render_timeline(bare)


class TestRenderTimelineHtml:
    def test_self_contained_page(self, canonical_trace):
        out = render_timeline(canonical_trace, fmt="html")
        assert out.startswith("<!DOCTYPE html>")
        assert "http" not in out  # no external assets
        assert out.count('<div class="row">') == len(
            build_timeline(canonical_trace)
        )
        assert 'class="bar run"' in out
        assert 'class="bar prov"' in out


class TestRenderAttribution:
    def test_total_line_matches_the_artifact(self, canonical_trace):
        out = render_attribution(canonical_trace)
        rows = attribution_rows(canonical_trace)
        total = canonical_trace.attributed_dollars_total
        assert (
            f"{len(rows)} ledger entries attributed, "
            f"{format_dollars(total)} total (summed in ledger order)"
        ) in out

    def test_breakdowns_cover_all_three_groupings(self, canonical_trace):
        out = render_attribution(canonical_trace)
        assert "by instance type:" in out
        assert "by phase:" in out
        assert "by step:" in out
        # the canonical run has both phases, and every probe is a step
        assert "initial" in out and "explore" in out

    def test_shares_sum_to_the_whole(self, canonical_trace):
        rows = attribution_rows(canonical_trace)
        total = canonical_trace.attributed_dollars_total
        by_phase = {}
        for row in rows:
            by_phase[row["phase"]] = (
                by_phase.get(row["phase"], 0.0) + row["dollars"]
            )
        assert sum(by_phase.values()) == pytest.approx(total)

    def test_traces_without_fleet_events_rejected(self, canonical_trace):
        bare = dataclasses.replace(canonical_trace, fleet=())
        with pytest.raises(ValueError, match="no fleet events"):
            render_attribution(bare)

    def test_fleet_without_ledger_join_rejected(self, canonical_trace):
        unbilled = dataclasses.replace(
            canonical_trace,
            fleet=tuple(
                dataclasses.replace(e, ledger_index=None)
                for e in canonical_trace.fleet
            ),
        )
        with pytest.raises(ValueError, match="none joined"):
            render_attribution(unbilled)


class TestTimelineCLI:
    def test_text_to_stdout(self, canonical_trace_path, capsys):
        assert main(["timeline", str(canonical_trace_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("fleet timeline — heterbo")
        assert "legend:" in out

    def test_html_to_file(self, canonical_trace_path, tmp_path, capsys):
        out = tmp_path / "timeline.html"
        rc = main(["timeline", str(canonical_trace_path),
                   "--html", "-o", str(out)])
        assert rc == 0
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_missing_file(self, capsys):
        assert main(["timeline", "/nonexistent.trace.jsonl"]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_fleetless_trace_is_rc_1(self, tmp_path, capsys):
        from repro.core.result import SearchResult
        from repro.core.scenarios import Scenario
        from repro.obs import RunRecorder

        recorder = RunRecorder(fleet=False)
        result = SearchResult(
            strategy="heterbo", scenario=Scenario.fastest(), trials=(),
            best=None, best_measured_speed=0.0, profile_seconds=0.0,
            profile_dollars=0.0, stop_reason="nothing happened",
        )
        path = tmp_path / "bare.trace.jsonl"
        recorder.finalize(result).save(path)
        assert main(["timeline", str(path)]) == 1
        assert "no fleet events" in capsys.readouterr().err


class TestAttributeCLI:
    def test_renders_breakdowns(self, canonical_trace_path, capsys):
        assert main(["attribute", str(canonical_trace_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("cost attribution — heterbo")
        assert "by phase:" in out

    def test_missing_file(self, capsys):
        assert main(["attribute", "/nonexistent.trace.jsonl"]) == 2
        assert "no such trace file" in capsys.readouterr().err


class TestMetricsCLI:
    def test_prometheus_exposition(self, canonical_trace_path, capsys):
        assert main(["metrics", str(canonical_trace_path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE fleet_instances_running gauge" in out
        assert "# TYPE search_probes_total counter" in out

    def test_json_format(self, canonical_trace_path, capsys):
        import json

        assert main(["metrics", str(canonical_trace_path),
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["fleet.instances_running"]["kind"] == "gauge"

    def test_missing_file(self, capsys):
        assert main(["metrics", "/nonexistent.trace.jsonl"]) == 2
        assert "no such trace file" in capsys.readouterr().err
