"""Self-profiling: ledger math, sidecar schema, exports, identity.

The two load-bearing guarantees (see ``src/repro/obs/prof.py``):

* ledger arithmetic — exclusive = inclusive − direct children, phase
  paths fold deterministically, totals add up; and
* **identity** — attaching the profiler changes no canonical trace
  bytes for HeterBO *and* ParallelHeterBO (the daemon-replay leg lives
  in ``tests/service/test_service_telemetry.py``).
"""

import json

import pytest

from repro.cloud.catalog import paper_catalog
from repro.cloud.provider import SimulatedCloud
from repro.core.engine import SearchContext
from repro.core.heterbo import HeterBO
from repro.core.parallel import ParallelHeterBO
from repro.core.scenarios import Scenario
from repro.core.search_space import DeploymentSpace
from repro.obs import (
    NOOP_PROFILER,
    PROFILE_SCHEMA_VERSION,
    PhaseProfiler,
    RunRecorder,
    folded_stacks,
    load_profile,
    profile_from_trace,
    render_flamegraph_svg,
    render_profile,
    validate_profile,
)
from repro.perf.bench import canonical_trace_jsonl
from repro.profiling.profiler import Profiler
from repro.sim.datasets import get_dataset
from repro.sim.noise import NoiseModel
from repro.sim.platforms import get_platform
from repro.sim.throughput import TrainingJob, TrainingSimulator
from repro.sim.zoo import get_model


class TestPhaseProfilerLedger:
    def test_exclusive_subtracts_direct_children(self):
        prof = PhaseProfiler()
        with prof.phase("outer"):
            with prof.phase("inner"):
                pass
        doc = prof.to_dict()
        outer = doc["phases"]["outer"]
        inner = doc["phases"]["inner"]
        assert outer["count"] == 1 and inner["count"] == 1
        assert outer["inclusive_seconds"] >= inner["inclusive_seconds"]
        assert outer["exclusive_seconds"] == pytest.approx(
            outer["inclusive_seconds"] - inner["inclusive_seconds"]
        )

    def test_exclusive_times_sum_to_total(self):
        prof = PhaseProfiler()
        with prof.phase("a"):
            with prof.phase("b"):
                pass
            with prof.phase("c"):
                with prof.phase("d"):
                    pass
        doc = prof.to_dict()
        total_exclusive = sum(
            stat["exclusive_seconds"] for stat in doc["phases"].values()
        )
        assert total_exclusive == pytest.approx(
            doc["total_seconds"], abs=1e-6
        )

    def test_stacks_key_by_full_phase_path(self):
        prof = PhaseProfiler()
        with prof.phase("search"):
            with prof.phase("step"):
                with prof.phase("gp-fit"):
                    pass
        doc = prof.to_dict()
        assert "search;step;gp-fit" in doc["stacks"]
        assert doc["kind"] == "profile"
        assert doc["schema_version"] == PROFILE_SCHEMA_VERSION

    def test_repeated_phases_accumulate(self):
        prof = PhaseProfiler()
        for _ in range(3):
            with prof.phase("tick"):
                pass
        assert prof.to_dict()["phases"]["tick"]["count"] == 3

    def test_exit_tolerates_empty_stack(self):
        prof = PhaseProfiler()
        prof.exit_()  # must not raise
        assert prof.to_dict()["phases"] == {}

    def test_merge_adds_counts_seconds_and_stacks(self):
        a, b = PhaseProfiler(), PhaseProfiler()
        for prof in (a, b):
            with prof.phase("search"):
                with prof.phase("step"):
                    pass
        merged = PhaseProfiler()
        merged.merge(a.to_dict())
        merged.merge(b.to_dict())
        doc = merged.to_dict()
        assert doc["phases"]["step"]["count"] == 2
        assert doc["total_seconds"] == pytest.approx(
            a.to_dict()["total_seconds"] + b.to_dict()["total_seconds"]
        )
        assert doc["stacks"]["search;step"] == pytest.approx(
            a.to_dict()["stacks"]["search;step"]
            + b.to_dict()["stacks"]["search;step"]
        )

    def test_noop_profiler_records_nothing(self):
        with NOOP_PROFILER.phase("anything"):
            NOOP_PROFILER.enter("x")
            NOOP_PROFILER.exit_()
        assert NOOP_PROFILER.enabled is False
        assert NOOP_PROFILER.to_dict()["phases"] == {}


class TestSidecarRoundTrip:
    def test_write_load_round_trip(self, tmp_path):
        prof = PhaseProfiler()
        with prof.phase("search"):
            pass
        path = prof.write(tmp_path / "profile.json")
        assert load_profile(path) == prof.to_dict()

    def test_validate_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="not a profile document"):
            validate_profile({"kind": "header"})

    def test_validate_rejects_unsupported_version(self):
        with pytest.raises(ValueError, match="unsupported profile schema"):
            validate_profile({"kind": "profile", "schema_version": 99})

    def test_validate_rejects_non_numeric_stats(self):
        doc = {
            "kind": "profile",
            "schema_version": PROFILE_SCHEMA_VERSION,
            "total_seconds": 0.0,
            "phases": {"x": {"count": "three"}},
            "stacks": {},
        }
        with pytest.raises(ValueError, match="missing numeric"):
            validate_profile(doc)

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_profile(path)


class TestExports:
    def _ledger(self):
        prof = PhaseProfiler()
        with prof.phase("search"):
            with prof.phase("step"):
                with prof.phase("gp-fit"):
                    pass
            with prof.phase("step"):
                pass
        return prof.to_dict()

    def test_render_profile_orders_hottest_first(self):
        doc = self._ledger()
        lines = render_profile(doc).splitlines()
        assert "phase" in lines[1]
        names = [line.split()[0] for line in lines[2:]]
        assert set(names) == {"search", "step", "gp-fit"}

    def test_folded_stacks_are_deterministic_microseconds(self):
        doc = self._ledger()
        text = folded_stacks(doc)
        lines = text.strip().splitlines()
        assert lines == sorted(lines)
        for line in lines:
            path, value = line.rsplit(" ", 1)
            assert int(value) >= 0
        assert any(line.startswith("search;step;gp-fit ") for line in lines)

    def test_flamegraph_svg_is_self_contained_and_deterministic(self):
        doc = self._ledger()
        svg = render_flamegraph_svg(doc)
        assert svg.startswith("<svg ")
        assert "search" in svg and "gp-fit" in svg
        # same ledger -> byte-identical SVG (colors derive from crc32,
        # layout from sorted names — no run-to-run state)
        assert svg == render_flamegraph_svg(doc)

    def test_profile_from_trace_rebuilds_span_ledger(self, canonical_trace):
        doc = profile_from_trace(canonical_trace)
        validate_profile(doc)
        assert "probe" in doc["phases"]
        assert any(key.endswith(";probe") for key in doc["stacks"])
        spans = [s for s in canonical_trace.spans if s.name == "probe"]
        assert doc["phases"]["probe"]["count"] == len(spans)


def _profiled_search(strategy_factory, *, profile: bool):
    """One seeded recorded search; returns (canonical text, recorder)."""
    catalog = paper_catalog().subset(
        ["c5.xlarge", "c5.4xlarge", "c4.xlarge", "p2.xlarge"]
    )
    cloud = SimulatedCloud(catalog)
    recorder = RunRecorder(
        clock=lambda: cloud.clock.now, profile=profile
    )
    cloud.fleet = recorder.fleet
    profiler = Profiler(
        cloud, TrainingSimulator(),
        noise=NoiseModel(sigma=0.03, seed=2),
        tracer=recorder.tracer, metrics=recorder.metrics,
    )
    job = TrainingJob(
        model=get_model("char-rnn"),
        dataset=get_dataset("char-corpus"),
        platform=get_platform("tensorflow"),
        epochs=2.0,
    )
    context = SearchContext(
        space=DeploymentSpace(catalog, max_count=20),
        profiler=profiler,
        job=job,
        scenario=Scenario.fastest_within(25.0),
        tracer=recorder.tracer,
        metrics=recorder.metrics,
        decisions=recorder.decisions,
        watchdog=recorder.watchdog,
        prof=recorder.prof,
    )
    result = strategy_factory().search(context)
    return canonical_trace_jsonl(recorder.finalize(result)), recorder


class TestProfilerIdentity:
    """Profiler on vs off must leave canonical trace bytes untouched."""

    @pytest.mark.parametrize(
        "strategy_factory",
        [
            lambda: HeterBO(seed=2, max_steps=12),
            lambda: ParallelHeterBO(seed=2, max_steps=12, batch_size=3),
        ],
        ids=["heterbo", "parallel-heterbo"],
    )
    def test_canonical_bytes_identical_profile_on_vs_off(
        self, strategy_factory
    ):
        off_text, off_rec = _profiled_search(
            strategy_factory, profile=False
        )
        on_text, on_rec = _profiled_search(strategy_factory, profile=True)
        assert on_text == off_text
        # and the ledger actually measured something
        assert off_rec.prof is NOOP_PROFILER
        on_doc = on_rec.prof.to_dict()
        assert on_doc["phases"]
        assert "gp.fit.full" in on_doc["phases"]
        assert "candidate.prune" in on_doc["phases"]

    def test_sidecar_never_leaks_into_the_trace(self, tmp_path):
        on_text, on_rec = _profiled_search(
            lambda: HeterBO(seed=2, max_steps=8), profile=True
        )
        sidecar = on_rec.prof.write(tmp_path / "profile.json")
        doc = json.loads(sidecar.read_text())
        assert doc["kind"] == "profile"
        # the trace text has no profile records of any kind
        assert '"kind": "profile"' not in on_text
