"""Tracers: span nesting, ordering, clocks and the no-op path."""

import pytest

from repro.obs import NOOP_TRACER, RecordingTracer, Tracer
from repro.obs.span import Span


class TestNoopTracer:
    def test_module_singleton_is_base_class(self):
        assert type(NOOP_TRACER) is Tracer
        assert NOOP_TRACER.enabled is False

    def test_span_is_shared_and_reentrant(self):
        a = NOOP_TRACER.span("outer")
        b = NOOP_TRACER.span("inner")
        assert a is b  # one shared stateless sentinel
        with a as sa:
            with b as sb:
                sa.set_attribute("k", 1)
                sb.set_attribute("k", 2)

    def test_set_attribute_outside_span_is_noop(self):
        NOOP_TRACER.set_attribute("orphan", 1)
        assert NOOP_TRACER.current_span() is None

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError, match="boom"):
            with NOOP_TRACER.span("x"):
                raise RuntimeError("boom")


class TestRecordingTracer:
    def test_spans_in_start_order(self):
        tracer = RecordingTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [s.name for s in tracer.spans] == ["a", "b", "c"]

    def test_nesting_via_parent_ids(self):
        tracer = RecordingTracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert tracer.children(root) == [child]
        assert list(tracer.iter_roots()) == [root]

    def test_siblings_share_parent(self):
        tracer = RecordingTracer()
        with tracer.span("root") as root:
            with tracer.span("s1") as s1:
                pass
            with tracer.span("s2") as s2:
                pass
        assert s1.parent_id == root.span_id
        assert s2.parent_id == root.span_id

    def test_attributes_at_open_and_late(self):
        tracer = RecordingTracer()
        with tracer.span("op", {"x": 1}) as span:
            span.set_attribute("y", 2)
        span.set_attribute("z", 3)  # post-close annotation allowed
        assert span.attributes == {"x": 1, "y": 2, "z": 3}

    def test_set_attribute_targets_innermost(self):
        tracer = RecordingTracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.set_attribute("k", "v")
        assert inner.attributes == {"k": "v"}
        assert "k" not in outer.attributes

    def test_current_span(self):
        tracer = RecordingTracer()
        assert tracer.current_span() is None
        with tracer.span("a") as a:
            assert tracer.current_span() is a
        assert tracer.current_span() is None

    def test_injected_clock_times_spans(self):
        fake = {"now": 100.0}
        tracer = RecordingTracer(clock=lambda: fake["now"])
        with tracer.span("op") as span:
            fake["now"] = 160.0
        assert span.start == 100.0
        assert span.end == 160.0
        assert span.duration == 60.0

    def test_wall_seconds_recorded_independently(self):
        # simulated clock frozen -> zero span duration, but wall time
        # of the computation is still captured
        tracer = RecordingTracer(clock=lambda: 42.0)
        with tracer.span("op") as span:
            sum(range(1000))
        assert span.duration == 0.0
        assert span.wall_seconds >= 0.0

    def test_exception_annotates_and_closes(self):
        tracer = RecordingTracer()
        with pytest.raises(ValueError):
            with tracer.span("op") as span:
                raise ValueError("bad")
        assert span.finished
        assert "ValueError" in span.attributes["error"]
        assert tracer.current_span() is None

    def test_find_by_name(self):
        tracer = RecordingTracer()
        with tracer.span("step"):
            pass
        with tracer.span("step"):
            pass
        assert len(tracer.find("step")) == 2
        assert tracer.find("missing") == []

    def test_span_ids_unique_and_increasing(self):
        tracer = RecordingTracer()
        for _ in range(5):
            with tracer.span("x"):
                pass
        ids = [s.span_id for s in tracer.spans]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_unfinished_span_duration_zero(self):
        span = Span(name="open", span_id=1, parent_id=None, start=5.0)
        assert not span.finished
        assert span.duration == 0.0
