"""The ``repro top`` dashboard: state folding and the text panel."""

from repro.cli import main
from repro.obs import LiveRunState, load_state, render_top


class TestLiveRunState:
    def test_folds_the_streamed_canonical_run(self, live_run):
        state, torn = load_state(live_run["stream_path"])
        assert not torn
        assert state.completed
        assert state.strategy  # resolved past the placeholder header
        trace = live_run["trace"]
        probes = [s for s in trace.spans if s.name == "probe"]
        assert state.n_probes == len(probes)
        assert state.step == max(
            s.attributes["step"] for s in probes
        )
        assert state.best == trace.best
        assert state.stop_reason == trace.stop_reason

    def test_fleet_running_drains_to_zero_after_the_run(self, live_run):
        state, _ = load_state(live_run["stream_path"])
        # every probe cluster is terminated before the search returns
        assert state.fleet_running == {}

    def test_fleet_running_counts_mid_run(self):
        state = LiveRunState()
        state.apply({
            "kind": "fleet", "event": "running", "cluster_id": 1,
            "instance_type": "c5.xlarge", "count": 4,
        })
        state.apply({
            "kind": "fleet", "event": "running", "cluster_id": 2,
            "instance_type": "c5.xlarge", "count": 2,
        })
        assert state.fleet_running == {"c5.xlarge": 6}
        state.apply({
            "kind": "fleet", "event": "terminated", "cluster_id": 1,
            "instance_type": "c5.xlarge", "count": 4,
        })
        assert state.fleet_running == {"c5.xlarge": 2}

    def test_budget_fraction_needs_both_consumed_and_limit(self):
        state = LiveRunState()
        assert state.budget_fraction is None
        state.apply({"kind": "progress", "consumed": 5.0, "limit": 20.0})
        assert state.budget_fraction == 0.25
        state.apply({"kind": "progress", "consumed": 30.0})
        assert state.budget_fraction == 1.0  # clamped

    def test_progress_heartbeats_advance_the_headline_numbers(self):
        state = LiveRunState()
        state.apply({
            "kind": "progress", "seq": 5, "time": 40.0, "step": 3,
            "spent_usd": 1.25, "elapsed_s": 900.0,
            "incumbent": "2x c5.xlarge",
        })
        assert state.step == 3
        assert state.spent_usd == 1.25
        assert state.incumbent == "2x c5.xlarge"
        assert state.last_seq == 5
        assert state.sim_time == 40.0

    def test_summary_marks_completion(self):
        state = LiveRunState()
        state.apply({"kind": "header", "stop_reason": "running"})
        assert not state.completed
        state.apply({
            "kind": "summary", "stop_reason": "budget",
            "best": "1x p2.xlarge",
        })
        assert state.completed
        assert state.best == "1x p2.xlarge"


class TestRenderTop:
    def test_panel_shows_the_run_at_a_glance(self, live_run):
        state, torn = load_state(live_run["stream_path"])
        panel = render_top(state, source="live.trace.jsonl", torn=torn)
        assert "repro top — live.trace.jsonl" in panel
        assert "DONE" in panel
        assert f"probes {state.n_probes}" in panel
        assert f"stop={state.stop_reason}" in panel
        assert "0 instances running" in panel

    def test_torn_tail_is_flagged_in_the_status(self):
        panel = render_top(LiveRunState(), torn=True)
        assert "RUNNING (torn tail)" in panel

    def test_empty_state_renders_placeholders_not_crashes(self):
        panel = render_top(LiveRunState())
        assert "strategy  —" in panel
        assert "incumbent —" in panel
        assert "anomaly   none" in panel


class TestTopCli:
    def test_once_prints_a_single_panel(self, live_run, capsys):
        code = main(["top", str(live_run["stream_path"]), "--once"])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro top" in out
        assert "DONE" in out
        assert out.count("repro top") == 1  # one snapshot, no refresh

    def test_once_on_a_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(["top", str(tmp_path / "nope.jsonl"), "--once"])
        assert code == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_once_on_a_torn_file_flags_the_tail(
        self, live_run, tmp_path, capsys
    ):
        torn = tmp_path / "torn.trace.jsonl"
        torn.write_bytes(live_run["stream_path"].read_bytes()[:-5])
        # wide panel: the tmp path must not truncate the status flag
        code = main(["top", str(torn), "--once", "--width", "200"])
        assert code == 0
        assert "torn tail" in capsys.readouterr().out
