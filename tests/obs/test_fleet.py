"""Fleet telemetry: lifecycle events, cost attribution, read-only-ness.

Three layers under test:

- the :class:`FleetLog` / :class:`FleetEvent` primitives (context
  freezing, batch mapping, metrics side-effects, the inert no-op);
- the provider emission path (`SimulatedCloud` launch / ready /
  terminate / revoke / injected launch failures);
- the run-level guarantees the ISSUE pins down: attribution reconciles
  exactly with the billing ledger for every searcher, and recording is
  read-only — fleet on vs. off leaves the canonical trace
  byte-identical.
"""

import pytest

from repro.baselines.convbo import ConvBO
from repro.cloud.billing import BillingLedger
from repro.cloud.catalog import paper_catalog
from repro.cloud.provider import InsufficientCapacityError, SimulatedCloud
from repro.contracts import ContractViolation, check_fleet_attribution
from repro.core.engine import SearchContext
from repro.core.heterbo import HeterBO
from repro.core.parallel import ParallelHeterBO
from repro.core.scenarios import Scenario
from repro.core.search_space import DeploymentSpace
from repro.obs import MetricsRegistry, RunRecorder
from repro.obs.fleet import (
    FLEET_EVENT_VERSION,
    NOOP_FLEET,
    FleetEvent,
    FleetLog,
)
from repro.perf.bench import canonical_trace_jsonl
from repro.profiling.profiler import Profiler
from repro.sim.noise import NoiseModel
from repro.sim.throughput import TrainingSimulator


class TestFleetEvent:
    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fleet event"):
            FleetEvent(seq=1, time=0.0, event="rebooted",
                       instance_type="c5.xlarge", count=1)

    def test_seq_and_count_validated(self):
        with pytest.raises(ValueError, match="seq"):
            FleetEvent(seq=0, time=0.0, event="requested",
                       instance_type="c5.xlarge", count=1)
        with pytest.raises(ValueError, match="count"):
            FleetEvent(seq=1, time=0.0, event="requested",
                       instance_type="c5.xlarge", count=0)

    def test_to_dict_versions_and_drops_none(self):
        event = FleetEvent(seq=1, time=5.0, event="requested",
                           instance_type="c5.xlarge", count=2,
                           cluster_id=7, phase="explore")
        doc = event.to_dict()
        assert doc["v"] == FLEET_EVENT_VERSION
        assert doc["cluster_id"] == 7
        assert "dollars" not in doc and "purpose" not in doc

    def test_dict_round_trip(self):
        event = FleetEvent(seq=3, time=120.0, event="terminated",
                           instance_type="p2.xlarge", count=4,
                           cluster_id=2, purpose="profiling",
                           seconds=600.0, dollars=0.6, ledger_index=1,
                           phase="initial", step=2, trial=2,
                           deployment="4x p2.xlarge")
        assert FleetEvent.from_dict(event.to_dict()) == event

    def test_from_dict_tolerates_unknown_keys(self):
        doc = {"v": 99, "seq": 1, "time": 0.0, "event": "running",
               "instance_type": "c5.xlarge", "count": 1,
               "future_field": "ignored"}
        event = FleetEvent.from_dict(doc)
        assert event.event == "running"


class TestAttributionContext:
    def test_context_frozen_at_request_survives_clear(self):
        log = FleetLog()
        log.annotate(phase="explore", step=7, trial=7,
                     deployment="2x c5.xlarge")
        log.record("requested", time=0.0, instance_type="c5.xlarge",
                   count=2, cluster_id=1)
        log.clear()
        closing = log.record("terminated", time=600.0,
                             instance_type="c5.xlarge", count=2,
                             cluster_id=1, dollars=0.1, ledger_index=0)
        assert closing.phase == "explore"
        assert closing.step == 7
        assert closing.deployment == "2x c5.xlarge"

    def test_out_of_order_termination_keeps_per_cluster_context(self):
        log = FleetLog()
        log.annotate(phase="explore", trial=1, deployment="1x a")
        log.record("requested", time=0.0, instance_type="a", count=1,
                   cluster_id=1)
        log.annotate(trial=2, deployment="1x b")
        log.record("requested", time=0.0, instance_type="b", count=1,
                   cluster_id=2)
        # cluster 2 finishes first; each closing event keeps its own ctx
        second = log.record("terminated", time=5.0, instance_type="b",
                            count=1, cluster_id=2)
        first = log.record("terminated", time=9.0, instance_type="a",
                           count=1, cluster_id=1)
        assert second.trial == 2 and second.deployment == "1x b"
        assert first.trial == 1 and first.deployment == "1x a"

    def test_batch_member_maps_index_to_trial(self):
        log = FleetLog()
        log.begin_batch(phase="explore", first_trial=5)
        log.batch_member(2, "c5.xlarge", 4)
        event = log.record("requested", time=0.0,
                           instance_type="c5.xlarge", count=4,
                           cluster_id=1)
        assert event.phase == "explore"
        assert event.trial == 7
        assert event.deployment == "4x c5.xlarge"

    def test_clear_ends_the_batch(self):
        log = FleetLog()
        log.begin_batch(phase="initial", first_trial=1)
        log.clear()
        log.batch_member(0, "c5.xlarge", 1)
        event = log.record("requested", time=0.0,
                           instance_type="c5.xlarge", count=1,
                           cluster_id=1)
        assert event.trial is None  # no batch active -> no trial mapping
        assert event.deployment == "1x c5.xlarge"


class TestFleetMetrics:
    def test_running_gauge_tracks_instances_by_type(self):
        metrics = MetricsRegistry()
        log = FleetLog(metrics=metrics)
        log.record("running", time=0.0, instance_type="c5.xlarge",
                   count=2, cluster_id=1)
        log.record("running", time=0.0, instance_type="c5.xlarge",
                   count=3, cluster_id=2)
        gauge = metrics.gauge("fleet.instances_running")
        assert gauge.value(type="c5.xlarge") == 5.0
        log.record("terminated", time=9.0, instance_type="c5.xlarge",
                   count=2, cluster_id=1)
        assert gauge.value(type="c5.xlarge") == 3.0

    def test_revocations_counted(self):
        metrics = MetricsRegistry()
        log = FleetLog(metrics=metrics)
        log.record("running", time=0.0, instance_type="p2.xlarge",
                   count=1, cluster_id=1)
        log.record("revoked", time=5.0, instance_type="p2.xlarge",
                   count=1, cluster_id=1)
        assert metrics.counter("fleet.revocations_total").total() == 1.0
        assert metrics.gauge("fleet.instances_running").value(
            type="p2.xlarge"
        ) == 0.0

    def test_launch_failures_counted_by_type(self):
        metrics = MetricsRegistry()
        log = FleetLog(metrics=metrics)
        log.record("launch-failed", time=0.0, instance_type="p2.xlarge",
                   count=8)
        counter = metrics.counter("fleet.launch_failures_total")
        assert counter.value(instance_type="p2.xlarge") == 1.0

    def test_spot_price_gauge(self):
        metrics = MetricsRegistry()
        log = FleetLog(metrics=metrics)
        log.record("spot-price", time=0.0, instance_type="c5.xlarge",
                   count=1, spot_factor=0.42)
        assert metrics.gauge("spot.price_factor").value(
            instance_type="c5.xlarge"
        ) == pytest.approx(0.42)


class TestNoopFleet:
    def test_disabled_and_inert(self):
        assert NOOP_FLEET.enabled is False
        NOOP_FLEET.annotate(phase="explore")
        NOOP_FLEET.begin_batch(phase="explore", first_trial=1)
        NOOP_FLEET.batch_member(0, "c5.xlarge", 1)
        assert NOOP_FLEET.record(
            "requested", time=0.0, instance_type="c5.xlarge", count=1
        ) is None
        NOOP_FLEET.clear()
        assert NOOP_FLEET.events == ()


class TestProviderEmission:
    @pytest.fixture
    def instrumented(self, small_catalog):
        fleet = FleetLog()
        return SimulatedCloud(small_catalog, fleet=fleet), fleet

    def test_lifecycle_sequence(self, instrumented):
        cloud, fleet = instrumented
        cluster = cloud.launch("c5.xlarge", 2)
        cloud.wait_until_ready(cluster)
        cloud.run_for(cluster, 600.0)
        cloud.terminate(cluster, purpose="profiling")
        kinds = [e.event for e in fleet.events]
        assert kinds == ["requested", "provisioning", "running",
                         "terminated"]
        provisioning = fleet.events[1]
        assert provisioning.seconds == cloud.setup_seconds
        running = fleet.events[2]
        assert running.time == cluster.ready_at

    def test_running_emitted_once(self, instrumented):
        cloud, fleet = instrumented
        cluster = cloud.launch("c5.xlarge", 1)
        cloud.wait_until_ready(cluster)
        cloud.wait_until_ready(cluster)  # idempotent re-wait
        assert [e.event for e in fleet.events].count("running") == 1

    def test_closing_event_joins_the_ledger_entry(self, instrumented):
        cloud, fleet = instrumented
        for _ in range(2):
            cluster = cloud.launch("c5.xlarge", 1)
            cloud.wait_until_ready(cluster)
            cloud.run_for(cluster, 300.0)
            cloud.terminate(cluster, purpose="profiling")
        closings = [e for e in fleet.events if e.event == "terminated"]
        assert [e.ledger_index for e in closings] == [0, 1]
        for event, entry in zip(closings, cloud.ledger.entries):
            # the same float the ledger holds, not a recomputation
            assert event.dollars == entry.dollars
            assert event.seconds == entry.seconds
            assert event.purpose == entry.purpose

    def test_revoke_bills_like_terminate_and_flags_cluster(
        self, instrumented
    ):
        cloud, fleet = instrumented
        cluster = cloud.launch("c5.xlarge", 1)
        cloud.wait_until_ready(cluster)
        cloud.run_for(cluster, 300.0)
        dollars = cloud.revoke(cluster, purpose="spot-training")
        assert cluster.revoked is True
        assert dollars == cloud.ledger.entries[0].dollars
        closing = fleet.events[-1]
        assert closing.event == "revoked"
        assert closing.ledger_index == 0

    def test_injected_launch_failures_are_recorded(self, small_catalog):
        fleet = FleetLog()
        cloud = SimulatedCloud(
            small_catalog, launch_failure_rate=0.5, failure_seed=7,
            fleet=fleet,
        )
        failures = 0
        for _ in range(20):
            try:
                cluster = cloud.launch("c5.xlarge", 1)
            except InsufficientCapacityError:
                failures += 1
            else:
                cloud.terminate(cluster, purpose="profiling")
        assert failures > 0  # rate 0.5 over 20 seeded draws
        recorded = [e for e in fleet.events if e.event == "launch-failed"]
        assert len(recorded) == failures
        assert all(e.cluster_id is None for e in recorded)

    def test_default_cloud_records_nothing(self, small_catalog):
        cloud = SimulatedCloud(small_catalog)
        cluster = cloud.launch("c5.xlarge", 1)
        cloud.wait_until_ready(cluster)
        cloud.terminate(cluster, purpose="profiling")
        assert cloud.fleet is NOOP_FLEET
        assert cloud.fleet.events == ()


class TestAttributionContract:
    def _billed_world(self, small_catalog):
        fleet = FleetLog()
        cloud = SimulatedCloud(small_catalog, fleet=fleet)
        cluster = cloud.launch("c5.xlarge", 1)
        cloud.wait_until_ready(cluster)
        cloud.run_for(cluster, 600.0)
        cloud.terminate(cluster, purpose="profiling")
        return cloud, fleet

    def test_consistent_world_passes(self, small_catalog):
        cloud, fleet = self._billed_world(small_catalog)
        check_fleet_attribution(cloud.ledger, fleet)

    def test_uncovered_entry_fails(self, small_catalog):
        cloud, fleet = self._billed_world(small_catalog)
        # a ledger entry nothing attributes
        cloud.ledger.charge(
            timestamp=0.0, instance_type="c5.xlarge", count=1,
            seconds=1.0, dollars=0.1, purpose="other",
        )
        with pytest.raises(ContractViolation, match="covers 1 of 2"):
            check_fleet_attribution(cloud.ledger, fleet)

    def test_dollar_drift_fails(self, small_catalog):
        cloud, fleet = self._billed_world(small_catalog)
        entry = cloud.ledger.entries[0]
        tampered = BillingLedger()
        tampered.charge(
            timestamp=entry.timestamp, instance_type=entry.instance_type,
            count=entry.count, seconds=entry.seconds,
            dollars=entry.dollars + 1e-9, purpose=entry.purpose,
        )
        with pytest.raises(ContractViolation, match="carries dollars"):
            check_fleet_attribution(tampered, fleet)

    def test_noop_fleet_is_exempt(self, small_catalog):
        cloud = SimulatedCloud(small_catalog)
        cloud.ledger.charge(
            timestamp=0.0, instance_type="c5.xlarge", count=1,
            seconds=1.0, dollars=0.1, purpose="profiling",
        )
        check_fleet_attribution(cloud.ledger, NOOP_FLEET)  # no raise


# -- run-level guarantees ----------------------------------------------------

STRATEGIES = {
    "heterbo": lambda: HeterBO(seed=1, max_steps=12),
    "convbo": lambda: ConvBO(seed=1, max_steps=10),
    "parallel-heterbo": lambda: ParallelHeterBO(
        seed=1, batch_size=2, max_steps=12
    ),
}


def _run_search(strategy_factory, job, *, fleet: bool):
    """One seeded search on a fresh three-type world."""
    catalog = paper_catalog().subset(
        ["c5.xlarge", "c5.4xlarge", "p2.xlarge"]
    )
    cloud = SimulatedCloud(catalog)
    recorder = RunRecorder(clock=lambda: cloud.clock.now, fleet=fleet)
    cloud.fleet = recorder.fleet
    profiler = Profiler(
        cloud, TrainingSimulator(),
        noise=NoiseModel(sigma=0.03, seed=0),
        tracer=recorder.tracer, metrics=recorder.metrics,
    )
    context = SearchContext(
        space=DeploymentSpace(catalog, max_count=20),
        profiler=profiler,
        job=job,
        scenario=Scenario.fastest_within(30.0),
        tracer=recorder.tracer,
        metrics=recorder.metrics,
        decisions=recorder.decisions,
        watchdog=recorder.watchdog,
    )
    result = strategy_factory().search(context)
    return recorder.finalize(result), cloud


@pytest.mark.parametrize("name", sorted(STRATEGIES))
class TestRunLevelGuarantees:
    def test_attribution_reconciles_exactly_with_the_ledger(
        self, name, charrnn_job
    ):
        trace, cloud = _run_search(
            STRATEGIES[name], charrnn_job, fleet=True
        )
        assert trace.fleet, "search recorded no fleet events"
        # exact float equality on purpose: same summands, same order
        assert (  # repro-lint: disable=RL002
            trace.attributed_dollars_total == cloud.ledger.total()
        )
        indices = sorted(
            e.ledger_index for e in trace.fleet
            if e.ledger_index is not None
        )
        assert indices == list(range(len(cloud.ledger)))

    def test_fleet_recording_is_read_only(self, name, charrnn_job):
        """Fleet on vs. off -> byte-identical canonical traces."""
        on, cloud_on = _run_search(
            STRATEGIES[name], charrnn_job, fleet=True
        )
        off, cloud_off = _run_search(
            STRATEGIES[name], charrnn_job, fleet=False
        )
        assert on.fleet and not off.fleet
        assert canonical_trace_jsonl(on) == canonical_trace_jsonl(off)
        assert cloud_on.ledger.total() == cloud_off.ledger.total()


class TestWatchdogDuringReprovisioning:
    def test_no_false_budget_burn_under_launch_failures(self, charrnn_job):
        """Injected capacity failures force retries and re-provisioning;
        under a generous budget the watchdog must stay quiet on
        budget-burn (retries cost time, not dollars)."""
        catalog = paper_catalog().subset(
            ["c5.xlarge", "c5.4xlarge", "p2.xlarge"]
        )
        fleet_failures = None
        for seed in range(5):
            cloud = SimulatedCloud(
                catalog, launch_failure_rate=0.3, failure_seed=seed
            )
            recorder = RunRecorder(clock=lambda: cloud.clock.now)
            cloud.fleet = recorder.fleet
            profiler = Profiler(
                cloud, TrainingSimulator(),
                noise=NoiseModel(sigma=0.03, seed=0),
                tracer=recorder.tracer, metrics=recorder.metrics,
            )
            context = SearchContext(
                space=DeploymentSpace(catalog, max_count=20),
                profiler=profiler,
                job=charrnn_job,
                scenario=Scenario.fastest_within(200.0),
                tracer=recorder.tracer,
                metrics=recorder.metrics,
                decisions=recorder.decisions,
                watchdog=recorder.watchdog,
            )
            result = HeterBO(seed=1, max_steps=10).search(context)
            trace = recorder.finalize(result)
            failures = [
                e for e in trace.fleet if e.event == "launch-failed"
            ]
            if failures:
                fleet_failures = (trace, failures, cloud)
                break
        assert fleet_failures is not None, (
            "no seed produced a launch failure at rate 0.3"
        )
        trace, failures, cloud = fleet_failures
        # retried launches re-provision: more requested events than
        # abandoned probes, and the run still reconciles exactly
        assert trace.attributed_dollars_total == cloud.ledger.total()
        burn = [
            a for a in trace.anomaly_rows() if a["rule"] == "budget-burn"
        ]
        assert burn == [], f"false budget-burn anomalies: {burn}"
