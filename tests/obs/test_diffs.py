"""Trace forensics: first-divergence detection and reporting."""

import json

import pytest

from repro.obs import TraceDiff, diff_trace_texts, render_diff
from repro.obs.diffs import MAX_FIELD_DELTAS


def _jsonl(*docs):
    return "".join(json.dumps(d, sort_keys=True) + "\n" for d in docs)


class TestDiffTraceTexts:
    def test_identical_texts(self):
        text = _jsonl({"kind": "header"}, {"kind": "span", "seq": 1})
        diff = diff_trace_texts(text, text)
        assert diff.identical
        assert diff.line is None
        assert diff.a_lines == diff.b_lines == 2

    def test_structural_not_textual_equality(self):
        # key order and float formatting differences are NOT divergence
        diff = diff_trace_texts('{"a": 1, "b": 2.5}\n', '{"b":2.50,"a":1}\n')
        assert diff.identical

    def test_first_diverging_line_and_field(self):
        a = _jsonl(
            {"kind": "header"},
            {"kind": "decision", "seq": 3, "step": 1, "chosen": "2x c5"},
            {"kind": "decision", "seq": 4, "step": 2, "chosen": "4x c5"},
        )
        b = _jsonl(
            {"kind": "header"},
            {"kind": "decision", "seq": 3, "step": 1, "chosen": "2x c5"},
            {"kind": "decision", "seq": 4, "step": 2, "chosen": "8x c4"},
        )
        diff = diff_trace_texts(a, b, a_name="left", b_name="right")
        assert not diff.identical
        assert diff.line == 3  # 1-based, exact line
        assert diff.reason == "field"
        assert diff.a_kind == diff.b_kind == "decision"
        assert diff.a_key == diff.b_key == 4  # seq wins as ordering key
        [delta] = diff.fields
        assert delta.path == "chosen"
        assert (delta.a, delta.b) == ("4x c5", "8x c4")

    def test_nested_field_paths(self):
        a = _jsonl({"kind": "span", "attributes": {"pruned": {"prior": 3}}})
        b = _jsonl({"kind": "span", "attributes": {"pruned": {"prior": 5}}})
        diff = diff_trace_texts(a, b)
        assert diff.fields[0].path == "attributes.pruned.prior"

    def test_missing_key_is_reported_as_missing(self):
        diff = diff_trace_texts(
            _jsonl({"kind": "span", "extra": 1}), _jsonl({"kind": "span"})
        )
        [delta] = diff.fields
        assert delta.path == "extra"
        assert delta.b_missing and not delta.a_missing

    def test_length_divergence(self):
        a = _jsonl({"kind": "header"}, {"kind": "summary", "seq": 9})
        b = _jsonl({"kind": "header"})
        diff = diff_trace_texts(a, b)
        assert diff.reason == "length"
        assert diff.line == 2
        assert diff.a_kind == "summary" and diff.b_kind is None

    def test_torn_line_is_a_parse_divergence(self):
        a = _jsonl({"kind": "header"}) + '{"kind": "sp'
        b = _jsonl({"kind": "header"}, {"kind": "span"})
        diff = diff_trace_texts(a, b)
        assert diff.reason == "parse"
        assert diff.line == 2

    def test_field_deltas_are_capped_but_counted(self):
        a = _jsonl({str(i): i for i in range(40)})
        b = _jsonl({str(i): i + 1 for i in range(40)})
        diff = diff_trace_texts(a, b)
        assert len(diff.fields) == MAX_FIELD_DELTAS
        assert diff.n_field_deltas == 40

    def test_blank_lines_are_ignored(self):
        diff = diff_trace_texts(
            '{"kind": "header"}\n\n\n', '\n{"kind": "header"}\n'
        )
        assert diff.identical


class TestRoundTripAndRender:
    def test_to_dict_from_dict_round_trip(self):
        diff = diff_trace_texts(
            _jsonl({"kind": "span", "seq": 1, "x": 1}),
            _jsonl({"kind": "span", "seq": 1, "x": 2}),
            a_name="a.jsonl", b_name="b.jsonl",
        )
        assert TraceDiff.from_dict(diff.to_dict()) == diff

    def test_render_identical(self):
        text = _jsonl({"kind": "header"})
        out = render_diff(diff_trace_texts(text, text, a_name="x", b_name="y"))
        assert out.startswith("identical: x == y")

    def test_render_divergence_names_line_kind_and_fields(self):
        diff = diff_trace_texts(
            _jsonl({"kind": "header"}, {"kind": "decision", "seq": 2, "chosen": "a"}),
            _jsonl({"kind": "header"}, {"kind": "decision", "seq": 2, "chosen": "b"}),
        )
        out = render_diff(diff)
        assert "diverge at line 2" in out
        assert "kind: a=decision b=decision" in out
        assert 'field chosen: "a" != "b"' in out

    def test_render_length_divergence(self):
        diff = diff_trace_texts(
            _jsonl({"kind": "header"}),
            _jsonl({"kind": "header"}, {"kind": "summary"}),
            a_name="short", b_name="long",
        )
        out = render_diff(diff)
        assert "short ends first" in out
        assert "1 extra line(s)" in out


class TestSeededPerturbation:
    """The CI fixture: inject one known change, assert exact pinpoint."""

    def test_diff_pinpoints_an_injected_perturbation(self, canonical_trace_path):
        from repro.obs import SearchTrace
        from repro.perf.bench import canonical_trace_jsonl

        trace = SearchTrace.load(canonical_trace_path)
        base = canonical_trace_jsonl(trace)
        lines = base.splitlines()
        # perturb one probe span's deployment attribute mid-trace
        # (decision/fleet lines are stripped by the canonical form —
        # spans are what byte-identity actually compares)
        target = next(
            i for i, line in enumerate(lines)
            if json.loads(line).get("name") == "probe"
            and json.loads(line).get("attributes", {}).get("deployment")
        )
        doc = json.loads(lines[target])
        original = doc["attributes"]["deployment"]
        doc["attributes"]["deployment"] = original + " (perturbed)"
        perturbed = lines[:]
        perturbed[target] = json.dumps(doc, sort_keys=True)
        diff = diff_trace_texts(base, "\n".join(perturbed) + "\n")
        assert not diff.identical
        assert diff.line == target + 1  # exact 1-based line
        assert diff.reason == "field"
        deltas = {d.path: (d.a, d.b) for d in diff.fields}
        assert deltas == {
            "attributes.deployment": (original, original + " (perturbed)")
        }

    def test_unperturbed_identity_pair_is_identical(self, canonical_trace_path):
        from repro.obs import SearchTrace
        from repro.perf.bench import canonical_trace_jsonl

        text = canonical_trace_jsonl(SearchTrace.load(canonical_trace_path))
        assert diff_trace_texts(text, text).identical


def test_max_field_deltas_is_positive():
    assert MAX_FIELD_DELTAS > 0


@pytest.mark.parametrize("reason", ["field", "parse", "length"])
def test_from_dict_defaults_are_safe(reason):
    # minimal dicts (e.g. hand-built in CI scripts) rehydrate cleanly
    diff = TraceDiff.from_dict({"identical": False, "reason": reason})
    assert not diff.identical
    assert diff.reason == reason
