"""Shared observability fixtures: the canonical recorded run.

One seeded HeterBO search under a tight scenario-3 budget on a
four-type world, recorded with decisions, watchdog AND fleet telemetry
on, saved to disk once per session.  ``repro explain`` / ``repro
report`` / ``repro timeline`` / ``repro attribute`` acceptance tests
all read this same artifact, which is the point: everything they show
must be reconstructable from the saved file alone.
"""

from __future__ import annotations

import pytest

from repro.cloud.catalog import paper_catalog
from repro.cloud.provider import SimulatedCloud
from repro.core.engine import SearchContext
from repro.core.heterbo import HeterBO
from repro.core.scenarios import Scenario
from repro.core.search_space import DeploymentSpace
from repro.obs import RunRecorder, SearchTrace, TraceStreamWriter
from repro.profiling.profiler import Profiler
from repro.sim.datasets import get_dataset
from repro.sim.noise import NoiseModel
from repro.sim.platforms import get_platform
from repro.sim.throughput import TrainingJob, TrainingSimulator
from repro.sim.zoo import get_model


def canonical_run(
    *, bus: bool = False, stream_path=None
) -> SearchTrace:
    """Seeded run where the prior prunes AND the protective stop fires.

    ``bus=True`` re-executes the identical run with the event bus
    live; ``stream_path`` additionally attaches a
    :class:`~repro.obs.stream.TraceStreamWriter` so the streamed
    artifact lands there.  The decisions must not move either way —
    the live-telemetry identity tests compare the two variants.
    """
    catalog = paper_catalog().subset(
        ["c5.xlarge", "c5.4xlarge", "c4.xlarge", "p2.xlarge"]
    )
    cloud = SimulatedCloud(catalog)
    recorder = RunRecorder(clock=lambda: cloud.clock.now, bus=bus)
    cloud.fleet = recorder.fleet  # lifecycle events + attribution join
    writer = None
    if stream_path is not None:
        writer = TraceStreamWriter(stream_path, metrics=recorder.metrics)
        recorder.bus.subscribe(writer)
    profiler = Profiler(
        cloud, TrainingSimulator(),
        noise=NoiseModel(sigma=0.03, seed=2),
        tracer=recorder.tracer, metrics=recorder.metrics,
        bus=recorder.bus,
    )
    job = TrainingJob(
        model=get_model("char-rnn"),
        dataset=get_dataset("char-corpus"),
        platform=get_platform("tensorflow"),
        epochs=2.0,
    )
    context = SearchContext(
        space=DeploymentSpace(catalog, max_count=20),
        profiler=profiler,
        job=job,
        scenario=Scenario.fastest_within(25.0),
        tracer=recorder.tracer,
        metrics=recorder.metrics,
        decisions=recorder.decisions,
        watchdog=recorder.watchdog,
        bus=recorder.bus,
    )
    try:
        result = HeterBO(seed=2, max_steps=25).search(context)
        return recorder.finalize(result)
    finally:
        if writer is not None:
            recorder.bus.unsubscribe(writer)
            writer.close()


@pytest.fixture(scope="session")
def canonical_trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("canonical") / "canon.trace.jsonl"
    canonical_run().save(path)
    return path


@pytest.fixture(scope="session")
def canonical_trace(canonical_trace_path):
    # loaded from disk: everything below reads the artifact, not the run
    return SearchTrace.load(canonical_trace_path)


@pytest.fixture(scope="session")
def live_run(tmp_path_factory):
    """The canonical run re-executed with the bus + stream writer.

    Returns ``{"stream_path": Path, "trace": SearchTrace}`` — the
    streamed artifact on disk and the recorder-finalised trace of the
    same run.
    """
    path = tmp_path_factory.mktemp("live") / "live.trace.jsonl"
    trace = canonical_run(bus=True, stream_path=path)
    return {"stream_path": path, "trace": trace}
