"""Service-scope telemetry primitives: events, log, metrics, SLOs."""

import pytest

from repro.obs import (
    DEFAULT_SLO_TARGETS,
    NOOP_SERVICE,
    SERVICE_EVENT_VERSION,
    ServiceEvent,
    ServiceLog,
    SLOTarget,
    SLOTracker,
)
from repro.obs.bus import EventBus
from repro.obs.metrics import MetricsRegistry


class TestServiceEvent:
    def test_round_trip_preserves_every_field(self):
        event = ServiceEvent(
            seq=3, time=12.0, event="dispatched", job="job-0001",
            tenant="alice", step=2, cpu=4, gpu=0, wait_seconds=1.0,
            queue_delay_seconds=2.0,
        )
        doc = event.to_dict()
        assert doc["v"] == SERVICE_EVENT_VERSION
        assert ServiceEvent.from_dict(doc) == event

    def test_to_dict_drops_none_fields(self):
        doc = ServiceEvent(seq=1, time=0.0, event="submitted").to_dict()
        assert set(doc) == {"v", "seq", "time", "event"}

    def test_from_dict_tolerates_unknown_keys(self):
        doc = {"seq": 1, "time": 0.0, "event": "done",
               "future_field": "ignored"}
        assert ServiceEvent.from_dict(doc).event == "done"

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown service event"):
            ServiceEvent(seq=1, time=0.0, event="teleported")

    def test_non_positive_seq_rejected(self):
        with pytest.raises(ValueError, match="seq"):
            ServiceEvent(seq=0, time=0.0, event="done")


class TestServiceLog:
    def test_assigns_monotonic_seq(self):
        log = ServiceLog()
        first = log.record("submitted", time=0.0, tenant="alice")
        second = log.record("started", time=1.0, job="job-0001")
        assert (first.seq, second.seq) == (1, 2)
        assert log.events == (first, second)

    def test_publishes_kind_service_on_the_bus(self):
        bus = EventBus(clock=lambda: 0.0)
        seen = []

        class Sink:
            interested_kinds = frozenset(("service",))

            def __call__(self, event):
                seen.append(event)

        bus.subscribe(Sink())
        log = ServiceLog(bus=bus)
        log.record("submitted", time=0.0, tenant="alice")
        assert len(seen) == 1
        assert seen[0].kind == "service"
        assert seen[0].data["event"] == "submitted"

    def test_updates_latency_histograms_and_counters(self):
        metrics = MetricsRegistry()
        log = ServiceLog(metrics=metrics)
        log.record("submitted", time=0.0, tenant="alice")
        log.record("dispatched", time=3.0, job="job-0001",
                   tenant="alice", wait_seconds=2.0,
                   queue_delay_seconds=3.0)
        log.record("deferred", time=4.0, job="job-0002", tenant="bob",
                   reason="capacity")
        log.record("done", time=9.0, job="job-0001", tenant="alice",
                   dollars=1.5)
        assert metrics.get("svc.jobs_submitted_total").total() == 1
        assert metrics.get("svc.reservation_conflicts_total").total() == 1
        assert metrics.get("svc.jobs_finished_total").total() == 1
        assert metrics.get("svc.dispatch_latency_seconds").stats().count == 1
        assert metrics.get(
            "svc.queue_delay_seconds"
        ).stats().maximum == pytest.approx(3.0)

    def test_oversized_failures_counted_separately(self):
        metrics = MetricsRegistry()
        log = ServiceLog(metrics=metrics)
        log.record("failed", time=1.0, job="job-0001", tenant="alice",
                   reason="oversized-demand")
        log.record("failed", time=2.0, job="job-0002", tenant="alice",
                   reason="error")
        assert metrics.get("svc.oversized_demand_total").total() == 1
        assert metrics.get("svc.jobs_finished_total").total() == 2

    def test_noop_singleton_is_inert(self):
        assert NOOP_SERVICE.enabled is False
        assert NOOP_SERVICE.record("submitted", time=0.0) is None
        assert NOOP_SERVICE.events == ()


def _tracker(targets, metrics):
    log = ServiceLog(metrics=metrics)
    return SLOTracker(targets, metrics=metrics, log=log), log


class TestSLOTracker:
    def test_quantile_target_not_evaluated_below_min_count(self):
        metrics = MetricsRegistry()
        target = SLOTarget(
            name="p99", metric="svc.dispatch_latency_seconds",
            threshold=1.0, min_count=3,
        )
        tracker, _ = _tracker((target,), metrics)
        hist = metrics.histogram("svc.dispatch_latency_seconds")
        hist.observe(100.0)
        assert tracker.evaluate(time=1.0) == []
        assert tracker.status()[0]["attainment"] is None

    def test_breach_is_edge_triggered_and_rearms(self):
        metrics = MetricsRegistry()
        target = SLOTarget(
            name="p99", metric="svc.dispatch_latency_seconds",
            threshold=1.0, min_count=1,
        )
        tracker, log = _tracker((target,), metrics)
        hist = metrics.histogram("svc.dispatch_latency_seconds")
        hist.observe(5.0)
        assert len(tracker.evaluate(time=1.0)) == 1
        # still out of bounds: no second event for the same excursion
        assert tracker.evaluate(time=2.0) == []
        # recovery re-arms the edge; the next excursion fires again
        for _ in range(200):
            hist.observe(0.0)
        assert tracker.evaluate(time=3.0) == []
        for _ in range(10_000):
            hist.observe(50.0)
        assert len(tracker.evaluate(time=4.0)) == 1
        breaches = [e for e in log.events if e.event == "slo-breach"]
        assert len(breaches) == 2
        assert metrics.get("svc.slo_breaches_total").total() == 2

    def test_ratio_target_tracks_error_budget(self):
        metrics = MetricsRegistry()
        target = SLOTarget(
            name="errors", kind="ratio",
            numerator="svc.admission_rejections_total",
            denominator="svc.jobs_submitted_total",
            threshold=0.5, min_count=2,
        )
        tracker, _ = _tracker((target,), metrics)
        submitted = metrics.counter("svc.jobs_submitted_total")
        rejected = metrics.counter("svc.admission_rejections_total")
        submitted.inc()
        assert tracker.evaluate(time=1.0) == []  # below min_count
        submitted.inc()
        rejected.inc(3)
        fired = tracker.evaluate(time=2.0)
        assert fired == [
            {"slo": "errors", "value": 1.5, "threshold": 0.5}
        ]

    def test_attainment_reported_and_gauged(self):
        metrics = MetricsRegistry()
        target = SLOTarget(
            name="p99", metric="svc.dispatch_latency_seconds",
            threshold=1.0, min_count=1,
        )
        tracker, _ = _tracker((target,), metrics)
        hist = metrics.histogram("svc.dispatch_latency_seconds")
        hist.observe(0.5)
        tracker.evaluate(time=1.0)
        hist.observe(90.0)
        tracker.evaluate(time=2.0)
        status = tracker.status()[0]
        assert status["attainment"] == pytest.approx(0.5)
        assert status["breached_now"] is True
        assert status["evaluated_ticks"] == 2
        assert metrics.get("svc.slo_attainment").value(
            slo="p99"
        ) == pytest.approx(0.5)

    def test_duplicate_target_names_rejected(self):
        metrics = MetricsRegistry()
        target = SLOTarget(
            name="dup", metric="svc.dispatch_latency_seconds",
            threshold=1.0,
        )
        with pytest.raises(ValueError, match="duplicate"):
            SLOTracker((target, target), metrics=metrics)

    def test_default_targets_describe_themselves(self):
        described = [t.describe() for t in DEFAULT_SLO_TARGETS]
        assert "p99(svc.dispatch_latency_seconds) <= 10" in described
        assert any("admission_rejections" in d for d in described)

    def test_bad_target_definitions_rejected(self):
        with pytest.raises(ValueError, match="needs a metric"):
            SLOTarget(name="x", kind="quantile")
        with pytest.raises(ValueError, match="numerator"):
            SLOTarget(name="x", kind="ratio", threshold=0.1)
        with pytest.raises(ValueError, match="kind"):
            SLOTarget(name="x", kind="average")
