"""Metrics registry: instruments, labels, snapshot and backfill."""

import pytest

from repro.cloud.cloudwatch import MetricStore
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("probes")
        c.inc()
        c.inc(2.0)
        assert c.value() == 3.0

    def test_labelled_series_independent(self):
        c = Counter("dollars")
        c.inc(1.5, instance_type="c5.xlarge")
        c.inc(2.5, instance_type="p2.xlarge")
        assert c.value(instance_type="c5.xlarge") == 1.5
        assert c.value(instance_type="p2.xlarge") == 2.5
        assert c.total() == 4.0

    def test_label_order_irrelevant(self):
        c = Counter("x")
        c.inc(1.0, a="1", b="2")
        assert c.value(b="2", a="1") == 1.0

    def test_untouched_series_reads_zero(self):
        assert Counter("x").value(foo="bar") == 0.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Counter("x").inc(-1.0)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("steps")
        g.set(3.0)
        g.set(7.0)
        assert g.value() == 7.0

    def test_unset_is_none(self):
        assert Gauge("steps").value() is None

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            Gauge("x").set(float("nan"))


class TestHistogram:
    def test_streaming_aggregates(self):
        h = Histogram("fit_seconds")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        stats = h.stats()
        assert stats.count == 3
        assert stats.total == 6.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.mean == pytest.approx(2.0)

    def test_empty_stats(self):
        stats = Histogram("x").stats()
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            Histogram("x").observe(float("inf"))


class TestRegistry:
    def test_get_or_create_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            MetricsRegistry().counter("")

    def test_get_does_not_create(self):
        reg = MetricsRegistry()
        assert reg.get("missing") is None
        assert len(reg) == 0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("probes", unit="probes").inc(3.0, strategy="heterbo")
        reg.histogram("fit").observe(2.0)
        snap = reg.snapshot()
        assert snap["probes"]["kind"] == "counter"
        assert snap["probes"]["unit"] == "probes"
        assert snap["probes"]["series"] == [
            {"labels": {"strategy": "heterbo"}, "value": 3.0}
        ]
        hist = snap["fit"]["series"][0]
        assert hist["count"] == 1 and hist["mean"] == 2.0

    def test_snapshot_is_json_serialisable(self):
        import json

        reg = MetricsRegistry()
        reg.gauge("g").set(1.0, k="v")
        json.dumps(reg.snapshot())


class TestBackfill:
    def test_counters_and_gauges_land_with_dimensions(self):
        reg = MetricsRegistry()
        reg.counter("search.probes_total").inc(4.0, strategy="heterbo")
        reg.gauge("search.steps_to_stop").set(9.0)
        store = MetricStore()
        written = reg.backfill(store, namespace="ns", timestamp=5.0)
        assert written == 2
        assert store.values(
            "ns", "search.probes_total",
            dimensions={"strategy": "heterbo"},
        ) == [4.0]
        assert store.values("ns", "search.steps_to_stop") == [9.0]

    def test_histograms_explode_to_suffixed_metrics(self):
        reg = MetricsRegistry()
        h = reg.histogram("gp.fit_seconds")
        h.observe(1.0)
        h.observe(3.0)
        store = MetricStore()
        written = reg.backfill(store)
        assert written == 3
        ns = "repro/search"
        assert store.values(ns, "gp.fit_seconds.count") == [2.0]
        assert store.values(ns, "gp.fit_seconds.mean") == [2.0]
        assert store.values(ns, "gp.fit_seconds.max") == [3.0]
        assert set(store.list_metrics(ns)) == {
            "gp.fit_seconds.count", "gp.fit_seconds.mean",
            "gp.fit_seconds.max",
        }


class TestHistogramQuantiles:
    def test_exact_below_sample_cap(self):
        h = Histogram("latency")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        stats = h.stats()
        assert stats.p50 == pytest.approx(50.5)
        assert stats.p90 == pytest.approx(90.1)
        assert stats.p99 == pytest.approx(99.01)
        assert stats.quantile(0.0) == 1.0
        assert stats.quantile(1.0) == 100.0

    def test_single_observation(self):
        h = Histogram("latency")
        h.observe(7.0)
        assert h.stats().p50 == 7.0
        assert h.stats().p99 == 7.0

    def test_empty_quantile_is_zero(self):
        assert Histogram("x").stats().p50 == 0.0

    def test_quantile_range_validated(self):
        h = Histogram("x")
        h.observe(1.0)
        with pytest.raises(ValueError, match="quantile"):
            h.stats().quantile(1.5)

    def test_decimation_bounds_memory_and_stays_deterministic(self):
        from repro.obs.metrics import _QUANTILE_SAMPLE_CAP

        def build():
            h = Histogram("big")
            for v in range(10_000):
                h.observe(float(v))
            return h.stats()

        a, b = build(), build()
        assert len(a._sample) <= _QUANTILE_SAMPLE_CAP
        # systematic sampling: identical streams, identical estimates
        assert a.p50 == b.p50 and a.p90 == b.p90 and a.p99 == b.p99
        # estimates stay close to the true quantiles despite decimation
        assert a.p50 == pytest.approx(5000, rel=0.1)
        assert a.p99 == pytest.approx(9900, rel=0.1)

    def test_snapshot_includes_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("gp.fit_seconds")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        entry = reg.snapshot()["gp.fit_seconds"]["series"][0]
        assert entry["p50"] == pytest.approx(2.0)
        assert entry["p90"] == pytest.approx(2.8)
        assert entry["p99"] == pytest.approx(2.98)


class TestPrometheusText:
    """Satellite: deterministic Prometheus text exposition."""

    def _text(self, registry):
        return registry.to_prometheus_text()

    def test_counter_and_gauge_samples(self):
        registry = MetricsRegistry()
        registry.counter("search.probes_total").inc(3.0)
        registry.gauge("fleet.instances_running").set(2.0, type="c5.xlarge")
        text = self._text(registry)
        assert "# TYPE search_probes_total counter" in text
        assert "search_probes_total 3.0" in text
        assert "# TYPE fleet_instances_running gauge" in text
        assert 'fleet_instances_running{type="c5.xlarge"} 2.0' in text

    def test_help_line_from_description(self):
        registry = MetricsRegistry()
        registry.counter(
            "fleet.revocations_total",
            description="spot revocations\nobserved",
        ).inc()
        text = self._text(registry)
        assert (
            "# HELP fleet_revocations_total spot revocations\\nobserved"
            in text
        )

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1.0, path='a"b\\c\nd')
        text = self._text(registry)
        assert 'c{path="a\\"b\\\\c\\nd"} 1.0' in text

    def test_label_names_sanitised(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0, **{"instance-type": "x"})
        assert 'g{instance_type="x"} 1.0' in self._text(registry)

    def test_output_independent_of_insertion_order(self):
        a = MetricsRegistry()
        a.counter("z.last").inc()
        a.counter("a.first").inc(1.0, b="2", a="1")
        b = MetricsRegistry()
        b.counter("a.first").inc(1.0, a="1", b="2")
        b.counter("z.last").inc()
        assert self._text(a) == self._text(b)
        assert self._text(a).index("a_first") < self._text(a).index("z_last")

    def test_series_sorted_by_label_tuple(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(1.0, itype="p2.xlarge")
        gauge.set(2.0, itype="c5.xlarge")
        text = self._text(registry)
        assert text.index('itype="c5.xlarge"') < text.index(
            'itype="p2.xlarge"'
        )

    def test_histogram_renders_as_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("gp.fit_seconds")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        text = self._text(registry)
        assert "# TYPE gp_fit_seconds summary" in text
        assert 'gp_fit_seconds{quantile="0.5"} 2.5' in text
        assert 'gp_fit_seconds{quantile="0.99"}' in text
        assert "gp_fit_seconds_sum 10.0" in text
        assert "gp_fit_seconds_count 4.0" in text

    def test_quantile_label_appended_after_user_labels(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0, phase="explore")
        assert 'h{phase="explore",quantile="0.5"} 1.0' in self._text(
            registry
        )

    def test_snapshot_round_trip_through_json(self):
        """The trace path: snapshot -> JSON -> exposition."""
        import json

        from repro.obs import snapshot_to_prometheus_text

        registry = MetricsRegistry()
        registry.counter("search.probes_total").inc(2.0)
        registry.histogram("gp.fit_seconds").observe(0.5)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot_to_prometheus_text(snapshot) == self._text(registry)

    def test_ends_with_newline(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert self._text(registry).endswith("\n")
