"""The stdlib Prometheus endpoint: live registry and saved artifacts."""

import urllib.error
import urllib.request

import pytest

from repro.obs import (
    MetricsHTTPServer,
    MetricsRegistry,
    registry_source,
    trace_file_source,
)


def _get(url):
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.status, resp.read().decode("utf-8")


def _parse_exposition(text):
    """family name -> summed value across its labelled series."""
    out = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.partition(" ")
        family = name.partition("{")[0]
        out[family] = out.get(family, 0.0) + float(value)
    return out


@pytest.fixture()
def server_for():
    servers = []

    def start(source):
        server = MetricsHTTPServer(source).start()
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.stop()


class TestRegistrySource:
    def test_serves_the_live_registry(self, server_for):
        registry = MetricsRegistry()
        registry.counter("search.probes_total").inc(3)
        server = server_for(registry_source(registry))
        status, text = _get(server.url)
        assert status == 200
        assert _parse_exposition(text)["search_probes_total"] == 3.0

    def test_scrapes_see_updates_between_requests(self, server_for):
        registry = MetricsRegistry()
        counter = registry.counter("search.probes_total")
        server = server_for(registry_source(registry))
        counter.inc()
        first = _parse_exposition(_get(server.url)[1])
        counter.inc()
        second = _parse_exposition(_get(server.url)[1])
        assert first["search_probes_total"] == 1.0
        assert second["search_probes_total"] == 2.0


class TestTraceFileSource:
    def test_exposes_fleet_instances_running_from_a_run(
        self, server_for, live_run
    ):
        # the CI smoke greps exactly this family from a real run
        server = server_for(trace_file_source(live_run["stream_path"]))
        status, text = _get(server.url)
        assert status == 200
        assert "fleet_instances_running" in text
        values = _parse_exposition(text)
        assert values["search_probes_total"] > 0
        # run is over: the final snapshot shows the fleet drained
        assert values["fleet_instances_running"] == 0.0

    def test_rereads_the_artifact_on_every_scrape(
        self, server_for, tmp_path, live_run
    ):
        path = tmp_path / "grow.trace.jsonl"
        data = live_run["stream_path"].read_bytes()
        head = data[: len(data) // 2]
        # a torn mid-run prefix scrapes fine (loader tolerates the tail)
        path.write_bytes(head)
        server = server_for(trace_file_source(path))
        status, first = _get(server.url)
        assert status == 200
        path.write_bytes(data)
        _, second = _get(server.url)
        assert _parse_exposition(second)["search_probes_total"] >= \
            _parse_exposition(first).get("search_probes_total", 0.0)


class TestServerBehaviour:
    def test_only_metrics_and_root_are_served(self, server_for):
        server = server_for(lambda: "x 1.0\n")
        base = server.url.rsplit("/metrics", 1)[0]
        assert _get(f"{base}/metrics")[0] == 200
        assert _get(f"{base}/")[0] == 200
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"{base}/other")
        assert err.value.code == 404

    def test_source_failure_becomes_a_500(self, server_for):
        def broken():
            raise OSError("disk gone")

        server = server_for(broken)
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url)
        assert err.value.code == 500
        assert "scrape failed" in err.value.read().decode()

    def test_transient_runtime_errors_are_retried(self, server_for):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:  # dict-mutated-during-iteration race
                raise RuntimeError("registry mutated")
            return "ok 1.0\n"

        server = server_for(flaky)
        status, text = _get(server.url)
        assert status == 200
        assert text == "ok 1.0\n"

    def test_ephemeral_port_and_context_manager(self):
        with MetricsHTTPServer(lambda: "x 1.0\n") as server:
            assert server.port > 0
            assert str(server.port) in server.url
            assert _get(server.url)[0] == 200
