"""The streaming trace writer and the cross-process follow reader."""

import json

import pytest

from repro.obs import (
    EventBus,
    MetricsRegistry,
    SearchTrace,
    TraceStreamWriter,
    follow_trace,
    format_event,
    read_trace_events,
)


def _wired(tmp_path, **writer_kwargs):
    bus = EventBus(clock=lambda: 1.5)
    path = tmp_path / "run.trace.jsonl"
    writer = TraceStreamWriter(path, **writer_kwargs)
    bus.subscribe(writer)
    return bus, writer, path


def _lines(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestTraceStreamWriter:
    def test_placeholder_header_is_written_immediately(self, tmp_path):
        _, writer, path = _wired(tmp_path)
        docs = _lines(path)  # read before close: flushed per event
        assert [d["kind"] for d in docs] == ["header"]
        assert docs[0]["stop_reason"] == "running"
        assert docs[0]["live"] is True
        writer.close()

    def test_each_event_is_one_tailable_line(self, tmp_path):
        bus, writer, path = _wired(tmp_path)
        bus.publish("span", {"name": "probe"})
        bus.publish("progress", {"step": 1})
        docs = _lines(path)  # file readable mid-run, no close needed
        assert [d["kind"] for d in docs] == ["header", "span", "progress"]
        assert docs[1]["seq"] == 1 and docs[2]["seq"] == 2
        writer.close()

    def test_summary_completes_the_stream(self, tmp_path):
        bus, writer, path = _wired(tmp_path)
        bus.publish("summary", {"stop_reason": "budget", "best": None})
        assert writer.completed
        bus.publish("span", {"name": "late"})  # dropped after summary
        assert [d["kind"] for d in _lines(path)] == ["header", "summary"]
        writer.close()

    def test_metric_events_are_skipped(self, tmp_path):
        registry = MetricsRegistry()
        bus = EventBus()
        path = tmp_path / "t.jsonl"
        writer = TraceStreamWriter(path, metrics=registry)
        bus.subscribe(writer)
        bus.publish("metric", {"name": "x", "value": 1.0})
        assert [d["kind"] for d in _lines(path)] == ["header"]
        writer.close()

    def test_snapshot_every_throttles_interim_snapshots(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("search.probes_total").inc()
        bus, writer, path = _wired(
            tmp_path, metrics=registry, snapshot_every=3
        )
        for step in range(7):
            bus.publish("progress", {"step": step})
        kinds = [d["kind"] for d in _lines(path)]
        # snapshots after the 3rd and 6th heartbeat only
        assert kinds.count("metrics") == 2
        bus.publish("summary", {"stop_reason": "done", "best": None})
        kinds = [d["kind"] for d in _lines(path)]
        assert kinds[-2:] == ["metrics", "summary"]  # final snapshot
        writer.close()

    def test_snapshot_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="snapshot_every"):
            TraceStreamWriter(tmp_path / "t.jsonl", snapshot_every=0)

    def test_context_manager_closes(self, tmp_path):
        with TraceStreamWriter(tmp_path / "t.jsonl") as writer:
            pass
        writer.close()  # idempotent


class TestReadTraceEvents:
    def test_incremental_offsets_resume_where_they_left_off(self, tmp_path):
        bus, writer, path = _wired(tmp_path)
        bus.publish("span", {"name": "a"})
        docs, offset, torn = read_trace_events(path, 0)
        assert [d["kind"] for d in docs] == ["header", "span"]
        assert not torn
        bus.publish("span", {"name": "b"})
        docs, offset, torn = read_trace_events(path, offset)
        assert [d["name"] for d in docs] == ["b"]
        docs, _, _ = read_trace_events(path, offset)
        assert docs == []
        writer.close()

    def test_torn_tail_is_reported_not_consumed(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        complete = json.dumps({"kind": "header"}) + "\n"
        path.write_text(complete + '{"kind": "sp')  # producer mid-write
        docs, offset, torn = read_trace_events(path, 0)
        assert [d["kind"] for d in docs] == ["header"]
        assert torn
        assert offset == len(complete.encode())
        # once the line completes, a resumed read picks it up whole
        path.write_text(complete + '{"kind": "span"}\n')
        docs, _, torn = read_trace_events(path, offset)
        assert [d["kind"] for d in docs] == ["span"]
        assert not torn

    def test_malformed_complete_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header"}\nnot json at all\n')
        with pytest.raises(ValueError, match="malformed trace line"):
            read_trace_events(path, 0)

    def test_offset_resume_across_torn_tail_never_double_yields(
        self, tmp_path
    ):
        # a follower polling a producer that tears lines mid-write must
        # see every record exactly once: the torn bytes are re-read
        # from the same offset once the line completes, never re-parsed
        # as a second copy of an earlier record
        path = tmp_path / "grow.jsonl"
        records = [
            {"kind": "header"},
            {"kind": "span", "name": "a"},
            {"kind": "span", "name": "b"},
            {"kind": "summary"},
        ]
        lines = [json.dumps(r) for r in records]
        seen = []
        # producer writes line 1 whole, then tears line 2 mid-write
        path.write_bytes((lines[0] + "\n" + lines[1][:7]).encode())
        docs, offset, torn = read_trace_events(path, 0)
        seen += docs
        assert torn
        # line 2 completes; line 3 tears — resume from the same offset
        path.write_bytes(
            ("\n".join(lines[:2]) + "\n" + lines[2][:5]).encode()
        )
        docs, offset, torn = read_trace_events(path, offset)
        seen += docs
        assert torn
        # everything completes
        path.write_bytes(("\n".join(lines) + "\n").encode())
        docs, offset, torn = read_trace_events(path, offset)
        seen += docs
        assert not torn
        assert seen == records  # each record exactly once, in order


class TestFollowTrace:
    def test_follow_yields_exactly_the_post_hoc_records(self, live_run):
        followed = list(follow_trace(live_run["stream_path"]))
        post_hoc, _, torn = read_trace_events(live_run["stream_path"], 0)
        assert not torn
        assert followed == post_hoc
        assert followed[-1]["kind"] == "summary"

    def test_follow_terminates_on_completed_artifact_without_summary(
        self, canonical_trace_path
    ):
        # finalised artifacts have a final header stop_reason and no
        # summary line: EOF is the end, no timeout needed
        docs = list(follow_trace(canonical_trace_path))
        assert docs
        assert all(d["kind"] != "summary" for d in docs)

    def test_follow_times_out_on_a_stalled_live_file(self, tmp_path):
        bus, writer, path = _wired(tmp_path)
        bus.publish("span", {"name": "only"})
        docs = list(
            follow_trace(path, poll_interval=0.01, timeout=0.05)
        )
        assert [d["kind"] for d in docs] == ["header", "span"]
        writer.close()

    def test_follow_waits_for_a_file_that_does_not_exist_yet(self, tmp_path):
        docs = list(follow_trace(
            tmp_path / "never.jsonl", poll_interval=0.01, timeout=0.03
        ))
        assert docs == []

    def test_follow_kinds_filters_yield(self, live_run):
        docs = list(
            follow_trace(live_run["stream_path"], kinds={"decision"})
        )
        assert docs
        assert all(d["kind"] == "decision" for d in docs)

    def test_follow_kinds_filter_cannot_hang_the_follower(self, live_run):
        # filtering out header/summary must not break termination: the
        # liveness logic reads every record even when none are yielded
        docs = list(
            follow_trace(
                live_run["stream_path"],
                kinds={"fleet"},
                poll_interval=0.01,
                timeout=5.0,
            )
        )
        assert all(d["kind"] == "fleet" for d in docs)


class TestTornTailLoading:
    def test_loader_tolerates_and_reports_a_torn_final_line(self, live_run):
        data = live_run["stream_path"].read_bytes()
        torn_path = live_run["stream_path"].parent / "torn.trace.jsonl"
        torn_path.write_bytes(data[:-7])  # crash mid-final-line
        trace = SearchTrace.load(torn_path)
        assert trace.truncated
        # the complete prefix still loads into a coherent trace
        assert trace.spans

    def test_clean_artifact_is_not_truncated(self, live_run):
        assert not SearchTrace.load(live_run["stream_path"]).truncated

    def test_torn_first_line_is_not_a_trace(self, tmp_path):
        path = tmp_path / "stub.jsonl"
        path.write_text('{"kind": "hea')
        with pytest.raises(ValueError):
            SearchTrace.load(path)


class TestFormatEvent:
    def test_renders_the_followable_kinds(self, live_run):
        docs, _, _ = read_trace_events(live_run["stream_path"], 0)
        rendered = [
            line for line in map(format_event, docs) if line is not None
        ]
        text = "\n".join(rendered)
        assert "run starting (streaming)" in text
        assert "probe" in text
        assert "progress" in text
        assert "✓ finished" in text

    def test_failed_probe_renders_failed_not_zero_speed(self):
        line = format_event({
            "kind": "span", "name": "probe", "seq": 4, "time": 1.0,
            "attributes": {
                "step": 2, "deployment": "2x c5.xlarge",
                "speed": 0.0, "cost_usd": 1.0,
            },
        })
        assert "failed" in line
        assert "samples/s" not in line

    def test_noisy_kinds_are_skipped(self):
        assert format_event({"kind": "metrics", "data": {}}) is None
        assert format_event({
            "kind": "span-start", "name": "step", "attributes": {},
        }) is None
