"""The event bus: total ordering, interest sets, and the iron
invariant — a run with the bus and every sink attached makes
byte-identical decisions to a run with the bus off."""

import json

import pytest

from repro.core.engine import SearchContext
from repro.core.parallel import ParallelHeterBO
from repro.obs import (
    NOOP_BUS,
    BusEvent,
    EventBus,
    ProgressEvent,
    RunRecorder,
    SearchTrace,
)
from repro.perf.bench import canonical_trace_jsonl
from repro.profiling.profiler import Profiler
from repro.sim.noise import NoiseModel

from .conftest import canonical_run


class TestEventBus:
    def test_seq_is_monotonic_and_one_based(self):
        bus = EventBus(clock=lambda: 7.5)
        seen = []
        bus.subscribe(seen.append)
        first = bus.publish("span", {"name": "a"})
        second = bus.publish("decision", {"step": 1})
        assert (first.seq, second.seq) == (1, 2)
        assert [e.seq for e in seen] == [1, 2]
        assert all(e.time == 7.5 for e in seen)

    def test_fan_out_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(lambda e: order.append("first"))
        bus.subscribe(lambda e: order.append("second"))
        bus.publish("span", {})
        assert order == ["first", "second"]

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        sink = lambda e: None  # noqa: E731
        bus.subscribe(sink)
        bus.unsubscribe(sink)
        bus.unsubscribe(sink)  # absent: no-op, no raise
        bus.publish("span", {})
        assert bus.seq == 1  # seqs advance even with no sinks left

    def test_event_payload_keys_win_over_envelope(self):
        # fleet events carry their own seq/time; to_dict must keep them
        event = BusEvent(
            seq=9, time=1.0, kind="fleet", data={"seq": 4, "time": 0.5}
        )
        assert event.to_dict() == {"kind": "fleet", "seq": 4, "time": 0.5}

    def test_progress_event_round_trips(self):
        doc = {
            "kind": "progress", "seq": 3, "time": 12.0,
            "step": 2, "incumbent": "1x c5.xlarge",
        }
        event = ProgressEvent.from_dict(doc)
        assert event.step == 2
        assert event.incumbent == "1x c5.xlarge"
        assert {"kind": "progress", **event.to_dict()} == doc

    def test_noop_bus_rejects_sinks_and_swallows_events(self):
        assert NOOP_BUS.publish("span", {"name": "x"}) is None
        with pytest.raises(RuntimeError, match="no-op bus"):
            NOOP_BUS.subscribe(lambda e: None)


class TestInterestSets:
    def _interested(self, kinds):
        class Sink:
            interested_kinds = frozenset(kinds)

            def __init__(self):
                self.seen = []

            def __call__(self, event):
                self.seen.append(event)

        return Sink()

    def test_unwanted_kinds_are_not_constructed(self):
        bus = EventBus()
        sink = self._interested({"span"})
        bus.subscribe(sink)
        assert bus.publish("metric", {"name": "x"}) is None
        assert bus.publish("span", {"name": "y"}) is not None
        assert [e.kind for e in sink.seen] == ["span"]

    def test_seq_advances_for_skipped_publications(self):
        # the numbering a sink observes must not depend on which other
        # sinks are attached
        bus = EventBus()
        sink = self._interested({"span"})
        bus.subscribe(sink)
        bus.publish("metric", {})
        bus.publish("metric", {})
        event = bus.publish("span", {})
        assert event.seq == 3

    def test_progress_always_retained_even_if_unwanted(self):
        # finalize() folds progress into the trace regardless of sinks
        bus = EventBus()
        bus.subscribe(self._interested({"span"}))
        bus.publish("progress", {"step": 1})
        assert [p.step for p in bus.progress_events] == [1]

    def test_any_uninterested_sink_restores_full_delivery(self):
        bus = EventBus()
        narrow = self._interested({"span"})
        wide = []
        bus.subscribe(narrow)
        bus.subscribe(wide.append)  # no interested_kinds: wants all
        assert bus.publish("metric", {}) is not None
        assert [e.kind for e in wide] == ["metric"]


class TestBusIdentity:
    """Bus on (with sinks) vs. off: canonical-byte-identical."""

    def test_bus_with_all_sinks_is_byte_identical(
        self, canonical_trace, live_run
    ):
        assert canonical_trace_jsonl(live_run["trace"]) == \
            canonical_trace_jsonl(canonical_trace)

    def test_streamed_artifact_loads_into_the_finalized_trace(
        self, live_run
    ):
        streamed = SearchTrace.load(live_run["stream_path"])
        assert streamed.to_jsonl() == live_run["trace"].to_jsonl()

    def test_bus_run_carries_progress_the_canonical_form_strips(
        self, live_run
    ):
        trace = live_run["trace"]
        assert trace.progress  # heartbeats made it into the artifact
        assert all(
            json.loads(line)["kind"] != "progress"
            for line in canonical_trace_jsonl(trace).splitlines()
        )


class TestParallelOrdering:
    """ParallelHeterBO batches publish a stable, repeatable stream."""

    def _run(self, small_catalog, charrnn_job):
        from repro.cloud.provider import SimulatedCloud
        from repro.core.scenarios import Scenario
        from repro.core.search_space import DeploymentSpace
        from repro.sim.throughput import TrainingSimulator

        cloud = SimulatedCloud(small_catalog)
        recorder = RunRecorder(clock=lambda: cloud.clock.now, bus=True)
        cloud.fleet = recorder.fleet
        events = []
        recorder.bus.subscribe(events.append)
        profiler = Profiler(
            cloud, TrainingSimulator(),
            noise=NoiseModel(sigma=0.03, seed=0),
            tracer=recorder.tracer, metrics=recorder.metrics,
            bus=recorder.bus,
        )
        context = SearchContext(
            space=DeploymentSpace(small_catalog, max_count=20),
            profiler=profiler,
            job=charrnn_job,
            scenario=Scenario.fastest_within(30.0),
            tracer=recorder.tracer,
            metrics=recorder.metrics,
            decisions=recorder.decisions,
            watchdog=recorder.watchdog,
            bus=recorder.bus,
        )
        result = ParallelHeterBO(seed=1, batch_size=2).search(context)
        recorder.finalize(result)
        return events

    @staticmethod
    def _stable_view(events):
        # host timing is the only nondeterminism: wall_seconds on span
        # payloads, and wall-clock histograms (gp.fit_seconds) among
        # the metric events — the same fields the canonical trace form
        # strips.  Every other payload must be byte-stable.
        out = []
        for e in events:
            doc = e.to_dict()
            name = str(doc.get("name", ""))
            if e.kind == "metric" and "seconds" in name \
                    and not name.endswith("_total"):
                continue
            doc.pop("wall_seconds", None)
            out.append(doc)
        return out

    def test_two_identical_runs_publish_identical_streams(
        self, small_catalog, charrnn_job
    ):
        first = self._run(small_catalog, charrnn_job)
        second = self._run(small_catalog, charrnn_job)
        assert self._stable_view(first) == self._stable_view(second)
        seqs = [e.seq for e in first]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_parallel_bus_run_is_canonically_identical_to_no_bus(
        self, small_catalog, charrnn_job
    ):
        from repro.cloud.provider import SimulatedCloud
        from repro.core.scenarios import Scenario
        from repro.core.search_space import DeploymentSpace
        from repro.sim.throughput import TrainingSimulator

        def run(bus):
            cloud = SimulatedCloud(small_catalog)
            recorder = RunRecorder(clock=lambda: cloud.clock.now, bus=bus)
            cloud.fleet = recorder.fleet
            profiler = Profiler(
                cloud, TrainingSimulator(),
                noise=NoiseModel(sigma=0.03, seed=0),
                tracer=recorder.tracer, metrics=recorder.metrics,
                bus=recorder.bus,
            )
            context = SearchContext(
                space=DeploymentSpace(small_catalog, max_count=20),
                profiler=profiler,
                job=charrnn_job,
                scenario=Scenario.fastest_within(30.0),
                tracer=recorder.tracer,
                metrics=recorder.metrics,
                decisions=recorder.decisions,
                watchdog=recorder.watchdog,
                bus=recorder.bus,
            )
            result = ParallelHeterBO(seed=1, batch_size=2).search(context)
            return recorder.finalize(result)

        assert canonical_trace_jsonl(run(bus=True)) == \
            canonical_trace_jsonl(run(bus=False))


class TestLiveVariantOfTheCanonicalRun:
    def test_bus_off_publishes_nothing(self, canonical_trace):
        # the bus-off canonical run must carry no progress events
        assert canonical_trace.progress == ()

    def test_rebuilt_canonical_run_matches_saved_artifact(
        self, canonical_trace_path
    ):
        # guard: the live fixtures re-execute the same seeded world,
        # so a no-bus rebuild must reproduce the session artifact on
        # the canonical form (full bytes differ only by wall_seconds —
        # host timing)
        rebuilt = canonical_run()
        assert canonical_trace_jsonl(rebuilt) == \
            canonical_trace_jsonl(SearchTrace.load(canonical_trace_path))
