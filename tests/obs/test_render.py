"""Trace rendering: span trees, failed probes, quantile sections."""

from repro.core.result import SearchResult, TrialRecord
from repro.core.scenarios import Scenario
from repro.core.search_space import Deployment
from repro.obs import RunRecorder, SearchTrace
from repro.obs.render import render_span_tree


def _finalize(recorder: RunRecorder) -> SearchTrace:
    result = SearchResult(
        strategy="heterbo",
        scenario=Scenario.fastest(),
        trials=(
            TrialRecord(
                step=1, deployment=Deployment("c5.xlarge", 1),
                measured_speed=10.0, profile_seconds=600.0,
                profile_dollars=0.5, elapsed_seconds=600.0,
                spent_dollars=0.5, note="initial",
            ),
        ),
        best=Deployment("c5.xlarge", 1),
        best_measured_speed=10.0,
        profile_seconds=600.0,
        profile_dollars=0.5,
        stop_reason="test complete",
    )
    return recorder.finalize(result)


class TestSpanTreeNesting:
    def test_deeply_nested_spans_indent_per_level(self):
        recorder = RunRecorder()
        names = ["search", "step", "probe", "launch", "billing"]
        with recorder.tracer.span(names[0]):
            with recorder.tracer.span(names[1]):
                with recorder.tracer.span(names[2]):
                    with recorder.tracer.span(names[3]):
                        with recorder.tracer.span(names[4]):
                            pass
        out = render_span_tree(recorder.tracer.spans)
        lines = out.splitlines()
        assert len(lines) == 5
        for depth, (line, name) in enumerate(zip(lines, names)):
            assert line.startswith("  " * depth + name)

    def test_siblings_stay_at_the_same_depth(self):
        recorder = RunRecorder()
        with recorder.tracer.span("search"):
            for phase in ("initial", "explore"):
                with recorder.tracer.span("step", {"phase": phase}):
                    pass
        lines = render_span_tree(recorder.tracer.spans).splitlines()
        step_lines = [ln for ln in lines if "step" in ln]
        assert len(step_lines) == 2
        assert all(ln.startswith("  step") for ln in step_lines)
        assert "phase=initial" in step_lines[0]
        assert "phase=explore" in step_lines[1]

    def test_orphan_parents_render_nothing_for_missing_root(self):
        # an empty recording renders to an empty string, not a crash
        assert render_span_tree(()) == ""


class TestFailedProbes:
    def _recorder_with_failed_probe(self) -> RunRecorder:
        recorder = RunRecorder()
        with recorder.tracer.span("search", {"strategy": "heterbo"}):
            with recorder.tracer.span("probe", {
                "deployment": "1x c5.xlarge", "step": 1,
                "cost_usd": 0.5, "speed": 10.0, "note": "initial",
            }):
                pass
            with recorder.tracer.span("probe", {
                "deployment": "40x p2.xlarge", "step": 2,
                "cost_usd": 0.0, "speed": None, "note": "explore",
                "failure_reason": "insufficient capacity",
            }):
                pass
        return recorder

    def test_probe_rows_carry_failure_reason(self):
        trace = _finalize(self._recorder_with_failed_probe())
        rows = trace.probe_rows()
        assert rows[0]["failure_reason"] == ""
        assert rows[1]["failure_reason"] == "insufficient capacity"
        assert rows[1]["speed"] is None

    def test_render_shows_failure_instead_of_speed(self):
        trace = _finalize(self._recorder_with_failed_probe())
        out = trace.render()
        assert "insufficient capacity" in out
        assert "40x p2.xlarge" in out


class TestHistogramQuantileSection:
    def test_quantiles_render_per_series(self):
        recorder = RunRecorder()
        hist = recorder.metrics.histogram("gp.fit_seconds", unit="s")
        for v in range(1, 101):
            hist.observe(v / 100.0)
        trace = _finalize(recorder)
        out = trace.render()
        assert "histograms (p50/p90/p99):" in out
        assert "gp.fit_seconds" in out
        assert "p50=" in out and "p90=" in out and "p99=" in out

    def test_labelled_series_render_with_labels(self):
        recorder = RunRecorder()
        hist = recorder.metrics.histogram("probe.cost", unit="usd")
        hist.observe(1.0, instance_type="p2.xlarge")
        trace = _finalize(recorder)
        assert "{instance_type=p2.xlarge}" in trace.render()

    def test_v1_snapshot_without_quantiles_skipped(self):
        # metrics snapshots from v1 artifacts lack p50/p90/p99 keys
        recorder = RunRecorder()
        recorder.metrics.histogram("gp.fit_seconds").observe(0.5)
        trace = _finalize(recorder)
        stripped = dict(trace.metrics)
        stripped["gp.fit_seconds"] = {
            "kind": "histogram",
            "unit": "",
            "series": [{
                "labels": {}, "count": 1, "sum": 0.5, "min": 0.5,
                "max": 0.5, "mean": 0.5,
            }],
        }
        v1like = SearchTrace(
            strategy=trace.strategy, scenario=trace.scenario,
            stop_reason=trace.stop_reason, best=trace.best,
            summary=trace.summary, spans=trace.spans, metrics=stripped,
        )
        assert "histograms" not in v1like.render()
