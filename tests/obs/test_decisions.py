"""Decision records: staging, commit semantics, and read-only recording."""

import numpy as np
import pytest

from repro.cloud.catalog import paper_catalog
from repro.cloud.provider import SimulatedCloud
from repro.core.engine import SearchContext
from repro.core.heterbo import HeterBO
from repro.core.scenarios import Scenario
from repro.core.search_space import DeploymentSpace
from repro.obs import NOOP_DECISIONS, DecisionLog, DecisionRecord, RunRecorder
from repro.perf.bench import canonical_trace_jsonl
from repro.profiling.profiler import Profiler
from repro.sim.datasets import get_dataset
from repro.sim.noise import NoiseModel
from repro.sim.platforms import get_platform
from repro.sim.throughput import TrainingJob, TrainingSimulator
from repro.sim.zoo import get_model


def _publish(log: DecisionLog, n: int = 5) -> None:
    scores = np.arange(n, dtype=float)  # ascending: last index wins
    log.publish(
        deployments=[f"{i + 1}x c5.xlarge" for i in range(n)],
        ei=np.full(n, 0.5),
        scores=scores,
        penalty=np.full(n, 0.1),
        feasible=np.ones(n, dtype=bool),
        objective="time",
        consumed=2.0,
        limit=10.0,
        best_feasible_ei=0.5,
    )


class TestDecisionLog:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown decision mode"):
            DecisionLog("verbose")

    def test_top_k_must_be_positive(self):
        with pytest.raises(ValueError, match="top_k"):
            DecisionLog("topk", top_k=0)

    def test_auto_resolves_from_lane(self):
        log = DecisionLog("auto")
        log.begin_run(fast_lane=True)
        assert log.mode == "topk"
        log = DecisionLog("auto")
        log.begin_run(fast_lane=False)
        assert log.mode == "full"

    def test_explicit_mode_survives_begin_run(self):
        log = DecisionLog("full")
        log.begin_run(fast_lane=True)
        assert log.mode == "full"

    def test_commit_produces_ordered_candidates(self):
        log = DecisionLog("full")
        _publish(log)
        record = log.commit(n_observations=7, chosen="5x c5.xlarge")
        assert record is not None
        assert record.step == 1
        assert record.n_candidates == 5
        assert record.n_feasible == 5
        # sorted by descending score, chosen first
        assert record.candidates[0].deployment == "5x c5.xlarge"
        scores = [c.score for c in record.candidates]
        assert scores == sorted(scores, reverse=True)

    def test_topk_truncates_but_keeps_chosen(self):
        log = DecisionLog("topk", top_k=3)
        log.begin_run(fast_lane=True)
        _publish(log, n=10)
        record = log.commit(n_observations=1, chosen="10x c5.xlarge")
        assert len(record.candidates) == 3
        assert record.n_candidates == 10
        assert record.candidates[0].deployment == record.chosen

    def test_blocked_masks_fold_into_pruned(self):
        log = DecisionLog("full")
        n = 4
        log.publish(
            deployments=[f"{i + 1}x p2.xlarge" for i in range(n)],
            ei=np.full(n, 0.2),
            scores=np.array([1.0, -np.inf, -np.inf, 2.0]),
            feasible=np.array([True, False, False, True]),
            blocked={"poi": np.array([False, True, False, False]),
                     "tei": np.array([False, True, True, False])},
        )
        log.note_pruned("prior", 3)
        record = log.commit(n_observations=5, chosen="4x p2.xlarge")
        assert record.pruned == {"poi": 1, "tei": 2, "prior": 3}
        blocked = {c.deployment: c.blocked_by for c in record.candidates}
        assert blocked["2x p2.xlarge"] == ("poi", "tei")
        assert blocked["3x p2.xlarge"] == ("tei",)

    def test_non_finite_scores_serialise_as_none(self):
        log = DecisionLog("full")
        log.publish(
            deployments=["1x c5.xlarge", "2x c5.xlarge"],
            ei=np.array([0.1, 0.2]),
            scores=np.array([-np.inf, 1.0]),
        )
        record = log.commit(n_observations=2, chosen="2x c5.xlarge")
        by_name = {c.deployment: c for c in record.candidates}
        assert by_name["1x c5.xlarge"].score is None
        assert by_name["1x c5.xlarge"].feasible is False
        data = record.to_dict()
        assert DecisionRecord.from_dict(data) == record

    def test_stop_commit_without_publish(self):
        log = DecisionLog("full")
        record = log.commit(n_observations=3, stop_reason="budget exhausted")
        assert record.chosen is None
        assert record.stop_reason == "budget exhausted"
        assert record.candidates == ()

    def test_state_clears_between_commits(self):
        log = DecisionLog("full")
        _publish(log)
        log.note_pruned("prior", 2)
        log.commit(n_observations=1, chosen="5x c5.xlarge")
        record = log.commit(n_observations=2, stop_reason="done")
        assert record.step == 2
        assert record.pruned == {}
        assert record.n_candidates == 0

    def test_noop_log_records_nothing(self):
        assert NOOP_DECISIONS.enabled is False
        _publish(NOOP_DECISIONS)
        NOOP_DECISIONS.note_pruned("prior", 5)
        assert NOOP_DECISIONS.commit(n_observations=1) is None
        assert NOOP_DECISIONS.records == ()


def _search(seed=3, *, decisions="auto", fast_lane=True, watchdog=True):
    catalog = paper_catalog().subset(
        ["c5.xlarge", "c5.4xlarge", "c4.xlarge"]
    )
    cloud = SimulatedCloud(catalog)
    recorder = RunRecorder(
        clock=lambda: cloud.clock.now,
        decisions=decisions,
        watchdog=watchdog,
    )
    profiler = Profiler(
        cloud, TrainingSimulator(),
        noise=NoiseModel(sigma=0.03, seed=seed),
        tracer=recorder.tracer, metrics=recorder.metrics,
    )
    job = TrainingJob(
        model=get_model("char-rnn"),
        dataset=get_dataset("char-corpus"),
        platform=get_platform("tensorflow"),
        epochs=1.0,
    )
    context = SearchContext(
        space=DeploymentSpace(catalog, max_count=8),
        profiler=profiler,
        job=job,
        scenario=Scenario.fastest_within(40.0),
        tracer=recorder.tracer,
        metrics=recorder.metrics,
        decisions=recorder.decisions,
        watchdog=recorder.watchdog,
    )
    strategy = HeterBO(seed=seed, max_steps=8, fast_lane=fast_lane)
    result = strategy.search(context)
    return recorder.finalize(result), result


class TestSearchIntegration:
    def test_one_record_per_decision(self):
        trace, result = _search()
        assert trace.decisions
        steps = [r.step for r in trace.decisions]
        assert steps == list(range(1, len(steps) + 1))
        # every explore probe (post initial design) pairs with a record
        explore_probes = [
            r for r in trace.probe_rows() if r["note"] == "explore"
        ]
        chosen = [r for r in trace.decisions if r.chosen is not None]
        assert len(chosen) == len(explore_probes)

    def test_chosen_matches_probed_deployment(self):
        trace, _ = _search()
        explore = [r for r in trace.probe_rows() if r["note"] == "explore"]
        chosen = [r.chosen for r in trace.decisions if r.chosen is not None]
        assert chosen == [r["deployment"] for r in explore]

    def test_recording_does_not_change_decisions(self):
        # byte-identity on the canonicalised artifact: recording on vs
        # off must walk the exact same probe sequence
        on, _ = _search(decisions="auto", watchdog=True)
        off, _ = _search(decisions="off", watchdog=False)
        assert canonical_trace_jsonl(on) == canonical_trace_jsonl(off)
        assert on.decisions and not off.decisions

    def test_topk_and_full_agree_on_chosen(self):
        topk, _ = _search(decisions="topk")
        full, _ = _search(decisions="full")
        assert [r.chosen for r in topk.decisions] == [
            r.chosen for r in full.decisions
        ]
        assert all(
            len(r.candidates) <= 8 for r in topk.decisions
        )

    def test_records_survive_jsonl_round_trip(self):
        from repro.obs import SearchTrace

        trace, _ = _search()
        again = SearchTrace.from_jsonl(trace.to_jsonl())
        assert again.decisions == trace.decisions
