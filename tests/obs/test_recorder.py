"""Run recorder: SearchTrace construction and JSONL round-trips."""

import pytest

from repro.core.result import SearchResult, TrialRecord
from repro.core.scenarios import Scenario
from repro.core.search_space import Deployment
from repro.obs import RunRecorder, SearchTrace, TRACE_SCHEMA_VERSION


@pytest.fixture
def recorded() -> tuple[RunRecorder, SearchResult]:
    recorder = RunRecorder()
    with recorder.tracer.span("search", {"strategy": "heterbo"}):
        with recorder.tracer.span("step", {"phase": "initial"}):
            with recorder.tracer.span("probe", {
                "deployment": "1x c5.xlarge", "step": 1,
                "cost_usd": 0.5, "speed": 10.0, "note": "initial",
            }):
                pass
        with recorder.tracer.span("step", {"phase": "explore"}):
            with recorder.tracer.span("probe", {
                "deployment": "4x c5.xlarge", "step": 2,
                "cost_usd": 1.5, "speed": 30.0, "note": "explore",
            }):
                pass
    recorder.metrics.counter("search.probes_total").inc(2.0)
    result = SearchResult(
        strategy="heterbo",
        scenario=Scenario.fastest(),
        trials=(
            TrialRecord(
                step=1, deployment=Deployment("c5.xlarge", 1),
                measured_speed=10.0, profile_seconds=600.0,
                profile_dollars=0.5, elapsed_seconds=600.0,
                spent_dollars=0.5, note="initial",
            ),
            TrialRecord(
                step=2, deployment=Deployment("c5.xlarge", 4),
                measured_speed=30.0, profile_seconds=600.0,
                profile_dollars=1.5, elapsed_seconds=1200.0,
                spent_dollars=2.0, note="explore",
            ),
        ),
        best=Deployment("c5.xlarge", 4),
        best_measured_speed=30.0,
        profile_seconds=1200.0,
        profile_dollars=2.0,
        stop_reason="test complete",
    )
    return recorder, result


class TestFinalize:
    def test_trace_carries_run_identity(self, recorded):
        recorder, result = recorded
        trace = recorder.finalize(result)
        assert trace.strategy == "heterbo"
        assert trace.best == "4x c5.xlarge"
        assert trace.stop_reason == "test complete"
        assert trace.schema_version == TRACE_SCHEMA_VERSION

    def test_summary(self, recorded):
        recorder, result = recorded
        trace = recorder.finalize(result)
        assert trace.summary == {
            "n_steps": 2,
            "profile_seconds": 1200.0,
            "profile_dollars": 2.0,
            "best_measured_speed": 30.0,
        }

    def test_probe_views(self, recorded):
        recorder, result = recorded
        trace = recorder.finalize(result)
        assert trace.n_probes == 2
        assert trace.probe_dollars_total == pytest.approx(2.0)
        rows = trace.probe_rows()
        assert rows[0]["deployment"] == "1x c5.xlarge"
        assert rows[1]["note"] == "explore"

    def test_metrics_snapshot_included(self, recorded):
        recorder, result = recorded
        trace = recorder.finalize(result)
        assert trace.metrics["search.probes_total"]["kind"] == "counter"


class TestJsonlRoundTrip:
    def test_round_trip_preserves_everything(self, recorded):
        recorder, result = recorded
        trace = recorder.finalize(result)
        again = SearchTrace.from_jsonl(trace.to_jsonl())
        assert again == trace

    def test_save_load(self, recorded, tmp_path):
        recorder, result = recorded
        trace = recorder.finalize(result)
        path = trace.save(tmp_path / "run.trace.jsonl")
        assert SearchTrace.load(path) == trace

    def test_one_json_object_per_line(self, recorded):
        import json

        recorder, result = recorded
        text = recorder.finalize(result).to_jsonl()
        lines = text.strip().splitlines()
        docs = [json.loads(line) for line in lines]
        assert docs[0]["kind"] == "header"
        assert docs[-1]["kind"] == "metrics"
        assert all(d["kind"] == "span" for d in docs[1:-1])

    def test_render_delegates(self, recorded):
        recorder, result = recorded
        trace = recorder.finalize(result)
        out = trace.render()
        assert "heterbo" in out
        assert "4x c5.xlarge" in out
        tree = trace.render_spans()
        assert "search" in tree and "probe" in tree


class TestJsonlValidation:
    def test_invalid_json_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            SearchTrace.from_jsonl("{nope")

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError, match="no header"):
            SearchTrace.from_jsonl('{"kind": "metrics", "data": {}}')

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown record kind"):
            SearchTrace.from_jsonl('{"kind": "mystery"}')

    def test_unsupported_schema_version_rejected(self, recorded):
        recorder, result = recorded
        text = recorder.finalize(result).to_jsonl()
        text = text.replace(
            f'"schema_version": {TRACE_SCHEMA_VERSION}',
            '"schema_version": 99',
        )
        with pytest.raises(ValueError, match="schema version 99"):
            SearchTrace.from_jsonl(text)

    def test_rejection_names_the_file_and_version(self, recorded, tmp_path):
        recorder, result = recorded
        text = recorder.finalize(result).to_jsonl()
        text = text.replace(
            f'"schema_version": {TRACE_SCHEMA_VERSION}',
            '"schema_version": 99',
        )
        path = tmp_path / "future.trace.jsonl"
        path.write_text(text)
        with pytest.raises(ValueError) as excinfo:
            SearchTrace.load(path)
        message = str(excinfo.value)
        assert "future.trace.jsonl" in message
        assert "99" in message


def _downgrade_to_v1(text: str) -> str:
    """Rewrite a current-version artifact as its v1 equivalent."""
    lines = [
        line
        for line in text.strip().splitlines()
        if '"kind": "decision"' not in line
    ]
    lines[0] = lines[0].replace(
        f'"schema_version": {TRACE_SCHEMA_VERSION}', '"schema_version": 1'
    )
    return "\n".join(lines) + "\n"


class TestV1Migration:
    def test_v1_trace_loads_with_empty_decisions(self, recorded):
        recorder, result = recorded
        trace = recorder.finalize(result)
        migrated = SearchTrace.from_jsonl(_downgrade_to_v1(trace.to_jsonl()))
        assert migrated.schema_version == TRACE_SCHEMA_VERSION
        assert migrated.decisions == ()
        assert migrated.spans == trace.spans
        assert migrated.summary == trace.summary

    def test_v1_round_trips_through_current_schema(self, recorded, tmp_path):
        recorder, result = recorded
        trace = recorder.finalize(result)
        v1_path = tmp_path / "old.trace.jsonl"
        v1_path.write_text(_downgrade_to_v1(trace.to_jsonl()))
        migrated = SearchTrace.load(v1_path)
        # saving the migrated trace upgrades the artifact in place
        upgraded_path = migrated.save(tmp_path / "upgraded.trace.jsonl")
        again = SearchTrace.load(upgraded_path)
        assert again == migrated
        assert f'"schema_version": {TRACE_SCHEMA_VERSION}' in (
            upgraded_path.read_text()
        )


class TestFleetPersistence:
    """Schema v3: fleet events in the artifact, v2 migration."""

    def _recorded_with_fleet(self, recorded):
        recorder, result = recorded
        fleet = recorder.fleet
        fleet.annotate(phase="initial", step=1, trial=1,
                       deployment="1x c5.xlarge")
        fleet.record("requested", time=0.0, instance_type="c5.xlarge",
                     count=1, cluster_id=1)
        fleet.record("running", time=120.0, instance_type="c5.xlarge",
                     count=1, cluster_id=1)
        fleet.record("terminated", time=600.0, instance_type="c5.xlarge",
                     count=1, cluster_id=1, purpose="profiling",
                     seconds=600.0, dollars=0.5, ledger_index=0)
        fleet.clear()
        return recorder.finalize(result)

    def test_fleet_events_round_trip(self, recorded):
        trace = self._recorded_with_fleet(recorded)
        assert len(trace.fleet) == 3
        again = SearchTrace.from_jsonl(trace.to_jsonl())
        assert again == trace
        assert again.fleet == trace.fleet

    def test_fleet_lines_sit_between_decisions_and_metrics(self, recorded):
        import json

        trace = self._recorded_with_fleet(recorded)
        kinds = [
            json.loads(line)["kind"]
            for line in trace.to_jsonl().strip().splitlines()
        ]
        assert kinds.index("fleet") < kinds.index("metrics")
        assert kinds[0] == "header"

    def test_each_fleet_line_carries_its_own_version(self, recorded):
        import json

        from repro.obs.fleet import FLEET_EVENT_VERSION

        trace = self._recorded_with_fleet(recorded)
        fleet_lines = [
            json.loads(line)
            for line in trace.to_jsonl().strip().splitlines()
            if json.loads(line)["kind"] == "fleet"
        ]
        assert fleet_lines
        assert all(doc["v"] == FLEET_EVENT_VERSION for doc in fleet_lines)

    def test_v2_trace_loads_with_empty_fleet(self, recorded):
        trace = self._recorded_with_fleet(recorded)
        v2_text = "\n".join(
            line
            for line in trace.to_jsonl().strip().splitlines()
            if '"kind": "fleet"' not in line
        ).replace(
            f'"schema_version": {TRACE_SCHEMA_VERSION}',
            '"schema_version": 2',
        ) + "\n"
        migrated = SearchTrace.from_jsonl(v2_text)
        assert migrated.schema_version == TRACE_SCHEMA_VERSION
        assert migrated.fleet == ()
        assert migrated.decisions == trace.decisions
        assert migrated.spans == trace.spans

    def test_attribution_views(self, recorded):
        trace = self._recorded_with_fleet(recorded)
        assert trace.attributed_dollars_total == 0.5
        assert [e.ledger_index for e in trace.attributions()] == [0]
        rows = trace.fleet_rows()
        assert [r["event"] for r in rows] == [
            "requested", "running", "terminated",
        ]

    def test_recorder_fleet_off_yields_noop(self):
        from repro.obs.fleet import NOOP_FLEET

        recorder = RunRecorder(fleet=False)
        assert recorder.fleet is NOOP_FLEET
