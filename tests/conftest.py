"""Shared fixtures: catalogs, jobs, simulated worlds.

The whole suite runs with runtime contracts armed (see
:mod:`repro.contracts`): every search exercised by a test also checks
GP-posterior finiteness and billing reconciliation for free.
"""

from __future__ import annotations

import os

import pytest

os.environ.setdefault("REPRO_CONTRACTS", "1")

from repro.cloud.catalog import InstanceCatalog, paper_catalog
from repro.cloud.provider import SimulatedCloud
from repro.core.search_space import DeploymentSpace
from repro.profiling.profiler import Profiler
from repro.sim.comm import CommProtocol
from repro.sim.datasets import get_dataset
from repro.sim.noise import NoiseModel
from repro.sim.platforms import get_platform
from repro.sim.throughput import TrainingJob, TrainingSimulator
from repro.sim.zoo import get_model


@pytest.fixture
def catalog() -> InstanceCatalog:
    return paper_catalog()


@pytest.fixture
def small_catalog() -> InstanceCatalog:
    """Three types spanning cheap CPU / mid CPU / GPU."""
    return paper_catalog().subset(["c5.xlarge", "c5.4xlarge", "p2.xlarge"])


@pytest.fixture
def simulator() -> TrainingSimulator:
    return TrainingSimulator()


@pytest.fixture
def charrnn_job() -> TrainingJob:
    return TrainingJob(
        model=get_model("char-rnn"),
        dataset=get_dataset("char-corpus"),
        platform=get_platform("tensorflow"),
        epochs=2.0,
    )


@pytest.fixture
def resnet_job() -> TrainingJob:
    return TrainingJob(
        model=get_model("resnet"),
        dataset=get_dataset("cifar10"),
        platform=get_platform("tensorflow"),
        global_batch=128,
        epochs=10.0,
    )


@pytest.fixture
def bert_ring_job() -> TrainingJob:
    return TrainingJob(
        model=get_model("bert"),
        dataset=get_dataset("bert-corpus"),
        platform=get_platform("tensorflow"),
        protocol=CommProtocol.RING_ALLREDUCE,
        epochs=0.01,
    )


@pytest.fixture
def cloud(small_catalog) -> SimulatedCloud:
    return SimulatedCloud(small_catalog)


@pytest.fixture
def profiler(cloud, simulator) -> Profiler:
    return Profiler(cloud, simulator, noise=NoiseModel(sigma=0.03, seed=0))


@pytest.fixture
def small_space(small_catalog) -> DeploymentSpace:
    return DeploymentSpace(small_catalog, max_count=20)
