"""TrainingSimulator: job semantics, feasibility, step model."""

import pytest

from repro.sim.comm import CommProtocol
from repro.sim.datasets import get_dataset
from repro.sim.platforms import get_platform
from repro.sim.throughput import (
    InfeasibleDeploymentError,
    TrainingJob,
    TrainingSimulator,
)
from repro.sim.zoo import get_model


class TestTrainingJob:
    def test_defaults_from_model_and_platform(self, charrnn_job):
        assert charrnn_job.batch == get_model("char-rnn").default_batch
        assert (
            charrnn_job.effective_protocol
            is CommProtocol.PARAMETER_SERVER
        )

    def test_explicit_batch_and_protocol(self):
        job = TrainingJob(
            model=get_model("bert"),
            dataset=get_dataset("bert-corpus"),
            platform=get_platform("tensorflow"),
            protocol=CommProtocol.RING_ALLREDUCE,
            global_batch=64,
        )
        assert job.batch == 64
        assert job.effective_protocol is CommProtocol.RING_ALLREDUCE

    def test_total_samples(self, charrnn_job):
        assert charrnn_job.total_samples == 800_000  # 2 epochs x 400k

    def test_zero_epochs_rejected(self):
        with pytest.raises(ValueError, match="epochs"):
            TrainingJob(
                model=get_model("bert"),
                dataset=get_dataset("bert-corpus"),
                platform=get_platform("tensorflow"),
                epochs=0.0,
            )

    def test_describe_mentions_key_facts(self, charrnn_job):
        d = charrnn_job.describe()
        assert "char-rnn" in d and "tensorflow" in d and "ps" in d


class TestFeasibility:
    def test_feasible_basic(self, simulator, catalog, charrnn_job):
        simulator.check_feasible(catalog["c5.xlarge"], 4, charrnn_job)

    def test_more_workers_than_batch_infeasible(
        self, simulator, catalog, charrnn_job
    ):
        batch = charrnn_job.batch
        with pytest.raises(InfeasibleDeploymentError, match="global batch"):
            simulator.check_feasible(
                catalog["c5.xlarge"], batch + 1, charrnn_job
            )

    def test_memory_bound_infeasible(self, simulator, catalog):
        """ZeRO-20B cannot fit a single p3.16xlarge (state unsharded
        at n=1)."""
        job = TrainingJob(
            model=get_model("zero-20b"),
            dataset=get_dataset("bert-corpus"),
            platform=get_platform("tensorflow"),
            protocol=CommProtocol.RING_ALLREDUCE,
        )
        with pytest.raises(InfeasibleDeploymentError, match="GiB"):
            simulator.check_feasible(catalog["p3.16xlarge"], 1, job)

    def test_sharding_restores_feasibility_at_scale(
        self, simulator, catalog
    ):
        job = TrainingJob(
            model=get_model("zero-20b"),
            dataset=get_dataset("bert-corpus"),
            platform=get_platform("tensorflow"),
            protocol=CommProtocol.RING_ALLREDUCE,
        )
        assert not simulator.is_feasible(catalog["p3.16xlarge"], 1, job)
        assert simulator.is_feasible(catalog["p3.16xlarge"], 8, job)

    def test_zero_count_rejected(self, simulator, catalog, charrnn_job):
        with pytest.raises(ValueError, match="count"):
            simulator.check_feasible(catalog["c5.xlarge"], 0, charrnn_job)


class TestStepModel:
    def test_breakdown_sums_to_step(self, simulator, catalog, charrnn_job):
        b = simulator.step_breakdown(catalog["c5.4xlarge"], 8, charrnn_job)
        assert b.step_seconds == pytest.approx(
            b.compute_seconds + b.overhead_seconds + b.exposed_comm_seconds
        )

    def test_exposed_comm_never_exceeds_raw(
        self, simulator, catalog, charrnn_job
    ):
        b = simulator.step_breakdown(catalog["c5.4xlarge"], 8, charrnn_job)
        assert 0 <= b.exposed_comm_seconds <= b.comm_seconds

    def test_single_node_no_comm(self, simulator, catalog, charrnn_job):
        b = simulator.step_breakdown(catalog["c5.4xlarge"], 1, charrnn_job)
        assert b.comm_seconds == 0.0

    def test_speed_is_batch_over_step(self, simulator, catalog, charrnn_job):
        itype = catalog["c5.4xlarge"]
        b = simulator.step_breakdown(itype, 8, charrnn_job)
        assert simulator.true_speed(itype, 8, charrnn_job) == pytest.approx(
            charrnn_job.batch / b.step_seconds
        )

    def test_speed_deterministic(self, simulator, catalog, charrnn_job):
        itype = catalog["c5.4xlarge"]
        assert simulator.true_speed(itype, 8, charrnn_job) == (
            simulator.true_speed(itype, 8, charrnn_job)
        )

    def test_infeasible_speed_raises(self, simulator, catalog, charrnn_job):
        with pytest.raises(InfeasibleDeploymentError):
            simulator.true_speed(
                catalog["c5.xlarge"], charrnn_job.batch * 2, charrnn_job
            )


class TestAggregates:
    def test_training_seconds(self, simulator, catalog, charrnn_job):
        itype = catalog["c5.4xlarge"]
        speed = simulator.true_speed(itype, 8, charrnn_job)
        assert simulator.training_seconds(
            itype, 8, charrnn_job
        ) == pytest.approx(charrnn_job.total_samples / speed)

    def test_training_cost(self, simulator, catalog, charrnn_job):
        itype = catalog["c5.4xlarge"]
        seconds = simulator.training_seconds(itype, 8, charrnn_job)
        assert simulator.training_cost(
            itype, 8, charrnn_job
        ) == pytest.approx(itype.cost_for(seconds, 8))

    def test_scale_out_curve_marks_infeasible_zero(
        self, simulator, catalog, charrnn_job
    ):
        curve = simulator.scale_out_curve(
            catalog["c5.4xlarge"], [1, charrnn_job.batch * 2], charrnn_job
        )
        assert curve[0] > 0
        assert curve[1] == 0.0

    def test_scale_up_curve(self, simulator, catalog, charrnn_job):
        types = [catalog["c5.xlarge"], catalog["c5.4xlarge"]]
        up = simulator.scale_up_curve(types, 4, charrnn_job)
        assert up[1] > up[0]  # bigger shape is faster


class TestPlatformEffects:
    def test_mxnet_faster_than_tensorflow(self, simulator, catalog):
        """MXNet's compute efficiency and overlap advantage show up."""
        common = dict(
            model=get_model("bert"),
            dataset=get_dataset("bert-corpus"),
            protocol=CommProtocol.RING_ALLREDUCE,
        )
        tf_job = TrainingJob(platform=get_platform("tensorflow"), **common)
        mx_job = TrainingJob(platform=get_platform("mxnet"), **common)
        itype = catalog["p3.2xlarge"]
        assert simulator.true_speed(itype, 4, mx_job) > simulator.true_speed(
            itype, 4, tf_job
        )

    def test_ring_beats_ps_for_bert_at_scale(self, simulator, catalog):
        """The paper's reason for training BERT with ring all-reduce."""
        common = dict(
            model=get_model("bert"),
            dataset=get_dataset("bert-corpus"),
            platform=get_platform("tensorflow"),
        )
        ring = TrainingJob(protocol=CommProtocol.RING_ALLREDUCE, **common)
        ps = TrainingJob(protocol=CommProtocol.PARAMETER_SERVER, **common)
        itype = catalog["p3.2xlarge"]
        assert simulator.true_speed(itype, 16, ring) > simulator.true_speed(
            itype, 16, ps
        )
