"""ModelSpec: validation, derived quantities, scaling."""

import pytest

from repro.sim.models import ModelFamily, ModelSpec


def spec(**kw):
    defaults = dict(
        name="m", family=ModelFamily.CNN, params=1_000_000,
        gflops_per_sample=1.0, default_batch=64,
        activation_gib_per_sample=0.01,
    )
    defaults.update(kw)
    return ModelSpec(**defaults)


class TestValidation:
    def test_valid(self):
        assert spec().params == 1_000_000

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            spec(name="")

    def test_zero_params_rejected(self):
        with pytest.raises(ValueError, match="params"):
            spec(params=0)

    def test_zero_gflops_rejected(self):
        with pytest.raises(ValueError, match="gflops"):
            spec(gflops_per_sample=0.0)

    def test_zero_batch_rejected(self):
        with pytest.raises(ValueError, match="batch"):
            spec(default_batch=0)

    def test_zero_activation_rejected(self):
        with pytest.raises(ValueError, match="activation"):
            spec(activation_gib_per_sample=0.0)


class TestDerived:
    def test_gradient_bytes_is_4_per_param(self):
        assert spec(params=1000).gradient_bytes == 4000

    def test_weight_gib_counts_weights_and_gradients(self):
        s = spec(params=2**27)  # 128M params -> 0.5 GiB weights
        assert s.weight_gib == pytest.approx(1.0)

    def test_per_worker_state_replicated(self):
        s = spec(params=2**27, shard_states=False)
        assert s.per_worker_state_gib(8) == pytest.approx(s.weight_gib)

    def test_per_worker_state_sharded(self):
        s = spec(params=2**27, shard_states=True)
        assert s.per_worker_state_gib(8) == pytest.approx(s.weight_gib / 8)

    def test_per_worker_state_zero_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            spec().per_worker_state_gib(0)


class TestScaled:
    def test_scaled_params(self):
        big = spec().scaled("big", 10_000_000)
        assert big.params == 10_000_000
        assert big.name == "big"

    def test_scaled_flops_proportional(self):
        base = spec(gflops_per_sample=2.0)
        big = base.scaled("big", base.params * 5)
        assert big.gflops_per_sample == pytest.approx(10.0)

    def test_scaled_preserves_family_and_batch(self):
        base = spec(family=ModelFamily.TRANSFORMER, default_batch=256)
        big = base.scaled("big", base.params * 2)
        assert big.family is ModelFamily.TRANSFORMER
        assert big.default_batch == 256

    def test_scaled_shard_override(self):
        base = spec(shard_states=False)
        assert base.scaled("b", base.params * 2, shard_states=True).shard_states
        assert not base.scaled("c", base.params * 2).shard_states
