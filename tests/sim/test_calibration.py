"""Calibration contracts: the paper's qualitative shapes.

These tests pin the simulator to the structural facts the paper's
evaluation depends on.  If a constant in ``repro.sim`` changes, these
say whether the world still behaves like the paper's.
"""

import pytest

from repro.cloud.catalog import paper_catalog
from repro.sim.comm import CommProtocol
from repro.sim.datasets import get_dataset
from repro.sim.platforms import get_platform
from repro.sim.throughput import TrainingJob, TrainingSimulator
from repro.sim.zoo import get_model


@pytest.fixture(scope="module")
def cat():
    return paper_catalog()


@pytest.fixture(scope="module")
def sim():
    return TrainingSimulator()


@pytest.fixture(scope="module")
def charrnn():
    return TrainingJob(
        model=get_model("char-rnn"),
        dataset=get_dataset("char-corpus"),
        platform=get_platform("tensorflow"),
    )


class TestFig1b:
    """Equal hourly cost, very different training speed."""

    def test_mid_cpu_cluster_wins(self, cat, sim, charrnn):
        speeds = {
            name: sim.true_speed(cat[name], n, charrnn)
            for name, n in [
                ("c5.xlarge", 40), ("c5.4xlarge", 10), ("p2.xlarge", 9),
            ]
        }
        assert max(speeds, key=speeds.get) == "c5.4xlarge"

    def test_spread_is_substantial(self, cat, sim, charrnn):
        """The paper reports the right scheme can be ~3x faster; we
        require at least 2x."""
        speeds = [
            sim.true_speed(cat[name], n, charrnn)
            for name, n in [
                ("c5.xlarge", 40), ("c5.4xlarge", 10), ("p2.xlarge", 9),
            ]
        ]
        assert max(speeds) / min(speeds) > 2.0


class TestFig3ConcaveScaleOut:
    """The ML-specific prior: speedup rises, peaks, declines."""

    def test_interior_peak(self, cat, sim, charrnn):
        counts = list(range(1, 51))
        speeds = sim.scale_out_curve(cat["c5.4xlarge"], counts, charrnn)
        peak = speeds.index(max(speeds))
        assert 4 < counts[peak] < 40

    def test_clear_decline_after_peak(self, cat, sim, charrnn):
        counts = list(range(1, 51))
        speeds = sim.scale_out_curve(cat["c5.4xlarge"], counts, charrnn)
        assert speeds[-1] < 0.8 * max(speeds)

    def test_rise_before_peak_is_monotone(self, cat, sim, charrnn):
        speeds = sim.scale_out_curve(cat["c5.4xlarge"], [1, 2, 4, 8], charrnn)
        assert speeds == sorted(speeds)

    def test_unimodal_up_to_tolerance(self, cat, sim, charrnn):
        """Rises to the peak, falls after — no second hump."""
        counts = list(range(1, 51))
        speeds = sim.scale_out_curve(cat["c5.4xlarge"], counts, charrnn)
        peak = speeds.index(max(speeds))
        rising = speeds[: peak + 1]
        falling = speeds[peak:]
        assert all(b >= a * 0.999 for a, b in zip(rising, rising[1:]))
        assert all(b <= a * 1.001 for a, b in zip(falling, falling[1:]))


class TestModelHardwareAffinity:
    def test_cnn_gpu_cheaper_per_epoch(self, cat, sim):
        job = TrainingJob(
            model=get_model("resnet"),
            dataset=get_dataset("cifar10"),
            platform=get_platform("tensorflow"),
        )
        cpu_cost = sim.training_cost(cat["c5.4xlarge"], 8, job)
        gpu_cost = sim.training_cost(cat["p3.2xlarge"], 2, job)
        assert gpu_cost < cpu_cost / 2

    def test_rnn_cpu_competitive_per_dollar(self, cat, sim, charrnn):
        cpu_cost = sim.training_cost(cat["c5.4xlarge"], 8, charrnn)
        gpu_cost = sim.training_cost(cat["p2.xlarge"], 8, charrnn)
        assert cpu_cost < gpu_cost

    def test_transformer_gpu_dominates(self, cat, sim):
        job = TrainingJob(
            model=get_model("bert"),
            dataset=get_dataset("bert-corpus"),
            platform=get_platform("tensorflow"),
            protocol=CommProtocol.RING_ALLREDUCE,
        )
        cpu_speed = sim.true_speed(cat["c5n.4xlarge"], 8, job)
        gpu_speed = sim.true_speed(cat["p3.2xlarge"], 8, job)
        assert gpu_speed > 10 * cpu_speed


class TestScaleUpNonlinearity:
    def test_price_performance_not_monotone(self, cat, sim, charrnn):
        """Fig. 3(a): paying more per node does not monotonically buy
        speed — the scale-up dimension is genuinely non-linear."""
        by_price = sorted(
            (t for t in cat if sim.is_feasible(t, 8, charrnn)),
            key=lambda t: t.hourly_price,
        )
        speeds = [sim.true_speed(t, 8, charrnn) for t in by_price]
        rising = all(b >= a for a, b in zip(speeds, speeds[1:]))
        assert not rising
