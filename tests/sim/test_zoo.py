"""Model zoo: paper models, registry behaviour."""

import pytest

from repro.sim.models import ModelFamily, ModelSpec
from repro.sim.zoo import get_model, list_models, register_model


class TestPaperModels:
    def test_all_paper_models_present(self):
        for name in (
            "alexnet", "resnet", "inception-v3", "char-rnn", "bert",
            "zero-8b", "zero-20b",
        ):
            assert name in list_models()

    def test_fig19_parameter_counts(self):
        """The paper's Fig. 19 x-axis values."""
        assert get_model("alexnet").params == 6_400_000
        assert get_model("resnet").params == 60_300_000
        assert get_model("bert").params == 340_000_000
        assert get_model("zero-8b").params == 8_000_000_000
        assert get_model("zero-20b").params == 20_000_000_000

    def test_families(self):
        assert get_model("resnet").family is ModelFamily.CNN
        assert get_model("char-rnn").family is ModelFamily.RNN
        assert get_model("bert").family is ModelFamily.TRANSFORMER

    def test_zero_models_shard_state(self):
        assert get_model("zero-8b").shard_states
        assert get_model("zero-20b").shard_states
        assert not get_model("bert").shard_states

    def test_case_insensitive_lookup(self):
        assert get_model("BERT") is get_model("bert")


class TestRegistry:
    def test_unknown_model_lists_known(self):
        with pytest.raises(KeyError, match="alexnet"):
            get_model("vgg-999")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_model(get_model("bert"))

    def test_register_new_model(self):
        spec = ModelSpec(
            name="test-tiny-model", family=ModelFamily.CNN,
            params=1000, gflops_per_sample=0.001, default_batch=8,
        )
        try:
            assert register_model(spec) is spec
            assert get_model("test-tiny-model") is spec
        finally:
            # keep the global registry clean for other tests
            from repro.sim import zoo
            zoo._REGISTRY.pop("test-tiny-model", None)
