"""Hardware model: peaks, utilisation structure, overheads."""

import pytest

from repro.cloud.catalog import paper_catalog
from repro.sim.hardware import (
    HardwareModel,
    effective_gflops,
    peak_gflops,
    step_overhead_seconds,
)
from repro.sim.models import ModelFamily


@pytest.fixture
def cat():
    return paper_catalog()


class TestPeaks:
    def test_cpu_peak_scales_with_vcpus(self, cat):
        small = peak_gflops(cat["c5.xlarge"])
        big = peak_gflops(cat["c5.4xlarge"])
        assert big == pytest.approx(4 * small)

    def test_c4_generation_penalty(self, cat):
        """c4 is AVX2; same vCPUs deliver fewer FLOPs than c5."""
        c4 = peak_gflops(cat["c4.4xlarge"])
        c5 = peak_gflops(cat["c5.4xlarge"])
        assert c4 < c5

    def test_v100_beats_k80(self, cat):
        assert peak_gflops(cat["p3.2xlarge"]) > peak_gflops(cat["p2.xlarge"])

    def test_multi_gpu_sublinear(self, cat):
        """PCIe contention: 8 GPUs < 8x one GPU."""
        one = peak_gflops(cat["p2.xlarge"])
        eight = peak_gflops(cat["p2.8xlarge"])
        assert one * 8 * 0.8 < eight < one * 8


class TestUtilisation:
    def test_rnn_prefers_cpu_per_dollar(self, cat):
        """The Fig. 1(b) mechanism: per dollar, RNNs do better on CPUs."""
        cpu, gpu = cat["c5.4xlarge"], cat["p2.xlarge"]
        cpu_per_dollar = effective_gflops(cpu, ModelFamily.RNN) / cpu.hourly_price
        gpu_per_dollar = effective_gflops(gpu, ModelFamily.RNN) / gpu.hourly_price
        assert cpu_per_dollar > gpu_per_dollar

    def test_cnn_prefers_gpu_per_dollar(self, cat):
        cpu, gpu = cat["c5.4xlarge"], cat["p3.2xlarge"]
        cpu_per_dollar = effective_gflops(cpu, ModelFamily.CNN) / cpu.hourly_price
        gpu_per_dollar = effective_gflops(gpu, ModelFamily.CNN) / gpu.hourly_price
        assert gpu_per_dollar > cpu_per_dollar

    def test_effective_below_peak(self, cat):
        for name in ("c5.xlarge", "p2.xlarge", "p3.16xlarge"):
            for family in ModelFamily:
                assert (
                    effective_gflops(cat[name], family)
                    < peak_gflops(cat[name])
                )


class TestOverheads:
    def test_gpu_rnn_overhead_dominates(self, cat):
        """Per-timestep kernel launches make GPU RNN steps costly."""
        gpu_rnn = step_overhead_seconds(cat["p2.xlarge"], ModelFamily.RNN)
        gpu_cnn = step_overhead_seconds(cat["p2.xlarge"], ModelFamily.CNN)
        assert gpu_rnn > 10 * gpu_cnn

    def test_all_overheads_positive(self, cat):
        for family in ModelFamily:
            for name in ("c5.xlarge", "p3.2xlarge"):
                assert step_overhead_seconds(cat[name], family) > 0


class TestHardwareModel:
    def test_compute_seconds(self, cat):
        hw = HardwareModel(cat["c5.xlarge"])
        rate = effective_gflops(cat["c5.xlarge"], ModelFamily.CNN)
        assert hw.compute_seconds(ModelFamily.CNN, rate) == pytest.approx(1.0)

    def test_negative_gflops_rejected(self, cat):
        with pytest.raises(ValueError, match="gflops"):
            HardwareModel(cat["c5.xlarge"]).compute_seconds(
                ModelFamily.CNN, -1.0
            )

    def test_device_memory_cpu(self, cat):
        assert HardwareModel(cat["c5.xlarge"]).device_memory_gib == 8.0

    def test_device_memory_gpu_sums_accelerators(self, cat):
        assert HardwareModel(cat["p2.8xlarge"]).device_memory_gib == 96.0
