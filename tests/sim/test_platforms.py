"""Platform models: registry, overlap semantics."""

import pytest

from repro.sim.comm import CommProtocol
from repro.sim.platforms import Platform, get_platform, list_platforms


class TestRegistry:
    def test_both_paper_platforms(self):
        assert list_platforms() == ["mxnet", "tensorflow"]

    def test_case_insensitive(self):
        assert get_platform("TensorFlow") is get_platform("tensorflow")

    def test_unknown_lists_known(self):
        with pytest.raises(KeyError, match="tensorflow"):
            get_platform("caffe2")

    def test_default_protocols(self):
        assert (
            get_platform("tensorflow").default_protocol
            is CommProtocol.PARAMETER_SERVER
        )


class TestValidation:
    def test_zero_efficiency_rejected(self):
        with pytest.raises(ValueError, match="efficiency"):
            Platform("p", 0.0, 0.3, CommProtocol.PARAMETER_SERVER)

    def test_overlap_one_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            Platform("p", 1.0, 1.0, CommProtocol.PARAMETER_SERVER)

    def test_negative_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            Platform("p", 1.0, -0.1, CommProtocol.PARAMETER_SERVER)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            Platform("", 1.0, 0.3, CommProtocol.PARAMETER_SERVER)


class TestOverlap:
    def test_partial_hiding(self):
        p = Platform("p", 1.0, 0.5, CommProtocol.PARAMETER_SERVER)
        # 4s comm, plenty of compute: half hides
        assert p.effective_comm_time(4.0, 100.0) == pytest.approx(2.0)

    def test_hiding_capped_by_compute(self):
        p = Platform("p", 1.0, 0.9, CommProtocol.PARAMETER_SERVER)
        # wants to hide 9s but only 1s of compute exists
        assert p.effective_comm_time(10.0, 1.0) == pytest.approx(9.0)

    def test_zero_overlap_exposes_everything(self):
        p = Platform("p", 1.0, 0.0, CommProtocol.PARAMETER_SERVER)
        assert p.effective_comm_time(3.0, 100.0) == 3.0

    def test_negative_times_rejected(self):
        p = get_platform("tensorflow")
        with pytest.raises(ValueError):
            p.effective_comm_time(-1.0, 1.0)

    def test_mxnet_hides_more_than_tensorflow(self):
        tf, mx = get_platform("tensorflow"), get_platform("mxnet")
        assert mx.effective_comm_time(10.0, 100.0) < tf.effective_comm_time(
            10.0, 100.0
        )
