"""DatasetSpec and the dataset registry."""

import pytest

from repro.sim.datasets import DatasetSpec, get_dataset, list_datasets


class TestRegistry:
    def test_paper_datasets_registered(self):
        for name in ("cifar10", "imagenet", "char-corpus", "bert-corpus"):
            assert name in list_datasets()

    def test_get_returns_spec(self):
        assert get_dataset("cifar10").num_samples == 50_000

    def test_unknown_lists_known(self):
        with pytest.raises(KeyError, match="cifar10"):
            get_dataset("mnist-3d")

    def test_imagenet_size(self):
        assert get_dataset("imagenet").num_samples == 1_281_167


class TestSpec:
    def test_samples_for_epochs(self):
        spec = DatasetSpec("d", num_samples=1000, sample_bytes=10)
        assert spec.samples_for_epochs(2.5) == 2500

    def test_fractional_epochs(self):
        spec = DatasetSpec("d", num_samples=1000, sample_bytes=10)
        assert spec.samples_for_epochs(0.1) == 100

    def test_zero_epochs_rejected(self):
        spec = DatasetSpec("d", num_samples=1000, sample_bytes=10)
        with pytest.raises(ValueError, match="epochs"):
            spec.samples_for_epochs(0.0)

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError, match="num_samples"):
            DatasetSpec("d", num_samples=0, sample_bytes=10)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            DatasetSpec("", num_samples=1, sample_bytes=1)
