"""Communication models: PS and ring all-reduce."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.comm import (
    CommProtocol,
    comm_time_per_step,
    ps_time_per_step,
    ring_time_per_step,
)

GRAD = 100 * 2**20  # 100 MiB


class TestValidation:
    @pytest.mark.parametrize("fn", [ps_time_per_step, ring_time_per_step])
    def test_zero_grad_rejected(self, fn):
        with pytest.raises(ValueError, match="grad_bytes"):
            fn(0, 4, 10.0)

    @pytest.mark.parametrize("fn", [ps_time_per_step, ring_time_per_step])
    def test_zero_workers_rejected(self, fn):
        with pytest.raises(ValueError, match="n_workers"):
            fn(GRAD, 0, 10.0)

    @pytest.mark.parametrize("fn", [ps_time_per_step, ring_time_per_step])
    def test_zero_bw_rejected(self, fn):
        with pytest.raises(ValueError, match="bw"):
            fn(GRAD, 4, 0.0)


class TestSingleWorker:
    def test_ps_single_worker_free(self):
        assert ps_time_per_step(GRAD, 1, 10.0) == 0.0

    def test_ring_single_worker_free(self):
        assert ring_time_per_step(GRAD, 1, 10.0) == 0.0


class TestStructure:
    def test_ps_nondecreasing_in_workers(self):
        times = [ps_time_per_step(GRAD, n, 10.0) for n in range(2, 50)]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_ring_nondecreasing_in_workers(self):
        times = [ring_time_per_step(GRAD, n, 10.0) for n in range(2, 50)]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_more_bandwidth_helps_ps(self):
        assert ps_time_per_step(GRAD, 8, 25.0) < ps_time_per_step(GRAD, 8, 2.5)

    def test_more_bandwidth_helps_ring(self):
        assert ring_time_per_step(GRAD, 8, 25.0) < ring_time_per_step(
            GRAD, 8, 2.5
        )

    def test_bigger_gradient_costs_more(self):
        assert ps_time_per_step(2 * GRAD, 8, 10.0) > ps_time_per_step(
            GRAD, 8, 10.0
        )

    def test_ring_scales_better_than_ps_at_large_n(self):
        """Ring's bandwidth term is ~constant in n; PS suffers incast.

        This is why the paper trains BERT with ring all-reduce."""
        n = 40
        assert ring_time_per_step(GRAD, n, 10.0) < ps_time_per_step(
            GRAD, n, 10.0
        )

    def test_ring_bandwidth_term_saturates(self):
        """In the bandwidth-dominated regime (slow NIC, big gradient),
        doubling the ring barely changes per-step time: the transfer
        term converges to ``2G/bw``."""
        t16 = ring_time_per_step(GRAD, 16, 1.0)
        t32 = ring_time_per_step(GRAD, 32, 1.0)
        assert (t32 - t16) < 0.2 * t16


class TestDispatch:
    def test_dispatch_ps(self):
        assert comm_time_per_step(
            CommProtocol.PARAMETER_SERVER, GRAD, 8, 10.0
        ) == ps_time_per_step(GRAD, 8, 10.0)

    def test_dispatch_ring(self):
        assert comm_time_per_step(
            CommProtocol.RING_ALLREDUCE, GRAD, 8, 10.0
        ) == ring_time_per_step(GRAD, 8, 10.0)

    def test_dispatch_unknown_rejected(self):
        with pytest.raises(ValueError, match="protocol"):
            comm_time_per_step("carrier-pigeon", GRAD, 8, 10.0)


class TestProperties:
    @given(
        grad=st.integers(min_value=1, max_value=10**10),
        n=st.integers(min_value=1, max_value=200),
        bw=st.floats(min_value=0.1, max_value=400.0),
    )
    def test_times_always_finite_nonnegative(self, grad, n, bw):
        for fn in (ps_time_per_step, ring_time_per_step):
            t = fn(grad, n, bw)
            assert t >= 0.0
            assert t < float("inf")

    @given(
        n=st.integers(min_value=2, max_value=100),
        bw=st.floats(min_value=0.5, max_value=100.0),
    )
    def test_monotone_in_gradient_size(self, n, bw):
        for fn in (ps_time_per_step, ring_time_per_step):
            assert fn(2 * GRAD, n, bw) >= fn(GRAD, n, bw)
