"""NoiseModel: determinism, independence, statistical sanity."""

import numpy as np
import pytest

from repro.sim.noise import NoiseModel


class TestValidation:
    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError, match="sigma"):
            NoiseModel(sigma=-0.1)

    def test_bad_unstable_fraction_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            NoiseModel(unstable_fraction=1.5)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            NoiseModel().sample_factors("k", 0)

    def test_nonpositive_true_value_rejected(self):
        with pytest.raises(ValueError, match="true_value"):
            NoiseModel().measure(0.0, "k", 5)


class TestDeterminism:
    def test_same_key_same_samples(self):
        nm = NoiseModel(sigma=0.05, seed=3)
        a = nm.sample_factors(("c5.xlarge", 4), 10)
        b = nm.sample_factors(("c5.xlarge", 4), 10)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        nm = NoiseModel(sigma=0.05, seed=3)
        a = nm.sample_factors(("c5.xlarge", 4), 10)
        b = nm.sample_factors(("c5.xlarge", 5), 10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = NoiseModel(sigma=0.05, seed=1).sample_factors("k", 10)
        b = NoiseModel(sigma=0.05, seed=2).sample_factors("k", 10)
        assert not np.array_equal(a, b)

    def test_windows_differ_but_are_stable(self):
        nm = NoiseModel(sigma=0.05, seed=0)
        w0 = nm.sample_factors("k", 10, window=0)
        w1 = nm.sample_factors("k", 10, window=1)
        assert not np.array_equal(w0, w1)
        np.testing.assert_array_equal(
            w1, nm.sample_factors("k", 10, window=1)
        )

    def test_independent_of_pythonhashseed(self):
        """Derives from blake2b, not hash() — a fixed key gives a fixed
        first factor regardless of interpreter state."""
        nm = NoiseModel(sigma=0.05, seed=0)
        again = NoiseModel(sigma=0.05, seed=0)
        assert nm.sample_factors("key", 1)[0] == again.sample_factors("key", 1)[0]


class TestStatistics:
    def test_zero_sigma_is_exact(self):
        nm = NoiseModel(sigma=0.0)
        np.testing.assert_array_equal(
            nm.measure(100.0, "k", 5), np.full(5, 100.0)
        )

    def test_mean_one_factors(self):
        nm = NoiseModel(sigma=0.05, seed=0)
        factors = nm.sample_factors("k", 20_000)
        assert factors.mean() == pytest.approx(1.0, abs=0.01)

    def test_sigma_controls_spread(self):
        tight = NoiseModel(sigma=0.01, seed=0).sample_factors("k", 5000)
        wide = NoiseModel(sigma=0.10, seed=0).sample_factors("k", 5000)
        assert wide.std() > 5 * tight.std()

    def test_factors_positive(self):
        factors = NoiseModel(sigma=0.2, seed=0).sample_factors("k", 1000)
        assert (factors > 0).all()

    def test_measure_scales_true_value(self):
        nm = NoiseModel(sigma=0.05, seed=0)
        m = nm.measure(50.0, "k", 100)
        assert m.mean() == pytest.approx(50.0, rel=0.05)


class TestUnstable:
    def test_no_instability_by_default(self):
        assert not NoiseModel().is_unstable("any")

    def test_unstable_fraction_roughly_respected(self):
        nm = NoiseModel(sigma=0.05, seed=0, unstable_fraction=0.3)
        hits = sum(nm.is_unstable(i) for i in range(1000))
        assert 200 < hits < 400

    def test_unstable_deployment_noisier(self):
        nm = NoiseModel(sigma=0.05, seed=0, unstable_fraction=1.0)
        quiet = NoiseModel(sigma=0.05, seed=0, unstable_fraction=0.0)
        assert nm.sample_factors("k", 2000).std() > 2 * quiet.sample_factors(
            "k", 2000
        ).std()
