"""Property-based invariants of the performance simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.catalog import paper_catalog
from repro.sim.datasets import get_dataset
from repro.sim.platforms import get_platform
from repro.sim.throughput import TrainingJob, TrainingSimulator
from repro.sim.zoo import get_model

CATALOG = paper_catalog()
SIM = TrainingSimulator()
TYPES = ["c5.xlarge", "c5.4xlarge", "c5n.4xlarge", "p2.xlarge", "p3.2xlarge"]
MODELS = ["alexnet", "resnet", "char-rnn", "bert"]


def job_for(model: str, batch: int | None = None,
            epochs: float = 1.0) -> TrainingJob:
    datasets = {
        "alexnet": "cifar10", "resnet": "cifar10",
        "char-rnn": "char-corpus", "bert": "bert-corpus",
    }
    return TrainingJob(
        model=get_model(model),
        dataset=get_dataset(datasets[model]),
        platform=get_platform("tensorflow"),
        global_batch=batch,
        epochs=epochs,
    )


class TestSpeedInvariants:
    @given(
        model=st.sampled_from(MODELS),
        itype=st.sampled_from(TYPES),
        n=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=120, deadline=None)
    def test_speed_finite_positive_when_feasible(self, model, itype, n):
        job = job_for(model)
        instance = CATALOG[itype]
        if SIM.is_feasible(instance, n, job):
            speed = SIM.true_speed(instance, n, job)
            assert 0 < speed < 1e9

    @given(
        model=st.sampled_from(MODELS),
        itype=st.sampled_from(TYPES),
        n=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=80, deadline=None)
    def test_larger_batch_never_slower(self, model, itype, n):
        """Fixed cluster: a larger global batch amortises per-step
        overhead and sync, so throughput is non-decreasing in B."""
        base = job_for(model)
        bigger = job_for(model, batch=base.batch * 2)
        instance = CATALOG[itype]
        if SIM.is_feasible(instance, n, bigger) and SIM.is_feasible(
            instance, n, base
        ):
            assert (
                SIM.true_speed(instance, n, bigger)
                >= SIM.true_speed(instance, n, base) * 0.999
            )

    @given(
        model=st.sampled_from(MODELS),
        itype=st.sampled_from(TYPES),
        n=st.integers(min_value=1, max_value=50),
        epochs=st.floats(min_value=0.1, max_value=50.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_training_time_linear_in_epochs(self, model, itype, n, epochs):
        short = job_for(model, epochs=epochs)
        double = job_for(model, epochs=2 * epochs)
        instance = CATALOG[itype]
        if SIM.is_feasible(instance, n, short):
            ratio = SIM.training_seconds(instance, n, double) / (
                SIM.training_seconds(instance, n, short)
            )
            # integer rounding of samples_for_epochs gives tiny slack
            assert ratio == pytest.approx(2.0, rel=1e-3)

    @given(
        model=st.sampled_from(MODELS),
        itype=st.sampled_from(TYPES),
        n=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=80, deadline=None)
    def test_cost_is_price_times_time(self, model, itype, n):
        job = job_for(model)
        instance = CATALOG[itype]
        if SIM.is_feasible(instance, n, job):
            seconds = SIM.training_seconds(instance, n, job)
            assert SIM.training_cost(instance, n, job) == pytest.approx(
                instance.price_per_second * seconds * n
            )


class TestFeasibilityInvariants:
    @given(
        itype=st.sampled_from(TYPES),
        n=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_replicated_feasibility_monotone_in_n(self, itype, n):
        """For replicated-state models, if n workers fit, so do n+1
        (per-worker activations shrink; state is constant)."""
        job = job_for("resnet")
        instance = CATALOG[itype]
        if n + 1 <= job.batch and SIM.is_feasible(instance, n, job):
            assert SIM.is_feasible(instance, n + 1, job)

    @given(n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_sharded_feasibility_monotone_in_n(self, n):
        """ZeRO sharding: feasibility is also monotone upward."""
        job = TrainingJob(
            model=get_model("zero-8b"),
            dataset=get_dataset("bert-corpus"),
            platform=get_platform("tensorflow"),
        )
        instance = CATALOG["p3.16xlarge"]
        if n + 1 <= job.batch and SIM.is_feasible(instance, n, job):
            assert SIM.is_feasible(instance, n + 1, job)

    @given(
        model=st.sampled_from(MODELS),
        itype=st.sampled_from(TYPES),
        n=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_check_and_is_feasible_agree(self, model, itype, n):
        from repro.sim.throughput import InfeasibleDeploymentError

        job = job_for(model)
        instance = CATALOG[itype]
        flagged = SIM.is_feasible(instance, n, job)
        try:
            SIM.check_feasible(instance, n, job)
            checked = True
        except InfeasibleDeploymentError:
            checked = False
        assert flagged == checked
