"""``repro lint`` end-to-end: exit codes, JSON schema, baseline flow."""

import json

import pytest

from repro.cli import main

DIRTY = "import time\nstamp = time.time()\n"


@pytest.fixture
def dirty_tree(tmp_path):
    pkg = tmp_path / "core"
    pkg.mkdir()
    (pkg / "dirty.py").write_text(DIRTY)
    (pkg / "clean.py").write_text("x = 1\n")
    return tmp_path


@pytest.fixture
def clean_tree(tmp_path):
    pkg = tmp_path / "core"
    pkg.mkdir()
    (pkg / "clean.py").write_text("x = 1\n")
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_tree, capsys):
        assert main(["lint", str(clean_tree), "--no-baseline"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out and "dirty.py" in out

    def test_unknown_rule_exits_two(self, clean_tree, capsys):
        assert main([
            "lint", str(clean_tree), "--select", "RL999",
        ]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path):
        assert main([
            "lint", str(tmp_path / "absent"), "--no-baseline",
        ]) == 2

    def test_select_skips_other_rules(self, dirty_tree):
        assert main([
            "lint", str(dirty_tree), "--select", "RL002", "--no-baseline",
        ]) == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004"):
            assert rule_id in out


class TestJsonFormat:
    def test_schema_is_stable(self, dirty_tree, capsys):
        assert main([
            "lint", str(dirty_tree), "--format", "json", "--no-baseline",
        ]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 1
        assert set(doc) == {
            "schema_version", "summary", "findings", "errors",
        }
        summary = doc["summary"]
        assert set(summary) == {
            "files", "findings", "suppressed", "baselined", "by_rule",
            "clean",
        }
        assert summary["files"] == 2
        assert summary["findings"] == 1
        assert summary["clean"] is False
        assert summary["by_rule"] == {"RL001": 1}
        [finding] = doc["findings"]
        assert set(finding) == {
            "rule", "path", "line", "col", "message", "snippet",
            "fingerprint",
        }
        assert finding["rule"] == "RL001"
        assert doc["errors"] == []

    def test_clean_json(self, clean_tree, capsys):
        assert main([
            "lint", str(clean_tree), "--format", "json", "--no-baseline",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["clean"] is True
        assert doc["findings"] == []


class TestBaselineFlow:
    def test_write_then_lint_is_clean(self, dirty_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", str(dirty_tree), "--baseline", str(baseline),
            "--write-baseline", "--justification", "pre-RL001 debt",
        ]) == 0
        assert "wrote 1 baseline" in capsys.readouterr().err
        doc = json.loads(baseline.read_text())
        assert doc["version"] == 1
        [entry] = doc["entries"]
        assert entry["justification"] == "pre-RL001 debt"

        assert main([
            "lint", str(dirty_tree), "--baseline", str(baseline),
        ]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_fixed_finding_drops_from_rewritten_baseline(
        self, dirty_tree, tmp_path
    ):
        baseline = tmp_path / "baseline.json"
        main([
            "lint", str(dirty_tree), "--baseline", str(baseline),
            "--write-baseline",
        ])
        (dirty_tree / "core" / "dirty.py").write_text("x = 2\n")
        main([
            "lint", str(dirty_tree), "--baseline", str(baseline),
            "--write-baseline",
        ])
        assert json.loads(baseline.read_text())["entries"] == []

    def test_corrupt_baseline_exits_two(self, clean_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{broken")
        assert main([
            "lint", str(clean_tree), "--baseline", str(baseline),
        ]) == 2
        assert capsys.readouterr().err


class TestRepoIsClean:
    def test_src_repro_has_no_findings(self):
        """The tree this rule set was written for must lint clean."""
        from pathlib import Path

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        assert main(["lint", str(src), "--no-baseline"]) == 0
