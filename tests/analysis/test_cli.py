"""``repro lint`` end-to-end: exit codes, JSON schema, baseline flow."""

import json

import pytest

from repro.cli import main

DIRTY = "import time\nstamp = time.time()\n"


@pytest.fixture
def dirty_tree(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text(DIRTY)
    (pkg / "clean.py").write_text("x = 1\n")
    return tmp_path


@pytest.fixture
def clean_tree(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text("x = 1\n")
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_tree, capsys):
        assert main(["lint", str(clean_tree), "--no-baseline"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out and "dirty.py" in out

    def test_unknown_rule_exits_two(self, clean_tree, capsys):
        assert main([
            "lint", str(clean_tree), "--select", "RL999",
        ]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path):
        assert main([
            "lint", str(tmp_path / "absent"), "--no-baseline",
        ]) == 2

    def test_select_skips_other_rules(self, dirty_tree):
        assert main([
            "lint", str(dirty_tree), "--select", "RL002", "--no-baseline",
        ]) == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004"):
            assert rule_id in out

    def test_list_rules_tags_deep_rules(self, capsys):
        main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        for rule_id in ("RL101", "RL102", "RL103"):
            [line] = [l for l in out.splitlines() if l.startswith(rule_id)]
            assert "[deep]" in line


class TestJsonFormat:
    def test_schema_is_stable(self, dirty_tree, capsys):
        assert main([
            "lint", str(dirty_tree), "--format", "json", "--no-baseline",
        ]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 2
        assert set(doc) == {
            "schema_version", "summary", "findings", "errors", "warnings",
        }
        summary = doc["summary"]
        assert set(summary) == {
            "files", "findings", "suppressed", "baselined", "by_rule",
            "clean",
        }
        assert summary["files"] == 2
        assert summary["findings"] == 1
        assert summary["clean"] is False
        assert summary["by_rule"] == {"RL001": 1}
        [finding] = doc["findings"]
        assert set(finding) == {
            "rule", "path", "line", "col", "message", "snippet",
            "fingerprint",
        }
        assert finding["rule"] == "RL001"
        assert doc["errors"] == []

    def test_clean_json(self, clean_tree, capsys):
        assert main([
            "lint", str(clean_tree), "--format", "json", "--no-baseline",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["clean"] is True
        assert doc["findings"] == []


class TestBaselineFlow:
    def test_write_then_lint_is_clean(self, dirty_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", str(dirty_tree), "--baseline", str(baseline),
            "--write-baseline", "--justification", "pre-RL001 debt",
        ]) == 0
        assert "wrote 1 baseline" in capsys.readouterr().err
        doc = json.loads(baseline.read_text())
        assert doc["version"] == 1
        [entry] = doc["entries"]
        assert entry["justification"] == "pre-RL001 debt"

        assert main([
            "lint", str(dirty_tree), "--baseline", str(baseline),
        ]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_fixed_finding_drops_from_rewritten_baseline(
        self, dirty_tree, tmp_path
    ):
        baseline = tmp_path / "baseline.json"
        main([
            "lint", str(dirty_tree), "--baseline", str(baseline),
            "--write-baseline",
        ])
        (dirty_tree / "repro" / "core" / "dirty.py").write_text("x = 2\n")
        main([
            "lint", str(dirty_tree), "--baseline", str(baseline),
            "--write-baseline",
        ])
        assert json.loads(baseline.read_text())["entries"] == []

    def test_corrupt_baseline_exits_two(self, clean_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{broken")
        assert main([
            "lint", str(clean_tree), "--baseline", str(baseline),
        ]) == 2
        assert capsys.readouterr().err


LAYER_VIOLATION = {
    "repro/core/engine.py": "VALUE = 1\n",
    "repro/obs/report.py": "from repro.core.engine import VALUE\n",
}

MUTATING_SINK = (
    "class EvilSink:\n"
    "    def __call__(self, event):\n"
    "        event.data['seen'] = True\n"
    "def wire(bus):\n"
    "    bus.subscribe(EvilSink())\n"
)


class TestDeepMode:
    def test_deep_finds_layer_violation(self, write_tree, capsys):
        root = write_tree(LAYER_VIOLATION)
        assert main([
            "lint", "--deep", str(root), "--no-baseline",
        ]) == 1
        out = capsys.readouterr().out
        assert "RL101" in out and "report.py" in out

    def test_shallow_run_skips_project_rules(self, write_tree):
        root = write_tree(LAYER_VIOLATION)
        assert main(["lint", str(root), "--no-baseline"]) == 0

    def test_selecting_a_deep_rule_enables_it(self, write_tree, capsys):
        root = write_tree(LAYER_VIOLATION)
        assert main([
            "lint", str(root), "--select", "RL101", "--no-baseline",
        ]) == 1
        assert "RL101" in capsys.readouterr().out

    def test_layers_override(self, write_tree, tmp_path, capsys):
        root = write_tree(LAYER_VIOLATION)
        spec = tmp_path / "layers.json"
        spec.write_text(json.dumps({"obs": ["core"]}))
        assert main([
            "lint", "--deep", str(root), "--no-baseline",
            "--layers", str(spec),
        ]) == 0

    def test_unreadable_layers_exits_two(self, write_tree, tmp_path, capsys):
        root = write_tree(LAYER_VIOLATION)
        assert main([
            "lint", "--deep", str(root), "--no-baseline",
            "--layers", str(tmp_path / "absent.json"),
        ]) == 2
        assert "layer spec" in capsys.readouterr().err

    def test_certify_rejects_mutating_sink(self, write_tree, capsys):
        root = write_tree({"repro/obs/evil.py": MUTATING_SINK})
        assert main([
            "lint", "--deep", "--certify", str(root), "--no-baseline",
        ]) == 1
        out = capsys.readouterr().out
        assert "IMPURE" in out and "EvilSink" in out

    def test_certify_passes_pure_tree(self, write_tree, capsys):
        root = write_tree({
            "repro/obs/good.py": (
                "class GoodSink:\n"
                "    def __init__(self):\n"
                "        self.events = []\n"
                "    def __call__(self, event):\n"
                "        self.events.append(event)\n"
                "def wire(bus):\n"
                "    bus.subscribe(GoodSink())\n"
            ),
        })
        assert main([
            "lint", "--deep", "--certify", str(root), "--no-baseline",
        ]) == 0
        assert "PURE" in capsys.readouterr().out


class TestSarifFormat:
    def test_sarif_output_is_valid_json(self, dirty_tree, capsys):
        assert main([
            "lint", str(dirty_tree), "--format", "sarif", "--no-baseline",
        ]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        [result] = doc["runs"][0]["results"]
        assert result["ruleId"] == "RL001"


class TestStrictBaseline:
    def test_stale_entry_fails_the_ratchet(self, dirty_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main([
            "lint", str(dirty_tree), "--baseline", str(baseline),
            "--write-baseline",
        ])
        # the debt gets fixed, but the baseline entry is left behind
        (dirty_tree / "repro" / "core" / "dirty.py").write_text("x = 2\n")
        assert main([
            "lint", str(dirty_tree), "--baseline", str(baseline),
        ]) == 0
        capsys.readouterr()
        assert main([
            "lint", str(dirty_tree), "--baseline", str(baseline),
            "--strict-baseline",
        ]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_current_baseline_passes(self, dirty_tree, tmp_path):
        baseline = tmp_path / "baseline.json"
        main([
            "lint", str(dirty_tree), "--baseline", str(baseline),
            "--write-baseline",
        ])
        assert main([
            "lint", str(dirty_tree), "--baseline", str(baseline),
            "--strict-baseline",
        ]) == 0

    def test_baseline_is_sorted_and_stable(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "b.py").write_text(DIRTY)
        (pkg / "a.py").write_text(DIRTY)
        baseline = tmp_path / "baseline.json"
        main([
            "lint", str(tmp_path), "--baseline", str(baseline),
            "--write-baseline",
        ])
        first = baseline.read_text()
        paths = [e["path"] for e in json.loads(first)["entries"]]
        assert paths == sorted(paths)
        # regenerating without changes is byte-identical
        main([
            "lint", str(tmp_path), "--baseline", str(baseline),
            "--write-baseline",
        ])
        assert baseline.read_text() == first


class TestRepoIsClean:
    def test_src_repro_has_no_findings(self):
        """The tree this rule set was written for must lint clean."""
        from pathlib import Path

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        assert main(["lint", str(src), "--no-baseline"]) == 0

    def test_deep_lint_is_clean_over_src_and_tests(self):
        """CI parity: the whole-program rules pass over src/ and tests/."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        assert main([
            "lint", "--deep", str(root / "src"), str(root / "tests"),
            "--no-baseline",
        ]) == 0
