"""SARIF 2.1.0 export (repro.analysis.sarif)."""

from repro.analysis import Analyzer
from repro.analysis.sarif import SARIF_VERSION, report_to_sarif

DIRTY = "import time\nstamp = time.time()\n"


def report_for(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return Analyzer().run([tmp_path])


class TestSarifDocument:
    def test_envelope_and_rule_catalogue(self, tmp_path):
        doc = report_to_sarif(report_for(tmp_path, {
            "repro/core/dirty.py": DIRTY,
        }))
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        [run] = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [r["id"] for r in driver["rules"]]
        # module rules and deep rules both ship in the catalogue
        for rule_id in ("RL001", "RL002", "RL101", "RL102", "RL103"):
            assert rule_id in rule_ids

    def test_result_carries_location_and_fingerprint(self, tmp_path):
        report = report_for(tmp_path, {"repro/core/dirty.py": DIRTY})
        [finding] = report.findings
        doc = report_to_sarif(report)
        [result] = doc["runs"][0]["results"]
        assert result["ruleId"] == "RL001"
        assert result["level"] == "error"
        assert result["message"]["text"] == finding.message
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(
            "repro/core/dirty.py"
        )
        assert location["region"]["startLine"] == finding.line
        assert location["region"]["startColumn"] == finding.col + 1
        assert result["partialFingerprints"] == {
            "reproLintFingerprint/v1": finding.fingerprint,
        }
        # the rule index points back into the catalogue
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == "RL001"

    def test_clean_report_has_no_results(self, tmp_path):
        doc = report_to_sarif(report_for(tmp_path, {
            "repro/core/clean.py": "x = 1\n",
        }))
        assert doc["runs"][0]["results"] == []
        assert "invocations" not in doc["runs"][0]

    def test_errors_become_notifications(self, tmp_path):
        doc = report_to_sarif(report_for(tmp_path, {
            "repro/core/broken.py": "def f(:\n",
        }))
        [invocation] = doc["runs"][0]["invocations"]
        assert invocation["executionSuccessful"] is False
        [note] = invocation["toolExecutionNotifications"]
        assert note["level"] == "error"
        assert "cannot parse" in note["message"]["text"]

    def test_suppression_warnings_become_notifications(self, tmp_path):
        doc = report_to_sarif(report_for(tmp_path, {
            "repro/core/odd.py": "x = 1  # repro-lint: disable=RL999\n",
        }))
        [invocation] = doc["runs"][0]["invocations"]
        assert invocation["executionSuccessful"] is True
        [note] = invocation["toolExecutionNotifications"]
        assert note["level"] == "warning"
        assert "RL999" in note["message"]["text"]
