"""Side-effect inference (repro.analysis.effects)."""


def effects_of(project, key):
    return project.effects.effects_of(key)


class TestDirectEffects:
    def test_self_mutation_is_not_external(self, build_project):
        project = build_project({
            "repro/obs/counter.py": (
                "class Counter:\n"
                "    def __init__(self):\n"
                "        self.n = 0\n"
                "    def inc(self):\n"
                "        self.n += 1\n"
            ),
        })
        fx = effects_of(project, "repro.obs.counter:Counter.inc")
        assert fx.mutates_self
        assert fx.is_pure_external

    def test_param_attribute_store_is_external(self, build_project):
        project = build_project({
            "repro/obs/sink.py": (
                "def stamp(event):\n"
                "    event.seen = True\n"
            ),
        })
        fx = effects_of(project, "repro.obs.sink:stamp")
        assert not fx.is_pure_external
        assert "event" in fx.mutated_params

    def test_mutating_method_on_param_is_external(self, build_project):
        project = build_project({
            "repro/obs/sink.py": (
                "def collect(events, out):\n"
                "    out.append(events)\n"
            ),
        })
        fx = effects_of(project, "repro.obs.sink:collect")
        assert "out" in fx.mutated_params

    def test_module_global_mutation_is_external(self, build_project):
        project = build_project({
            "repro/obs/reg.py": (
                "REGISTRY = []\n"
                "def add(item):\n"
                "    REGISTRY.append(item)\n"
            ),
        })
        fx = effects_of(project, "repro.obs.reg:add")
        assert not fx.is_pure_external
        assert any(m.root_kind == "global" for m in fx.external)

    def test_pure_function_has_no_effects(self, build_project):
        project = build_project({
            "repro/obs/pure.py": (
                "def double(x):\n"
                "    y = x * 2\n"
                "    return y\n"
            ),
        })
        fx = effects_of(project, "repro.obs.pure:double")
        assert fx.is_pure_external and not fx.mutates_self


class TestTransitiveEffects:
    def test_param_mutation_propagates_to_caller(self, build_project):
        project = build_project({
            "repro/obs/chain.py": (
                "def inner(out):\n"
                "    out.append(1)\n"
                "def outer(sink):\n"
                "    inner(sink)\n"
            ),
        })
        fx = effects_of(project, "repro.obs.chain:outer")
        assert "sink" in fx.mutated_params

    def test_local_argument_absorbs_callee_mutation(self, build_project):
        project = build_project({
            "repro/obs/chain.py": (
                "def inner(out):\n"
                "    out.append(1)\n"
                "def outer():\n"
                "    acc = []\n"
                "    inner(acc)\n"
                "    return acc\n"
            ),
        })
        fx = effects_of(project, "repro.obs.chain:outer")
        assert fx.is_pure_external

    def test_constructor_self_mutation_stays_internal(self, build_project):
        # Thing.__init__ mutates self, but the caller's Thing(v) builds
        # a fresh object — no external effect on the caller's arguments
        project = build_project({
            "repro/obs/thing.py": (
                "class Thing:\n"
                "    def __init__(self, value):\n"
                "        self.value = value\n"
                "def make(v):\n"
                "    return Thing(v)\n"
            ),
        })
        fx = effects_of(project, "repro.obs.thing:make")
        assert fx.is_pure_external and not fx.mutates_self

    def test_method_call_propagates_self_mutation(self, build_project):
        project = build_project({
            "repro/obs/log.py": (
                "class Log:\n"
                "    def __init__(self):\n"
                "        self.lines = []\n"
                "    def _push(self, line):\n"
                "        self.lines.append(line)\n"
                "    def write(self, line):\n"
                "        self._push(line)\n"
            ),
        })
        fx = effects_of(project, "repro.obs.log:Log.write")
        assert fx.mutates_self
        assert fx.is_pure_external
