"""Per-rule fixtures: each RL rule on flagged and clean sources."""

import textwrap

import pytest

from repro.analysis import ModuleContext, rule_by_id

#: Default fixture path inside RL001 scope.
CORE_PATH = "src/repro/core/fixture.py"


def findings(rule_id, source, path=CORE_PATH):
    rule = rule_by_id(rule_id)
    if not rule.applies_to(path):
        return []
    context = ModuleContext.parse(path, textwrap.dedent(source))
    return list(rule.check(context))


class TestRL001Determinism:
    def test_time_time_flagged(self):
        found = findings("RL001", """\
            import time
            stamp = time.time()
        """)
        assert len(found) == 1
        assert "wall-clock" in found[0].message

    def test_datetime_now_flagged(self):
        found = findings("RL001", """\
            from datetime import datetime
            stamp = datetime.now()
        """)
        assert len(found) == 1

    def test_stdlib_random_call_flagged(self):
        found = findings("RL001", """\
            import random
            x = random.random()
        """)
        assert len(found) == 1
        assert "Generator" in found[0].message

    def test_from_random_import_flagged(self):
        found = findings("RL001", "from random import choice\n")
        assert len(found) == 1

    def test_numpy_global_rng_flagged(self):
        found = findings("RL001", """\
            import numpy as np
            x = np.random.normal(0.0, 1.0)
        """)
        assert len(found) == 1
        assert "default_rng" in found[0].message

    def test_seeded_generator_allowed(self):
        assert not findings("RL001", """\
            import numpy as np
            rng = np.random.default_rng(7)
            x = rng.normal(0.0, 1.0)
        """)

    def test_perf_counter_allowed(self):
        assert not findings("RL001", """\
            import time
            t0 = time.perf_counter()
            t1 = time.monotonic()
        """)

    def test_out_of_scope_path_skipped(self):
        source = "import time\nstamp = time.time()\n"
        assert not findings("RL001", source, path="src/repro/obs/tracer.py")
        assert findings("RL001", source, path="src/repro/sim/noise.py")


class TestRL002FloatEquality:
    def test_float_literal_equality_flagged(self):
        found = findings("RL002", "ok = value == 0.0\n")
        assert len(found) == 1
        assert "float" in found[0].message

    def test_float_literal_inequality_flagged(self):
        assert len(findings("RL002", "bad = sigma != 1.5\n")) == 1

    def test_quantity_vs_int_zero_flagged(self):
        found = findings("RL002", "failed = measured_speed == 0\n")
        assert len(found) == 1
        assert "quantity" in found[0].message

    def test_ordered_predicates_allowed(self):
        assert not findings("RL002", """\
            ok = speed > 0
            stable = not sigma > 0.0
        """)

    def test_int_identity_on_counts_allowed(self):
        assert not findings("RL002", "empty = n_items == 0\n")


class TestRL003Units:
    def test_mixed_addition_flagged(self):
        found = findings("RL003", "total = spent_dollars + elapsed_s\n")
        assert len(found) == 1
        assert "USD" in found[0].message and "`s`" in found[0].message

    def test_mixed_comparison_flagged(self):
        assert len(
            findings("RL003", "over = cost_usd > deadline_seconds\n")
        ) == 1

    def test_rate_vs_money_flagged(self):
        assert len(
            findings("RL003", "x = price_usd_per_hr - spent_usd\n")
        ) == 1

    def test_same_unit_spellings_allowed(self):
        assert not findings("RL003", """\
            total = probe_usd + train_dollars
            wall = setup_seconds + run_secs
        """)

    def test_multiplicative_conversion_allowed(self):
        assert not findings("RL003", """\
            deadline_seconds = deadline_hours * 3600.0
            dollars = price_usd_per_hr * elapsed_s / 3600.0
        """)

    def test_bare_suffix_body_is_not_a_declaration(self):
        assert not findings("RL003", "x = s + spent_usd\n")


class TestRL004Hygiene:
    def test_bare_except_flagged(self):
        found = findings("RL004", """\
            try:
                work()
            except:
                handle()
        """)
        assert len(found) == 1
        assert "bare" in found[0].message

    def test_silent_handler_flagged(self):
        found = findings("RL004", """\
            try:
                work()
            except ValueError:
                pass
        """)
        assert len(found) == 1
        assert "silent" in found[0].message

    def test_handled_exception_allowed(self):
        assert not findings("RL004", """\
            try:
                work()
            except ValueError as exc:
                log(exc)
        """)

    def test_mutable_default_flagged(self):
        found = findings("RL004", "def f(items=[]):\n    return items\n")
        assert len(found) == 1
        assert "mutable default" in found[0].message

    def test_mutable_default_call_flagged(self):
        assert len(
            findings("RL004", "def f(*, out=dict()):\n    return out\n")
        ) == 1

    def test_none_default_allowed(self):
        assert not findings(
            "RL004", "def f(items=None):\n    return items or []\n"
        )

    def test_module_level_builtin_shadow_flagged(self):
        assert len(findings("RL004", "def sum(xs):\n    return xs\n")) == 1
        assert len(findings("RL004", "list = [1, 2]\n")) == 1

    def test_method_named_like_builtin_allowed(self):
        assert not findings("RL004", """\
            class Gauge:
                def set(self, value):
                    self.value = value
        """)


class TestRegistry:
    def test_all_four_rules_registered(self):
        from repro.analysis import ALL_RULES

        assert [r.rule_id for r in ALL_RULES] == [
            "RL001", "RL002", "RL003", "RL004",
        ]

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="RL999"):
            rule_by_id("RL999")
