"""RL101 — declared-architecture layering over the import graph."""

from repro.analysis.layering import DEFAULT_LAYER_SPEC, LayeringRule


def findings_for(project):
    return list(LayeringRule().check(project))


class TestLayerEdges:
    def test_forbidden_edge_names_the_edge(self, build_project):
        # obs may only import textfmt; obs -> core is the violation the
        # refactor in this repo actually fixed (reporting -> textfmt)
        project = build_project({
            "repro/core/engine.py": "VALUE = 1\n",
            "repro/obs/report.py": (
                "from repro.core.engine import VALUE\n"
            ),
        })
        [finding] = findings_for(project)
        assert finding.rule_id == "RL101"
        assert "`obs` may not import layer `core`" in finding.message
        assert "`repro.obs.report` -> `repro.core.engine`" in finding.message
        assert finding.path.endswith("repro/obs/report.py")

    def test_allowed_edge_is_clean(self, build_project):
        project = build_project({
            "repro/textfmt.py": "def fmt(x):\n    return str(x)\n",
            "repro/obs/report.py": "from repro.textfmt import fmt\n",
        })
        assert findings_for(project) == []

    def test_same_layer_import_is_clean(self, build_project):
        project = build_project({
            "repro/obs/bus.py": "x = 1\n",
            "repro/obs/report.py": "from repro.obs.bus import x\n",
        })
        assert findings_for(project) == []

    def test_type_checking_import_is_exempt(self, build_project):
        project = build_project({
            "repro/core/engine.py": "VALUE = 1\n",
            "repro/obs/report.py": (
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    from repro.core.engine import VALUE\n"
            ),
        })
        assert findings_for(project) == []

    def test_unconstrained_layer_imports_anything(self, build_project):
        # cli maps to "*" in the checked-in spec
        assert DEFAULT_LAYER_SPEC["cli"] == "*"
        project = build_project({
            "repro/core/engine.py": "VALUE = 1\n",
            "repro/cli/main.py": "from repro.core.engine import VALUE\n",
        })
        assert findings_for(project) == []

    def test_unlisted_layer_is_unconstrained(self, build_project):
        project = build_project({
            "repro/core/engine.py": "VALUE = 1\n",
            "repro/examples/demo.py": (
                "from repro.core.engine import VALUE\n"
            ),
        })
        assert findings_for(project) == []

    def test_config_override_replaces_spec(self, build_project):
        project = build_project(
            {
                "repro/core/engine.py": "VALUE = 1\n",
                "repro/obs/report.py": (
                    "from repro.core.engine import VALUE\n"
                ),
            },
            config={"layer_spec": {"obs": ["core"]}},
        )
        assert findings_for(project) == []


class TestCycles:
    def test_cross_layer_cycle_is_flagged(self, build_project):
        project = build_project({
            # core may import sim, sim may not import core: the edge
            # violation fires AND the two-layer cycle is reported
            "repro/core/engine.py": "from repro.sim import model\n",
            "repro/sim/model.py": "from repro.core import engine\n",
        })
        messages = [f.message for f in findings_for(project)]
        assert any("runtime import cycle" in m for m in messages)

    def test_intra_layer_cycle_is_tolerated(self, build_project):
        # deferred-registry imports within one package are a standard
        # idiom (rules.py <-> rule modules in repro.analysis itself)
        project = build_project({
            "repro/obs/a.py": "from repro.obs import b\n",
            "repro/obs/b.py": "from repro.obs import a\n",
        })
        assert findings_for(project) == []
