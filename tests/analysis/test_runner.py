"""Analyzer runner: suppressions, fingerprints, baseline, report."""

import pytest

from repro.analysis import Analyzer, Baseline
from repro.analysis.baseline import BaselineEntry
from repro.analysis.runner import REPORT_SCHEMA_VERSION

DIRTY = "import time\nstamp = time.time()\n"
CORE_PATH = "src/repro/core/fixture.py"


def analyze(source, path=CORE_PATH, **kwargs):
    return Analyzer(**kwargs).analyze_source(path, source)


class TestInlineSuppression:
    def test_disable_by_id(self):
        live, suppressed = analyze(
            "import time\n"
            "stamp = time.time()  # repro-lint: disable=RL001\n"
        )
        assert not live
        assert len(suppressed) == 1

    def test_disable_all(self):
        live, suppressed = analyze(
            "import time\n"
            "stamp = time.time()  # repro-lint: disable=all\n"
        )
        assert not live and len(suppressed) == 1

    def test_wrong_id_does_not_suppress(self):
        live, suppressed = analyze(
            "import time\n"
            "stamp = time.time()  # repro-lint: disable=RL002\n"
        )
        assert len(live) == 1 and not suppressed

    def test_comma_list_with_whitespace(self):
        live, suppressed = analyze(
            "import time\n"
            "stamp = time.time()  # repro-lint: disable=RL002 , RL001\n"
        )
        assert not live
        assert len(suppressed) == 1

    def test_suppressing_one_rule_leaves_the_other_live(self):
        # the line violates both RL001 (wall clock) and RL002 (float
        # equality); suppressing RL001 must not swallow RL002
        live, suppressed = analyze(
            "import time\n"
            "ok = time.time() == 0.0  # repro-lint: disable=RL001\n"
        )
        assert [f.rule_id for f in suppressed] == ["RL001"]
        assert [f.rule_id for f in live] == ["RL002"]

    def test_unknown_id_warns_instead_of_silently_passing(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "odd.py").write_text(
            "import time\n"
            "stamp = time.time()  # repro-lint: disable=RL99\n"
        )
        report = Analyzer().run([tmp_path])
        # the bogus id has no effect: the finding stays live...
        assert [f.rule_id for f in report.findings] == ["RL001"]
        # ...and the report says why
        [warning] = report.warnings
        assert "RL99" in warning and "unknown" in warning

    def test_known_ids_do_not_warn(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "fine.py").write_text(
            "import time\n"
            "stamp = time.time()  # repro-lint: disable=RL001,RL103\n"
        )
        report = Analyzer().run([tmp_path])
        assert report.warnings == ()

    def test_disable_all_with_other_ids_in_list(self):
        live, suppressed = analyze(
            "import time\n"
            "stamp = time.time()  # repro-lint: disable=RL002, all\n"
        )
        assert not live and len(suppressed) == 1


class TestFingerprints:
    def test_stable_under_line_drift(self):
        [f1], _ = analyze(DIRTY)
        [f2], _ = analyze("\n\n\n" + DIRTY)
        assert f1.line != f2.line
        assert f1.fingerprint == f2.fingerprint

    def test_duplicate_snippets_get_distinct_fingerprints(self):
        live, _ = analyze(
            "import time\n"
            "a = time.time()\n"
            "b = time.time()\n"
            "a = time.time()\n"  # identical snippet to line 2
        )
        assert len(live) == 3
        assert len({f.fingerprint for f in live}) == 3

    def test_path_changes_fingerprint(self):
        [f1], _ = analyze(DIRTY, path="src/repro/core/a.py")
        [f2], _ = analyze(DIRTY, path="src/repro/core/b.py")
        assert f1.fingerprint != f2.fingerprint


class TestBaseline:
    def test_roundtrip_suppresses(self, tmp_path):
        live, _ = analyze(DIRTY)
        baseline = Baseline.from_findings(live, "known debt")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        report_live = [f for f in live if not loaded.suppresses(f)]
        assert not report_live

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_unrelated_entry_does_not_suppress(self):
        live, _ = analyze(DIRTY)
        baseline = Baseline([BaselineEntry(
            rule="RL001", path=CORE_PATH,
            fingerprint="0" * 24, justification="stale",
        )])
        assert all(not baseline.suppresses(f) for f in live)


class TestRun:
    def test_directory_run_reports_findings(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "dirty.py").write_text(DIRTY)
        (pkg / "clean.py").write_text("x = 1\n")
        report = Analyzer().run([tmp_path])
        assert report.n_files == 2
        assert len(report.findings) == 1
        assert not report.clean

    def test_syntax_error_becomes_report_error(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        report = Analyzer().run([tmp_path])
        assert report.errors and "cannot parse" in report.errors[0]
        assert not report.clean

    def test_missing_path_becomes_report_error(self, tmp_path):
        report = Analyzer().run([tmp_path / "nope"])
        assert report.errors and "no such file" in report.errors[0]

    def test_baselined_findings_leave_report_clean(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "dirty.py").write_text(DIRTY)
        first = Analyzer().run([tmp_path])
        baseline = Baseline.from_findings(list(first.findings), "debt")
        second = Analyzer(baseline=baseline).run([tmp_path])
        assert not second.findings
        assert len(second.baselined) == 1
        assert second.clean


class TestReportDict:
    def test_schema_keys(self, tmp_path):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "dirty.py").write_text(DIRTY)
        doc = Analyzer().run([tmp_path]).to_dict()
        assert doc["schema_version"] == REPORT_SCHEMA_VERSION
        assert set(doc) == {
            "schema_version", "summary", "findings", "errors",
            "warnings",
        }
        assert set(doc["summary"]) == {
            "files", "findings", "suppressed", "baselined", "by_rule",
            "clean",
        }
        [finding] = doc["findings"]
        assert set(finding) == {
            "rule", "path", "line", "col", "message", "snippet",
            "fingerprint",
        }
        assert doc["summary"]["by_rule"] == {"RL001": 1}
