"""RL103 — determinism taint tracking."""

from repro.analysis.taint import DeterminismTaintRule


def findings_for(project):
    return list(DeterminismTaintRule().check(project))


class TestDecisionSinks:
    def test_branch_on_wall_clock_in_core(self, build_project):
        project = build_project({
            "repro/core/decide.py": (
                "import time\n"
                "def choose(a, b):\n"
                "    stamp = time.time()\n"
                "    if stamp > 100.0:\n"
                "        return a\n"
                "    return b\n"
            ),
        })
        findings = findings_for(project)
        assert findings
        assert all(f.rule_id == "RL103" for f in findings)
        assert any("branch condition" in f.message for f in findings)
        assert any("wall-clock" in f.message for f in findings)

    def test_tainted_return_from_decision_layer(self, build_project):
        project = build_project({
            "repro/core/decide.py": (
                "import time\n"
                "def elapsed():\n"
                "    return time.perf_counter()\n"
            ),
        })
        findings = findings_for(project)
        assert any("returned from a decision-layer" in f.message
                   for f in findings)
        assert any("wall-duration" in f.message for f in findings)

    def test_tainted_store_into_object_state(self, build_project):
        project = build_project({
            "repro/core/state.py": (
                "import os\n"
                "class Engine:\n"
                "    def configure(self):\n"
                "        self.mode = os.getenv('MODE')\n"
            ),
        })
        findings = findings_for(project)
        assert any("stored into decision-layer object state" in f.message
                   for f in findings)

    def test_obs_layer_branches_are_not_decision_sinks(self, build_project):
        # obs is not a decision layer: branching on wall time there is
        # fine (only serialising it into telemetry would flag)
        project = build_project({
            "repro/obs/watch.py": (
                "import time\n"
                "def late(deadline):\n"
                "    return time.monotonic() > deadline\n"
            ),
        })
        assert findings_for(project) == []


class TestTelemetrySinks:
    def test_publish_with_tainted_payload(self, build_project):
        project = build_project({
            "repro/obs/emit.py": (
                "import time\n"
                "def emit(bus):\n"
                "    bus.publish('x', {'t': time.time()})\n"
            ),
        })
        findings = findings_for(project)
        assert any("`.publish()`" in f.message for f in findings)

    def test_record_constructor_with_tainted_field(self, build_project):
        project = build_project({
            "repro/obs/bus.py": (
                "import time\n"
                "class BusEvent:\n"
                "    def __init__(self, seq, time_, kind):\n"
                "        self.seq = seq\n"
                "        self.time = time_\n"
                "        self.kind = kind\n"
                "def stamp(seq, kind):\n"
                "    return BusEvent(seq, time.monotonic(), kind)\n"
            ),
        })
        findings = findings_for(project)
        assert any("`BusEvent(...)`" in f.message for f in findings)

    def test_json_dumps_sink(self, build_project):
        project = build_project({
            "repro/obs/ser.py": (
                "import json\n"
                "import time\n"
                "def render():\n"
                "    return json.dumps({'at': time.time()})\n"
            ),
        })
        findings = findings_for(project)
        assert any("`json.dumps`" in f.message for f in findings)

    def test_untainted_payload_is_clean(self, build_project):
        project = build_project({
            "repro/obs/emit.py": (
                "def emit(bus, step):\n"
                "    bus.publish('progress', {'step': step})\n"
            ),
        })
        assert findings_for(project) == []


class TestPropagation:
    def test_taint_flows_through_helper_return(self, build_project):
        project = build_project({
            "repro/core/helper.py": (
                "import time\n"
                "def now():\n"
                "    return time.time()\n"
            ),
            "repro/core/user.py": (
                "from repro.core.helper import now\n"
                "def pick(a, b):\n"
                "    if now() > 0:\n"
                "        return a\n"
                "    return b\n"
            ),
        })
        findings = findings_for(project)
        assert any(
            "branch condition" in f.message
            and f.path.endswith("user.py")
            for f in findings
        )

    def test_stored_source_reference_taints_calls(self, build_project):
        # clock = time.monotonic; clock() later is still wall time
        project = build_project({
            "repro/core/clocky.py": (
                "import time\n"
                "def make():\n"
                "    clock = time.monotonic\n"
                "    return clock()\n"
            ),
        })
        findings = findings_for(project)
        assert any("returned from a decision-layer" in f.message
                   for f in findings)

    def test_self_attr_taint_crosses_methods(self, build_project):
        project = build_project({
            "repro/core/holder.py": (
                "import time\n"
                "class Holder:\n"
                "    def seed(self):\n"
                "        self._t0 = time.time()\n"
                "    def read(self):\n"
                "        return self._t0\n"
            ),
        })
        findings = findings_for(project)
        assert any(
            "returned from a decision-layer" in f.message
            for f in findings
        )


class TestSetOrder:
    def test_membership_test_is_clean(self, build_project):
        project = build_project({
            "repro/core/member.py": (
                "def seen(visited, item, a, b):\n"
                "    bag = set(visited)\n"
                "    if item in bag:\n"
                "        return a\n"
                "    return b\n"
            ),
        })
        assert findings_for(project) == []

    def test_iterating_a_set_into_decisions_flags(self, build_project):
        project = build_project({
            "repro/core/iterate.py": (
                "def first(visited):\n"
                "    bag = set(visited)\n"
                "    for item in bag:\n"
                "        return item\n"
            ),
        })
        findings = findings_for(project)
        assert any("set-order" in f.message for f in findings)

    def test_sorted_sanitizes_iteration_order(self, build_project):
        project = build_project({
            "repro/core/sane.py": (
                "def first(visited):\n"
                "    bag = set(visited)\n"
                "    for item in sorted(bag):\n"
                "        return item\n"
            ),
        })
        assert findings_for(project) == []

    def test_len_of_set_is_clean(self, build_project):
        project = build_project({
            "repro/core/size.py": (
                "def count(visited):\n"
                "    return len(set(visited))\n"
            ),
        })
        assert findings_for(project) == []


class TestSourceSuppression:
    def test_suppressing_the_source_kills_downstream_flows(
        self, build_project
    ):
        project = build_project({
            "repro/core/timed.py": (
                "import time\n"
                "def run(work, a, b):\n"
                "    t0 = time.perf_counter()"
                "  # repro-lint: disable=RL103\n"
                "    work()\n"
                "    took = time.perf_counter() - t0"
                "  # repro-lint: disable=RL103\n"
                "    if took > 1.0:\n"
                "        return a\n"
                "    return b\n"
            ),
        })
        assert findings_for(project) == []

    def test_unsuppressed_source_still_flags(self, build_project):
        project = build_project({
            "repro/core/timed.py": (
                "import time\n"
                "def run(work, a, b):\n"
                "    t0 = time.perf_counter()\n"
                "    work()\n"
                "    if time.perf_counter() - t0 > 1.0:\n"
                "        return a\n"
                "    return b\n"
            ),
        })
        assert findings_for(project)
