"""Import graph and call graph construction (repro.analysis.graph)."""

from repro.analysis.graph import module_name_for, tarjan_sccs


class TestModuleNames:
    def test_package_file_gets_dotted_name(self, write_tree):
        root = write_tree({"repro/obs/bus.py": "x = 1\n"})
        assert module_name_for(root / "repro" / "obs" / "bus.py") == (
            "repro.obs.bus"
        )

    def test_init_names_the_package(self, write_tree):
        root = write_tree({"repro/obs/bus.py": "x = 1\n"})
        assert module_name_for(root / "repro" / "__init__.py") == "repro"

    def test_bare_file_is_top_level(self, tmp_path):
        path = tmp_path / "script.py"
        path.write_text("x = 1\n")
        assert module_name_for(path) == "script"


class TestImportGraph:
    def test_absolute_from_import_resolves(self, build_project):
        project = build_project({
            "repro/core/engine.py": "VALUE = 1\n",
            "repro/obs/report.py": (
                "from repro.core.engine import VALUE\n"
            ),
        })
        edges = project.import_graph.imports_of("repro.obs.report")
        assert [e.imported for e in edges] == ["repro.core.engine"]
        assert not edges[0].type_only

    def test_relative_import_resolves(self, build_project):
        project = build_project({
            "repro/core/engine.py": "VALUE = 1\n",
            "repro/core/helper.py": "from .engine import VALUE\n",
            "repro/obs/report.py": (
                "from ..core.engine import VALUE\n"
            ),
        })
        graph = project.import_graph
        assert graph.successors("repro.core.helper") == {
            "repro.core.engine"
        }
        assert graph.successors("repro.obs.report") == {
            "repro.core.engine"
        }

    def test_plain_import_resolves(self, build_project):
        project = build_project({
            "repro/core/engine.py": "VALUE = 1\n",
            "repro/obs/report.py": "import repro.core.engine\n",
        })
        assert project.import_graph.successors("repro.obs.report") == {
            "repro.core.engine"
        }

    def test_external_imports_are_ignored(self, build_project):
        project = build_project({
            "repro/obs/report.py": "import json\nimport numpy\n",
        })
        assert project.import_graph.imports_of("repro.obs.report") == ()

    def test_type_checking_imports_are_type_only(self, build_project):
        project = build_project({
            "repro/core/engine.py": "VALUE = 1\n",
            "repro/obs/report.py": (
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    from repro.core.engine import VALUE\n"
            ),
        })
        [edge] = project.import_graph.imports_of("repro.obs.report")
        assert edge.type_only
        assert project.import_graph.successors("repro.obs.report") == set()

    def test_cycle_forms_one_scc(self, build_project):
        project = build_project({
            "repro/core/a.py": "from repro.core import b\n",
            "repro/core/b.py": "from repro.core import a\n",
        })
        components = [
            sorted(c) for c in project.import_graph.sccs() if len(c) > 1
        ]
        assert ["repro.core.a", "repro.core.b"] in components

    def test_reachable_from_is_transitive(self, build_project):
        project = build_project({
            "repro/core/a.py": "from repro.core import b\n",
            "repro/core/b.py": "from repro.core import c\n",
            "repro/core/c.py": "x = 1\n",
        })
        assert project.import_graph.reachable_from("repro.core.a") == {
            "repro.core.b", "repro.core.c"
        }


class TestTarjan:
    def test_callees_come_first(self):
        # a -> b -> c: reverse-topological order puts c before a
        successors = {"a": ["b"], "b": ["c"], "c": []}
        order = tarjan_sccs(
            ["a", "b", "c"], lambda n: successors.get(n, [])
        )
        flat = [m for component in order for m in component]
        assert flat.index("c") < flat.index("b") < flat.index("a")


class TestCallGraph:
    def test_method_call_via_annotated_attr(self, build_project):
        project = build_project({
            "repro/obs/sink.py": (
                "class Sink:\n"
                "    def write(self, event):\n"
                "        pass\n"
            ),
            "repro/obs/owner.py": (
                "from repro.obs.sink import Sink\n"
                "class Owner:\n"
                "    def __init__(self, sink: Sink) -> None:\n"
                "        self._sink = sink\n"
                "    def emit(self, event):\n"
                "        self._sink.write(event)\n"
            ),
        })
        graph = project.call_graph
        assert "repro.obs.sink:Sink.write" in graph.callees(
            "repro.obs.owner:Owner.emit"
        )

    def test_constructor_site_is_marked(self, build_project):
        project = build_project({
            "repro/obs/rec.py": (
                "class Record:\n"
                "    def __init__(self, value):\n"
                "        self.value = value\n"
            ),
            "repro/obs/maker.py": (
                "from repro.obs.rec import Record\n"
                "def make(v):\n"
                "    return Record(v)\n"
            ),
        })
        [site] = project.call_graph.calls_from("repro.obs.maker:make")
        assert site.raw == "new:repro.obs.rec:Record"
        assert site.callee == "repro.obs.rec:Record.__init__"

    def test_reachable_and_chain(self, build_project):
        project = build_project({
            "repro/obs/chain.py": (
                "def a():\n"
                "    b()\n"
                "def b():\n"
                "    c()\n"
                "def c():\n"
                "    pass\n"
            ),
        })
        graph = project.call_graph
        parents = graph.reachable(["repro.obs.chain:a"])
        assert set(parents) == {
            "repro.obs.chain:a", "repro.obs.chain:b", "repro.obs.chain:c"
        }
        assert graph.chain(parents, "repro.obs.chain:c") == [
            "repro.obs.chain:a", "repro.obs.chain:b", "repro.obs.chain:c"
        ]

    def test_inherited_method_resolves(self, build_project):
        project = build_project({
            "repro/obs/base.py": (
                "class Base:\n"
                "    def close(self):\n"
                "        pass\n"
                "class Child(Base):\n"
                "    pass\n"
                "def run(c: Child):\n"
                "    c.close()\n"
            ),
        })
        assert "repro.obs.base:Base.close" in project.call_graph.callees(
            "repro.obs.base:run"
        )


class TestLayerOf:
    def test_layers(self, build_project):
        project = build_project({
            "repro/core/engine.py": "x = 1\n",
            "repro/obs/bus.py": "x = 1\n",
            "repro/api.py": "x = 1\n",
        })
        assert project.layer_of("repro.core.engine") == "core"
        assert project.layer_of("repro.obs.bus") == "obs"
        # a top-level module of the repro package is its own layer;
        # the package root itself is "repro"
        assert project.layer_of("repro.api") == "api"
        assert project.layer_of("repro") == "repro"
