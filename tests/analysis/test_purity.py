"""RL102 — telemetry purity: reachable side-effect inference."""

from pathlib import Path

from repro.analysis.graph import ProjectContext
from repro.analysis.purity import (
    TelemetryPurityRule,
    certify_entry_points,
    detect_subscribed_sinks,
)
from repro.analysis.rules import ModuleContext


def findings_for(project):
    return list(TelemetryPurityRule().check(project))


#: A fake telemetry sink that mutates the event it receives — the
#: canonical violation this rule exists to reject.
MUTATING_SINK = """\
class EvilSink:
    def __call__(self, event):
        event.data["seen"] = True

def wire(bus):
    bus.subscribe(EvilSink())
"""

PURE_SINK = """\
class GoodSink:
    def __init__(self):
        self.events = []
    def __call__(self, event):
        self.events.append(event)

def wire(bus):
    bus.subscribe(GoodSink())
"""


class TestSubscribedSinks:
    def test_direct_constructor_argument_is_detected(self, build_project):
        project = build_project({"repro/obs/evil.py": MUTATING_SINK})
        sinks = detect_subscribed_sinks(project)
        assert "subscribed:repro.obs.evil:EvilSink" in sinks

    def test_name_assigned_from_constructor_is_detected(
        self, build_project
    ):
        project = build_project({
            "repro/obs/wiring.py": (
                "class Sink:\n"
                "    def __call__(self, event):\n"
                "        pass\n"
                "def wire(bus):\n"
                "    sink = Sink()\n"
                "    bus.subscribe(sink)\n"
            ),
        })
        assert "subscribed:repro.obs.wiring:Sink" in (
            detect_subscribed_sinks(project)
        )


class TestPurityRule:
    def test_mutating_subscribed_sink_is_rejected(self, build_project):
        project = build_project({"repro/obs/evil.py": MUTATING_SINK})
        [finding] = findings_for(project)
        assert finding.rule_id == "RL102"
        assert "telemetry writes external state" in finding.message
        assert "param `event`" in finding.message
        assert "subscribed:repro.obs.evil:EvilSink" in finding.message

    def test_self_mutating_sink_is_accepted(self, build_project):
        project = build_project({"repro/obs/good.py": PURE_SINK})
        assert findings_for(project) == []

    def test_configured_entry_point_chain_is_reported(self, build_project):
        project = build_project(
            {
                "repro/obs/rec.py": (
                    "def scribble(engine):\n"
                    "    engine.history.append(1)\n"
                    "class Recorder:\n"
                    "    def snapshot(self, engine):\n"
                    "        scribble(engine)\n"
                ),
            },
            config={"entry_points": ["repro.obs.rec:Recorder"]},
        )
        findings = findings_for(project)
        # two sites: the direct mutation in scribble and the propagated
        # one at snapshot's call — both reachable from the entry point
        assert findings and all(
            "param `engine`" in f.message for f in findings
        )
        chained = " ".join(f.message for f in findings)
        assert "Recorder.snapshot" in chained
        assert "scribble" in chained

    def test_absent_entry_points_are_skipped(self, build_project):
        project = build_project(
            {"repro/obs/empty.py": "x = 1\n"},
            config={"entry_points": ["repro.obs.nowhere:Ghost"]},
        )
        assert findings_for(project) == []


class TestCertification:
    def test_certify_reports_impure_entry(self, build_project):
        project = build_project({"repro/obs/evil.py": MUTATING_SINK})
        rows = certify_entry_points(project)
        by_entry = {row["entry"]: row for row in rows}
        evil = by_entry["subscribed:repro.obs.evil:EvilSink"]
        assert evil["pure"] is False
        assert evil["violations"]

    def test_certify_reports_pure_entry(self, build_project):
        project = build_project({"repro/obs/good.py": PURE_SINK})
        rows = certify_entry_points(project)
        by_entry = {row["entry"]: row for row in rows}
        good = by_entry["subscribed:repro.obs.good:GoodSink"]
        assert good["pure"] is True
        assert good["violations"] == []

    def test_real_telemetry_entry_points_certify_pure(self):
        """The acceptance proof: every shipped telemetry entry point is
        statically certified effect-free over the real source tree."""
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        contexts = [
            ModuleContext.parse(p.as_posix(), p.read_text())
            for p in sorted(src.rglob("*.py"))
        ]
        project = ProjectContext.from_contexts(contexts)
        rows = certify_entry_points(project)
        entries = {row["entry"] for row in rows}
        # the defaults must actually resolve against the real tree
        assert "repro.obs.bus:EventBus" in entries
        assert "repro.obs.recorder:RunRecorder" in entries
        impure = [row for row in rows if not row["pure"]]
        assert impure == []
