"""Shared fixtures for the deep-analysis (project-rule) tests.

Project rules need real files on disk: ``module_name_for`` decides a
file's dotted module name by climbing ``__init__.py`` parents, so the
fixture writer materialises each tree under ``tmp_path`` with package
markers filled in automatically.
"""

import textwrap

import pytest

from repro.analysis.graph import ProjectContext
from repro.analysis.rules import ModuleContext


def _write_tree(root, files):
    """Write ``{relative/path.py: source}`` under ``root``.

    Every intermediate directory gets an ``__init__.py`` so the files
    form an importable package tree (and thus get dotted module names).
    """
    paths = []
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        d = path.parent
        while d != root:
            marker = d / "__init__.py"
            if not marker.exists():
                marker.write_text("")
            d = d.parent
        path.write_text(textwrap.dedent(source))
        paths.append(path)
    return paths


@pytest.fixture
def write_tree(tmp_path):
    def _write(files):
        _write_tree(tmp_path, files)
        return tmp_path

    return _write


@pytest.fixture
def build_project(tmp_path):
    """Write a fixture tree and assemble its :class:`ProjectContext`."""

    def _build(files, config=None):
        _write_tree(tmp_path, files)
        contexts = [
            ModuleContext.parse(p.as_posix(), p.read_text())
            for p in sorted(tmp_path.rglob("*.py"))
        ]
        return ProjectContext.from_contexts(contexts, config=config)

    return _build
