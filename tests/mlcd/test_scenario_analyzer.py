"""ScenarioAnalyzer and UserRequirements."""

import pytest

from repro.core.scenarios import ScenarioKind
from repro.mlcd.scenario_analyzer import ScenarioAnalyzer, UserRequirements


class TestUserRequirements:
    def test_empty_is_scenario1(self):
        r = UserRequirements()
        assert r.deadline_hours is None and r.budget_dollars is None

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            UserRequirements(deadline_hours=-1.0)

    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            UserRequirements(budget_dollars=0.0)

    def test_both_constraints_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            UserRequirements(deadline_hours=1.0, budget_dollars=1.0)


class TestAnalyzer:
    def test_no_requirements_scenario1(self):
        s = ScenarioAnalyzer().analyze(UserRequirements())
        assert s.kind is ScenarioKind.MIN_TIME_UNBOUNDED

    def test_deadline_scenario2_converts_hours(self):
        s = ScenarioAnalyzer().analyze(UserRequirements(deadline_hours=6.0))
        assert s.kind is ScenarioKind.MIN_COST_DEADLINE
        assert s.deadline_seconds == pytest.approx(21600.0)

    def test_budget_scenario3(self):
        s = ScenarioAnalyzer().analyze(
            UserRequirements(budget_dollars=100.0)
        )
        assert s.kind is ScenarioKind.MIN_TIME_BUDGET
        assert s.budget_dollars == 100.0
