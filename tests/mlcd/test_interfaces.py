"""Cloud Interface and ML Platform Interface."""

import pytest

from repro.cloud.provider import SimulatedCloud
from repro.mlcd.cloud_interface import SimulatedCloudInterface
from repro.mlcd.platform_interface import MLPlatformInterface
from repro.sim.comm import CommProtocol


class TestSimulatedCloudInterface:
    @pytest.fixture
    def iface(self, small_catalog):
        return SimulatedCloudInterface(SimulatedCloud(small_catalog))

    def test_catalog_exposed(self, iface, small_catalog):
        assert iface.catalog.names == small_catalog.names

    def test_launch_waits_for_running(self, iface):
        cluster = iface.launch_cluster("c5.xlarge", 2)
        from repro.cloud.cluster import ClusterState
        assert cluster.state is ClusterState.RUNNING

    def test_run_and_terminate_bill(self, iface):
        cluster = iface.launch_cluster("c5.xlarge", 1)
        iface.run_cluster(cluster, 600.0)
        dollars = iface.terminate_cluster(cluster, purpose="profiling")
        assert dollars > 0
        assert iface.total_spend("profiling") == pytest.approx(dollars)
        assert iface.elapsed_seconds() > 600.0

    def test_metric_statistics_roundtrip(self, iface):
        iface.cloud.metrics.put_many(
            "c", "speed", [0.0, 1.0], [10.0, 12.0]
        )
        stats = iface.get_metric_statistics("c", "speed")
        assert stats.mean == pytest.approx(11.0)


class TestMLPlatformInterface:
    @pytest.fixture
    def iface(self):
        return MLPlatformInterface()

    def test_supported_platforms(self, iface):
        assert "tensorflow" in iface.supported_platforms()
        assert "mxnet" in iface.supported_platforms()

    def test_protocol_aliases(self, iface):
        assert iface.resolve_protocol("ps") is CommProtocol.PARAMETER_SERVER
        assert (
            iface.resolve_protocol("ring-allreduce")
            is CommProtocol.RING_ALLREDUCE
        )
        assert iface.resolve_protocol("RING") is CommProtocol.RING_ALLREDUCE

    def test_none_protocol_defers(self, iface):
        assert iface.resolve_protocol(None) is None

    def test_unknown_protocol_rejected(self, iface):
        with pytest.raises(ValueError, match="protocol"):
            iface.resolve_protocol("smoke-signals")

    def test_build_job_resolves_names(self, iface):
        job = iface.build_job(
            model="bert", dataset="bert-corpus",
            platform="mxnet", protocol="ring",
            global_batch=64, epochs=0.5,
        )
        assert job.model.name == "bert"
        assert job.platform.name == "mxnet"
        assert job.effective_protocol is CommProtocol.RING_ALLREDUCE
        assert job.batch == 64

    def test_build_job_unknown_model(self, iface):
        with pytest.raises(KeyError):
            iface.build_job(model="nope", dataset="cifar10")
