"""SpotTrainingExecutor: checkpoint/restart semantics."""

import pytest

from repro.cloud.catalog import paper_catalog
from repro.cloud.spot import SpotMarket
from repro.core.search_space import Deployment
from repro.mlcd.spot import SpotTrainingExecutor
from repro.sim.throughput import TrainingSimulator


@pytest.fixture
def world(charrnn_job):
    catalog = paper_catalog()
    market = SpotMarket(catalog, seed=3)
    executor = SpotTrainingExecutor(market, TrainingSimulator(), catalog)
    return market, executor, charrnn_job


class TestExecution:
    def test_generous_bid_matches_on_demand_time(self, world):
        _, executor, job = world
        outcome = executor.execute(
            Deployment("c5.4xlarge", 8), job, bid_factor=1.0
        )
        assert outcome.revocations == 0
        assert outcome.time_inflation == pytest.approx(1.0)
        assert outcome.cost_saving > 0.3  # spot mean ~0.4 of on-demand

    def test_aggressive_bid_trades_time_for_dollars(self, world):
        market, executor, job = world
        d = Deployment("c5.4xlarge", 8)
        aggressive = executor.execute(
            d, job, bid_factor=market.floor + 0.08
        )
        relaxed = executor.execute(d, job, bid_factor=1.0)
        assert aggressive.revocations > 0
        assert aggressive.seconds > relaxed.seconds
        assert aggressive.dollars < relaxed.on_demand_dollars

    def test_wasted_time_accounted(self, world):
        market, executor, job = world
        outcome = executor.execute(
            Deployment("c5.4xlarge", 8), job,
            bid_factor=market.floor + 0.08,
        )
        if outcome.revocations:
            assert outcome.wasted_seconds > 0
            # wall time >= productive time + waste
            assert outcome.seconds >= (
                outcome.on_demand_seconds + outcome.wasted_seconds
            ) * 0.999

    def test_bid_below_floor_rejected(self, world):
        market, executor, job = world
        with pytest.raises(RuntimeError, match="floor"):
            executor.execute(
                Deployment("c5.4xlarge", 8), job,
                bid_factor=market.floor / 2,
            )

    def test_deterministic(self, world):
        _, executor, job = world
        d = Deployment("c5.4xlarge", 8)
        a = executor.execute(d, job, bid_factor=0.45)
        b = executor.execute(d, job, bid_factor=0.45)
        assert a == b

    def test_cost_never_exceeds_bid_ceiling(self, world):
        """Every billed second is priced at <= bid x on-demand."""
        market, executor, job = world
        d = Deployment("c5.4xlarge", 8)
        bid = 0.5
        outcome = executor.execute(d, job, bid_factor=bid)
        itype = paper_catalog()["c5.4xlarge"]
        productive_plus_lost = (
            outcome.on_demand_seconds
            + outcome.wasted_seconds
            - outcome.revocations * executor.restart_seconds
        )
        ceiling = (
            itype.hourly_price * bid * d.count
            * productive_plus_lost / 3600.0
        )
        assert outcome.dollars <= ceiling * 1.001


class TestValidation:
    def test_bad_checkpoint_rejected(self, world):
        market, _, _ = world
        with pytest.raises(ValueError, match="checkpoint"):
            SpotTrainingExecutor(
                market, TrainingSimulator(), paper_catalog(),
                checkpoint_seconds=0.0,
            )

    def test_bad_restart_rejected(self, world):
        market, _, _ = world
        with pytest.raises(ValueError, match="restart"):
            SpotTrainingExecutor(
                market, TrainingSimulator(), paper_catalog(),
                restart_seconds=-1.0,
            )


class TestFleetTelemetry:
    """Spot segments narrate themselves through the fleet log."""

    def _instrumented(self, seed=3):
        from repro.obs.fleet import FleetLog

        catalog = paper_catalog()
        market = SpotMarket(catalog, seed=seed)
        fleet = FleetLog()
        executor = SpotTrainingExecutor(
            market, TrainingSimulator(), catalog, fleet=fleet
        )
        return market, executor, fleet

    def test_revoked_events_match_the_market_schedule(self, charrnn_job):
        """Every `revoked` event lands exactly where the market said
        the next revocation would be, queried from its segment's
        grant instant with the executor's own horizon."""
        market, executor, fleet = self._instrumented()
        d = Deployment("c5.4xlarge", 8)
        bid = market.floor + 0.08
        outcome = executor.execute(d, charrnn_job, bid_factor=bid)
        assert outcome.revocations > 0  # aggressive bid on this seed

        revoked = [e for e in fleet.events if e.event == "revoked"]
        assert len(revoked) == outcome.revocations
        starts = {
            e.cluster_id: e.time for e in fleet.events
            if e.event == "requested"
        }
        horizon = max(
            outcome.on_demand_seconds * 50.0,
            100 * market.tick_seconds,
        )
        for event in revoked:
            assert event.time == market.next_revocation(
                d.instance_type, starts[event.cluster_id], bid,
                horizon_seconds=horizon,
            )

    def test_segments_bill_outside_the_ledger(self, charrnn_job):
        market, executor, fleet = self._instrumented()
        executor.execute(
            Deployment("c5.4xlarge", 8), charrnn_job,
            bid_factor=market.floor + 0.08,
        )
        closings = [
            e for e in fleet.events if e.event in ("terminated", "revoked")
        ]
        assert closings
        assert all(e.ledger_index is None for e in closings)
        assert all(e.phase == "spot-train" for e in closings)

    def test_segment_dollars_sum_to_the_outcome(self, charrnn_job):
        market, executor, fleet = self._instrumented()
        outcome = executor.execute(
            Deployment("c5.4xlarge", 8), charrnn_job,
            bid_factor=market.floor + 0.08,
        )
        billed = sum(
            e.dollars for e in fleet.events
            if e.event in ("terminated", "revoked")
        )
        assert billed == pytest.approx(outcome.dollars)

    def test_spot_price_overlay_respects_the_bounds(self, charrnn_job):
        market, executor, fleet = self._instrumented()
        executor.execute(
            Deployment("c5.4xlarge", 8), charrnn_job, bid_factor=1.0
        )
        points = [e for e in fleet.events if e.event == "spot-price"]
        assert points
        for event in points:
            assert event.spot_factor == market.price_factor(
                "c5.4xlarge", event.time
            )

    def test_telemetry_is_read_only(self, charrnn_job):
        """Recording on vs. off -> identical SpotOutcome."""
        market, executor, _ = self._instrumented()
        plain = SpotTrainingExecutor(
            SpotMarket(paper_catalog(), seed=3), TrainingSimulator(),
            paper_catalog(),
        )
        d = Deployment("c5.4xlarge", 8)
        bid = market.floor + 0.08
        assert executor.execute(d, charrnn_job, bid_factor=bid) == \
            plain.execute(d, charrnn_job, bid_factor=bid)
