"""DeploymentEngine: search/train orchestration and billing split."""

import pytest

from repro.core.heterbo import HeterBO
from repro.core.scenarios import Scenario
from repro.core.search_space import Deployment
from repro.mlcd.deployment_engine import DeploymentEngine
from repro.sim.throughput import InfeasibleDeploymentError


@pytest.fixture
def engine(small_space, profiler, simulator):
    return DeploymentEngine(small_space, profiler, simulator)


class TestExecuteTraining:
    def test_returns_time_and_cost(self, engine, charrnn_job):
        seconds, dollars = engine.execute_training(
            Deployment("c5.4xlarge", 4), charrnn_job
        )
        true_speed = engine.simulator.true_speed(
            engine.space.catalog["c5.4xlarge"], 4, charrnn_job
        )
        expected = charrnn_job.total_samples / true_speed
        # wall time includes cluster setup
        assert seconds == pytest.approx(
            expected + engine.cloud.setup_seconds
        )
        assert dollars > 0

    def test_billed_under_training(self, engine, charrnn_job):
        _, dollars = engine.execute_training(
            Deployment("c5.4xlarge", 2), charrnn_job
        )
        assert engine.cloud.total_spend("training") == pytest.approx(dollars)
        assert engine.cloud.total_spend("profiling") == 0.0

    def test_infeasible_deployment_raises(self, engine, charrnn_job):
        with pytest.raises(InfeasibleDeploymentError):
            engine.execute_training(
                Deployment("c5.xlarge", charrnn_job.batch + 1), charrnn_job
            )


class TestDeploy:
    def test_full_pipeline(self, engine, charrnn_job):
        report = engine.deploy(
            HeterBO(seed=0), charrnn_job, Scenario.fastest()
        )
        assert report.trained
        assert report.train_seconds > 0
        assert report.total_dollars == pytest.approx(
            engine.cloud.total_spend()
        )

    def test_profile_train_split_matches_ledger(self, engine, charrnn_job):
        report = engine.deploy(
            HeterBO(seed=0), charrnn_job, Scenario.fastest()
        )
        assert report.search.profile_dollars == pytest.approx(
            engine.cloud.total_spend("profiling")
        )
        assert report.train_dollars == pytest.approx(
            engine.cloud.total_spend("training")
        )
