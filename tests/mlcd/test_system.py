"""MLCD facade: end-to-end deployments per scenario."""

import pytest

from repro.baselines.convbo import ConvBO
from repro.cloud.catalog import paper_catalog
from repro.mlcd.system import MLCD
from repro.mlcd.scenario_analyzer import UserRequirements


@pytest.fixture
def small_mlcd_kwargs():
    return dict(
        catalog=paper_catalog().subset(
            ["c5.xlarge", "c5.4xlarge", "p2.xlarge"]
        ),
        max_count=20,
        seed=3,
    )


class TestDeploy:
    def test_scenario1_unconstrained(self, small_mlcd_kwargs):
        mlcd = MLCD(**small_mlcd_kwargs)
        report = mlcd.deploy(
            model="char-rnn", dataset="char-corpus", epochs=2,
        )
        assert report.trained
        assert report.constraint_met

    def test_scenario3_budget_respected(self, small_mlcd_kwargs):
        mlcd = MLCD(**small_mlcd_kwargs)
        report = mlcd.deploy(
            model="char-rnn", dataset="char-corpus", epochs=2,
            requirements=UserRequirements(budget_dollars=120.0),
        )
        assert report.constraint_met
        assert report.total_dollars <= 120.0

    def test_scenario2_deadline_respected(self, small_mlcd_kwargs):
        mlcd = MLCD(**small_mlcd_kwargs)
        report = mlcd.deploy(
            model="char-rnn", dataset="char-corpus", epochs=2,
            requirements=UserRequirements(deadline_hours=6.0),
        )
        assert report.constraint_met
        assert report.total_seconds <= 6.0 * 3600.0

    def test_custom_strategy(self, small_mlcd_kwargs):
        mlcd = MLCD(strategy=ConvBO(seed=3), **small_mlcd_kwargs)
        report = mlcd.deploy(
            model="char-rnn", dataset="char-corpus", epochs=2,
        )
        assert report.search.strategy == "convbo"

    def test_one_deploy_per_session(self, small_mlcd_kwargs):
        mlcd = MLCD(**small_mlcd_kwargs)
        mlcd.deploy(model="char-rnn", dataset="char-corpus", epochs=2)
        with pytest.raises(RuntimeError, match="fresh MLCD"):
            mlcd.deploy(model="char-rnn", dataset="char-corpus", epochs=2)

    def test_platform_and_protocol_pass_through(self, small_mlcd_kwargs):
        mlcd = MLCD(**small_mlcd_kwargs)
        report = mlcd.deploy(
            model="bert", dataset="bert-corpus",
            platform="mxnet", protocol="ring", epochs=0.005,
        )
        assert report.trained

    def test_default_catalog_used_when_omitted(self):
        mlcd = MLCD(seed=0)
        assert "p3.16xlarge" in mlcd.catalog


class TestParetoOptions:
    def test_pareto_before_deploy_rejected(self, small_mlcd_kwargs):
        from repro.core.result import DeploymentReport, SearchResult
        from repro.core.scenarios import Scenario

        mlcd = MLCD(**small_mlcd_kwargs)
        dummy = DeploymentReport(search=SearchResult(
            strategy="x", scenario=Scenario.fastest(), trials=(),
            best=None, best_measured_speed=0.0,
            profile_seconds=0, profile_dollars=0, stop_reason="t",
        ))
        with pytest.raises(RuntimeError, match="before deploy"):
            mlcd.pareto_options(dummy)

    def test_pareto_options_after_deploy(self, small_mlcd_kwargs):
        mlcd = MLCD(**small_mlcd_kwargs)
        report = mlcd.deploy(
            model="char-rnn", dataset="char-corpus", epochs=2,
        )
        front = mlcd.pareto_options(report)
        assert front
        # mutual non-domination
        for a in front:
            for b in front:
                if a is not b:
                    assert not a.dominates(b)
