"""CLI: argument handling and end-to-end subcommands."""

import pytest

from repro.cli import build_parser, main


class TestFigureCommand:
    def test_list(self, capsys):
        assert main(["figure", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "fig19" in out

    def test_no_name_lists(self, capsys):
        assert main(["figure"]) == 0
        assert "available figures" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_cheap_figure_renders(self, capsys):
        assert main(["figure", "fig1a"]) == 0
        assert "c5.xlarge" in capsys.readouterr().out

    def test_registry_covers_every_paper_figure(self):
        from repro.cli import _figure_registry
        names = set(_figure_registry())
        for fig in ("fig1a", "fig1b", "fig2", "fig3", "fig5", "fig9",
                    "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
                    "fig16", "fig17", "fig18", "fig19"):
            assert fig in names


class TestDeployCommand:
    def test_deploy_with_budget(self, capsys):
        rc = main([
            "deploy", "--model", "char-rnn", "--dataset", "char-corpus",
            "--epochs", "1", "--budget", "80", "--max-count", "10",
            "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "constraint met: True" in out

    def test_deploy_pareto_flag(self, capsys):
        rc = main([
            "deploy", "--model", "char-rnn", "--dataset", "char-corpus",
            "--epochs", "1", "--budget", "80", "--max-count", "10",
            "--seed", "1", "--pareto",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pareto-efficient options" in out

    def test_both_constraints_rejected(self, capsys):
        rc = main([
            "deploy", "--model", "char-rnn", "--dataset", "char-corpus",
            "--budget", "80", "--deadline-hours", "5",
        ])
        assert rc == 2
        assert "not both" in capsys.readouterr().err

    def test_missing_model_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy", "--dataset", "cifar10"])


class TestReportCommand:
    def test_report_subset_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        rc = main(["report", "-o", str(out), "--only", "fig1a", "fig1b"])
        assert rc == 0
        text = out.read_text()
        assert "## fig1a" in text and "## fig1b" in text
        assert "c5.xlarge" in text

    def test_report_unknown_figure(self, capsys):
        assert main(["report", "--only", "fig99"]) == 2
        assert "unknown figures" in capsys.readouterr().err

    def test_report_stdout(self, capsys):
        rc = main(["report", "--only", "fig1a"])
        assert rc == 0
        assert "reproduction report" in capsys.readouterr().out


class TestTraceCommand:
    @pytest.fixture
    def trace_file(self, tmp_path, capsys):
        rc = main([
            "deploy", "--model", "char-rnn", "--dataset", "char-corpus",
            "--epochs", "1", "--budget", "80", "--max-count", "10",
            "--seed", "1", "--trace-out", str(tmp_path / "run.trace.jsonl"),
        ])
        assert rc == 0
        capsys.readouterr()  # discard the deploy output
        return str(tmp_path / "run.trace.jsonl")

    def test_trace_renders_per_step_table(self, trace_file, capsys):
        assert main(["trace", trace_file]) == 0
        out = capsys.readouterr().out
        assert "strategy      : heterbo" in out
        assert "step" in out and "probe $" in out
        assert "initial" in out

    def test_trace_probe_dollars_match_ledger(self, trace_file, capsys):
        from repro.obs import SearchTrace

        assert main(["trace", trace_file]) == 0
        out = capsys.readouterr().out
        trace = SearchTrace.load(trace_file)
        # the rendered total is the same number the artifact carries,
        # which reconciles with the billing ledger (tests/obs)
        assert f"${trace.probe_dollars_total:.2f}" in out

    def test_trace_spans_flag(self, trace_file, capsys):
        assert main(["trace", trace_file, "--spans"]) == 0
        out = capsys.readouterr().out
        assert "search" in out and "gp-fit" in out

    def test_trace_missing_file(self, capsys):
        assert main(["trace", "/nonexistent/run.trace.jsonl"]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_trace_invalid_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        assert main(["trace", str(bad)]) == 2
        assert "invalid trace file" in capsys.readouterr().err


class TestProfileAndDiffCommands:
    @pytest.fixture
    def profiled_run(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.jsonl"
        sidecar = tmp_path / "profile.json"
        rc = main([
            "deploy", "--model", "char-rnn", "--dataset", "char-corpus",
            "--epochs", "1", "--budget", "80", "--max-count", "10",
            "--seed", "1", "--trace-out", str(trace),
            "--profile", str(sidecar),
        ])
        assert rc == 0
        capsys.readouterr()  # discard the deploy output
        return trace, sidecar

    def test_deploy_writes_a_loadable_sidecar(self, profiled_run):
        from repro.obs import load_profile

        _, sidecar = profiled_run
        doc = load_profile(sidecar)
        assert doc["kind"] == "profile"
        assert "gp.fit.full" in doc["phases"]

    def test_profile_renders_sidecar_table(self, profiled_run, capsys):
        _, sidecar = profiled_run
        assert main(["profile", str(sidecar)]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "gp.fit.full" in out

    def test_profile_folded_stacks_from_trace(self, profiled_run, capsys):
        trace, _ = profiled_run
        assert main(["profile", str(trace), "--folded"]) == 0
        out = capsys.readouterr().out
        # span-derived ledger: every line is "path count" in integer µs
        for line in out.strip().splitlines():
            path, value = line.rsplit(" ", 1)
            assert int(value) >= 0
        assert any("probe" in line for line in out.splitlines())

    def test_profile_flame_writes_svg(self, profiled_run, tmp_path, capsys):
        _, sidecar = profiled_run
        svg = tmp_path / "flame.svg"
        assert main(["profile", str(sidecar), "--flame", str(svg)]) == 0
        assert svg.read_text().startswith("<svg ")

    def test_profile_missing_file(self, capsys):
        assert main(["profile", "/nonexistent/profile.json"]) == 2
        assert "no such" in capsys.readouterr().err

    def test_diff_identical_canonical_pair(self, profiled_run, capsys):
        trace, _ = profiled_run
        rc = main(["diff", str(trace), str(trace), "--canonical"])
        assert rc == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_pinpoints_divergence_and_exits_one(
        self, profiled_run, tmp_path, capsys
    ):
        import json

        trace, _ = profiled_run
        lines = trace.read_text().splitlines()
        target = next(
            i for i, line in enumerate(lines)
            if json.loads(line).get("name") == "probe"
        )
        doc = json.loads(lines[target])
        doc["attributes"]["deployment"] = "999x bogus"
        lines[target] = json.dumps(doc)
        other = tmp_path / "perturbed.trace.jsonl"
        other.write_text("\n".join(lines) + "\n")
        rc = main(["diff", str(trace), str(other)])
        assert rc == 1
        out = capsys.readouterr().out
        assert f"diverge at line {target + 1}" in out
        assert "deployment" in out

    def test_diff_json_report(self, profiled_run, capsys):
        import json

        trace, _ = profiled_run
        rc = main(["diff", str(trace), str(trace), "--format", "json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["identical"] is True

    def test_diff_missing_file(self, capsys):
        assert main(["diff", "/nonexistent/a", "/nonexistent/b"]) == 2


class TestTraceKindsFlag:
    def test_unknown_kind_is_rejected_with_the_known_list(self, capsys):
        rc = main([
            "trace", "/nonexistent.jsonl", "--follow", "--kinds", "bogus",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown record kind" in err
        assert "decision" in err  # the known kinds are listed

    def test_empty_kinds_is_rejected(self, capsys):
        rc = main([
            "trace", "/nonexistent.jsonl", "--follow", "--kinds", ",",
        ])
        assert rc == 2


class TestAdviseCommand:
    @pytest.fixture
    def trace_path(self, tmp_path):
        from repro.core.result import DeploymentReport, SearchResult, TrialRecord
        from repro.core.scenarios import Scenario
        from repro.core.search_space import Deployment
        from repro.io import save_report

        trials = tuple(
            TrialRecord(
                step=i + 1,
                deployment=Deployment("c5.4xlarge", n),
                measured_speed=speed,
                profile_seconds=600.0, profile_dollars=0.5,
                elapsed_seconds=600.0 * (i + 1),
                spent_dollars=0.5 * (i + 1),
            )
            for i, (n, speed) in enumerate([(1, 20.0), (4, 70.0), (12, 128.0)])
        )
        search = SearchResult(
            strategy="heterbo", scenario=Scenario.fastest(), trials=trials,
            best=Deployment("c5.4xlarge", 12), best_measured_speed=128.0,
            profile_seconds=1800.0, profile_dollars=1.5, stop_reason="t",
        )
        return str(save_report(
            DeploymentReport(search=search), tmp_path / "trace.json"
        ))

    def test_advise_unconstrained(self, trace_path, capsys):
        rc = main(["advise", trace_path, "--samples", "800000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "12x c5.4xlarge" in out

    def test_advise_budget_reranks(self, trace_path, capsys):
        rc = main([
            "advise", trace_path, "--samples", "800000", "--budget", "10",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "12x c5.4xlarge" not in out.splitlines()[1]

    def test_advise_impossible(self, trace_path, capsys):
        rc = main([
            "advise", trace_path, "--samples", "800000",
            "--budget", "0.001",
        ])
        assert rc == 1
        assert "no measured deployment" in capsys.readouterr().out

    def test_advise_suggest(self, trace_path, capsys):
        rc = main([
            "advise", trace_path, "--samples", "800000", "--suggest", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "worth probing next" in out

    def test_advise_both_constraints_rejected(self, trace_path, capsys):
        rc = main([
            "advise", trace_path, "--samples", "800000",
            "--budget", "10", "--deadline-hours", "4",
        ])
        assert rc == 2
