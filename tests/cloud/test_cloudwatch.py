"""MetricStore: time-series recording and summary statistics."""

import math

import pytest

from repro.cloud.cloudwatch import MetricDatum, MetricStore


class TestPut:
    def test_put_returns_datum(self):
        store = MetricStore()
        d = store.put("ns", "speed", 0.0, 42.0)
        assert isinstance(d, MetricDatum)
        assert d.value == 42.0

    def test_series_in_order(self):
        store = MetricStore()
        store.put("ns", "speed", 0.0, 1.0)
        store.put("ns", "speed", 1.0, 2.0)
        assert store.values("ns", "speed") == [1.0, 2.0]

    def test_out_of_order_rejected(self):
        store = MetricStore()
        store.put("ns", "speed", 10.0, 1.0)
        with pytest.raises(ValueError, match="out-of-order"):
            store.put("ns", "speed", 5.0, 2.0)

    def test_equal_timestamps_allowed(self):
        store = MetricStore()
        store.put("ns", "speed", 1.0, 1.0)
        store.put("ns", "speed", 1.0, 2.0)
        assert len(store.series("ns", "speed")) == 2

    def test_non_finite_value_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            MetricStore().put("ns", "speed", 0.0, float("inf"))

    def test_put_many(self):
        store = MetricStore()
        store.put_many("ns", "speed", [0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert store.values("ns", "speed") == [1.0, 2.0, 3.0]

    def test_put_many_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            MetricStore().put_many("ns", "speed", [0.0], [1.0, 2.0])

    def test_namespaces(self):
        store = MetricStore()
        store.put("a", "x", 0.0, 1.0)
        store.put("b", "x", 0.0, 1.0)
        assert store.namespaces() == ["a", "b"]

    def test_metrics_namespaced_independently(self):
        store = MetricStore()
        store.put("a", "speed", 0.0, 1.0)
        store.put("b", "speed", 0.0, 99.0)
        assert store.values("a", "speed") == [1.0]


class TestDimensions:
    def test_datum_carries_dimensions(self):
        store = MetricStore()
        d = store.put(
            "ns", "dollars", 0.0, 1.5,
            dimensions={"instance_type": "p2.xlarge"},
        )
        assert d.dimensions == (("instance_type", "p2.xlarge"),)
        assert d.dimensions_dict() == {"instance_type": "p2.xlarge"}

    def test_dimensions_normalised_sorted(self):
        store = MetricStore()
        d = store.put("ns", "m", 0.0, 1.0, dimensions={"b": "2", "a": "1"})
        assert d.dimensions == (("a", "1"), ("b", "2"))

    def test_default_no_dimensions(self):
        store = MetricStore()
        assert store.put("ns", "m", 0.0, 1.0).dimensions == ()

    def test_series_filters_on_exact_dimensions(self):
        store = MetricStore()
        store.put("ns", "m", 0.0, 1.0, dimensions={"type": "cpu"})
        store.put("ns", "m", 1.0, 2.0, dimensions={"type": "gpu"})
        store.put("ns", "m", 2.0, 3.0)
        assert store.values("ns", "m", dimensions={"type": "cpu"}) == [1.0]
        assert store.values("ns", "m", dimensions={"type": "gpu"}) == [2.0]
        # no filter returns everything
        assert store.values("ns", "m") == [1.0, 2.0, 3.0]

    def test_empty_filter_matches_undimensioned_only(self):
        store = MetricStore()
        store.put("ns", "m", 0.0, 1.0, dimensions={"type": "cpu"})
        store.put("ns", "m", 1.0, 2.0)
        assert store.values("ns", "m", dimensions={}) == [2.0]


class TestListMetrics:
    def test_first_seen_order(self):
        store = MetricStore()
        store.put("ns", "b", 0.0, 1.0)
        store.put("ns", "a", 0.0, 1.0)
        store.put("ns", "b", 1.0, 2.0)
        assert store.list_metrics("ns") == ["b", "a"]

    def test_namespaces_isolated(self):
        store = MetricStore()
        store.put("a", "x", 0.0, 1.0)
        store.put("b", "y", 0.0, 1.0)
        assert store.list_metrics("a") == ["x"]

    def test_unknown_namespace_empty(self):
        assert MetricStore().list_metrics("nope") == []


class TestStatistics:
    def test_basic_stats(self):
        store = MetricStore()
        store.put_many("ns", "m", [0, 1, 2, 3], [2.0, 4.0, 4.0, 6.0])
        stats = store.statistics("ns", "m")
        assert stats.count == 4
        assert stats.mean == pytest.approx(4.0)
        assert stats.minimum == 2.0
        assert stats.maximum == 6.0
        assert stats.stddev == pytest.approx(math.sqrt(2.0))

    def test_cv(self):
        store = MetricStore()
        store.put_many("ns", "m", [0, 1], [10.0, 10.0])
        assert store.statistics("ns", "m").coefficient_of_variation == 0.0

    def test_cv_zero_mean_is_inf(self):
        store = MetricStore()
        store.put_many("ns", "m", [0, 1], [-1.0, 1.0])
        assert math.isinf(
            store.statistics("ns", "m").coefficient_of_variation
        )

    def test_since_window(self):
        store = MetricStore()
        store.put_many("ns", "m", [0, 10, 20], [1.0, 2.0, 3.0])
        stats = store.statistics("ns", "m", since=10.0)
        assert stats.count == 2
        assert stats.mean == pytest.approx(2.5)

    def test_empty_window_raises(self):
        store = MetricStore()
        store.put("ns", "m", 0.0, 1.0)
        with pytest.raises(KeyError, match="no data"):
            store.statistics("ns", "m", since=100.0)

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            MetricStore().statistics("ns", "missing")
