"""InstanceType: validation, pricing arithmetic, family consistency."""

import pytest

from repro.cloud.instance import InstanceFamily, InstanceType


def cpu(name="c5.xlarge", price=0.17, **kw):
    defaults = dict(
        family=InstanceFamily.CPU_COMPUTE, vcpus=4, memory_gib=8.0,
        network_gbps=2.5, hourly_price=price,
    )
    defaults.update(kw)
    return InstanceType(name=name, **defaults)


def gpu(name="p2.xlarge", price=0.9, **kw):
    defaults = dict(
        family=InstanceFamily.GPU_K80, vcpus=4, memory_gib=61.0,
        gpus=1, gpu_memory_gib=12.0, network_gbps=1.25, hourly_price=price,
    )
    defaults.update(kw)
    return InstanceType(name=name, **defaults)


class TestValidation:
    def test_valid_cpu_instance(self):
        assert cpu().name == "c5.xlarge"

    def test_valid_gpu_instance(self):
        assert gpu().gpus == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            cpu(name="")

    def test_zero_vcpus_rejected(self):
        with pytest.raises(ValueError, match="vcpus"):
            cpu(vcpus=0)

    def test_negative_memory_rejected(self):
        with pytest.raises(ValueError, match="memory"):
            cpu(memory_gib=-1.0)

    def test_zero_price_rejected(self):
        with pytest.raises(ValueError, match="price"):
            cpu(price=0.0)

    def test_zero_network_rejected(self):
        with pytest.raises(ValueError, match="network"):
            cpu(network_gbps=0.0)

    def test_gpu_family_without_gpus_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            cpu(family=InstanceFamily.GPU_K80)

    def test_cpu_family_with_gpus_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            gpu(family=InstanceFamily.CPU_COMPUTE)

    def test_gpu_without_gpu_memory_rejected(self):
        with pytest.raises(ValueError, match="gpu_memory"):
            gpu(gpu_memory_gib=0.0)


class TestFamily:
    def test_gpu_families_flagged(self):
        assert InstanceFamily.GPU_K80.is_gpu
        assert InstanceFamily.GPU_V100.is_gpu

    def test_cpu_families_not_flagged(self):
        assert not InstanceFamily.CPU_COMPUTE.is_gpu
        assert not InstanceFamily.CPU_NETWORK.is_gpu

    def test_is_gpu_property_matches_gpus(self):
        assert gpu().is_gpu
        assert not cpu().is_gpu


class TestPricing:
    def test_price_per_second(self):
        assert cpu(price=3.6).price_per_second == pytest.approx(0.001)

    def test_cost_for_one_hour_one_instance(self):
        assert cpu(price=0.17).cost_for(3600.0) == pytest.approx(0.17)

    def test_cost_scales_with_count(self):
        itype = cpu(price=1.0)
        assert itype.cost_for(3600.0, count=10) == pytest.approx(10.0)

    def test_cost_scales_linearly_with_time(self):
        itype = cpu(price=1.0)
        assert itype.cost_for(1800.0) == pytest.approx(
            itype.cost_for(3600.0) / 2
        )

    def test_zero_seconds_costs_nothing(self):
        assert cpu().cost_for(0.0) == 0.0

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError, match="seconds"):
            cpu().cost_for(-1.0)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            cpu().cost_for(60.0, count=0)

    def test_normalized_price(self):
        anchor = cpu(price=0.17)
        assert gpu(price=7.2).normalized_price(anchor) == pytest.approx(
            42.3529, rel=1e-4
        )

    def test_normalized_price_self_is_one(self):
        itype = cpu()
        assert itype.normalized_price(itype) == 1.0
