"""LogicalClock: monotonicity and validation."""

import pytest

from repro.cloud.clock import LogicalClock


class TestConstruction:
    def test_default_start_is_zero(self):
        assert LogicalClock().now == 0.0

    def test_custom_start(self):
        assert LogicalClock(100.0).now == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start"):
            LogicalClock(-1.0)


class TestAdvance:
    def test_advance_moves_forward(self):
        clock = LogicalClock()
        clock.advance(10.0)
        assert clock.now == 10.0

    def test_advance_returns_new_time(self):
        clock = LogicalClock(5.0)
        assert clock.advance(2.5) == 7.5

    def test_advance_accumulates(self):
        clock = LogicalClock()
        for _ in range(10):
            clock.advance(1.5)
        assert clock.now == pytest.approx(15.0)

    def test_zero_advance_allowed(self):
        clock = LogicalClock(3.0)
        clock.advance(0.0)
        assert clock.now == 3.0

    def test_negative_advance_rejected(self):
        clock = LogicalClock()
        with pytest.raises(ValueError, match="advance"):
            clock.advance(-0.1)

    def test_nan_advance_rejected(self):
        clock = LogicalClock()
        with pytest.raises(ValueError):
            clock.advance(float("nan"))


class TestAdvanceTo:
    def test_advance_to_future(self):
        clock = LogicalClock(1.0)
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_advance_to_now_is_noop(self):
        clock = LogicalClock(4.0)
        clock.advance_to(4.0)
        assert clock.now == 4.0

    def test_rewind_rejected(self):
        clock = LogicalClock(10.0)
        with pytest.raises(ValueError, match="rewind"):
            clock.advance_to(9.0)
