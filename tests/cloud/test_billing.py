"""BillingLedger: charge recording, breakdowns, budget arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.cloud.billing import BillingLedger, LedgerEntry


def charge(ledger, dollars, purpose="profiling", **kw):
    defaults = dict(
        timestamp=0.0, instance_type="c5.xlarge", count=1, seconds=600.0
    )
    defaults.update(kw)
    return ledger.charge(dollars=dollars, purpose=purpose, **defaults)


class TestEntryValidation:
    def test_valid_entry(self):
        e = LedgerEntry(
            timestamp=1.0, instance_type="c5.xlarge", count=2,
            seconds=60.0, dollars=0.01, purpose="profiling",
        )
        assert e.count == 2

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            LedgerEntry(
                timestamp=0, instance_type="x", count=0,
                seconds=1, dollars=1, purpose="p",
            )

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError, match="seconds"):
            LedgerEntry(
                timestamp=0, instance_type="x", count=1,
                seconds=-1, dollars=1, purpose="p",
            )

    def test_negative_dollars_rejected(self):
        with pytest.raises(ValueError, match="dollars"):
            LedgerEntry(
                timestamp=0, instance_type="x", count=1,
                seconds=1, dollars=-0.01, purpose="p",
            )


class TestTotals:
    def test_empty_ledger_totals_zero(self):
        assert BillingLedger().total() == 0.0

    def test_total_sums_charges(self):
        ledger = BillingLedger()
        charge(ledger, 1.5)
        charge(ledger, 2.5)
        assert ledger.total() == pytest.approx(4.0)

    def test_total_by_purpose(self):
        ledger = BillingLedger()
        charge(ledger, 1.0, purpose="profiling")
        charge(ledger, 10.0, purpose="training")
        assert ledger.total("profiling") == pytest.approx(1.0)
        assert ledger.total("training") == pytest.approx(10.0)

    def test_total_seconds_by_purpose(self):
        ledger = BillingLedger()
        charge(ledger, 1.0, purpose="profiling", seconds=600)
        charge(ledger, 1.0, purpose="training", seconds=7200)
        assert ledger.total_seconds("training") == pytest.approx(7200)

    def test_breakdown(self):
        ledger = BillingLedger()
        charge(ledger, 1.0, purpose="profiling")
        charge(ledger, 2.0, purpose="profiling")
        charge(ledger, 5.0, purpose="training")
        assert ledger.breakdown() == pytest.approx(
            {"profiling": 3.0, "training": 5.0}
        )

    def test_breakdown_is_sorted_by_purpose(self):
        """Regression: breakdown order must not depend on charge order."""
        ledger = BillingLedger()
        charge(ledger, 5.0, purpose="training")
        charge(ledger, 1.0, purpose="profiling")
        charge(ledger, 2.0, purpose="final-train")
        assert list(ledger.breakdown()) == [
            "final-train", "profiling", "training",
        ]

    def test_breakdown_and_seconds_consistent_with_totals(self):
        ledger = BillingLedger()
        charge(ledger, 1.25, purpose="profiling", seconds=600)
        charge(ledger, 0.75, purpose="profiling", seconds=300)
        charge(ledger, 4.0, purpose="training", seconds=7200)
        assert sum(ledger.breakdown().values()) == pytest.approx(
            ledger.total()
        )
        assert ledger.total_seconds() == pytest.approx(
            ledger.total_seconds("profiling")
            + ledger.total_seconds("training")
        )

    def test_len_and_iter(self):
        ledger = BillingLedger()
        charge(ledger, 1.0)
        charge(ledger, 2.0)
        assert len(ledger) == 2
        assert [e.dollars for e in ledger] == [1.0, 2.0]

    def test_entries_returns_copy(self):
        ledger = BillingLedger()
        charge(ledger, 1.0)
        ledger.entries.clear()
        assert len(ledger) == 1


class TestBudget:
    def test_remaining(self):
        ledger = BillingLedger()
        charge(ledger, 30.0)
        assert ledger.remaining(100.0) == pytest.approx(70.0)

    def test_remaining_can_go_negative(self):
        ledger = BillingLedger()
        charge(ledger, 130.0)
        assert ledger.remaining(100.0) == pytest.approx(-30.0)

    def test_would_exceed_true(self):
        ledger = BillingLedger()
        charge(ledger, 90.0)
        assert ledger.would_exceed(100.0, 11.0)

    def test_would_exceed_false_at_boundary(self):
        ledger = BillingLedger()
        charge(ledger, 90.0)
        assert not ledger.would_exceed(100.0, 10.0)

    def test_would_exceed_negative_additional_rejected(self):
        with pytest.raises(ValueError, match="additional"):
            BillingLedger().would_exceed(100.0, -1.0)


class TestProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=30))
    def test_total_equals_sum(self, amounts):
        ledger = BillingLedger()
        for a in amounts:
            charge(ledger, a)
        assert ledger.total() == pytest.approx(sum(amounts))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e4),
                st.sampled_from(["profiling", "training", "other"]),
            ),
            max_size=30,
        )
    )
    def test_breakdown_partitions_total(self, charges):
        ledger = BillingLedger()
        for dollars, purpose in charges:
            charge(ledger, dollars, purpose=purpose)
        assert sum(ledger.breakdown().values()) == pytest.approx(
            ledger.total()
        )
