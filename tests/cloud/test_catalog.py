"""InstanceCatalog: lookup, subsets, and the paper's price structure."""

import pytest

from repro.cloud.catalog import InstanceCatalog, default_catalog, paper_catalog
from repro.cloud.instance import InstanceFamily


class TestLookup:
    def test_contains(self, catalog):
        assert "c5.xlarge" in catalog
        assert "m5.xlarge" not in catalog

    def test_getitem(self, catalog):
        assert catalog["c5.4xlarge"].vcpus == 16

    def test_get_alias(self, catalog):
        assert catalog.get("p2.xlarge") is catalog["p2.xlarge"]

    def test_unknown_name_lists_known(self, catalog):
        with pytest.raises(KeyError, match="c5.xlarge"):
            catalog["nonexistent.2xlarge"]

    def test_len_matches_names(self, catalog):
        assert len(catalog) == len(catalog.names)

    def test_iteration_order_matches_names(self, catalog):
        assert [t.name for t in catalog] == catalog.names


class TestConstruction:
    def test_duplicate_names_rejected(self, catalog):
        t = catalog["c5.xlarge"]
        with pytest.raises(ValueError, match="duplicate"):
            InstanceCatalog([t, t])

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            InstanceCatalog([])


class TestQueries:
    def test_cheapest_is_c5_xlarge(self, catalog):
        assert catalog.cheapest().name == "c5.xlarge"

    def test_cpu_gpu_partition(self, catalog):
        cpus = catalog.cpu_types()
        gpus = catalog.gpu_types()
        assert len(cpus) + len(gpus) == len(catalog)
        assert all(not t.is_gpu for t in cpus)
        assert all(t.is_gpu for t in gpus)

    def test_families_present(self, catalog):
        fams = catalog.families()
        assert set(fams) == {
            InstanceFamily.CPU_COMPUTE,
            InstanceFamily.CPU_NETWORK,
            InstanceFamily.GPU_K80,
            InstanceFamily.GPU_V100,
        }

    def test_subset_preserves_order(self, catalog):
        sub = catalog.subset(["p2.xlarge", "c5.xlarge"])
        assert sub.names == ["p2.xlarge", "c5.xlarge"]

    def test_subset_unknown_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.subset(["nope.xlarge"])


class TestPaperPrices:
    """Fig. 1(a)'s structure is a calibration contract."""

    def test_p2_8xlarge_is_about_42x(self, catalog):
        norm = catalog.normalized_prices()
        assert norm["p2.8xlarge"] == pytest.approx(42.5, abs=0.5)

    def test_anchor_normalizes_to_one(self, catalog):
        assert catalog.normalized_prices()["c5.xlarge"] == 1.0

    def test_all_ratios_at_least_one(self, catalog):
        assert all(v >= 1.0 for v in catalog.normalized_prices().values())

    def test_within_family_price_scales_with_vcpus(self, catalog):
        """Larger shapes in one family cost proportionally more."""
        c5 = sorted(
            (t for t in catalog if t.name.startswith("c5.")),
            key=lambda t: t.vcpus,
        )
        for small, big in zip(c5, c5[1:]):
            ratio = big.hourly_price / small.hourly_price
            vcpu_ratio = big.vcpus / small.vcpus
            assert ratio == pytest.approx(vcpu_ratio, rel=0.15)

    def test_paper_testbed_families_present(self, catalog):
        for prefix in ("c4.", "c5.", "c5n.", "p2.", "p3."):
            assert any(t.name.startswith(prefix) for t in catalog)

    def test_default_catalog_is_paper_catalog(self):
        assert default_catalog().names == paper_catalog().names
