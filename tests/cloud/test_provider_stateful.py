"""Stateful property test: cloud-provider lifecycle invariants.

Hypothesis drives random interleavings of launch / ready / run /
terminate and checks the accounting invariants that every higher layer
relies on: capacity never goes negative, the ledger equals the sum of
terminated cluster costs, and the clock never runs backwards.
"""

import hypothesis.strategies as st
import pytest
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.cloud.catalog import paper_catalog
from repro.cloud.cluster import ClusterState
from repro.cloud.provider import AccountLimits, SimulatedCloud

CATALOG = paper_catalog().subset(["c5.xlarge", "c5.4xlarge", "p2.xlarge"])


class CloudLifecycle(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cloud = SimulatedCloud(
            CATALOG,
            limits=AccountLimits(max_cpu_instances=20, max_gpu_instances=8),
        )
        self.pending = []
        self.running = []
        self.paid = 0.0

    @rule(
        name=st.sampled_from(CATALOG.names),
        count=st.integers(min_value=1, max_value=6),
    )
    def launch(self, name, count):
        if count <= self.cloud.available_capacity(name):
            self.pending.append(self.cloud.launch(name, count))
        else:
            with pytest.raises(RuntimeError):
                self.cloud.launch(name, count)

    @precondition(lambda self: self.pending)
    @rule()
    def make_ready(self):
        cluster = self.pending.pop(0)
        self.cloud.wait_until_ready(cluster)
        self.running.append(cluster)

    @precondition(lambda self: self.running)
    @rule(seconds=st.floats(min_value=0.0, max_value=5000.0))
    def run(self, seconds):
        self.cloud.run_for(self.running[0], seconds)

    @precondition(lambda self: self.running)
    @rule(purpose=st.sampled_from(["profiling", "training"]))
    def terminate(self, purpose):
        cluster = self.running.pop(0)
        self.paid += self.cloud.terminate(cluster, purpose=purpose)

    @invariant()
    def capacity_never_negative(self):
        for name in CATALOG.names:
            assert self.cloud.available_capacity(name) >= 0

    @invariant()
    def ledger_matches_terminated_costs(self):
        assert self.cloud.total_spend() == pytest.approx(self.paid)

    @invariant()
    def active_set_consistent(self):
        active = self.cloud.active_clusters()
        assert all(
            c.state is not ClusterState.TERMINATED for c in active
        )
        # Cluster is a mutable dataclass (unhashable); compare by id
        assert {c.cluster_id for c in self.pending + self.running} == {
            c.cluster_id for c in active
        }

    @invariant()
    def purposes_partition_total(self):
        ledger = self.cloud.ledger
        assert ledger.total("profiling") + ledger.total(
            "training"
        ) == pytest.approx(ledger.total())


TestCloudLifecycle = CloudLifecycle.TestCase
