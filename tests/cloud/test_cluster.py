"""Cluster lifecycle: state machine, billing windows, validation."""

import pytest

from repro.cloud.catalog import paper_catalog
from repro.cloud.cluster import Cluster, ClusterState


@pytest.fixture
def itype():
    return paper_catalog()["c5.xlarge"]


def make(itype, count=2, launched_at=100.0, setup=120.0):
    return Cluster(
        instance_type=itype, count=count,
        launched_at=launched_at, setup_seconds=setup,
    )


class TestValidation:
    def test_zero_count_rejected(self, itype):
        with pytest.raises(ValueError, match="count"):
            make(itype, count=0)

    def test_negative_setup_rejected(self, itype):
        with pytest.raises(ValueError, match="setup"):
            make(itype, setup=-1.0)

    def test_unique_ids(self, itype):
        a, b = make(itype), make(itype)
        assert a.cluster_id != b.cluster_id


class TestLifecycle:
    def test_starts_pending(self, itype):
        assert make(itype).state is ClusterState.PENDING

    def test_ready_at(self, itype):
        assert make(itype, launched_at=100.0, setup=120.0).ready_at == 220.0

    def test_mark_running_after_setup(self, itype):
        c = make(itype)
        c.mark_running(220.0)
        assert c.state is ClusterState.RUNNING

    def test_mark_running_too_early_rejected(self, itype):
        c = make(itype)
        with pytest.raises(RuntimeError, match="not ready"):
            c.mark_running(150.0)

    def test_terminate_returns_billable_seconds(self, itype):
        c = make(itype, launched_at=100.0)
        assert c.terminate(700.0) == pytest.approx(600.0)
        assert c.state is ClusterState.TERMINATED

    def test_double_terminate_rejected(self, itype):
        c = make(itype)
        c.terminate(700.0)
        with pytest.raises(RuntimeError, match="twice"):
            c.terminate(800.0)

    def test_terminate_before_launch_rejected(self, itype):
        c = make(itype, launched_at=100.0)
        with pytest.raises(ValueError, match="precedes"):
            c.terminate(50.0)

    def test_mark_running_after_terminate_rejected(self, itype):
        c = make(itype)
        c.terminate(700.0)
        with pytest.raises(RuntimeError, match="terminated"):
            c.mark_running(800.0)


class TestBilling:
    def test_billable_seconds_requires_termination(self, itype):
        c = make(itype)
        with pytest.raises(RuntimeError, match="still running"):
            _ = c.billable_seconds

    def test_setup_time_is_billed(self, itype):
        """Billing runs from launch, not from RUNNING — setup costs
        money on a real cloud."""
        c = make(itype, launched_at=0.0, setup=120.0)
        c.mark_running(120.0)
        c.terminate(120.0)
        assert c.billable_seconds == pytest.approx(120.0)

    def test_cost_uses_count_and_price(self, itype):
        c = make(itype, count=10, launched_at=0.0)
        c.terminate(3600.0)
        assert c.cost() == pytest.approx(itype.hourly_price * 10)
