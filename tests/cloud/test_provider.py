"""SimulatedCloud: launch/run/terminate flows, limits, billing ties."""

import pytest

from repro.cloud.catalog import paper_catalog
from repro.cloud.cluster import ClusterState
from repro.cloud.provider import AccountLimits, SimulatedCloud


@pytest.fixture
def provider():
    return SimulatedCloud(paper_catalog())


class TestLaunch:
    def test_launch_creates_pending_cluster(self, provider):
        c = provider.launch("c5.xlarge", 4)
        assert c.state is ClusterState.PENDING
        assert c.count == 4

    def test_launch_unknown_type_raises(self, provider):
        with pytest.raises(KeyError):
            provider.launch("z9.mega", 1)

    def test_launch_zero_count_rejected(self, provider):
        with pytest.raises(ValueError, match="count"):
            provider.launch("c5.xlarge", 0)

    def test_wait_until_ready_advances_clock(self, provider):
        c = provider.launch("c5.xlarge", 1)
        provider.wait_until_ready(c)
        assert provider.clock.now == pytest.approx(c.setup_seconds)
        assert c.state is ClusterState.RUNNING

    def test_negative_setup_rejected(self):
        with pytest.raises(ValueError, match="setup"):
            SimulatedCloud(paper_catalog(), setup_seconds=-1.0)


class TestLimits:
    def test_cpu_limit_enforced(self):
        provider = SimulatedCloud(
            paper_catalog(), limits=AccountLimits(max_cpu_instances=10)
        )
        provider.launch("c5.xlarge", 8)
        with pytest.raises(RuntimeError, match="limit"):
            provider.launch("c5.xlarge", 3)

    def test_gpu_limit_independent_of_cpu(self):
        provider = SimulatedCloud(
            paper_catalog(),
            limits=AccountLimits(max_cpu_instances=1, max_gpu_instances=5),
        )
        provider.launch("c5.xlarge", 1)
        provider.launch("p2.xlarge", 5)  # must not raise

    def test_capacity_frees_on_terminate(self):
        provider = SimulatedCloud(
            paper_catalog(), limits=AccountLimits(max_cpu_instances=10)
        )
        c = provider.launch("c5.xlarge", 10)
        assert provider.available_capacity("c5.xlarge") == 0
        provider.wait_until_ready(c)
        provider.terminate(c, purpose="profiling")
        assert provider.available_capacity("c5.xlarge") == 10

    def test_paper_limits_default(self, provider):
        assert provider.available_capacity("c5.xlarge") == 100
        assert provider.available_capacity("p3.16xlarge") == 50


class TestRunAndBill:
    def test_run_requires_running_state(self, provider):
        c = provider.launch("c5.xlarge", 1)
        with pytest.raises(RuntimeError, match="pending"):
            provider.run_for(c, 60.0)

    def test_terminate_charges_ledger(self, provider):
        c = provider.launch("c5.xlarge", 2)
        provider.wait_until_ready(c)
        provider.run_for(c, 3600.0 - c.setup_seconds)
        dollars = provider.terminate(c, purpose="profiling")
        # 2 instances for exactly one billed hour (incl. setup)
        assert dollars == pytest.approx(0.17 * 2)
        assert provider.total_spend("profiling") == pytest.approx(dollars)

    def test_purpose_tags_separate(self, provider):
        a = provider.launch("c5.xlarge", 1)
        provider.wait_until_ready(a)
        provider.run_for(a, 100.0)
        provider.terminate(a, purpose="profiling")
        b = provider.launch("c5.xlarge", 1)
        provider.wait_until_ready(b)
        provider.run_for(b, 100.0)
        provider.terminate(b, purpose="training")
        assert provider.total_spend("profiling") > 0
        assert provider.total_spend("training") > 0
        assert provider.total_spend() == pytest.approx(
            provider.total_spend("profiling")
            + provider.total_spend("training")
        )

    def test_elapsed_tracks_clock(self, provider):
        c = provider.launch("c5.xlarge", 1)
        provider.wait_until_ready(c)
        provider.run_for(c, 500.0)
        assert provider.elapsed() == pytest.approx(
            c.setup_seconds + 500.0
        )

    def test_active_clusters_tracking(self, provider):
        c = provider.launch("c5.xlarge", 1)
        assert c in provider.active_clusters()
        provider.wait_until_ready(c)
        provider.terminate(c, purpose="x")
        assert c not in provider.active_clusters()
