"""SpotMarket: price process determinism, bid semantics, billing."""

import pytest

from repro.cloud.catalog import paper_catalog
from repro.cloud.spot import SpotMarket


@pytest.fixture
def market():
    return SpotMarket(paper_catalog(), seed=1)


class TestValidation:
    def test_bad_tick_rejected(self):
        with pytest.raises(ValueError, match="tick_seconds"):
            SpotMarket(paper_catalog(), tick_seconds=0.0)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError, match="floor"):
            SpotMarket(paper_catalog(), floor=0.5, mean=0.4)

    def test_bad_phi_rejected(self):
        with pytest.raises(ValueError, match="phi"):
            SpotMarket(paper_catalog(), phi=1.0)

    def test_unknown_type_rejected(self, market):
        with pytest.raises(KeyError):
            market.price_factor("m5.mega", 0.0)

    def test_negative_time_rejected(self, market):
        with pytest.raises(ValueError, match="time"):
            market.price_factor("c5.xlarge", -1.0)


class TestPriceProcess:
    def test_factors_within_bounds(self, market):
        for t in range(0, 200_000, 3000):
            f = market.price_factor("c5.xlarge", float(t))
            assert market.floor <= f <= market.ceiling

    def test_deterministic_across_instances(self):
        a = SpotMarket(paper_catalog(), seed=7)
        b = SpotMarket(paper_catalog(), seed=7)
        times = [0.0, 5000.0, 90000.0]
        assert [a.price_factor("p2.xlarge", t) for t in times] == [
            b.price_factor("p2.xlarge", t) for t in times
        ]

    def test_seeds_and_types_decorrelate(self, market):
        other_seed = SpotMarket(paper_catalog(), seed=2)
        t = 50_000.0
        assert market.price_factor("c5.xlarge", t) != pytest.approx(
            other_seed.price_factor("c5.xlarge", t)
        )
        assert market.price_factor("c5.xlarge", t) != pytest.approx(
            market.price_factor("p2.xlarge", t)
        )

    def test_constant_within_tick(self, market):
        assert market.price_factor("c5.xlarge", 10.0) == market.price_factor(
            "c5.xlarge", 290.0
        )

    def test_price_per_hour_scales_on_demand(self, market):
        t = 1234.0
        expected = (
            paper_catalog()["p2.xlarge"].hourly_price
            * market.price_factor("p2.xlarge", t)
        )
        assert market.price_per_hour("p2.xlarge", t) == pytest.approx(expected)

    def test_long_run_mean_near_target(self, market):
        factors = [
            market.price_factor("c5.4xlarge", t * 300.0)
            for t in range(5000)
        ]
        mean = sum(factors) / len(factors)
        assert mean == pytest.approx(market.mean, abs=0.1)


class TestBidSemantics:
    def test_high_bid_never_revoked(self, market):
        assert market.next_revocation(
            "c5.xlarge", 0.0, 1.5, horizon_seconds=1e6
        ) is None

    def test_low_bid_revoked_eventually(self, market):
        t = market.next_revocation(
            "c5.xlarge", 0.0, market.floor + 0.01, horizon_seconds=1e7
        )
        assert t is not None and t > 0.0

    def test_availability_immediate_for_generous_bid(self, market):
        assert market.next_availability(
            "c5.xlarge", 1000.0, 1.0, horizon_seconds=1e6
        ) == pytest.approx(1000.0)

    def test_availability_none_below_floor(self, market):
        assert market.next_availability(
            "c5.xlarge", 0.0, market.floor / 2, horizon_seconds=1e6
        ) is None

    def test_revocation_respects_bid_ordering(self, market):
        """A higher bid is revoked no earlier than a lower one."""
        lo = market.next_revocation(
            "p2.xlarge", 0.0, 0.35, horizon_seconds=1e7
        )
        hi = market.next_revocation(
            "p2.xlarge", 0.0, 0.55, horizon_seconds=1e7
        )
        if lo is not None and hi is not None:
            assert hi >= lo

    def test_bad_bid_rejected(self, market):
        with pytest.raises(ValueError, match="bid_factor"):
            market.next_revocation("c5.xlarge", 0.0, 0.0,
                                   horizon_seconds=1e6)


class TestBilling:
    def test_mean_factor_within_bounds(self, market):
        f = market.mean_factor("c5.xlarge", 100.0, 90_000.0)
        assert market.floor <= f <= market.ceiling

    def test_mean_factor_single_tick(self, market):
        f = market.mean_factor("c5.xlarge", 10.0, 200.0)
        assert f == pytest.approx(market.price_factor("c5.xlarge", 10.0))

    def test_mean_factor_reversed_interval_rejected(self, market):
        with pytest.raises(ValueError, match="precedes"):
            market.mean_factor("c5.xlarge", 100.0, 50.0)
