"""Extension experiments at reduced size: ablation, acquisitions,
robustness (full-size runs live in benchmarks/)."""

import pytest

from repro.experiments.ablation import ablation_prior_study, ablation_study
from repro.experiments.acquisitions import acquisition_comparison
from repro.experiments.robustness import noise_robustness_study


class TestAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_study(n_seeds=2)

    def test_heterbo_never_violates(self, result):
        assert result.violation_rate("heterbo") == 0.0

    def test_protective_stop_is_the_guarantee(self, result):
        assert result.violation_rate("no-protective-stop") > 0.0

    def test_cost_awareness_cuts_profiling_spend(self, result):
        assert (
            result.mean_profile_dollars("heterbo")
            < result.mean_profile_dollars("no-cost-awareness")
        )

    def test_convbo_reference_worst(self, result):
        assert (
            result.mean_profile_dollars("convbo")
            > result.mean_profile_dollars("heterbo")
        )
        assert result.violation_rate("convbo") == 1.0

    def test_render_lists_all_variants(self, result):
        text = result.render()
        for v in result.reports:
            assert v in text


class TestPriorAblation:
    def test_prior_saves_profiling_money(self):
        result = ablation_prior_study(n_seeds=2)
        assert (
            result.mean_profile_dollars("heterbo")
            < result.mean_profile_dollars("no-concave-prior")
        )

    def test_unconstrained_renders(self):
        result = ablation_prior_study(n_seeds=1)
        assert "unconstrained" in result.render()


class TestAcquisitionComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return acquisition_comparison(n_seeds=2)

    def test_all_variants_comply(self, result):
        for acq in ("ei", "poi", "ucb"):
            assert result.violation_rate(acq) == 0.0

    def test_render_mentions_all(self, result):
        text = result.render()
        for acq in ("ei", "poi", "ucb"):
            assert acq in text


class TestRobustness:
    @pytest.fixture(scope="class")
    def result(self):
        return noise_robustness_study(
            sigmas=(0.02, 0.10), n_seeds=2
        )

    def test_compliance_across_noise(self, result):
        for sigma in result.sigmas:
            assert result.violation_rate(sigma) == 0.0

    def test_regret_at_least_one(self, result):
        for sigma in result.sigmas:
            assert result.mean_regret(sigma) >= 0.95

    def test_render(self, result):
        assert "noise sigma" in result.render()
