"""Figure experiments: each reproduces the paper's qualitative shape.

The cheap figures run at default parameters; the heavier ones run at
reduced sizes — the benchmarks run them at full size.
"""

import pytest

from repro.experiments.motivation import (
    fig1a_normalized_prices,
    fig1b_equal_cost_deployments,
    fig3_scaling_curves,
    fig5_convbo_step_gains,
)
from repro.experiments.scenarios_exp import (
    fig9_scenario1,
    fig10_scenario2,
    fig11_scenario3,
)
from repro.experiments.traces import fig15_charrnn_trace


class TestFig1a:
    def test_p2_8xlarge_ratio(self):
        result = fig1a_normalized_prices()
        assert result.max_ratio > 42.0
        assert result.normalized["c5.xlarge"] == 1.0

    def test_render_lists_all_types(self):
        result = fig1a_normalized_prices()
        assert result.render().count("\n") >= len(result.normalized)


class TestFig1b:
    def test_mid_cpu_wins(self):
        result = fig1b_equal_cost_deployments()
        assert result.best == "10x c5.4xlarge"

    def test_spread_substantial(self):
        assert fig1b_equal_cost_deployments().worst_to_best_ratio > 2.0

    def test_hourly_costs_comparable(self):
        result = fig1b_equal_cost_deployments()
        costs = list(result.hourly_cost.values())
        assert max(costs) / min(costs) < 1.3


class TestFig3:
    def test_scale_out_concave_with_interior_peak(self):
        result = fig3_scaling_curves()
        counts = sorted(result.scale_out)
        assert counts[0] < result.scale_out_peak < counts[-1]

    def test_scale_up_nonlinear(self):
        result = fig3_scaling_curves()
        speeds = list(result.scale_up.values())
        assert speeds != sorted(speeds)


class TestFig5:
    def test_most_steps_unprofitable(self):
        result = fig5_convbo_step_gains(epochs=20.0)
        assert result.n_negative_cost_steps >= len(result.steps) // 2

    def test_series_aligned(self):
        result = fig5_convbo_step_gains(epochs=20.0)
        assert len(result.steps) == len(result.cost_saving_dollars)
        assert len(result.steps) == len(result.speedup_hours)


class TestScenarioFigures:
    def test_fig9_both_meet_unconstrained(self):
        result = fig9_scenario1(epochs=10.0)
        assert result.heterbo.constraint_met
        assert result.convbo.constraint_met
        assert result.heterbo.trained and result.convbo.trained

    def test_fig10_heterbo_meets_deadline_convbo_does_not(self):
        result = fig10_scenario2()
        assert result.heterbo.constraint_met
        assert not result.convbo.constraint_met

    def test_fig11_heterbo_meets_budget_convbo_does_not(self):
        result = fig11_scenario3()
        assert result.heterbo.constraint_met
        assert not result.convbo.constraint_met

    def test_fig11_profiling_fraction_small(self):
        """The paper reports HeterBO using ~21% of ConvBO's profiling
        spend under a budget; we require < 50%."""
        assert fig11_scenario3().profiling_cost_fraction < 0.5


class TestFig15:
    def test_initial_probes_single_node(self):
        result = fig15_charrnn_trace()
        assert result.initial_steps_are_single_node

    def test_budget_respected(self):
        result = fig15_charrnn_trace()
        assert result.report.constraint_met
        assert result.report.total_dollars <= result.budget_dollars

    def test_every_type_probed(self):
        result = fig15_charrnn_trace()
        per_type = result.steps_per_type
        assert all(per_type[t] for t in result.instance_types)

    def test_render_has_one_section_per_type(self):
        result = fig15_charrnn_trace()
        text = result.render()
        for t in result.instance_types:
            assert f"[{t}]" in text
