"""Experiment result dataclasses: metric helpers on synthetic reports."""

import pytest

from repro.core.result import DeploymentReport, SearchResult
from repro.core.scenarios import Scenario
from repro.core.search_space import Deployment
from repro.experiments.comparisons import Fig12Result, MethodBars
from repro.experiments.scalability import Fig19Result
from repro.experiments.sensitivity import Fig18Result


def make_report(
    *, profile_seconds=3600.0, profile_dollars=10.0,
    train_seconds=7200.0, train_dollars=50.0,
    scenario=None, strategy="x",
):
    search = SearchResult(
        strategy=strategy,
        scenario=scenario or Scenario.fastest(),
        trials=(),
        best=Deployment("c5.xlarge", 2),
        best_measured_speed=10.0,
        profile_seconds=profile_seconds,
        profile_dollars=profile_dollars,
        stop_reason="t",
    )
    return DeploymentReport(
        search=search, train_seconds=train_seconds,
        train_dollars=train_dollars, trained=True,
    )


class TestFig18Result:
    @pytest.fixture
    def result(self):
        budgets = (100.0, 200.0)
        reports = {}
        for b in budgets:
            reports[(b, "convbo")] = make_report(train_seconds=36000.0)
            reports[(b, "bo_imprd")] = make_report(train_seconds=18000.0)
            reports[(b, "cherrypick")] = make_report(train_seconds=14400.0)
            reports[(b, "cp_imprd")] = make_report(train_seconds=14400.0)
            reports[(b, "heterbo")] = make_report(train_seconds=7200.0)
        return Fig18Result(
            budgets=budgets, reports=reports,
            opt={b: (3600.0, 20.0) for b in budgets},
        )

    def test_total_hours(self, result):
        assert result.total_hours(100.0, "heterbo") == pytest.approx(3.0)

    def test_speedup_vs(self, result):
        # convbo total 11 h vs heterbo total 3 h
        assert result.speedup_vs("convbo", 100.0) == pytest.approx(11 / 3)

    def test_max_speedups(self, result):
        assert result.max_speedup_vs_convbo == pytest.approx(11 / 3)
        assert result.max_speedup_vs_cherrypick == pytest.approx(5 / 3)

    def test_render_has_both_tables(self, result):
        text = result.render()
        assert "(a) total cost" in text
        assert "(b) total time" in text


class TestFig19Result:
    @pytest.fixture
    def result(self):
        fast = make_report(train_seconds=3600.0, train_dollars=10.0,
                           profile_dollars=5.0)
        slow = make_report(train_seconds=7200.0, train_dollars=40.0,
                           profile_dollars=20.0)
        # use a real zoo name: render() maps model -> parameter count
        return Fig19Result(
            models=("bert",),
            heterbo={"bert": (fast, fast)},
            convbo={"bert": (slow, slow)},
        )

    def test_speedup(self, result):
        # totals: fast 3600+3600=7200s, slow 3600+7200=10800s
        assert result.speedup("bert") == pytest.approx(10800.0 / 7200.0)

    def test_cost_saving(self, result):
        assert result.cost_saving("bert") == pytest.approx(1 - 15.0 / 60.0)

    def test_render_mentions_model(self, result):
        assert "bert" in result.render()
        assert "340M" in result.render()


class TestMethodBars:
    @pytest.fixture
    def bars(self):
        scenario = Scenario.fastest_within(100.0)
        return MethodBars(
            scenario=scenario,
            reports={
                "a": make_report(scenario=scenario, strategy="a"),
                "b": make_report(scenario=scenario, strategy="b",
                                 train_dollars=200.0),
            },
            opt_deployment=Deployment("c5.xlarge", 4),
            opt_seconds=1800.0,
            opt_dollars=15.0,
        )

    def test_totals(self, bars):
        assert bars.total_hours("a") == pytest.approx(3.0)
        assert bars.total_dollars("b") == pytest.approx(210.0)

    def test_render_includes_opt_row(self, bars):
        assert "opt" in bars.render()
        assert "4x c5.xlarge" in bars.render()

    def test_render_flags_violations(self, bars):
        # method b: $210 total > $100 budget
        assert "NO" in bars.render()


class TestFig12Result:
    def test_render_and_fields(self):
        result = Fig12Result(
            probe_counts=[1, 4],
            whiskers={
                1: (9.0, 9.5, 10.0, 11.0, 20.0),
                4: (10.0, 10.2, 10.4, 10.6, 11.0),
            },
            heterbo_mean_hours=10.8,
        )
        text = result.render()
        assert "HeterBO mean: 10.80 h" in text
        assert "20.00" in text
