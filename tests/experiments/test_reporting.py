"""Reporting helpers."""

import pytest

from repro.experiments.reporting import (
    format_dollars,
    format_hours,
    format_rate,
    format_table,
    ratio,
)


class TestFormatters:
    def test_hours(self):
        assert format_hours(5400.0) == "1.50 h"

    def test_dollars(self):
        assert format_dollars(3.14159) == "$3.14"

    def test_rate(self):
        assert format_rate(433.17) == "433.2 samples/s"

    def test_ratio(self):
        assert ratio(10.0, 4.0) == pytest.approx(2.5)

    def test_ratio_zero_denominator_rejected(self):
        with pytest.raises(ValueError, match="denominator"):
            ratio(1.0, 0.0)

    def test_ratio_error_names_both_operands(self):
        with pytest.raises(ValueError, match=r"3\.5.*0\.0"):
            ratio(3.5, 0.0)

    def test_ratio_negative_denominator_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ratio(1.0, -2.0)


class TestTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [["x", "y"], ["long", "z"]])
        lines = out.splitlines()
        assert len(lines) == 4
        # all rows align on the same column start
        assert lines[0].index("bbb") == lines[2].index("y")

    def test_empty_rows_ok(self):
        out = format_table(["col"], [])
        assert "col" in out

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError, match="headers"):
            format_table([], [])

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only-one"]])

    def test_non_string_cells_stringified(self):
        out = format_table(["n"], [[42], [3.5]])
        assert "42" in out and "3.5" in out
