"""Experiment runner: world construction and strategy execution."""

import pytest

from repro.baselines.convbo import ConvBO
from repro.core.heterbo import HeterBO
from repro.core.scenarios import Scenario
from repro.experiments.runner import (
    ExperimentConfig,
    run_oracle,
    run_strategy,
)


@pytest.fixture
def config():
    return ExperimentConfig(
        model="char-rnn",
        dataset="char-corpus",
        epochs=2.0,
        seed=4,
        instance_types=("c5.xlarge", "c5.4xlarge"),
        max_count=16,
    )


class TestConfig:
    def test_catalog_subset(self, config):
        assert config.catalog().names == ["c5.xlarge", "c5.4xlarge"]

    def test_full_catalog_when_unset(self):
        cfg = ExperimentConfig(model="resnet", dataset="cifar10")
        assert len(cfg.catalog()) == 20

    def test_job_resolution(self, config):
        job = config.job()
        assert job.model.name == "char-rnn"
        assert job.epochs == 2.0

    def test_with_seed(self, config):
        assert config.with_seed(9).seed == 9
        assert config.seed == 4  # original untouched

    def test_space_dimensions(self, config):
        assert len(config.space()) == 2 * 16


class TestRunStrategy:
    def test_fresh_world_per_run(self, config):
        """Two runs of the same strategy see identical worlds."""
        a = run_strategy(HeterBO(seed=4), Scenario.fastest(), config)
        b = run_strategy(HeterBO(seed=4), Scenario.fastest(), config)
        assert a.report.total_seconds == b.report.total_seconds
        assert a.report.search.best == b.report.search.best

    def test_same_noise_across_strategies(self, config):
        """Different strategies face the same noisy measurements for
        the same deployment."""
        a = run_strategy(HeterBO(seed=4), Scenario.fastest(), config)
        b = run_strategy(ConvBO(seed=4), Scenario.fastest(), config)
        speeds_a = {
            t.deployment: t.measured_speed for t in a.report.search.trials
        }
        speeds_b = {
            t.deployment: t.measured_speed for t in b.report.search.trials
        }
        shared = set(speeds_a) & set(speeds_b)
        assert shared  # designs overlap somewhere
        for d in shared:
            assert speeds_a[d] == pytest.approx(speeds_b[d])

    def test_train_false_skips_training(self, config):
        run = run_strategy(
            HeterBO(seed=4), Scenario.fastest(), config, train=False
        )
        assert not run.report.trained
        assert run.report.train_seconds == 0.0


class TestRunOracle:
    def test_oracle_totals_consistent(self, config):
        d, speed, seconds, dollars = run_oracle(Scenario.fastest(), config)
        assert seconds == pytest.approx(config.job().total_samples / speed)
        assert dollars == pytest.approx(
            seconds * config.space().hourly_price(d) / 3600.0
        )

    def test_oracle_at_least_as_good_as_any_strategy(self, config):
        _, _, opt_seconds, _ = run_oracle(Scenario.fastest(), config)
        run = run_strategy(HeterBO(seed=4), Scenario.fastest(), config)
        assert run.report.train_seconds >= opt_seconds * 0.95
