"""Extension-study result dataclasses on synthetic inputs."""

import pytest

from repro.core.result import DeploymentReport, SearchResult
from repro.core.scenarios import Scenario
from repro.core.search_space import Deployment
from repro.experiments.parallelism import ParallelismResult
from repro.experiments.robustness import RobustnessResult
from repro.experiments.warmstart import WarmStartResult
from repro.experiments.window_study import WindowStudyResult
from repro.mlcd.spot import SpotOutcome


def make_report(*, profile_seconds=3600.0, profile_dollars=10.0,
                train_seconds=7200.0, train_dollars=50.0,
                trained=True, scenario=None, n_steps=0):
    from repro.core.result import TrialRecord

    trials = tuple(
        TrialRecord(
            step=i + 1, deployment=Deployment("c5.xlarge", 1),
            measured_speed=10.0, profile_seconds=600.0,
            profile_dollars=1.0, elapsed_seconds=600.0 * (i + 1),
            spent_dollars=1.0 * (i + 1),
        )
        for i in range(n_steps)
    )
    search = SearchResult(
        strategy="x", scenario=scenario or Scenario.fastest(),
        trials=trials, best=Deployment("c5.xlarge", 1),
        best_measured_speed=10.0, profile_seconds=profile_seconds,
        profile_dollars=profile_dollars, stop_reason="t",
    )
    return DeploymentReport(
        search=search, train_seconds=train_seconds,
        train_dollars=train_dollars, trained=trained,
    )


class TestParallelismResult:
    def test_metrics_and_render(self):
        fast = make_report(profile_seconds=1800.0)
        slow = make_report(profile_seconds=7200.0)
        result = ParallelismResult(
            deadline_hours=12.0,
            reports={1: (slow, slow), 4: (fast, fast)},
        )
        assert result.mean_profile_hours(1) == pytest.approx(2.0)
        assert result.mean_profile_hours(4) == pytest.approx(0.5)
        text = result.render()
        assert "sequential" in text and "batch=4" in text


class TestRobustnessResult:
    def test_regret_and_violations(self):
        good = make_report(train_seconds=3600.0)
        bad = make_report(train_seconds=7200.0, trained=False,
                          scenario=Scenario.fastest_within(1.0))
        result = RobustnessResult(
            budget=100.0,
            sigmas=(0.01, 0.10),
            reports={0.01: (good, good), 0.10: (good, bad)},
            oracle_seconds=3600.0,
        )
        assert result.mean_regret(0.01) == pytest.approx(1.0)
        assert result.violation_rate(0.10) == pytest.approx(0.5)
        assert "noise sigma" in result.render()


class TestWarmStartResult:
    def test_means(self):
        cold = make_report(profile_dollars=20.0, n_steps=10)
        warm = make_report(profile_dollars=8.0, n_steps=4)
        result = WarmStartResult(cold=(cold,), warm=(warm,))
        assert result.mean_profile_steps("cold") == 10
        assert result.mean_profile_steps("warm") == 4
        assert result.mean_profile_dollars("warm") == pytest.approx(8.0)
        assert "cold" in result.render()


class TestWindowStudyResult:
    def test_metrics(self):
        short = make_report(profile_dollars=5.0, train_seconds=3600.0)
        long = make_report(profile_dollars=40.0, train_seconds=3700.0)
        result = WindowStudyResult(
            budget=100.0,
            reports={4.0: (short,), 20.0: (long,)},
        )
        assert result.mean_profile_dollars(4.0) == pytest.approx(5.0)
        assert result.violation_rate(20.0) == 0.0
        assert "4 min" in result.render()


class TestSpotOutcome:
    def test_derived_metrics(self):
        o = SpotOutcome(
            seconds=7200.0, dollars=20.0, revocations=2,
            wasted_seconds=600.0, on_demand_seconds=3600.0,
            on_demand_dollars=80.0,
        )
        assert o.cost_saving == pytest.approx(0.75)
        assert o.time_inflation == pytest.approx(2.0)
