"""Spot training executor: checkpointed training on revocable instances.

Runs a chosen deployment's training on the spot market instead of
on-demand capacity: the cluster executes while the spot price stays at
or below the bid, checkpoints periodically, loses since-last-checkpoint
progress on revocation, pays a restart overhead, and waits out price
spikes.  This quantifies the Proteus-style trade-off the paper's
related work points at: large dollar savings for longer, jittery
wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.catalog import InstanceCatalog
from repro.cloud.spot import SpotMarket
from repro.core.search_space import Deployment
from repro.obs.fleet import NOOP_FLEET, FleetLog
from repro.sim.throughput import TrainingJob, TrainingSimulator

__all__ = ["SpotOutcome", "SpotTrainingExecutor"]


@dataclass(frozen=True, slots=True)
class SpotOutcome:
    """Result of one spot training run."""

    seconds: float
    dollars: float
    revocations: int
    wasted_seconds: float  # lost progress + restart overheads
    on_demand_seconds: float
    on_demand_dollars: float

    @property
    def cost_saving(self) -> float:
        """Fraction of the on-demand bill saved."""
        return 1.0 - self.dollars / self.on_demand_dollars

    @property
    def time_inflation(self) -> float:
        """Wall-clock ratio vs uninterrupted on-demand training."""
        return self.seconds / self.on_demand_seconds


class SpotTrainingExecutor:
    """Simulates checkpointed training against a spot market.

    Parameters
    ----------
    market:
        The spot price process.
    simulator:
        Ground-truth performance oracle (spot instances are the same
        hardware; only pricing and availability differ).
    catalog:
        Instance catalog (for on-demand reference pricing).
    checkpoint_seconds:
        Checkpoint cadence; on revocation, progress since the last
        checkpoint is lost.
    restart_seconds:
        Cluster re-acquisition + model reload time after a revocation.
    max_revocations:
        Safety bound; exceeding it raises (a bid far below the price
        floor would otherwise never finish).
    fleet:
        Fleet-telemetry sink; the default ``NOOP_FLEET`` records
        nothing.  Spot segments bill outside the on-demand ledger, so
        their closing events carry ``ledger_index=None`` and are
        excluded from ledger reconciliation.
    """

    def __init__(
        self,
        market: SpotMarket,
        simulator: TrainingSimulator,
        catalog: InstanceCatalog,
        *,
        checkpoint_seconds: float = 600.0,
        restart_seconds: float = 180.0,
        max_revocations: int = 1000,
        fleet: FleetLog = NOOP_FLEET,
    ) -> None:
        if checkpoint_seconds <= 0:
            raise ValueError(
                f"checkpoint_seconds must be positive, got {checkpoint_seconds}"
            )
        if restart_seconds < 0:
            raise ValueError(
                f"restart_seconds must be >= 0, got {restart_seconds}"
            )
        if max_revocations < 0:
            raise ValueError(
                f"max_revocations must be >= 0, got {max_revocations}"
            )
        self.market = market
        self.simulator = simulator
        self.catalog = catalog
        self.checkpoint_seconds = checkpoint_seconds
        self.restart_seconds = restart_seconds
        self.max_revocations = max_revocations
        self.fleet = fleet

    def _record_segment_open(
        self,
        deployment: Deployment,
        segment_id: str,
        *,
        start: float,
        end: float,
        bid_factor: float,
    ) -> None:
        """Emit the opening fleet events for one spot segment.

        Spot capacity has no provisioning delay in this model, so the
        segment goes ``requested`` → ``running`` at the grant instant;
        a decimated ``spot-price`` series over the segment's window
        feeds the timeline's price overlay.
        """
        fleet = self.fleet
        fleet.annotate(phase="spot-train", deployment=str(deployment))
        open_factor = self.market.price_factor(
            deployment.instance_type, start
        )
        for event in ("requested", "running"):
            fleet.record(
                event,
                time=start,
                instance_type=deployment.instance_type,
                count=deployment.count,
                cluster_id=segment_id,
                spot_factor=open_factor,
                bid_factor=bid_factor,
            )
        for tick_time, factor in self.market.price_points(
            deployment.instance_type, start, end
        ):
            fleet.record(
                "spot-price",
                time=tick_time,
                instance_type=deployment.instance_type,
                count=deployment.count,
                spot_factor=factor,
            )

    def execute(
        self,
        deployment: Deployment,
        job: TrainingJob,
        *,
        bid_factor: float = 1.0,
        start_time: float = 0.0,
    ) -> SpotOutcome:
        """Train the job to completion on spot capacity.

        Raises
        ------
        RuntimeError
            If the bid is below the market's floor (capacity never
            materialises) or revocations exceed ``max_revocations``.
        """
        itype = self.catalog[deployment.instance_type]
        if bid_factor < self.market.floor:
            raise RuntimeError(
                f"bid factor {bid_factor} is below the market floor "
                f"{self.market.floor}; capacity will never be granted"
            )
        speed = self.simulator.true_speed(itype, deployment.count, job)
        needed = job.total_samples / speed  # productive seconds required
        on_demand_dollars = itype.cost_for(needed, deployment.count)

        horizon = max(needed * 50.0, 100 * self.market.tick_seconds)
        now = start_time
        done = 0.0  # productive (checkpointed) seconds banked
        dollars = 0.0
        wasted = 0.0
        revocations = 0
        fleet = self.fleet
        segment = 0

        try:
            while done < needed:
                grant = self.market.next_availability(
                    deployment.instance_type, now, bid_factor,
                    horizon_seconds=horizon,
                )
                if grant is None:
                    raise RuntimeError(
                        "no spot capacity within the simulation horizon"
                    )
                now = grant
                revocation = self.market.next_revocation(
                    deployment.instance_type, now, bid_factor,
                    horizon_seconds=horizon,
                )
                completion = now + (needed - done)
                end = completion if revocation is None else min(
                    completion, revocation
                )
                ran = end - now
                factor = self.market.mean_factor(
                    deployment.instance_type, now, end
                )
                seg_dollars = (
                    itype.spot_hourly_price(factor)
                    * deployment.count * ran / 3600.0
                )
                dollars += seg_dollars
                segment += 1
                segment_id = f"spot-{segment}"
                if fleet.enabled:
                    self._record_segment_open(
                        deployment, segment_id, start=now, end=end,
                        bid_factor=bid_factor,
                    )
                if end == completion:
                    if fleet.enabled:
                        fleet.record(
                            "terminated",
                            time=end,
                            instance_type=deployment.instance_type,
                            count=deployment.count,
                            cluster_id=segment_id,
                            purpose="spot-training",
                            seconds=ran,
                            dollars=seg_dollars,
                            spot_factor=factor,
                            bid_factor=bid_factor,
                        )
                    done = needed
                    now = end
                    break
                # revoked: keep only fully checkpointed progress
                banked = (
                    (ran // self.checkpoint_seconds) * self.checkpoint_seconds
                )
                done += banked
                wasted += (ran - banked) + self.restart_seconds
                revocations += 1
                if fleet.enabled:
                    fleet.record(
                        "revoked",
                        time=end,
                        instance_type=deployment.instance_type,
                        count=deployment.count,
                        cluster_id=segment_id,
                        purpose="spot-training",
                        seconds=ran,
                        dollars=seg_dollars,
                        spot_factor=self.market.price_factor(
                            deployment.instance_type, end
                        ),
                        bid_factor=bid_factor,
                    )
                if revocations > self.max_revocations:
                    raise RuntimeError(
                        f"exceeded {self.max_revocations} revocations; "
                        f"bid {bid_factor} is too aggressive for this market"
                    )
                now = end + self.restart_seconds
        finally:
            fleet.clear()

        return SpotOutcome(
            seconds=now - start_time,
            dollars=dollars,
            revocations=revocations,
            wasted_seconds=wasted,
            on_demand_seconds=needed,
            on_demand_dollars=on_demand_dollars,
        )
