"""MLCD ML Platform Interface (paper Sec. IV).

"MLCD supports popular ML training platforms (such as TensorFlow,
MXNet, PyTorch) and connects them with the Cloud Interface to enable
various ML platform features, such as PS and all-reduce communication
protocols."

The interface resolves user-facing names (model, dataset, platform,
protocol) into a fully-specified :class:`~repro.sim.throughput.TrainingJob`,
validating the combination before anything is launched.
"""

from __future__ import annotations

from repro.sim.comm import CommProtocol
from repro.sim.datasets import get_dataset
from repro.sim.platforms import get_platform, list_platforms
from repro.sim.throughput import TrainingJob
from repro.sim.zoo import get_model

__all__ = ["MLPlatformInterface"]

_PROTOCOL_ALIASES = {
    "ps": CommProtocol.PARAMETER_SERVER,
    "parameter-server": CommProtocol.PARAMETER_SERVER,
    "parameter_server": CommProtocol.PARAMETER_SERVER,
    "ring": CommProtocol.RING_ALLREDUCE,
    "ring-allreduce": CommProtocol.RING_ALLREDUCE,
    "allreduce": CommProtocol.RING_ALLREDUCE,
}


class MLPlatformInterface:
    """Resolves and validates training-job specifications."""

    def supported_platforms(self) -> list[str]:
        """Names of the ML platforms the simulator models."""
        return list_platforms()

    def resolve_protocol(self, protocol: str | None) -> CommProtocol | None:
        """Parse a protocol name; ``None`` defers to the platform default."""
        if protocol is None:
            return None
        try:
            return _PROTOCOL_ALIASES[protocol.lower()]
        except KeyError:
            raise ValueError(
                f"unknown protocol {protocol!r}; "
                f"known: {sorted(_PROTOCOL_ALIASES)}"
            ) from None

    def build_job(
        self,
        *,
        model: str,
        dataset: str,
        platform: str = "tensorflow",
        protocol: str | None = None,
        global_batch: int | None = None,
        epochs: float = 1.0,
    ) -> TrainingJob:
        """Assemble a validated :class:`TrainingJob` from names."""
        return TrainingJob(
            model=get_model(model),
            dataset=get_dataset(dataset),
            platform=get_platform(platform),
            protocol=self.resolve_protocol(protocol),
            global_batch=global_batch,
            epochs=epochs,
        )
