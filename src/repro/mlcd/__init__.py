"""MLCD: the fully automated MLaaS training Cloud Deployment system.

Reproduces the Fig. 8 architecture:

- :mod:`repro.mlcd.scenario_analyzer` — turns user requirements into a
  :class:`~repro.core.scenarios.Scenario`;
- :mod:`repro.mlcd.cloud_interface` — the cloud-control abstraction
  (launch/terminate/measure) with the simulated-AWS implementation;
- :mod:`repro.mlcd.platform_interface` — ML-platform abstraction
  (TensorFlow/MXNet, PS/ring all-reduce) that assembles
  :class:`~repro.sim.throughput.TrainingJob` objects;
- :mod:`repro.mlcd.deployment_engine` — wires a search strategy
  (HeterBO by default) to the Profiler;
- :mod:`repro.mlcd.system` — the :class:`~repro.mlcd.system.MLCD`
  facade: search, then train on the chosen deployment, and report.
"""

from repro.mlcd.cloud_interface import CloudInterface, SimulatedCloudInterface
from repro.mlcd.deployment_engine import DeploymentEngine
from repro.mlcd.platform_interface import MLPlatformInterface
from repro.mlcd.scenario_analyzer import ScenarioAnalyzer, UserRequirements
from repro.mlcd.spot import SpotOutcome, SpotTrainingExecutor
from repro.mlcd.system import MLCD

__all__ = [
    "CloudInterface",
    "DeploymentEngine",
    "MLCD",
    "MLPlatformInterface",
    "ScenarioAnalyzer",
    "SimulatedCloudInterface",
    "SpotOutcome",
    "SpotTrainingExecutor",
    "UserRequirements",
]
