"""The MLCD facade: the paper's end-to-end automated deployment system.

One call deploys a training job the way the paper's Fig. 8 pipeline
does: the Scenario Analyzer parses the user's requirements, the
Deployment Engine drives HeterBO against the Profiler, and the chosen
deployment is trained to completion on the cloud.

Example
-------
>>> from repro.mlcd import MLCD, UserRequirements
>>> mlcd = MLCD(seed=7)
>>> report = mlcd.deploy(
...     model="resnet", dataset="cifar10",
...     requirements=UserRequirements(budget_dollars=100.0),
... )
>>> report.constraint_met
True
"""

from __future__ import annotations

from repro.cloud.catalog import InstanceCatalog, default_catalog
from repro.cloud.provider import SimulatedCloud
from repro.core.engine import SearchStrategy
from repro.core.heterbo import HeterBO
from repro.core.result import DeploymentReport
from repro.core.search_space import DeploymentSpace
from repro.mlcd.cloud_interface import SimulatedCloudInterface
from repro.mlcd.deployment_engine import DeploymentEngine
from repro.mlcd.platform_interface import MLPlatformInterface
from repro.mlcd.scenario_analyzer import ScenarioAnalyzer, UserRequirements
from repro.obs import RunRecorder, SearchTrace
from repro.profiling.profiler import Profiler
from repro.sim.noise import NoiseModel
from repro.sim.throughput import TrainingSimulator

__all__ = ["MLCD"]


class MLCD:
    """Fully automated MLaaS training cloud deployment.

    Parameters
    ----------
    catalog:
        Instance types to search over (defaults to the paper's EC2
        subset).
    max_count:
        Scale-out limit per type (paper rule of thumb: 50).
    strategy:
        Search strategy; HeterBO with default settings if omitted.
    seed:
        Drives measurement noise and any strategy randomness.
    noise_sigma:
        Relative iteration-to-iteration throughput jitter.
    profile:
        ``True`` attaches a self-profiling phase ledger to the run
        (``self.recorder.prof``, exported via
        ``recorder.prof.write(path)``); the trace artifact stays
        byte-identical either way.
    """

    def __init__(
        self,
        *,
        catalog: InstanceCatalog | None = None,
        max_count: int = 50,
        strategy: SearchStrategy | None = None,
        seed: int = 0,
        noise_sigma: float = 0.03,
        profile: bool = False,
    ) -> None:
        self.catalog = catalog if catalog is not None else default_catalog()
        self.cloud = SimulatedCloud(self.catalog)
        self.cloud_interface = SimulatedCloudInterface(self.cloud)
        self.platform_interface = MLPlatformInterface()
        self.scenario_analyzer = ScenarioAnalyzer()
        self.simulator = TrainingSimulator()
        self.space = DeploymentSpace(self.catalog, max_count=max_count)
        # every deployment is recorded: spans are timed against the
        # simulated clock, and finalize() turns the run into a
        # SearchTrace artifact (self.last_trace).  The event bus is
        # live so sinks (stream writers, /metrics endpoints) can be
        # attached via self.recorder.bus — recording stays read-only,
        # so runs are byte-identical with or without subscribers.
        self.recorder = RunRecorder(
            clock=lambda: self.cloud.clock.now, bus=True, profile=profile
        )
        # fleet telemetry: the cloud emits lifecycle events into the
        # recorder's FleetLog (read-only; the join to the billing
        # ledger gives per-step cost attribution in the trace)
        self.cloud.fleet = self.recorder.fleet
        self.profiler = Profiler(
            self.cloud,
            self.simulator,
            noise=NoiseModel(sigma=noise_sigma, seed=seed),
            tracer=self.recorder.tracer,
            metrics=self.recorder.metrics,
            bus=self.recorder.bus,
        )
        self.engine = DeploymentEngine(
            self.space,
            self.profiler,
            self.simulator,
            tracer=self.recorder.tracer,
            metrics=self.recorder.metrics,
            decisions=self.recorder.decisions,
            watchdog=self.recorder.watchdog,
            bus=self.recorder.bus,
            prof=self.recorder.prof,
        )
        self.strategy = strategy if strategy is not None else HeterBO(seed=seed)
        self._last_job = None
        self.last_trace: SearchTrace | None = None

    def deploy(
        self,
        *,
        model: str,
        dataset: str,
        platform: str = "tensorflow",
        protocol: str | None = None,
        global_batch: int | None = None,
        epochs: float = 1.0,
        requirements: UserRequirements | None = None,
    ) -> DeploymentReport:
        """Search for the best deployment and train the job on it.

        One MLCD instance owns one simulated cloud session; call
        ``deploy`` once per instance so billing and deadlines are
        attributed to a single job (create a fresh MLCD per job).
        """
        if self.cloud.elapsed() > 0:
            raise RuntimeError(
                "this MLCD session already ran a deployment; create a "
                "fresh MLCD per job so time/budget accounting is per-job"
            )
        job = self.platform_interface.build_job(
            model=model,
            dataset=dataset,
            platform=platform,
            protocol=protocol,
            global_batch=global_batch,
            epochs=epochs,
        )
        scenario = self.scenario_analyzer.analyze(
            requirements if requirements is not None else UserRequirements()
        )
        self._last_job = job
        report = self.engine.deploy(self.strategy, job, scenario)
        self.last_trace = self.recorder.finalize(report.search)
        return report

    def pareto_options(self, report: DeploymentReport):
        """Non-dominated (time, cost) deployment options the search saw.

        Beyond the scenario's single answer, the search trace usually
        contains several Pareto-efficient alternatives (e.g. "25 %
        slower for half the cost"); this surfaces them all.
        """
        from repro.core.pareto import search_pareto_front

        if self._last_job is None:
            raise RuntimeError("pareto_options() before deploy()")
        return search_pareto_front(
            report.search, self.space, self._last_job.total_samples
        )
