"""MLCD Deployment Engine (paper Sec. IV).

"We use HeterBO search method to drive the deployment engine to search
for the best deployment schemes based on the Profiler's feedback."

The engine owns the search/execute split:

- :meth:`DeploymentEngine.search` runs any
  :class:`~repro.core.engine.SearchStrategy` against the Profiler;
- :meth:`DeploymentEngine.execute_training` launches the chosen
  deployment and runs the job to completion at its *true* speed (the
  real world does not read our GP), billing under ``"training"``.
"""

from __future__ import annotations

from repro import contracts
from repro.core.engine import SearchContext, SearchStrategy
from repro.core.result import DeploymentReport, SearchResult
from repro.core.search_space import Deployment, DeploymentSpace
from repro.obs import (
    NOOP_BUS,
    NOOP_DECISIONS,
    NOOP_PROFILER,
    NOOP_TRACER,
    NOOP_WATCHDOG,
    DecisionLog,
    EventBus,
    MetricsRegistry,
    PhaseProfiler,
    Tracer,
    Watchdog,
)
from repro.profiling.profiler import Profiler
from repro.sim.throughput import (
    InfeasibleDeploymentError,
    TrainingJob,
    TrainingSimulator,
)

__all__ = ["DeploymentEngine"]


class DeploymentEngine:
    """Search-then-train orchestration over one simulated cloud.

    ``tracer`` / ``metrics`` / ``decisions`` / ``watchdog`` / ``bus``
    are propagated into every search's
    :class:`~repro.core.engine.SearchContext`, so strategies, the GP
    engine and the training execution all emit into one recording
    (no-op by default).
    """

    def __init__(
        self,
        space: DeploymentSpace,
        profiler: Profiler,
        simulator: TrainingSimulator,
        *,
        tracer: Tracer = NOOP_TRACER,
        metrics: MetricsRegistry | None = None,
        decisions: DecisionLog = NOOP_DECISIONS,
        watchdog: Watchdog = NOOP_WATCHDOG,
        bus: EventBus = NOOP_BUS,
        prof: PhaseProfiler = NOOP_PROFILER,
    ) -> None:
        self.space = space
        self.profiler = profiler
        self.simulator = simulator
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.decisions = decisions
        self.watchdog = watchdog
        self.bus = bus
        self.prof = prof

    @property
    def cloud(self):
        """The simulated cloud this engine operates on."""
        return self.profiler.cloud

    def search(
        self,
        strategy: SearchStrategy,
        job: TrainingJob,
        scenario,
    ) -> SearchResult:
        """Run one search strategy to completion."""
        context = SearchContext(
            space=self.space,
            profiler=self.profiler,
            job=job,
            scenario=scenario,
            tracer=self.tracer,
            metrics=self.metrics,
            decisions=self.decisions,
            watchdog=self.watchdog,
            bus=self.bus,
            prof=self.prof,
        )
        return strategy.search(context)

    def execute_training(
        self, deployment: Deployment, job: TrainingJob
    ) -> tuple[float, float]:
        """Train the job to completion on ``deployment``.

        Returns
        -------
        (seconds, dollars):
            Wall-clock training time (including cluster setup) and the
            billed training cost.

        Raises
        ------
        InfeasibleDeploymentError
            If the chosen deployment cannot run the job (a search bug —
            strategies should never select a failed probe).
        """
        itype = self.space.catalog[deployment.instance_type]
        self.simulator.check_feasible(itype, deployment.count, job)
        true_speed = self.simulator.true_speed(itype, deployment.count, job)
        train_seconds = job.total_samples / true_speed

        start = self.cloud.clock.now
        fleet = self.cloud.fleet
        fleet.annotate(phase="final-train", deployment=str(deployment))
        try:
            cluster = self.cloud.launch(
                deployment.instance_type, deployment.count
            )
            self.cloud.wait_until_ready(cluster)
            self.cloud.run_for(cluster, train_seconds)
            dollars = self.cloud.terminate(cluster, purpose="training")
        finally:
            fleet.clear()
        contracts.check_fleet_attribution(self.cloud.ledger, fleet)
        return self.cloud.clock.now - start, dollars

    def deploy(
        self,
        strategy: SearchStrategy,
        job: TrainingJob,
        scenario,
    ) -> DeploymentReport:
        """Search, then train on the result (the full MLCD pipeline)."""
        search = self.search(strategy, job, scenario)
        if search.best is None:
            return DeploymentReport(search=search)
        with self.tracer.span("deploy", {
            "deployment": str(search.best),
        }) as span:
            if self.bus.enabled:
                self.bus.publish("progress", {
                    "phase": "final-train",
                    "deployment": str(search.best),
                    "spent_usd": self.cloud.total_spend(),
                    "elapsed_s": self.cloud.elapsed(),
                })
            try:
                seconds, dollars = self.execute_training(search.best, job)
            except InfeasibleDeploymentError:
                # A measured-successful probe should always train;
                # reaching this means the search selected an unprofiled
                # deployment.
                span.set_attribute("error", "chosen deployment infeasible")
                return DeploymentReport(
                    search=search,
                    tags={"error": "chosen deployment infeasible"},
                )
            span.set_attribute("seconds", seconds)
            span.set_attribute("dollars", dollars)
        self.metrics.counter(
            "deploy.train_dollars_total", unit="USD"
        ).inc(dollars)
        return DeploymentReport(
            search=search,
            train_seconds=seconds,
            train_dollars=dollars,
            trained=True,
        )
