"""MLCD Cloud Interface (paper Sec. IV).

"MLCD supports different cloud services through Cloud Interface (e.g.,
AWS, Google Cloud, Azure).  It provides the cloud control operations
such as launch/suspend/manage instance, collect measurements through
cloud tools (e.g., CloudWatch in AWS)."

:class:`CloudInterface` is the protocol; adding a real provider means
implementing it.  :class:`SimulatedCloudInterface` backs it with
:class:`~repro.cloud.provider.SimulatedCloud` and is what every
experiment uses.
"""

from __future__ import annotations

import abc

from repro.cloud.catalog import InstanceCatalog
from repro.cloud.cloudwatch import MetricStatistics
from repro.cloud.cluster import Cluster
from repro.cloud.provider import SimulatedCloud

__all__ = ["CloudInterface", "SimulatedCloudInterface"]


class CloudInterface(abc.ABC):
    """Provider-neutral cloud control operations."""

    @property
    @abc.abstractmethod
    def catalog(self) -> InstanceCatalog:
        """Instance types this provider offers."""

    @abc.abstractmethod
    def launch_cluster(self, instance_type: str, count: int) -> Cluster:
        """Launch a homogeneous cluster and wait until it is running."""

    @abc.abstractmethod
    def run_cluster(self, cluster: Cluster, seconds: float) -> None:
        """Let a running cluster execute for ``seconds``."""

    @abc.abstractmethod
    def terminate_cluster(self, cluster: Cluster, *, purpose: str) -> float:
        """Terminate and bill a cluster; returns dollars charged."""

    @abc.abstractmethod
    def get_metric_statistics(
        self, namespace: str, metric: str
    ) -> MetricStatistics:
        """CloudWatch-style summary statistics for a metric."""

    @abc.abstractmethod
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds since the session began."""

    @abc.abstractmethod
    def total_spend(self, purpose: str | None = None) -> float:
        """Dollars spent so far, optionally by purpose tag."""


class SimulatedCloudInterface(CloudInterface):
    """Cloud Interface backed by the deterministic simulated provider."""

    def __init__(self, cloud: SimulatedCloud) -> None:
        self.cloud = cloud

    @property
    def catalog(self) -> InstanceCatalog:
        """Resolve the instance catalog for this config."""
        return self.cloud.catalog

    def launch_cluster(self, instance_type: str, count: int) -> Cluster:
        cluster = self.cloud.launch(instance_type, count)
        self.cloud.wait_until_ready(cluster)
        return cluster

    def run_cluster(self, cluster: Cluster, seconds: float) -> None:
        self.cloud.run_for(cluster, seconds)

    def terminate_cluster(self, cluster: Cluster, *, purpose: str) -> float:
        return self.cloud.terminate(cluster, purpose=purpose)

    def get_metric_statistics(
        self, namespace: str, metric: str
    ) -> MetricStatistics:
        return self.cloud.metrics.statistics(namespace, metric)

    def elapsed_seconds(self) -> float:
        """Simulated wall-clock seconds consumed so far."""
        return self.cloud.elapsed()

    def total_spend(self, purpose: str | None = None) -> float:
        """Dollars spent so far, optionally filtered by purpose tag."""
        return self.cloud.total_spend(purpose)
