"""MLCD Scenario Analyzer (paper Sec. IV).

"The Scenario Analyzer takes the training requirements from user
(e.g., training deadline, budget) and forms them into the search
constraints and feeds them into the HeterBO Deployment Engine."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scenarios import Scenario

__all__ = ["ScenarioAnalyzer", "UserRequirements"]


@dataclass(frozen=True, slots=True)
class UserRequirements:
    """Raw user intent, before analysis.

    At most one of ``deadline_hours`` / ``budget_dollars`` may be set,
    mirroring the paper's three scenarios.  (Supporting both at once is
    listed as an extension in DESIGN.md.)
    """

    deadline_hours: float | None = None
    budget_dollars: float | None = None

    def __post_init__(self) -> None:
        if self.deadline_hours is not None and self.deadline_hours <= 0:
            raise ValueError(
                f"deadline_hours must be positive, got {self.deadline_hours}"
            )
        if self.budget_dollars is not None and self.budget_dollars <= 0:
            raise ValueError(
                f"budget_dollars must be positive, got {self.budget_dollars}"
            )
        if self.deadline_hours is not None and self.budget_dollars is not None:
            raise ValueError(
                "set a deadline or a budget, not both (paper scenarios 1-3)"
            )


class ScenarioAnalyzer:
    """Maps :class:`UserRequirements` to the formal scenario (Eqs. 1–3)."""

    def analyze(self, requirements: UserRequirements) -> Scenario:
        """Map raw user requirements to a formal scenario."""
        if requirements.deadline_hours is not None:
            return Scenario.cheapest_within(
                requirements.deadline_hours * 3600.0
            )
        if requirements.budget_dollars is not None:
            return Scenario.fastest_within(requirements.budget_dollars)
        return Scenario.fastest()
