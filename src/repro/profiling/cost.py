"""Heterogeneous profiling-cost model (paper Eqs. 7–8).

The paper's Profiler setup: "For single node, each profiling takes 10
minutes (including initial setup and warm-up), we add extra 1 minute to
the profiling time for every increase of 3 extra nodes to offset the
longer setup and warm-up time as well as the randomness in measurement."

The *monetary* profiling cost is then ``P(m) * n * t(m, n)`` — this is
the heterogeneity HeterBO exploits: a 10-minute probe of 50 p3.16xlarge
costs ~$204 while a 10-minute probe of one c5.xlarge costs ~$0.03.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instance import InstanceType

__all__ = ["ProfilingCostModel"]


@dataclass(frozen=True, slots=True)
class ProfilingCostModel:
    """Profiling time and money for a deployment ``(m, n)``.

    Attributes
    ----------
    base_seconds:
        Profiling time for a single node (includes cluster setup and
        warm-up).  Paper: 10 minutes.
    extra_seconds_per_3_nodes:
        Additional time per 3 extra nodes.  Paper: 1 minute.
    """

    base_seconds: float = 600.0
    extra_seconds_per_3_nodes: float = 60.0

    def __post_init__(self) -> None:
        if self.base_seconds <= 0:
            raise ValueError(
                f"base_seconds must be positive, got {self.base_seconds}"
            )
        if self.extra_seconds_per_3_nodes < 0:
            raise ValueError(
                "extra_seconds_per_3_nodes must be >= 0, got "
                f"{self.extra_seconds_per_3_nodes}"
            )

    def profiling_seconds(self, count: int) -> float:
        """``t(m, n)``: wall-clock seconds to profile an ``n``-node cluster."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        extra_units = (count - 1) // 3
        return self.base_seconds + extra_units * self.extra_seconds_per_3_nodes

    def profiling_dollars(self, itype: InstanceType, count: int) -> float:
        """``PL_C = P(m) * n * t(m, n)`` (Eq. 8)."""
        return itype.cost_for(self.profiling_seconds(count), count)
