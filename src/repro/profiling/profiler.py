"""MLCD Profiler (paper Sec. IV).

"The Profiler takes the deployment information from HeterBO Deployment
Engine and executes the model training for certain iterations.  It
records the training time and monetary cost and feedback these
measurements to the HeterBO Deployment Engine.  To achieve statistic
stability of profiling, Profiler monitors the training throughput
across iterations and extends the profiling time when large discrepancy
is observed."

Against the simulated cloud, a profiling run:

1. launches a cluster (billed from launch, including setup),
2. observes noisy per-iteration throughput for the profiling window,
3. extends the window while the coefficient of variation is above the
   stability threshold (bounded number of extensions),
4. terminates the cluster and charges the ledger under ``"profiling"``.

Infeasible deployments (model does not fit, too many workers) fail
*after* the cluster has been paid for — as they would on a real cloud —
and surface as a zero-speed measurement rather than an exception, so
search strategies experience failed probes as wasted spend.

:meth:`Profiler.profile_batch` profiles several deployments
*concurrently* (distinct clusters overlap in wall-clock time, subject
to account limits): money spent is the same as sequential probing, but
elapsed time is the longest window rather than the sum — the lever the
parallel search extension (:class:`repro.core.parallel.ParallelHeterBO`)
exploits under deadlines.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.cloud.provider import SimulatedCloud
from repro.obs import NOOP_BUS, NOOP_TRACER, EventBus, MetricsRegistry, Tracer
from repro.profiling.cost import ProfilingCostModel
from repro.sim.noise import NoiseModel
from repro.sim.throughput import (
    InfeasibleDeploymentError,
    TrainingJob,
    TrainingSimulator,
)

__all__ = ["ProfileResult", "Profiler"]

logger = logging.getLogger(__name__)

#: Iterations sampled per profiling window; enough for a stable mean
#: without pretending we measured thousands of steps in ten minutes.
_SAMPLES_PER_WINDOW = 30

#: CV above which the window is extended (cloud throughput is normally
#: within a few percent iteration-to-iteration).
_DEFAULT_STABILITY_CV = 0.08


@dataclass(frozen=True, slots=True)
class ProfileResult:
    """Outcome of profiling one deployment.

    Attributes
    ----------
    instance_type, count:
        The deployment profiled.
    speed:
        Measured mean training speed in samples/s (0.0 for failed runs).
    seconds:
        Wall-clock profiling time actually spent (includes extensions).
    dollars:
        Money charged to the ledger for this probe.
    iteration_speeds:
        The raw per-iteration observations.
    extensions:
        How many times the stability monitor extended the window.
    failed:
        True when the probe produced no measurement.
    failure_reason:
        ``""`` for successes, ``"infeasible"`` when the deployment
        cannot run the job (a real performance signal), ``"capacity"``
        for transient provider failures (no performance information —
        search strategies must not treat these as evidence).
    """

    instance_type: str
    count: int
    speed: float
    seconds: float
    dollars: float
    iteration_speeds: tuple[float, ...]
    extensions: int
    failed: bool
    failure_reason: str = ""

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.speed < 0:
            raise ValueError(f"speed must be >= 0, got {self.speed}")


@dataclass(frozen=True, slots=True)
class _MeasurementPlan:
    """Pure outcome of a measurement before the clock/billing dance.

    ``run_seconds`` counts post-setup execution time; ``None``
    observations mark an infeasible (failed) run.
    """

    observations: tuple[float, ...] | None
    run_seconds: float
    extensions: int

    @property
    def failed(self) -> bool:
        """Whether this record carries no measurement."""
        return self.observations is None


class Profiler:
    """Measures deployments on the simulated cloud at their true cost.

    Parameters
    ----------
    cloud:
        The account to launch on (clock + ledger + metrics).
    simulator:
        Ground-truth performance oracle.
    cost_model:
        Profiling-window duration model (Eqs. 7–8).
    noise:
        Measurement noise; defaults to a quiet 3 % jitter.
    stability_cv:
        Coefficient-of-variation threshold above which the window is
        extended.
    max_extensions:
        Upper bound on window extensions per probe.
    tracer / metrics:
        Observability sinks (see :mod:`repro.obs`).  Pass the *same*
        tracer the search strategies use so ``profile`` spans nest
        under their ``probe`` spans; defaults are no-op.
    bus:
        Optional :class:`~repro.obs.bus.EventBus`.  When live, the
        launch path publishes one ``progress`` heartbeat per
        measurement (``phase="profile"``) *before* the clusters are
        requested, so a live dashboard shows what is being profiled
        while the (simulated) window runs.
    """

    def __init__(
        self,
        cloud: SimulatedCloud,
        simulator: TrainingSimulator,
        *,
        cost_model: ProfilingCostModel | None = None,
        noise: NoiseModel | None = None,
        stability_cv: float = _DEFAULT_STABILITY_CV,
        max_extensions: int = 2,
        launch_retries: int = 2,
        retry_backoff_seconds: float = 60.0,
        samples_per_window: int = _SAMPLES_PER_WINDOW,
        tracer: Tracer = NOOP_TRACER,
        metrics: MetricsRegistry | None = None,
        bus: EventBus = NOOP_BUS,
    ) -> None:
        if stability_cv <= 0:
            raise ValueError(f"stability_cv must be positive, got {stability_cv}")
        if max_extensions < 0:
            raise ValueError(
                f"max_extensions must be >= 0, got {max_extensions}"
            )
        if launch_retries < 0:
            raise ValueError(
                f"launch_retries must be >= 0, got {launch_retries}"
            )
        if retry_backoff_seconds < 0:
            raise ValueError(
                f"retry_backoff_seconds must be >= 0, got "
                f"{retry_backoff_seconds}"
            )
        if samples_per_window < 2:
            raise ValueError(
                f"samples_per_window must be >= 2, got {samples_per_window}"
            )
        self.cloud = cloud
        self.simulator = simulator
        self.cost_model = cost_model or ProfilingCostModel()
        self.noise = noise or NoiseModel()
        self.stability_cv = stability_cv
        self.max_extensions = max_extensions
        self.launch_retries = launch_retries
        self.retry_backoff_seconds = retry_backoff_seconds
        self.samples_per_window = samples_per_window
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.bus = bus

    def _emit_heartbeat(self, instance_type: str, count: int) -> None:
        """Publish a ``phase="profile"`` heartbeat before a launch."""
        if not self.bus.enabled:
            return
        self.bus.publish("progress", {
            "phase": "profile",
            "deployment": f"{count}x {instance_type}",
            "spent_usd": self.cloud.total_spend(),
            "elapsed_s": self.cloud.elapsed(),
        })

    # -- cost previews (used by acquisition functions) -------------------------
    def profiling_seconds(self, count: int) -> float:
        """``T_profile`` for an ``n``-node probe, before any extension."""
        return self.cost_model.profiling_seconds(count)

    def profiling_dollars(self, instance_type: str, count: int) -> float:
        """``C_profile`` for a probe, before any extension."""
        itype = self.cloud.catalog[instance_type]
        return self.cost_model.profiling_dollars(itype, count)

    # -- measurement planning (pure: no clock, no billing) ----------------------
    def _plan_measurement(
        self, instance_type: str, count: int, job: TrainingJob,
        setup_seconds: float,
    ) -> _MeasurementPlan:
        """Decide what a probe will observe and how long it will run."""
        itype = self.cloud.catalog[instance_type]
        window_seconds = self.cost_model.profiling_seconds(count)
        try:
            true_speed = self.simulator.true_speed(itype, count, job)
        except InfeasibleDeploymentError:
            remaining = max(0.0, window_seconds - setup_seconds)
            return _MeasurementPlan(
                observations=None,
                run_seconds=min(remaining, 60.0),
                extensions=0,
            )

        key = (instance_type, count, job.describe())
        observations: list[float] = []
        run_seconds = 0.0
        window = 0
        while True:
            chunk = (
                window_seconds - setup_seconds if window == 0
                else window_seconds * 0.5
            )
            run_seconds += max(chunk, 1.0)
            samples = self.noise.measure(
                true_speed, key, self.samples_per_window, window=window
            )
            observations.extend(samples.tolist())
            arr = np.asarray(observations)
            mean = float(arr.mean())
            # speeds are positive, so a non-positive mean means no
            # usable signal: treat as maximally unstable
            cv = float(arr.std()) / mean if mean > 0 else np.inf
            if cv <= self.stability_cv or window >= self.max_extensions:
                break
            window += 1
        return _MeasurementPlan(
            observations=tuple(observations),
            run_seconds=run_seconds,
            extensions=window,
        )

    def _emit_metrics(
        self, cluster, plan: _MeasurementPlan, start: float, end: float
    ) -> None:
        if plan.failed:
            return
        times = np.linspace(start, end, len(plan.observations))
        self.cloud.metrics.put_many(
            f"cluster-{cluster.cluster_id}",
            "training_speed",
            times.tolist(),
            list(plan.observations),
        )

    @staticmethod
    def _result_from(
        instance_type: str, count: int, plan: _MeasurementPlan,
        seconds: float, dollars: float,
    ) -> ProfileResult:
        if plan.failed:
            return ProfileResult(
                instance_type=instance_type, count=count, speed=0.0,
                seconds=seconds, dollars=dollars,
                iteration_speeds=(), extensions=0, failed=True,
                failure_reason="infeasible",
            )
        return ProfileResult(
            instance_type=instance_type, count=count,
            speed=float(np.mean(plan.observations)),
            seconds=seconds, dollars=dollars,
            iteration_speeds=plan.observations,
            extensions=plan.extensions, failed=False,
        )

    def _capacity_failure_result(
        self, instance_type: str, count: int, seconds: float
    ) -> ProfileResult:
        """A probe abandoned after launch retries: wall time burned,
        nothing billed (the instances never materialised)."""
        return ProfileResult(
            instance_type=instance_type, count=count, speed=0.0,
            seconds=seconds, dollars=0.0,
            iteration_speeds=(), extensions=0, failed=True,
            failure_reason="capacity",
        )

    def _launch_with_retry(self, instance_type: str, count: int):
        """Launch with bounded retries; ``None`` after exhausting them.

        Each failed attempt burns ``retry_backoff_seconds`` of wall
        clock (the real-world wait before re-requesting capacity).
        """
        from repro.cloud.provider import InsufficientCapacityError

        for attempt in range(self.launch_retries + 1):
            try:
                return self.cloud.launch(instance_type, count)
            except InsufficientCapacityError:
                self.metrics.counter(
                    "profiler.capacity_retries_total"
                ).inc(instance_type=instance_type)
                logger.debug(
                    "capacity shortage launching %dx %s "
                    "(attempt %d/%d); backing off %.0f s",
                    count, instance_type, attempt + 1,
                    self.launch_retries + 1, self.retry_backoff_seconds,
                )
                self.cloud.clock.advance(self.retry_backoff_seconds)
        self.metrics.counter("profiler.abandoned_probes_total").inc(
            instance_type=instance_type
        )
        logger.warning(
            "abandoning probe of %dx %s after %d capacity failures",
            count, instance_type, self.launch_retries + 1,
        )
        return None

    # -- sequential measurement ---------------------------------------------------
    def _observe_result(self, result: ProfileResult) -> ProfileResult:
        """Bump profiler-level metrics for one finished probe."""
        self.metrics.counter("profiler.probes_total").inc(
            instance_type=result.instance_type
        )
        if result.extensions:
            self.metrics.counter(
                "profiler.window_extensions_total"
            ).inc(result.extensions)
        return result

    def profile(
        self, instance_type: str, count: int, job: TrainingJob
    ) -> ProfileResult:
        """Profile one deployment, advancing the clock and the ledger."""
        with self.tracer.span("profile", {
            "instance_type": instance_type, "count": count,
        }) as span:
            self._emit_heartbeat(instance_type, count)
            start = self.cloud.clock.now
            cluster = self._launch_with_retry(instance_type, count)
            if cluster is None:
                span.set_attribute("outcome", "capacity")
                return self._observe_result(self._capacity_failure_result(
                    instance_type, count, self.cloud.clock.now - start
                ))
            self.cloud.wait_until_ready(cluster)
            plan = self._plan_measurement(
                instance_type, count, job, cluster.setup_seconds
            )
            start = self.cloud.clock.now
            self.cloud.run_for(cluster, plan.run_seconds)
            self._emit_metrics(cluster, plan, start, self.cloud.clock.now)
            dollars = self.cloud.terminate(cluster, purpose="profiling")
            span.set_attribute(
                "outcome", "infeasible" if plan.failed else "ok"
            )
            span.set_attribute("extensions", plan.extensions)
            span.set_attribute("cost_usd", dollars)
            return self._observe_result(self._result_from(
                instance_type, count, plan, cluster.billable_seconds,
                dollars,
            ))

    # -- concurrent measurement -----------------------------------------------------
    def profile_batch(
        self,
        deployments: list[tuple[str, int]],
        job: TrainingJob,
    ) -> list[ProfileResult]:
        """Profile several deployments concurrently.

        All clusters launch together (the account limits must admit the
        whole batch); each runs for its own window and is terminated —
        and billed — at its own completion time.  Elapsed wall-clock is
        the *longest* probe, total spend is the *sum*.

        Results are returned in input order.

        Raises
        ------
        RuntimeError
            If the batch exceeds account capacity; the caller chooses
            batch sizes, so this is a planning bug, not a cloud hiccup.
        """
        if not deployments:
            return []
        with self.tracer.span(
            "profile-batch", {"n_deployments": len(deployments)}
        ):
            results: list[ProfileResult | None] = [None] * len(deployments)
            clusters: dict[int, object] = {}
            launch_start = self.cloud.clock.now
            for i, (instance_type, count) in enumerate(deployments):
                # point the fleet log's attribution context at this
                # batch member before its clusters are requested
                self.cloud.fleet.batch_member(i, instance_type, count)
                self._emit_heartbeat(instance_type, count)
                cluster = self._launch_with_retry(instance_type, count)
                if cluster is None:
                    results[i] = self._capacity_failure_result(
                        instance_type, count,
                        self.cloud.clock.now - launch_start,
                    )
                else:
                    clusters[i] = cluster
            for cluster in clusters.values():
                self.cloud.wait_until_ready(cluster)
            plans = {
                i: self._plan_measurement(
                    deployments[i][0], deployments[i][1], job,
                    cluster.setup_seconds,
                )
                for i, cluster in clusters.items()
            }
            start = self.cloud.clock.now
            # terminate in completion order so the shared clock only
            # moves forward while each cluster is billed for exactly
            # its window
            order = sorted(clusters, key=lambda i: plans[i].run_seconds)
            for i in order:
                cluster, plan = clusters[i], plans[i]
                completion = start + plan.run_seconds
                if self.cloud.clock.now < completion:
                    self.cloud.clock.advance_to(completion)
                self._emit_metrics(cluster, plan, start, completion)
                dollars = self.cloud.terminate(cluster, purpose="profiling")
                instance_type, count = deployments[i]
                results[i] = self._result_from(
                    instance_type, count, plan,
                    cluster.billable_seconds, dollars,
                )
            for result in results:
                self._observe_result(result)
            return results
