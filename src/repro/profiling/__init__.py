"""Profiling layer: measured training speed at heterogeneous cost.

This is the boundary between the search strategies (which see only
measurements and prices) and the simulator (which knows the truth).
:mod:`repro.profiling.cost` implements the paper's profiling-cost
formula (Sec. V-A: 10 minutes per profiling run plus 1 minute per 3
extra nodes), and :mod:`repro.profiling.profiler` implements the MLCD
Profiler component (Sec. IV), including the stability-driven window
extension.
"""

from repro.profiling.cost import ProfilingCostModel
from repro.profiling.profiler import ProfileResult, Profiler

__all__ = ["ProfileResult", "Profiler", "ProfilingCostModel"]
