"""HeterBO / MLCD — reproduction of "Not All Explorations Are Equal:
Harnessing Heterogeneous Profiling Cost for Efficient MLaaS Training"
(IPDPS 2020).

Public API tour:

- :class:`repro.MLCD` — the end-to-end deployment system; hand it a
  model/dataset/platform and a deadline or budget and it searches with
  HeterBO and trains the winner.
- :class:`repro.HeterBO` and the baselines in :mod:`repro.baselines` —
  search strategies over the deployment space.
- :mod:`repro.cloud` — the simulated EC2 substrate.
- :mod:`repro.sim` — the distributed-training performance simulator.
- :mod:`repro.experiments` — one entry point per paper figure.
"""

from repro.core.heterbo import HeterBO
from repro.core.result import DeploymentReport, SearchResult, TrialRecord
from repro.core.scenarios import Scenario, ScenarioKind
from repro.core.search_space import Deployment, DeploymentSpace
from repro.mlcd.scenario_analyzer import UserRequirements
from repro.mlcd.system import MLCD

__version__ = "1.0.0"

__all__ = [
    "Deployment",
    "DeploymentReport",
    "DeploymentSpace",
    "HeterBO",
    "MLCD",
    "Scenario",
    "ScenarioKind",
    "SearchResult",
    "TrialRecord",
    "UserRequirements",
    "__version__",
]
