"""Command-line interface.

Two subcommands:

- ``figure`` — regenerate one of the paper's figures and print the
  rows/series it plots::

      python -m repro.cli figure fig11
      python -m repro.cli figure --list

- ``deploy`` — run an MLCD deployment on the simulated cloud::

      python -m repro.cli deploy --model resnet --dataset cifar10 \\
          --epochs 20 --batch 128 --budget 100

- ``report`` — regenerate every figure into one markdown report, or —
  given saved trace artifacts — render a multi-run comparison::

      python -m repro.cli report -o reproduction_report.md
      python -m repro.cli report a.trace.jsonl b.trace.jsonl
      python -m repro.cli report a.trace.jsonl b.trace.jsonl --html -o cmp.html

- ``explain`` — interrogate a saved trace's decision records: why a
  deployment was probed, why the search stopped::

      python -m repro.cli explain run.trace.jsonl
      python -m repro.cli explain run.trace.jsonl --step 23
      python -m repro.cli explain run.trace.jsonl --stop

- ``trace`` — inspect a saved search-trace artifact (see
  ``deploy --trace-out``), or tail a live streamed one (see
  ``deploy --stream`` and docs/observability.md "Live telemetry")::

      python -m repro.cli deploy --model resnet --dataset cifar10 \\
          --budget 100 --trace-out run.trace.jsonl
      python -m repro.cli trace run.trace.jsonl
      python -m repro.cli trace run.trace.jsonl --spans
      python -m repro.cli trace live.trace.jsonl --follow
      python -m repro.cli trace live.trace.jsonl --follow \\
          --kinds decision,fleet

- ``top`` — refreshing terminal dashboard over a streamed trace
  (step, budget burn, incumbent, EI trend, fleet, anomalies)::

      python -m repro.cli deploy ... --stream live.trace.jsonl &
      python -m repro.cli top live.trace.jsonl
      python -m repro.cli top live.trace.jsonl --once   # CI snapshot

- ``timeline`` — render the per-instance fleet Gantt (with spot-price
  overlay) from a trace's ``kind=fleet`` events::

      python -m repro.cli timeline run.trace.jsonl
      python -m repro.cli timeline run.trace.jsonl --html -o timeline.html

- ``attribute`` — break the billing ledger down by instance type,
  search phase and step, joined through the fleet events::

      python -m repro.cli attribute run.trace.jsonl

- ``profile`` — render a self-profiling phase ledger (a
  ``profile.json`` sidecar from ``deploy --profile``, or a span-level
  ledger derived from any trace artifact) as a table, folded stacks
  for external flamegraph tools, or a self-contained flamegraph SVG
  (docs/performance.md "Profiling workflow")::

      python -m repro.cli deploy ... --profile profile.json
      python -m repro.cli profile profile.json
      python -m repro.cli profile profile.json --folded
      python -m repro.cli profile run.trace.jsonl --flame flame.svg

- ``diff`` — trace forensics: structurally compare two JSONL trace
  artifacts and pinpoint the first diverging line, record kind and
  field-level delta (exit 0 when identical, 1 when they diverge);
  ``--canonical`` compares the canonical byte-identity form the
  bench gates use (wall-clock stripped)::

      python -m repro.cli diff a.trace.jsonl b.trace.jsonl
      python -m repro.cli diff a.trace.jsonl b.trace.jsonl --canonical
      python -m repro.cli diff a.trace.jsonl b.trace.jsonl --format json

- ``metrics`` — dump a trace's metric snapshot, as Prometheus text
  exposition or JSON, or serve it over HTTP for a Prometheus
  scraper (``--serve`` re-reads the file per scrape, so pointing it
  at a live streamed trace serves the latest snapshot)::

      python -m repro.cli metrics run.trace.jsonl
      python -m repro.cli metrics run.trace.jsonl --format json
      python -m repro.cli metrics live.trace.jsonl --serve 9100

- ``serve`` / ``submit`` / ``status`` — the multi-tenant MLCD job
  service and its client (see ``docs/service.md``)::

      python -m repro.cli serve --artifacts runs/ --port 8080
      python -m repro.cli submit --url http://127.0.0.1:8080 \\
          --tenant alice --model char-rnn --dataset char-corpus --wait
      python -m repro.cli status --url http://127.0.0.1:8080
      python -m repro.cli status --url http://127.0.0.1:8080 --tenants
      python -m repro.cli status --url http://127.0.0.1:8080 --format json
      python -m repro.cli top --service http://127.0.0.1:8080
      python -m repro.cli top --service runs/service.trace.jsonl --once

- ``lint`` — run the repo's own static analyzer (see
  ``docs/static-analysis.md``)::

      python -m repro.cli lint src/repro
      python -m repro.cli lint src/repro --format json

- ``bench`` — time the search hot path (``BENCH_search.json``) or
  replay a synthetic multi-tenant workload against the job service
  (``--service`` → ``BENCH_service.json``; see ``docs/performance.md``
  and ``docs/service.md``)::

      python -m repro.cli bench -o BENCH_search.json
      python -m repro.cli bench --quick
      python -m repro.cli bench --validate BENCH_search.json
      python -m repro.cli bench --quick --compare --regression-threshold 0.15
      python -m repro.cli bench --service -o BENCH_service.json
      python -m repro.cli bench --service --quick --max-overhead 0.10
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

__all__ = ["main"]


def _figure_registry() -> dict[str, Callable[[], object]]:
    from repro.experiments import (
        ablation,
        acquisitions,
        comparisons,
        motivation,
        parallelism,
        robustness,
        scalability,
        scenarios_exp,
        sensitivity,
        spot_study,
        traces,
        warmstart,
        window_study,
    )

    return {
        "fig1a": motivation.fig1a_normalized_prices,
        "fig1b": motivation.fig1b_equal_cost_deployments,
        "fig2": motivation.fig2_exhaustive_vs_convbo,
        "fig3": motivation.fig3_scaling_curves,
        "fig5": motivation.fig5_convbo_step_gains,
        "fig9": scenarios_exp.fig9_scenario1,
        "fig10": scenarios_exp.fig10_scenario2,
        "fig11": scenarios_exp.fig11_scenario3,
        "fig12": comparisons.fig12_random_search,
        "fig13": comparisons.fig13_vs_paleo,
        "fig14": comparisons.fig14_vs_cherrypick,
        "fig15": traces.fig15_charrnn_trace,
        "fig16": traces.fig16_bert_tensorflow_trace,
        "fig17": traces.fig17_bert_mxnet_trace,
        "fig18": sensitivity.fig18_budget_sensitivity,
        "fig19": scalability.fig19_model_size_scaling,
        "ablation": ablation.ablation_study,
        "ablation-prior": ablation.ablation_prior_study,
        "acquisitions": acquisitions.acquisition_comparison,
        "robustness": robustness.noise_robustness_study,
        "parallelism": parallelism.parallel_profiling_study,
        "warmstart": warmstart.warm_start_study,
        "spot": spot_study.spot_bid_study,
        "window": window_study.profiling_window_study,
    }


def _cmd_figure(args: argparse.Namespace) -> int:
    registry = _figure_registry()
    if args.list or args.name is None:
        print("available figures:")
        for name in registry:
            print(f"  {name}")
        return 0
    try:
        fn = registry[args.name]
    except KeyError:
        print(
            f"unknown figure {args.name!r}; run with --list",
            file=sys.stderr,
        )
        return 2
    result = fn()
    print(result.render())
    return 0


def _cmd_deploy(args: argparse.Namespace) -> int:
    from repro.mlcd.scenario_analyzer import UserRequirements
    from repro.mlcd.system import MLCD

    if args.budget is not None and args.deadline_hours is not None:
        print("specify --budget or --deadline-hours, not both",
              file=sys.stderr)
        return 2
    for opt, value in (("--trace-out", args.trace_out),
                       ("--profile", args.profile)):
        if not value:
            continue
        # fail before the (expensive) deployment, not after
        from pathlib import Path

        parent = Path(value).resolve().parent
        if not parent.is_dir():
            print(
                f"{opt} directory does not exist: {parent}",
                file=sys.stderr,
            )
            return 2
    requirements = UserRequirements(
        deadline_hours=args.deadline_hours,
        budget_dollars=args.budget,
    )
    mlcd = MLCD(seed=args.seed, max_count=args.max_count,
                profile=bool(args.profile))
    writer = None
    server = None
    if args.stream:
        from repro.obs import TraceStreamWriter

        writer = TraceStreamWriter(args.stream, metrics=mlcd.recorder.metrics)
        mlcd.recorder.bus.subscribe(writer)
        print(f"streaming live trace to {args.stream}", file=sys.stderr)
    if args.serve_metrics is not None:
        from repro.obs import MetricsHTTPServer, registry_source

        server = MetricsHTTPServer(
            registry_source(mlcd.recorder.metrics), port=args.serve_metrics
        )
        server.start()
        print(f"serving Prometheus metrics at {server.url}",
              file=sys.stderr)
    try:
        report = mlcd.deploy(
            model=args.model,
            dataset=args.dataset,
            platform=args.platform,
            protocol=args.protocol,
            global_batch=args.batch,
            epochs=args.epochs,
            requirements=requirements,
        )
    finally:
        if server is not None:
            server.stop()
        if writer is not None:
            mlcd.recorder.bus.unsubscribe(writer)
            writer.close()
    print(report.summary())
    if args.trace_out:
        mlcd.last_trace.save(args.trace_out)
        print(f"wrote search trace to {args.trace_out}", file=sys.stderr)
    if args.profile:
        mlcd.recorder.prof.write(args.profile)
        print(f"wrote profile sidecar to {args.profile}", file=sys.stderr)
    if args.pareto:
        print("\npareto-efficient options observed:")
        for p in mlcd.pareto_options(report):
            print(
                f"  {str(p.deployment):>18s}: "
                f"{p.train_seconds / 3600:6.2f} h, "
                f"${p.train_dollars:8.2f}"
            )
    return 0 if report.constraint_met else 1


def _cmd_report(args: argparse.Namespace) -> int:
    import time
    from pathlib import Path

    if args.traces:
        return _report_traces(args)
    if args.html:
        print("--html requires trace arguments (figure reports are "
              "markdown only)", file=sys.stderr)
        return 2
    registry = _figure_registry()
    names = args.only if args.only else list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown figures: {unknown}; run `figure --list`",
              file=sys.stderr)
        return 2
    sections = [
        "# HeterBO / MLCD reproduction report",
        "",
        "Generated by `repro report`.  One section per paper figure "
        "(plus extensions); see EXPERIMENTS.md for the paper-vs-measured "
        "discussion.",
    ]
    for name in names:
        started = time.perf_counter()
        result = registry[name]()
        elapsed = time.perf_counter() - started
        print(f"[{name}] done in {elapsed:.1f}s", file=sys.stderr)
        sections.extend([
            "",
            f"## {name}",
            "",
            "```",
            result.render(),
            "```",
        ])
    text = "\n".join(sections) + "\n"
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _report_traces(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs import SearchTrace, render_comparison

    traces = []
    for path in args.traces:
        try:
            traces.append(SearchTrace.load(path))
        except FileNotFoundError:
            print(f"no such trace file: {path}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"invalid trace file {path}: {exc}", file=sys.stderr)
            return 2
    fmt = "html" if args.html else "markdown"
    text = render_comparison(traces, fmt=fmt)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs import SearchTrace, render_explain

    try:
        trace = SearchTrace.load(args.path)
    except FileNotFoundError:
        print(f"no such trace file: {args.path}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"invalid trace file {args.path}: {exc}", file=sys.stderr)
        return 2
    try:
        print(render_explain(trace, step=args.step, stop=args.stop))
    except ValueError as exc:
        print(f"{args.path}: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.cloud.catalog import default_catalog
    from repro.core.advisor import OfflineAdvisor
    from repro.core.scenarios import Scenario
    from repro.core.search_space import DeploymentSpace
    from repro.io import load_report

    if args.budget is not None and args.deadline_hours is not None:
        print("specify --budget or --deadline-hours, not both",
              file=sys.stderr)
        return 2
    if args.budget is not None:
        scenario = Scenario.fastest_within(args.budget)
    elif args.deadline_hours is not None:
        scenario = Scenario.cheapest_within(args.deadline_hours * 3600.0)
    else:
        scenario = Scenario.fastest()

    report = load_report(args.trace)
    space = DeploymentSpace(default_catalog(), max_count=args.max_count)
    advisor = OfflineAdvisor(report.search, space, args.samples)
    rec = advisor.recommend(scenario)
    print(scenario.describe())
    if rec is None:
        print("no measured deployment satisfies the constraint")
    else:
        print(
            f"recommendation: {rec.deployment} "
            f"({rec.measured_speed:.1f} samples/s measured) -> "
            f"{rec.train_seconds / 3600:.2f} h, ${rec.train_dollars:.2f}"
        )
    if args.suggest > 0:
        print("worth probing next:")
        for d in advisor.suggest_probes(args.suggest, scenario=scenario):
            print(f"  {d}")
    return 0 if rec is not None else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.perf.bench import (
        append_history,
        compare_history,
        render_summary,
        run_bench,
        validate_bench,
    )
    from repro.perf.workload import (
        SERVICE_BENCHMARK_NAME,
        validate_service_bench,
    )

    if args.validate:
        try:
            doc = json.loads(Path(args.validate).read_text())
        except FileNotFoundError:
            print(f"no such artifact: {args.validate}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"invalid JSON in {args.validate}: {exc}",
                  file=sys.stderr)
            return 2
        # dispatch on the artifact's own discriminator, so one
        # --validate call handles both artifact kinds
        if (isinstance(doc, dict)
                and doc.get("benchmark") == SERVICE_BENCHMARK_NAME):
            problems = validate_service_bench(doc)
            kind = "BENCH_service.json"
        else:
            problems = validate_bench(doc)
            kind = "BENCH_search.json"
        for problem in problems:
            print(f"{args.validate}: {problem}", file=sys.stderr)
        if not problems:
            print(f"{args.validate}: valid {kind} "
                  f"(schema v{doc['schema_version']})")
        return 2 if problems else 0

    if args.service:
        return _bench_service(args)

    doc = run_bench(
        quick=args.quick, seed=args.seed, max_steps=args.max_steps
    )
    print(render_summary(doc))
    if args.out:
        Path(args.out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.out}", file=sys.stderr)
    regressed = False
    if args.compare:
        try:
            lines, regressed = compare_history(
                doc, args.history, threshold=args.regression_threshold
            )
        except ValueError as exc:
            print(f"cannot compare against {args.history}: {exc}",
                  file=sys.stderr)
            return 2
        for line in lines:
            print(line)
    overhead_failed = False
    if args.max_overhead is not None:
        obs = doc.get("observability")
        # all three ratios must clear the ceiling: plain recording,
        # recording with the event bus + all live sinks attached, and
        # recording with the self-profiling ledger attached
        for key, label in (
            ("overhead_ratio", "recording"),
            ("bus_overhead_ratio", "live-telemetry (bus + sinks)"),
            ("profile_overhead_ratio", "self-profiling"),
        ):
            ratio = obs.get(key) if isinstance(obs, dict) else None
            if not isinstance(ratio, (int, float)):
                print(
                    f"--max-overhead: artifact carries no "
                    f"observability.{key}",
                    file=sys.stderr,
                )
                overhead_failed = True
            elif ratio - 1.0 > args.max_overhead:
                print(
                    f"--max-overhead: {label} overhead "
                    f"{(ratio - 1.0) * 100:.1f}% exceeds the "
                    f"{args.max_overhead * 100:.1f}% ceiling",
                    file=sys.stderr,
                )
                overhead_failed = True
    if not args.no_history:
        # history is best-effort bookkeeping: an unwritable file must
        # not fail a benchmark that itself succeeded
        try:
            entry = append_history(doc, args.history)
            print(f"appended seq={entry['seq']} to {args.history}",
                  file=sys.stderr)
        except (OSError, ValueError) as exc:
            print(f"warning: could not append to {args.history}: {exc}",
                  file=sys.stderr)
    # both identity axes gate the exit code: fast-lane decisions and
    # profiler-on trace bytes; on failure the artifact carries the
    # structural first divergence, rendered here for the human
    identity_ok = True
    for section, label in (
        ("identity", "identity gate (fast lane vs slow lane)"),
        ("profile", "profiler identity gate (profiling on vs off)"),
    ):
        body = doc.get(section)
        if not isinstance(body, dict) or body.get("byte_identical"):
            continue
        identity_ok = False
        print(f"{label} failed: traces are not byte-identical",
              file=sys.stderr)
        divergence = body.get("first_divergence")
        if divergence:
            from repro.obs import TraceDiff, render_diff

            print(render_diff(TraceDiff.from_dict(divergence)),
                  file=sys.stderr)
    ok = identity_ok and not regressed and not overhead_failed
    return 0 if ok else 1


def _bench_service(args: argparse.Namespace) -> int:
    """``repro bench --service``: the workload-replay benchmark."""
    import json
    from pathlib import Path

    from repro.perf.workload import (
        append_service_history,
        compare_service_history,
        render_service_summary,
        run_service_bench,
        validate_service_bench,
    )

    doc = run_service_bench(quick=args.quick, seed=args.seed)
    print(render_service_summary(doc))
    problems = validate_service_bench(doc)
    for problem in problems:
        print(f"service bench: {problem}", file=sys.stderr)
    if problems:
        _print_service_divergences(doc)
    if args.out:
        Path(args.out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.out}", file=sys.stderr)
    regressed = False
    if args.compare:
        try:
            lines, regressed = compare_service_history(
                doc, args.history, threshold=args.regression_threshold
            )
        except ValueError as exc:
            print(f"cannot compare against {args.history}: {exc}",
                  file=sys.stderr)
            return 2
        for line in lines:
            print(line)
    overhead_failed = False
    if args.max_overhead is not None:
        for key, label in (
            ("overhead_ratio", "service telemetry"),
            ("profile_overhead_ratio", "service self-profiling"),
        ):
            ratio = doc["observability"].get(key)
            if not isinstance(ratio, (int, float)):
                continue
            if ratio - 1.0 > args.max_overhead:
                print(
                    f"--max-overhead: {label} overhead "
                    f"{(ratio - 1.0) * 100:.1f}% exceeds the "
                    f"{args.max_overhead * 100:.1f}% ceiling",
                    file=sys.stderr,
                )
                overhead_failed = True
    if not args.no_history:
        try:
            entry = append_service_history(doc, args.history)
            print(f"appended seq={entry['seq']} to {args.history}",
                  file=sys.stderr)
        except (OSError, ValueError) as exc:
            print(f"warning: could not append to {args.history}: {exc}",
                  file=sys.stderr)
    ok = not problems and not regressed and not overhead_failed
    return 0 if ok else 1


def _print_service_divergences(doc: dict) -> None:
    """Render any first-divergence reports a failed service-bench
    artifact carries (identity / profile gates)."""
    import json

    from repro.obs import TraceDiff, render_diff

    reports = []
    identity = doc.get("identity") or {}
    profile = doc.get("profile") or {}
    for label, report in (
        ("service-stream divergence",
         identity.get("service_stream_first_divergence")),
        ("per-job divergence", identity.get("per_job_first_divergence")),
        ("profiler divergence", profile.get("first_divergence")),
    ):
        if isinstance(report, dict):
            reports.append((label, report))
    for label, report in reports:
        print(f"{label}:", file=sys.stderr)
        if report.get("reason") == "artifact-set":
            # per-job artifact sets differ — not a line-level diff
            print(json.dumps(report, indent=2, sort_keys=True),
                  file=sys.stderr)
        else:
            print(render_diff(TraceDiff.from_dict(report)),
                  file=sys.stderr)


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.follow:
        return _trace_follow(args)
    from repro.obs.render import render_span_tree

    trace = _load_trace(args.path)
    if trace is None:
        return 2
    print(trace.render())
    if args.spans:
        print()
        print(render_span_tree(trace.spans))
    return 0


def _trace_follow(args: argparse.Namespace) -> int:
    """Tail a (possibly still growing) streamed trace as a run log."""
    from repro.obs import STREAM_RECORD_KINDS, follow_trace, format_event

    kinds = None
    if args.kinds:
        kinds = {
            token.strip() for token in args.kinds.split(",") if token.strip()
        }
        unknown = sorted(kinds - STREAM_RECORD_KINDS)
        if unknown:
            print(
                f"--kinds: unknown record kind(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(STREAM_RECORD_KINDS))})",
                file=sys.stderr,
            )
            return 2
        if not kinds:
            print("--kinds: no record kinds given", file=sys.stderr)
            return 2
    try:
        for doc in follow_trace(args.path, timeout=args.timeout,
                                kinds=kinds):
            line = format_event(doc)
            if line is not None:
                print(line, flush=True)
    except KeyboardInterrupt:
        return 130
    except ValueError as exc:
        print(f"invalid trace file {args.path}: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.obs import LiveRunState, read_trace_events, render_top

    if args.service:
        return _top_service(args)

    state = LiveRunState()
    offset = 0
    torn = False
    first = True
    try:
        while True:
            try:
                docs, offset, torn = read_trace_events(args.path, offset)
            except FileNotFoundError:
                if args.once:
                    print(f"no such trace file: {args.path}",
                          file=sys.stderr)
                    return 2
                docs = []  # follower attached before the producer
            except ValueError as exc:
                print(f"invalid trace file {args.path}: {exc}",
                      file=sys.stderr)
                return 2
            state.apply_many(docs)
            panel = render_top(
                state, source=args.path, width=args.width, torn=torn
            )
            if args.once:
                print(panel, end="")
                return 0
            if not first:
                # clear + home; plain text otherwise, so piping works
                sys.stdout.write("\x1b[2J\x1b[H")
            first = False
            print(panel, end="", flush=True)
            if state.completed:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 130


def _top_service(args: argparse.Namespace) -> int:
    """``repro top --service``: cross-tenant service dashboard.

    The source is either a live daemon's base URL (polls
    ``/svcstats``) or a ``service.trace.jsonl`` path (folds the
    streamed ``kind=service`` records).  A service never "completes",
    so the live view refreshes until interrupted.
    """
    import time

    from repro.obs import load_service_state, render_service_top

    live = args.path.startswith(("http://", "https://"))
    if live:
        from repro.service import ServiceClient
        from repro.service.client import ServiceClientError

        client = ServiceClient(args.path)
    first = True
    try:
        while True:
            torn = False
            if live:
                try:
                    stats = client.svcstats()
                except (ServiceClientError, OSError) as exc:
                    print(f"cannot reach {args.path}: {exc}",
                          file=sys.stderr)
                    return 1
            else:
                try:
                    state, torn = load_service_state(args.path)
                except FileNotFoundError:
                    print(f"no such trace file: {args.path}",
                          file=sys.stderr)
                    return 2
                except ValueError as exc:
                    print(f"invalid trace file {args.path}: {exc}",
                          file=sys.stderr)
                    return 2
                stats = state.to_stats()
            panel = render_service_top(
                stats, source=args.path, width=args.width, torn=torn
            )
            if args.once:
                print(panel, end="")
                return 0
            if not first:
                sys.stdout.write("\x1b[2J\x1b[H")
            first = False
            print(panel, end="", flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 130


def _load_trace(path: str):
    """Load a trace or print the CLI's standard errors (returns None)."""
    from repro.obs import SearchTrace

    try:
        trace = SearchTrace.load(path)
    except FileNotFoundError:
        print(f"no such trace file: {path}", file=sys.stderr)
        return None
    except ValueError as exc:
        print(f"invalid trace file {path}: {exc}", file=sys.stderr)
        return None
    if trace.truncated:
        print(
            f"warning: {path} has a torn final line (producer crashed "
            f"or still writing); loaded the complete prefix",
            file=sys.stderr,
        )
    return trace


def _cmd_timeline(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs import render_timeline

    trace = _load_trace(args.path)
    if trace is None:
        return 2
    try:
        text = render_timeline(
            trace, fmt="html" if args.html else "text", width=args.width
        )
    except ValueError as exc:
        print(f"{args.path}: {exc}", file=sys.stderr)
        return 1
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _cmd_attribute(args: argparse.Namespace) -> int:
    from repro.obs import render_attribution

    trace = _load_trace(args.path)
    if trace is None:
        return 2
    try:
        print(render_attribution(trace), end="")
    except ValueError as exc:
        print(f"{args.path}: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import (
        folded_stacks,
        profile_from_trace,
        render_flamegraph_svg,
        render_profile,
        validate_profile,
    )

    path = Path(args.path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        print(f"no such file: {args.path}", file=sys.stderr)
        return 2
    # sidecar or trace?  A sidecar is one JSON object with
    # kind="profile"; anything else is treated as a trace artifact and
    # profiled at span granularity after the fact
    try:
        parsed = json.loads(text)
    except json.JSONDecodeError:
        parsed = None
    if isinstance(parsed, dict) and parsed.get("kind") == "profile":
        try:
            doc = validate_profile(parsed, source=str(path))
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
    else:
        trace = _load_trace(args.path)
        if trace is None:
            return 2
        doc = profile_from_trace(trace)
    if args.flame:
        Path(args.flame).write_text(
            render_flamegraph_svg(doc, title=f"repro profile — {path.name}")
        )
        print(f"wrote {args.flame}", file=sys.stderr)
        return 0
    if args.folded:
        print(folded_stacks(doc), end="")
        return 0
    print(render_profile(doc))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import diff_trace_texts, render_diff

    if args.canonical:
        from repro.perf.bench import canonical_trace_jsonl

        texts = []
        for path in (args.a, args.b):
            trace = _load_trace(path)
            if trace is None:
                return 2
            texts.append(canonical_trace_jsonl(trace))
    else:
        texts = []
        for path in (args.a, args.b):
            try:
                texts.append(Path(path).read_text())
            except FileNotFoundError:
                print(f"no such trace file: {path}", file=sys.stderr)
                return 2
    diff = diff_trace_texts(
        texts[0], texts[1], a_name=args.a, b_name=args.b
    )
    if args.format == "json":
        print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_diff(diff))
    return 0 if diff.identical else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.obs import snapshot_to_prometheus_text

    if args.serve is not None:
        return _metrics_serve(args)
    trace = _load_trace(args.path)
    if trace is None:
        return 2
    if not trace.metrics:
        print(f"{args.path}: trace has no metric snapshot",
              file=sys.stderr)
        return 1
    if args.format == "json":
        print(json.dumps(trace.metrics, indent=2, sort_keys=True))
    else:
        print(snapshot_to_prometheus_text(trace.metrics), end="")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.cloud.provider import AccountLimits
    from repro.service import (
        MLCDJobService,
        ServiceHTTPServer,
        TenantQuota,
    )

    service = MLCDJobService(
        artifacts_dir=args.artifacts,
        limits=AccountLimits(
            max_cpu_instances=args.max_cpu,
            max_gpu_instances=args.max_gpu,
        ),
        workers=args.workers,
    )
    for spec in args.tenant or []:
        name, _, budget = spec.partition("=")
        if not name:
            print(f"bad --tenant spec: {spec!r} (want NAME or NAME=BUDGET)",
                  file=sys.stderr)
            return 2
        quota = (
            TenantQuota(budget_dollars=float(budget)) if budget
            else TenantQuota()
        )
        service.register_tenant(name, quota)
    server = ServiceHTTPServer(service, port=args.port)
    service.start()
    print(f"serving MLCD jobs at {server.url} "
          f"(artifacts in {args.artifacts})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("service stopped", file=sys.stderr)
        return 130
    finally:
        server.stop()
        service.stop()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.service import JobSpec, ServiceClient
    from repro.service.client import ServiceClientError

    spec = JobSpec(
        tenant=args.tenant,
        model=args.model,
        dataset=args.dataset,
        platform=args.platform,
        epochs=args.epochs,
        deadline_hours=args.deadline_hours,
        budget_dollars=args.budget,
        strategy=args.strategy,
        seed=args.seed,
        max_steps=args.max_steps,
        max_count=args.max_count,
        catalog=tuple(args.catalog.split(",")) if args.catalog else None,
    )
    client = ServiceClient(args.url)
    try:
        job_id = client.submit(spec)
        if not args.wait:
            print(job_id)
            return 0
        status = client.wait(job_id, timeout=args.timeout)
        if status["state"] == "done":
            print(json.dumps(client.result(job_id), indent=2))
            return 0
        print(json.dumps(status, indent=2), file=sys.stderr)
        return 1
    except ServiceClientError as exc:
        print(f"submit refused: {exc}", file=sys.stderr)
        return 1
    except (TimeoutError, OSError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceClient
    from repro.service.client import ServiceClientError

    client = ServiceClient(args.url)
    try:
        if args.cancel:
            if not args.job_id:
                print("--cancel needs a job id", file=sys.stderr)
                return 2
            cancelled = client.cancel(args.job_id)
            print(f"{args.job_id}: "
                  f"{'cancelled' if cancelled else 'already inactive'}")
            return 0
        if args.format == "json":
            # machine view: the full /svcstats payload (tenants with
            # budget burn, queueing/dispatch latency, SLO attainment)
            print(json.dumps(client.svcstats(), indent=2,
                             sort_keys=True))
            return 0
        if args.tenants:
            tenants = client.svcstats()["tenants"]
            if not tenants:
                print("no tenants")
                return 0
            header = (f"{'TENANT':<16} {'ACTIVE':>6} {'JOBS':>5} "
                      f"{'SPENT':>10} {'BUDGET':>10} {'BURN':>6}")
            print(header)
            for name in sorted(tenants):
                row = tenants[name]
                budget = row.get("budget_dollars")
                burn = row.get("budget_burn")
                print(
                    f"{name:<16} {row['active_jobs']:>6} "
                    f"{row['jobs_total']:>5} "
                    f"{row['spent_dollars']:>10.2f} "
                    + (f"{budget:>10.2f}" if budget is not None
                       else f"{'-':>10}")
                    + " "
                    + (f"{burn:>6.0%}" if burn is not None
                       else f"{'-':>6}")
                )
            return 0
        if args.job_id:
            print(json.dumps(client.status(args.job_id), indent=2))
            return 0
        jobs = client.jobs()
        if not jobs:
            print("no jobs")
            return 0
        for job in jobs:
            line = (f"{job['id']}  {job['state']:<9}  "
                    f"tenant={job['tenant']}  trials={job['n_trials']}  "
                    f"${job['spent_dollars']:.2f}")
            if job.get("error"):
                line += f"  error: {job['error']}"
            print(line)
        return 0
    except ServiceClientError as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1


def _metrics_serve(args: argparse.Namespace) -> int:
    """Serve a trace file's metric snapshot over HTTP (re-read per
    scrape, so a streamed file being written concurrently serves its
    latest snapshot)."""
    from repro.obs import MetricsHTTPServer, trace_file_source

    # fail fast on an unreadable artifact (a mid-write torn tail is
    # fine; per-scrape reloads tolerate it)
    if _load_trace(args.path) is None:
        return 2
    server = MetricsHTTPServer(
        trace_file_source(args.path), port=args.serve
    )
    print(f"serving {args.path} at {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("metrics server stopped", file=sys.stderr)
        return 130
    finally:
        server.stop()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HeterBO/MLCD (IPDPS 2020) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figure = sub.add_parser(
        "figure", help="regenerate one of the paper's figures"
    )
    figure.add_argument("name", nargs="?", help="figure id, e.g. fig11")
    figure.add_argument(
        "--list", action="store_true", help="list available figures"
    )
    figure.set_defaults(func=_cmd_figure)

    deploy = sub.add_parser(
        "deploy", help="run an MLCD deployment on the simulated cloud"
    )
    deploy.add_argument("--model", required=True)
    deploy.add_argument("--dataset", required=True)
    deploy.add_argument("--platform", default="tensorflow")
    deploy.add_argument("--protocol", default=None)
    deploy.add_argument("--epochs", type=float, default=1.0)
    deploy.add_argument("--batch", type=int, default=None)
    deploy.add_argument("--budget", type=float, default=None,
                        help="scenario-3 budget in dollars")
    deploy.add_argument("--deadline-hours", type=float, default=None,
                        help="scenario-2 deadline in hours")
    deploy.add_argument("--seed", type=int, default=0)
    deploy.add_argument("--max-count", type=int, default=50)
    deploy.add_argument("--pareto", action="store_true",
                        help="also print the observed Pareto front")
    deploy.add_argument("--trace-out", default=None,
                        help="write the search-trace artifact (JSONL) here")
    deploy.add_argument("--stream", default=None, metavar="PATH",
                        help="stream the trace live to PATH (flushed per "
                             "event; tail with `repro trace --follow` or "
                             "`repro top`)")
    deploy.add_argument("--serve-metrics", type=int, default=None,
                        metavar="PORT",
                        help="serve live Prometheus /metrics on PORT "
                             "while the run is in flight (0 = ephemeral)")
    deploy.add_argument("--profile", default=None, metavar="PATH",
                        help="self-profile the run and write the "
                             "phase-timing ledger sidecar (profile.json) "
                             "here; trace bytes are unaffected "
                             "(render with `repro profile`)")
    deploy.set_defaults(func=_cmd_deploy)

    report = sub.add_parser(
        "report",
        help="regenerate every figure into one markdown report, or "
             "compare saved trace artifacts",
    )
    report.add_argument("traces", nargs="*", default=[],
                        help="trace artifacts to compare (omit for the "
                             "figure report)")
    report.add_argument("-o", "--output", default=None,
                        help="output path (stdout if omitted)")
    report.add_argument("--only", nargs="*", default=None,
                        help="subset of figure ids (figure mode)")
    report.add_argument("--html", action="store_true",
                        help="emit HTML instead of markdown (trace mode)")
    report.set_defaults(func=_cmd_report)

    explain = sub.add_parser(
        "explain",
        help="explain decisions recorded in a search-trace artifact",
    )
    explain.add_argument("path", help="path to a .trace.jsonl artifact")
    explain.add_argument("--step", type=int, default=None,
                         help="explain one search step in detail")
    explain.add_argument("--stop", action="store_true",
                         help="explain why the search stopped")
    explain.set_defaults(func=_cmd_explain)

    advise = sub.add_parser(
        "advise",
        help="re-plan from a saved trace (see `repro deploy`/repro.io)",
    )
    advise.add_argument("trace", help="path to a saved report JSON")
    advise.add_argument("--budget", type=float, default=None)
    advise.add_argument("--deadline-hours", type=float, default=None)
    advise.add_argument("--samples", type=int, required=True,
                        help="total training samples of the new job")
    advise.add_argument("--max-count", type=int, default=50)
    advise.add_argument("--suggest", type=int, default=0,
                        help="also suggest K unmeasured probes")
    advise.set_defaults(func=_cmd_advise)

    trace = sub.add_parser(
        "trace",
        help="inspect a search-trace artifact (see `deploy --trace-out`)",
    )
    trace.add_argument("path", help="path to a .trace.jsonl artifact")
    trace.add_argument("--spans", action="store_true",
                       help="also print the span tree")
    trace.add_argument("--follow", action="store_true",
                       help="tail a (possibly still growing) streamed "
                            "trace, printing one line per event")
    trace.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="--follow: stop after this long with no new "
                            "events (default: wait forever)")
    trace.add_argument("--kinds", default=None, metavar="K1,K2,...",
                       help="--follow: only show these record kinds "
                            "(comma-separated, e.g. decision,fleet)")
    trace.set_defaults(func=_cmd_trace)

    top = sub.add_parser(
        "top",
        help="live dashboard over a streamed trace file "
             "(see `deploy --stream`)",
    )
    top.add_argument("path", help="path to a (streamed) .trace.jsonl file; "
                                  "with --service, a daemon base URL or a "
                                  "service.trace.jsonl path")
    top.add_argument("--service", action="store_true",
                     help="cross-tenant service dashboard: poll a "
                          "daemon's /svcstats (URL) or fold a streamed "
                          "service trace (path)")
    top.add_argument("--once", action="store_true",
                     help="render a single snapshot and exit (non-tty/CI)")
    top.add_argument("--interval", type=float, default=1.0,
                     metavar="SECONDS",
                     help="refresh interval (default: 1.0)")
    top.add_argument("--width", type=int, default=72,
                     help="panel width in columns (default: 72)")
    top.set_defaults(func=_cmd_top)

    timeline = sub.add_parser(
        "timeline",
        help="render the per-instance fleet Gantt from a trace's "
             "fleet events (docs/observability.md)",
    )
    timeline.add_argument("path", help="path to a .trace.jsonl artifact")
    timeline.add_argument("--html", action="store_true",
                          help="emit a self-contained HTML page instead "
                               "of text")
    timeline.add_argument("--width", type=int, default=60,
                          help="text track width in columns (text mode)")
    timeline.add_argument("-o", "--output", default=None,
                          help="output path (stdout if omitted)")
    timeline.set_defaults(func=_cmd_timeline)

    attribute = sub.add_parser(
        "attribute",
        help="break the billing ledger down by instance type, phase "
             "and step via the trace's fleet events",
    )
    attribute.add_argument("path", help="path to a .trace.jsonl artifact")
    attribute.set_defaults(func=_cmd_attribute)

    profile = sub.add_parser(
        "profile",
        help="render a self-profiling phase ledger as a table, folded "
             "stacks, or a flamegraph SVG (docs/performance.md)",
    )
    profile.add_argument("path",
                         help="a profile.json sidecar (see `deploy "
                              "--profile`) or a .trace.jsonl artifact "
                              "(span-level ledger)")
    profile_out = profile.add_mutually_exclusive_group()
    profile_out.add_argument("--folded", action="store_true",
                             help="emit folded-stack lines "
                                  "(`path µs`, flamegraph.pl input)")
    profile_out.add_argument("--flame", default=None, metavar="OUT.svg",
                             help="write a self-contained flamegraph "
                                  "SVG here")
    profile.set_defaults(func=_cmd_profile)

    diff = sub.add_parser(
        "diff",
        help="structurally compare two trace artifacts; pinpoints the "
             "first diverging line and field (exit 1 on divergence)",
    )
    diff.add_argument("a", help="left-hand .trace.jsonl artifact")
    diff.add_argument("b", help="right-hand .trace.jsonl artifact")
    diff.add_argument("--canonical", action="store_true",
                      help="compare the canonical byte-identity form "
                           "(wall-clock stripped) the bench gates use")
    diff.add_argument("--format", choices=("text", "json"),
                      default="text",
                      help="json: machine-readable report "
                           "(what gates embed on failure)")
    diff.set_defaults(func=_cmd_diff)

    metrics = sub.add_parser(
        "metrics",
        help="dump a trace's metric snapshot (Prometheus text or JSON)",
    )
    metrics.add_argument("path", help="path to a .trace.jsonl artifact")
    metrics.add_argument("--format", choices=("prom", "json"),
                         default="prom",
                         help="output format (default: prom)")
    metrics.add_argument("--serve", type=int, default=None, metavar="PORT",
                         help="serve the snapshot over HTTP instead of "
                              "printing it (re-read per scrape; 0 = "
                              "ephemeral port, printed on stdout)")
    metrics.set_defaults(func=_cmd_metrics)

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant MLCD job service (docs/service.md)",
    )
    serve.add_argument("--artifacts", required=True, metavar="DIR",
                       help="directory for per-job trace artifacts")
    serve.add_argument("--port", type=int, default=0,
                       help="HTTP port (0 = ephemeral, printed on stdout)")
    serve.add_argument("--workers", type=int, default=2,
                       help="probe dispatches per scheduler tick "
                            "(default: 2)")
    serve.add_argument("--max-cpu", type=int, default=100,
                       help="shared CPU-instance capacity (default: 100)")
    serve.add_argument("--max-gpu", type=int, default=50,
                       help="shared GPU-instance capacity (default: 50)")
    serve.add_argument("--tenant", action="append", metavar="NAME[=BUDGET]",
                       help="pre-register a tenant, optionally with a "
                            "dollar budget (repeatable)")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a job to a running `repro serve` service"
    )
    submit.add_argument("--url", required=True,
                        help="service base URL (printed by `repro serve`)")
    submit.add_argument("--tenant", required=True)
    submit.add_argument("--model", required=True)
    submit.add_argument("--dataset", required=True)
    submit.add_argument("--platform", default="tensorflow")
    submit.add_argument("--epochs", type=float, default=1.0)
    submit.add_argument("--deadline-hours", type=float, default=None,
                        help="scenario-2 deadline in hours")
    submit.add_argument("--budget", type=float, default=None,
                        help="scenario-3 budget in dollars")
    submit.add_argument("--strategy", default="heterbo",
                        choices=("heterbo", "convbo", "parallel-heterbo"))
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--max-steps", type=int, default=30)
    submit.add_argument("--max-count", type=int, default=8)
    submit.add_argument("--catalog", default=None, metavar="T1,T2,...",
                        help="restrict the instance catalog (comma-"
                             "separated type names)")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes and print its "
                             "result JSON")
    submit.add_argument("--timeout", type=float, default=120.0,
                        help="--wait deadline in seconds (default: 120)")
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser(
        "status", help="query a running `repro serve` service"
    )
    status.add_argument("--url", required=True,
                        help="service base URL (printed by `repro serve`)")
    status.add_argument("job_id", nargs="?", default=None,
                        help="job id (omit to list all jobs)")
    status.add_argument("--cancel", action="store_true",
                        help="cancel the given job")
    status.add_argument("--tenants", action="store_true",
                        help="per-tenant table: active/total jobs, spend "
                             "vs budget and budget burn")
    status.add_argument("--format", choices=("table", "json"),
                        default="table",
                        help="json: print the service's full /svcstats "
                             "payload instead of a table")
    status.set_defaults(func=_cmd_status)

    from repro.analysis.cli import add_lint_arguments

    lint = sub.add_parser(
        "lint",
        help="run the repo's static analyzer (docs/static-analysis.md)",
    )
    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    bench = sub.add_parser(
        "bench",
        help="benchmark the search hot path or the job service "
             "(docs/performance.md, docs/service.md)",
    )
    bench.add_argument("--service", action="store_true",
                       help="run the service workload-replay benchmark "
                            "(Poisson arrivals, heavy-tailed sizes) "
                            "instead of the search hot path")
    bench.add_argument("--quick", action="store_true",
                       help="small space / few steps (CI smoke mode)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--max-steps", type=int, default=40)
    bench.add_argument("-o", "--out", default=None,
                       help="write the BENCH_search.json artifact here")
    bench.add_argument("--validate", default=None, metavar="PATH",
                       help="validate an existing artifact instead of "
                            "running the benchmark")
    bench.add_argument("--history", default="benchmarks/perf/BENCH_history.jsonl",
                       metavar="PATH",
                       help="benchmark history file (JSONL, appended "
                            "after each run)")
    bench.add_argument("--no-history", action="store_true",
                       help="do not append this run to the history file")
    bench.add_argument("--compare", action="store_true",
                       help="diff against the last comparable history "
                            "entry; regressions fail the run")
    bench.add_argument("--regression-threshold", type=float, default=0.10,
                       metavar="FRACTION",
                       help="relative slowdown tolerated by --compare "
                            "(default 0.10 = 10%%)")
    bench.add_argument("--max-overhead", type=float, default=None,
                       metavar="FRACTION",
                       help="fail if the recording overhead ratio "
                            "exceeds 1 + FRACTION (e.g. 0.10 = 10%%)")
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
