"""Run-health watchdog: streaming anomaly rules over a live search.

The watchdog consumes one :class:`StepHealth` snapshot per engine
decision and evaluates four rules:

``budget-burn``
    the constrained resource is ``budget_burn_fraction`` consumed and
    the search has not stopped yet.
``ei-stagnation``
    the best feasible EI has been flat (relative spread within
    ``ei_rel_tol``) over the last ``ei_window`` decisions.
``surrogate-degradation``
    the GP Gram matrix condition number crossed
    ``gram_condition_limit``, or the per-observation log marginal
    likelihood declined strictly over the last ``lml_window`` refits.
``protective-margin``
    the slack between consumption, the incumbent's protected
    completion cost and the constraint limit fell below
    ``protective_margin_fraction`` of the limit — the protective stop
    is about to fire.

Rules are edge-triggered: an anomaly is emitted when a rule first
trips, and re-armed only after the condition clears, so a rule that
stays bad for ten steps produces one anomaly, not ten.  Each anomaly
becomes a zero-duration ``anomaly`` span (it lands inside the current
``step`` span, so traces show *when* health degraded) plus a
``watchdog.anomalies_total{rule=...}`` counter increment.

Like the rest of ``repro.obs``, the watchdog only reads values the
search already computed — it cannot perturb decisions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NOOP_TRACER, Tracer

__all__ = [
    "NOOP_WATCHDOG",
    "Anomaly",
    "StepHealth",
    "Watchdog",
    "WatchdogConfig",
]


@dataclass(frozen=True, slots=True)
class WatchdogConfig:
    """Thresholds for the streaming health rules."""

    budget_burn_fraction: float = 0.8
    ei_window: int = 3
    ei_rel_tol: float = 0.05
    gram_condition_limit: float = 1e8
    lml_window: int = 3
    protective_margin_fraction: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.budget_burn_fraction <= 1.0:
            raise ValueError(
                f"budget_burn_fraction must be in (0, 1], "
                f"got {self.budget_burn_fraction}"
            )
        if self.ei_window < 2:
            raise ValueError(f"ei_window must be >= 2, got {self.ei_window}")
        if self.lml_window < 2:
            raise ValueError(f"lml_window must be >= 2, got {self.lml_window}")
        if self.ei_rel_tol < 0.0:
            raise ValueError(f"ei_rel_tol must be >= 0, got {self.ei_rel_tol}")
        if self.gram_condition_limit <= 1.0:
            raise ValueError(
                f"gram_condition_limit must be > 1, "
                f"got {self.gram_condition_limit}"
            )
        if not 0.0 <= self.protective_margin_fraction < 1.0:
            raise ValueError(
                f"protective_margin_fraction must be in [0, 1), "
                f"got {self.protective_margin_fraction}"
            )


@dataclass(frozen=True, slots=True)
class StepHealth:
    """One decision's worth of health inputs.

    ``consumed`` / ``limit`` / ``incumbent_cost`` are in the scenario's
    constraint units (dollars or seconds — the watchdog only ever forms
    ratios, so it never mixes them).  ``step=0`` means "assign the next
    sequential step number".
    """

    step: int = 0
    consumed: float | None = None
    limit: float | None = None
    best_feasible_ei: float | None = None
    any_feasible: bool = True
    incumbent_cost: float | None = None
    gram_condition: float | None = None
    log_marginal_likelihood: float | None = None
    n_observations: int = 0


@dataclass(frozen=True, slots=True)
class Anomaly:
    """One fired rule: what tripped, when, and the numbers behind it."""

    rule: str
    step: int
    message: str
    detail: dict[str, Any] = field(default_factory=dict)


class Watchdog:
    """Evaluates the health rules and emits anomaly spans + metrics."""

    enabled = True

    def __init__(
        self,
        config: WatchdogConfig | None = None,
        *,
        tracer: Tracer = NOOP_TRACER,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else WatchdogConfig()
        self._tracer = tracer
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._anomalies: list[Anomaly] = []
        self._active: set[str] = set()
        self._ei_history: list[float] = []
        self._lml_history: list[float] = []
        self._n_steps = 0

    @property
    def anomalies(self) -> tuple[Anomaly, ...]:
        return tuple(self._anomalies)

    def observe(self, health: StepHealth) -> list[Anomaly]:
        """Feed one decision's health; returns the anomalies that fired."""
        self._n_steps += 1
        step = health.step if health.step > 0 else self._n_steps
        fired: list[Anomaly] = []
        for rule, tripped, message, detail in self._evaluate(health):
            if tripped and rule not in self._active:
                self._active.add(rule)
                anomaly = Anomaly(rule=rule, step=step, message=message, detail=detail)
                self._anomalies.append(anomaly)
                fired.append(anomaly)
                self._emit(anomaly)
            elif not tripped:
                self._active.discard(rule)
        return fired

    def _emit(self, anomaly: Anomaly) -> None:
        attributes: dict[str, Any] = {
            "rule": anomaly.rule,
            "step": anomaly.step,
            "message": anomaly.message,
        }
        for key, value in anomaly.detail.items():
            attributes[f"detail.{key}"] = value
        with self._tracer.span("anomaly", attributes):
            pass
        self._metrics.counter("watchdog.anomalies_total").inc(rule=anomaly.rule)

    def _evaluate(
        self, health: StepHealth
    ) -> list[tuple[str, bool, str, dict[str, Any]]]:
        cfg = self.config
        rules: list[tuple[str, bool, str, dict[str, Any]]] = []

        # budget-burn: fraction of the constrained resource consumed.
        if (
            health.limit is not None
            and health.limit > 0.0
            and health.consumed is not None
        ):
            fraction = health.consumed / health.limit
            rules.append(
                (
                    "budget-burn",
                    fraction >= cfg.budget_burn_fraction,
                    f"{fraction:.0%} of the constraint limit consumed "
                    f"(threshold {cfg.budget_burn_fraction:.0%})",
                    {"fraction": round(fraction, 6)},
                )
            )

        # ei-stagnation: best feasible EI flat over a window.
        ei = health.best_feasible_ei
        if ei is not None and math.isfinite(ei):
            self._ei_history.append(float(ei))
        window = self._ei_history[-cfg.ei_window :]
        stagnant = (
            len(window) >= cfg.ei_window
            and min(window) > 0.0
            and (max(window) - min(window)) <= cfg.ei_rel_tol * max(window)
        )
        rules.append(
            (
                "ei-stagnation",
                stagnant,
                f"best feasible EI flat over the last {cfg.ei_window} decisions "
                f"(relative spread <= {cfg.ei_rel_tol:g})",
                {"window": [round(v, 6) for v in window]},
            )
        )

        # surrogate-degradation: ill-conditioned Gram, or LML trending down.
        condition = health.gram_condition
        condition_bad = condition is not None and (
            not math.isfinite(condition) or condition >= cfg.gram_condition_limit
        )
        if health.log_marginal_likelihood is not None and health.n_observations > 0:
            self._lml_history.append(
                health.log_marginal_likelihood / health.n_observations
            )
        trend = self._lml_history[-cfg.lml_window :]
        lml_bad = len(trend) >= cfg.lml_window and all(
            later < earlier for earlier, later in zip(trend, trend[1:])
        )
        if condition_bad:
            message = (
                f"GP Gram condition number crossed {cfg.gram_condition_limit:.0e}"
            )
        else:
            message = (
                f"per-observation log marginal likelihood declined over the "
                f"last {cfg.lml_window} fits"
            )
        detail: dict[str, Any] = {
            "lml_per_obs": [round(v, 6) for v in trend],
        }
        if condition is not None and math.isfinite(condition):
            detail["gram_condition"] = condition
        rules.append(
            ("surrogate-degradation", condition_bad or lml_bad, message, detail)
        )

        # protective-margin: slack before the protective stop must fire.
        if (
            health.limit is not None
            and health.limit > 0.0
            and health.consumed is not None
            and health.incumbent_cost is not None
            and health.incumbent_cost > 0.0
        ):
            slack = (
                health.limit - health.consumed - health.incumbent_cost
            ) / health.limit
            rules.append(
                (
                    "protective-margin",
                    slack < cfg.protective_margin_fraction,
                    f"slack before the protective stop is {slack:.1%} of the "
                    f"limit (threshold {cfg.protective_margin_fraction:.0%})",
                    {"slack_fraction": round(slack, 6)},
                )
            )

        return rules


class _NoopWatchdog(Watchdog):
    """Disabled watchdog; ``observe`` never evaluates or emits."""

    enabled = False

    def observe(self, health: StepHealth) -> list[Anomaly]:
        return []


#: Shared disabled watchdog — the ``SearchContext`` default.
NOOP_WATCHDOG = _NoopWatchdog()
