"""In-process event bus: one totally-ordered stream of run telemetry.

Every observability surface in :mod:`repro.obs` — spans, metric
updates, decision records, fleet lifecycle events, heartbeat/progress
events, watchdog anomalies (which travel as zero-duration ``anomaly``
spans) — publishes onto a single :class:`EventBus`.  Each publication
becomes a :class:`BusEvent` stamped with the *simulated-clock*
timestamp and a monotonic sequence number assigned in publish order,
so the stream is totally ordered even when many events share one
simulated timestamp (computation does not advance the simulated
clock).

Sinks subscribe with a plain callable; the bus fans each event out
synchronously, in subscription order.  Shipped sinks:

- :class:`~repro.obs.stream.TraceStreamWriter` — incremental JSONL
  trace writer, flushed per event so the artifact is tailable
  mid-run (``repro trace --follow``, ``repro top``);
- :class:`~repro.obs.promhttp.MetricsHTTPServer` — live Prometheus
  ``/metrics`` endpoint (it reads the registry rather than consuming
  bus events, but is enabled through the same wiring).

Design rules (shared with the rest of ``repro.obs``):

- **Read-only.**  Publishing copies values the search already
  computed and never feeds anything back, so a run with the bus on
  makes byte-identical decisions to one with it off (asserted in
  ``tests/obs/test_bus.py``).
- **No-op by default.**  :data:`NOOP_BUS` is the ``SearchContext``
  default; instrumented hot paths pay one attribute load and a
  falsy ``enabled`` check.
- **Deterministic.**  Sequence numbers count publications; the
  timebase is the injected clock.  No wall-clock reads happen on the
  publish path, so two identical seeded runs publish identical event
  streams (up to ``wall_seconds`` on span-finish payloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = [
    "NOOP_BUS",
    "BusEvent",
    "EventBus",
    "ProgressEvent",
    "ZERO_CLOCK",
]


def ZERO_CLOCK() -> float:
    """Default bus timebase: always 0.0.

    The previous default was ``time.monotonic``, which leaked
    wall-clock readings into ``BusEvent.time`` — the ordered stream a
    trace serialises — whenever a caller forgot to inject the
    simulated clock (RL103 determinism taint).  A constant default
    keeps an un-wired bus fully deterministic: ordering is carried by
    ``seq``, and real runs always inject the simulated cloud clock.
    """
    return 0.0

#: Event kinds published by the built-in instrumentation.
BUS_EVENT_KINDS = (
    "span-start",
    "span",
    "metric",
    "decision",
    "fleet",
    "service",
    "progress",
    "summary",
)


@dataclass(frozen=True, slots=True)
class BusEvent:
    """One publication on the bus.

    Attributes
    ----------
    seq:
        1-based publish order — the total-order tie-break for events
        sharing a simulated timestamp.
    time:
        Bus-clock timestamp (the simulated cloud clock in real runs).
    kind:
        Payload discriminator (``"span"``, ``"decision"``,
        ``"fleet"``, ``"progress"``, ``"metric"``, ``"span-start"``).
    data:
        The payload dict, JSON-serialisable.
    """

    seq: int
    time: float
    kind: str
    data: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """Flat serialisable form: envelope keys merged over the payload."""
        return {"kind": self.kind, "seq": self.seq, "time": self.time, **self.data}


@dataclass(frozen=True, slots=True)
class ProgressEvent:
    """One heartbeat from the search loop, as stored in a trace.

    The payload ``data`` is exactly what the emitter published (see
    ``docs/observability.md`` for the schema: ``step``, ``phase``,
    ``deployment``, ``spent_usd``, ``elapsed_s``, ``consumed``,
    ``limit``, ``incumbent``, ``incumbent_objective``), so a
    streamed ``kind=progress`` line and a finalised one serialise
    byte-identically.
    """

    seq: int
    time: float
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"seq": self.seq, "time": self.time, **self.data}

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ProgressEvent":
        data = {
            k: v for k, v in doc.items() if k not in ("kind", "seq", "time")
        }
        return cls(seq=int(doc["seq"]), time=float(doc["time"]), data=data)

    # -- convenience views (all optional payload keys) -----------------
    @property
    def step(self) -> int | None:
        return self.data.get("step")

    @property
    def phase(self) -> str | None:
        return self.data.get("phase")

    @property
    def spent_usd(self) -> float | None:
        return self.data.get("spent_usd")

    @property
    def elapsed_s(self) -> float | None:
        return self.data.get("elapsed_s")

    @property
    def incumbent(self) -> str | None:
        return self.data.get("incumbent")


class EventBus:
    """Totally-ordered fan-out of run telemetry to subscribed sinks.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time in seconds.
        Pass the simulated clock (``lambda: cloud.clock.now``) so
        event timestamps reconcile with billed time; defaults to
        :func:`ZERO_CLOCK` (constant 0.0) so an un-wired bus never
        reads the wall clock — ``seq`` alone carries the ordering.
    """

    enabled: bool = True

    def __init__(self, *, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock if clock is not None else ZERO_CLOCK
        self._sinks: list[Callable[[BusEvent], None]] = []
        self._seq = 0
        self._progress: list[BusEvent] = []
        self._accepts_all = False
        self._wanted: frozenset[str] = frozenset()

    # -- wiring --------------------------------------------------------
    def subscribe(self, sink: Callable[[BusEvent], None]) -> None:
        """Attach a sink; events fan out in subscription order.

        A sink may declare an ``interested_kinds`` attribute (a set of
        kind strings) to let the bus skip *constructing* events of
        kinds no subscriber wants — high-frequency ``metric`` updates
        in particular.  Sinks without the attribute receive every
        kind.  Sequence numbers advance for skipped publications too,
        so the numbering a sink observes does not depend on which
        other sinks are attached.
        """
        self._sinks.append(sink)
        self._rebuild_interest()

    def unsubscribe(self, sink: Callable[[BusEvent], None]) -> None:
        """Detach a previously subscribed sink (no-op if absent)."""
        if sink in self._sinks:
            self._sinks.remove(sink)
            self._rebuild_interest()

    def _rebuild_interest(self) -> None:
        wanted: set[str] = set()
        self._accepts_all = False
        for sink in self._sinks:
            kinds = getattr(sink, "interested_kinds", None)
            if kinds is None:
                self._accepts_all = True
                return
            wanted.update(kinds)
        self._wanted = frozenset(wanted)

    # -- publication ---------------------------------------------------
    def publish(self, kind: str, data: Mapping[str, Any]) -> BusEvent | None:
        """Stamp and fan out one event; returns it.

        Returns ``None`` (without constructing the event) when no
        subscribed sink wants ``kind`` — except ``progress`` events,
        which are always retained for the finalised trace.
        """
        self._seq += 1
        if kind != "progress" and not self._accepts_all \
                and kind not in self._wanted:
            return None
        event = BusEvent(
            seq=self._seq, time=self._clock(), kind=kind, data=dict(data)
        )
        if kind == "progress":
            self._progress.append(event)
        for sink in self._sinks:
            sink(event)
        return event

    # -- inspection ----------------------------------------------------
    @property
    def seq(self) -> int:
        """Sequence number of the most recent event (0 before any)."""
        return self._seq

    @property
    def progress_events(self) -> tuple[ProgressEvent, ...]:
        """Retained heartbeat events, in publish order.

        The bus keeps progress events (only — spans, decisions and
        fleet events already live in their own recorders) so
        :meth:`~repro.obs.recorder.RunRecorder.finalize` can fold
        them into the trace artifact.
        """
        return tuple(
            ProgressEvent(seq=e.seq, time=e.time, data=dict(e.data))
            for e in self._progress
        )


class _NoopBus(EventBus):
    """Disabled bus: publishing is an immediate no-op.

    Stateless by construction, so the module singleton is safe to
    share as the ``SearchContext`` default.  ``subscribe`` raises —
    attaching a sink to the no-op bus is always a wiring bug.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=ZERO_CLOCK)

    def subscribe(self, sink: Callable[[BusEvent], None]) -> None:
        raise RuntimeError(
            "cannot subscribe to the no-op bus; construct an EventBus "
            "(e.g. RunRecorder(bus=True)) first"
        )

    def publish(self, kind: str, data: Mapping[str, Any]) -> BusEvent:  # type: ignore[override]
        return None  # type: ignore[return-value]


#: Shared disabled bus — the ``SearchContext`` default.
NOOP_BUS = _NoopBus()
