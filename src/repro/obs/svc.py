"""Service-scope telemetry: job-lifecycle events, metrics and SLOs.

Per-job recorders (:mod:`repro.obs.recorder`) make one search
observable; nothing in the repo could see the *service* — queueing
delay, admission rejections, capacity contention and fair-share drift
across tenants happen between jobs, outside any single job's trace.
:class:`ServiceLog` closes that gap: the job daemon
(:class:`~repro.service.daemon.MLCDJobService`) emits one
:class:`ServiceEvent` per lifecycle transition (``submitted`` →
``started`` → ``dispatched`` → ``done`` / ``failed`` / ``cancelled``
/ ``budget-stopped``, plus ``rejected`` at admission and ``deferred``
on capacity waits), and :class:`SLOTracker` evaluates declarative
latency / error-budget targets against the service metrics registry on
every scheduler tick, edge-triggered like the per-run
:class:`~repro.obs.watchdog.Watchdog`.

Design rules (shared with :mod:`repro.obs.fleet`):

- **Read-only.**  Recording never feeds back into scheduling: the log
  only copies values the daemon already computed, so a service with
  telemetry on schedules byte-identically to one with it off.
- **No-op by default.**  ``NOOP_SERVICE`` is a stateless singleton;
  the scheduler's hot path pays one attribute load and a return.
- **Deterministic timebase.**  Event times come from the daemon's
  :class:`~repro.cloud.clock.LogicalClock`, so two identical replays
  produce byte-identical ``kind=service`` streams.

Events serialise into the daemon's own streamed trace artifact as
``kind=service`` JSON lines (trace schema v5); each event dict carries
its own ``v`` field so the service schema can evolve independently of
the trace envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.obs.bus import NOOP_BUS, EventBus

__all__ = [
    "DEFAULT_SLO_TARGETS",
    "NOOP_SERVICE",
    "SERVICE_EVENT_KINDS",
    "SERVICE_EVENT_VERSION",
    "SLOTarget",
    "SLOTracker",
    "ServiceEvent",
    "ServiceLog",
]

#: Version of the per-event schema (the ``v`` key on serialised events).
SERVICE_EVENT_VERSION = 1

#: Recognised job-lifecycle transitions (plus the SLO-breach overlay).
SERVICE_EVENT_KINDS = (
    "submitted",
    "rejected",
    "started",
    "dispatched",
    "deferred",
    "done",
    "failed",
    "cancelled",
    "budget-stopped",
    "slo-breach",
)

#: Terminal states a job can reach (mirrors ``JobState`` spellings).
TERMINAL_EVENT_KINDS = ("done", "failed", "cancelled", "budget-stopped")


@dataclass(frozen=True, slots=True)
class ServiceEvent:
    """One job-lifecycle transition at service scope.

    Attributes
    ----------
    seq:
        1-based emission order within the service (stable tie-break
        for events sharing a tick timestamp).
    time:
        Service :class:`~repro.cloud.clock.LogicalClock` timestamp in
        seconds.
    event:
        One of :data:`SERVICE_EVENT_KINDS`.
    job / tenant:
        The job id and owning tenant.  ``rejected`` events carry only
        the tenant (no job was created); ``slo-breach`` events carry
        neither.
    reason:
        Short machine-readable cause on ``rejected`` / ``failed`` /
        ``deferred`` / ``budget-stopped`` events (e.g. ``"quota"``,
        ``"budget"``, ``"oversized-demand"``, ``"capacity"``).
    step:
        The job's 1-based probe-dispatch count (``dispatched`` only).
    cpu / gpu:
        Instance demand of the probe (``dispatched`` / ``deferred``).
    wait_seconds:
        Dispatch latency: simulated seconds the probe waited on shared
        capacity before dispatch (0.0 when it dispatched in the tick
        it became ready).
    queue_delay_seconds:
        Submission→first-dispatch delay, emitted once per job on its
        first ``dispatched`` event.
    dollars:
        The job's private-ledger spend, on terminal events.
    slo / value / threshold:
        Breach payload on ``slo-breach`` events: the target's name,
        the observed value and the declared threshold.
    """

    seq: int
    time: float
    event: str
    job: str | None = None
    tenant: str | None = None
    reason: str | None = None
    step: int | None = None
    cpu: int | None = None
    gpu: int | None = None
    wait_seconds: float | None = None
    queue_delay_seconds: float | None = None
    dollars: float | None = None
    slo: str | None = None
    value: float | None = None
    threshold: float | None = None

    def __post_init__(self) -> None:
        if self.event not in SERVICE_EVENT_KINDS:
            raise ValueError(
                f"unknown service event {self.event!r}; expected one of "
                f"{SERVICE_EVENT_KINDS}"
            )
        if self.seq < 1:
            raise ValueError(f"seq must be >= 1, got {self.seq}")

    def to_dict(self) -> dict[str, Any]:
        """Serialisable form; ``None`` fields are dropped."""
        doc: dict[str, Any] = {
            "v": SERVICE_EVENT_VERSION,
            "seq": self.seq,
            "time": self.time,
            "event": self.event,
        }
        for key in (
            "job",
            "tenant",
            "reason",
            "step",
            "cpu",
            "gpu",
            "wait_seconds",
            "queue_delay_seconds",
            "dollars",
            "slo",
            "value",
            "threshold",
        ):
            value = getattr(self, key)
            if value is not None:
                doc[key] = value
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ServiceEvent":
        """Rebuild an event from its serialised form.

        Tolerates unknown keys (forward compatibility within the
        service schema) but requires the core identity fields.
        """
        return cls(
            seq=int(doc["seq"]),
            time=float(doc["time"]),
            event=str(doc["event"]),
            job=doc.get("job"),
            tenant=doc.get("tenant"),
            reason=doc.get("reason"),
            step=doc.get("step"),
            cpu=doc.get("cpu"),
            gpu=doc.get("gpu"),
            wait_seconds=doc.get("wait_seconds"),
            queue_delay_seconds=doc.get("queue_delay_seconds"),
            dollars=doc.get("dollars"),
            slo=doc.get("slo"),
            value=doc.get("value"),
            threshold=doc.get("threshold"),
        )


class ServiceLog:
    """Collects :class:`ServiceEvent`s and updates service metrics.

    The daemon calls :meth:`record` at every lifecycle transition; the
    log assigns the monotonic ``seq``, folds the event into the
    service metrics registry (latency histograms, contention counters,
    per-tenant completion counters) and republishes it on the service
    event bus as ``kind=service`` so the streamed service trace and
    any live subscribers see it in total order.
    """

    def __init__(self, *, metrics: Any = None, bus: EventBus = NOOP_BUS) -> None:
        self._events: list[ServiceEvent] = []
        self._metrics = metrics
        self._bus = bus

    @property
    def enabled(self) -> bool:
        """Whether recording is live (``False`` only on the no-op)."""
        return True

    @property
    def events(self) -> tuple[ServiceEvent, ...]:
        """All events in emission order."""
        return tuple(self._events)

    def record(
        self,
        event: str,
        *,
        time: float,
        job: str | None = None,
        tenant: str | None = None,
        reason: str | None = None,
        step: int | None = None,
        cpu: int | None = None,
        gpu: int | None = None,
        wait_seconds: float | None = None,
        queue_delay_seconds: float | None = None,
        dollars: float | None = None,
        slo: str | None = None,
        value: float | None = None,
        threshold: float | None = None,
    ) -> ServiceEvent:
        """Append one event, update metrics, publish ``kind=service``."""
        record = ServiceEvent(
            seq=len(self._events) + 1,
            time=time,
            event=event,
            job=job,
            tenant=tenant,
            reason=reason,
            step=step,
            cpu=cpu,
            gpu=gpu,
            wait_seconds=wait_seconds,
            queue_delay_seconds=queue_delay_seconds,
            dollars=dollars,
            slo=slo,
            value=value,
            threshold=threshold,
        )
        self._events.append(record)
        self._update_metrics(record)
        if self._bus.enabled:
            self._bus.publish("service", record.to_dict())
        return record

    # -- metrics -------------------------------------------------------

    def _update_metrics(self, record: ServiceEvent) -> None:
        metrics = self._metrics
        if metrics is None:
            return
        event = record.event
        tenant = record.tenant or ""
        if event == "submitted":
            metrics.counter(
                "svc.jobs_submitted_total",
                description="jobs admitted by the service",
            ).inc(tenant=tenant)
        elif event == "rejected":
            metrics.counter(
                "svc.admission_rejections_total",
                description="submissions refused at admission",
            ).inc(tenant=tenant, reason=record.reason or "policy")
        elif event == "deferred":
            metrics.counter(
                "svc.reservation_conflicts_total",
                description="probes deferred by shared-capacity contention",
            ).inc(tenant=tenant)
        elif event == "dispatched":
            metrics.counter(
                "svc.probes_dispatched_total",
                description="probe requests dispatched to job clouds",
            ).inc(tenant=tenant)
            if record.wait_seconds is not None:
                metrics.histogram(
                    "svc.dispatch_latency_seconds",
                    unit="seconds",
                    description="ready-to-dispatch latency per probe",
                ).observe(record.wait_seconds)
            if record.queue_delay_seconds is not None:
                metrics.histogram(
                    "svc.queue_delay_seconds",
                    unit="seconds",
                    description="submission-to-first-dispatch delay per job",
                ).observe(record.queue_delay_seconds)
        elif event in TERMINAL_EVENT_KINDS:
            metrics.counter(
                "svc.jobs_finished_total",
                description="jobs reaching a terminal state",
            ).inc(state=event)
            if event == "failed" and record.reason == "oversized-demand":
                metrics.counter(
                    "svc.oversized_demand_total",
                    description="jobs failed fast for demands over capacity",
                ).inc()
        elif event == "slo-breach":
            metrics.counter(
                "svc.slo_breaches_total",
                description="edge-triggered SLO breach transitions",
            ).inc(slo=record.slo or "")


class _NoopServiceLog(ServiceLog):
    """Inert service log: every mutator returns immediately.

    Stateless by construction, so the module-level singleton can be
    shared by every untelemetered daemon without cross-talk.
    """

    def __init__(self) -> None:
        super().__init__()

    @property
    def enabled(self) -> bool:
        return False

    def record(self, *args: Any, **kwargs: Any) -> ServiceEvent | None:  # type: ignore[override]
        return None


#: Shared inert singleton — the telemetry-off daemon's service log.
NOOP_SERVICE = _NoopServiceLog()


# -- SLO tracking -------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SLOTarget:
    """One declarative service-level objective.

    Two kinds are supported:

    ``quantile``
        The target holds while ``metric``'s ``quantile`` stays at or
        below ``threshold`` (e.g. p99 dispatch latency ≤ 5 s).  Not
        evaluated until the histogram has ``min_count`` observations.
    ``ratio``
        The target holds while ``numerator.total() /
        denominator.total()`` stays at or below ``threshold`` (an
        error budget, e.g. admission rejections ≤ 10% of
        submissions).  Not evaluated until the denominator has
        ``min_count`` increments.
    """

    name: str
    kind: str = "quantile"
    metric: str = ""
    quantile: float = 0.99
    numerator: str = ""
    denominator: str = ""
    threshold: float = 0.0
    min_count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("quantile", "ratio"):
            raise ValueError(
                f"SLO kind must be 'quantile' or 'ratio', got {self.kind!r}"
            )
        if self.kind == "quantile":
            if not self.metric:
                raise ValueError(f"quantile SLO {self.name!r} needs a metric")
            if not 0.0 < self.quantile < 1.0:
                raise ValueError(
                    f"quantile must be in (0, 1), got {self.quantile}"
                )
        elif not (self.numerator and self.denominator):
            raise ValueError(
                f"ratio SLO {self.name!r} needs numerator and denominator"
            )
        if self.min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {self.min_count}")

    def describe(self) -> str:
        """Human-readable target, e.g. ``p99(svc.dispatch…) <= 5``."""
        if self.kind == "quantile":
            pct = f"p{self.quantile * 100:g}"
            return f"{pct}({self.metric}) <= {self.threshold:g}"
        return (
            f"{self.numerator}/{self.denominator} <= {self.threshold:g}"
        )


#: Targets the daemon tracks when none are declared explicitly.
DEFAULT_SLO_TARGETS = (
    SLOTarget(
        name="dispatch-p99",
        kind="quantile",
        metric="svc.dispatch_latency_seconds",
        quantile=0.99,
        threshold=10.0,
        min_count=5,
    ),
    SLOTarget(
        name="queue-delay-p99",
        kind="quantile",
        metric="svc.queue_delay_seconds",
        quantile=0.99,
        threshold=60.0,
        min_count=5,
    ),
    SLOTarget(
        name="admission-error-budget",
        kind="ratio",
        numerator="svc.admission_rejections_total",
        denominator="svc.jobs_submitted_total",
        threshold=0.25,
        min_count=10,
    ),
)


class SLOTracker:
    """Streaming, edge-triggered SLO evaluation over service metrics.

    The daemon calls :meth:`evaluate` once per scheduler tick.  Like
    the per-run :class:`~repro.obs.watchdog.Watchdog`, breaches are
    edge-triggered: a target that stays out of bounds across many
    ticks emits exactly one ``slo-breach`` event (and one
    ``svc.slo_breaches_total`` increment) per excursion, re-arming
    when the target recovers.  Attainment — the fraction of evaluated
    ticks the target held — is tracked per target and exported as the
    ``svc.slo_attainment`` gauge.

    Evaluation is read-only over the registry (quantiles via
    :meth:`~repro.obs.metrics.Histogram.stats`, ratios via counter
    totals), so tracking SLOs never perturbs scheduling.
    """

    def __init__(
        self,
        targets: tuple[SLOTarget, ...] = DEFAULT_SLO_TARGETS,
        *,
        metrics: Any,
        log: ServiceLog | None = None,
    ) -> None:
        names = [t.name for t in targets]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate SLO target names: {sorted(names)}")
        self.targets = tuple(targets)
        self._metrics = metrics
        self._log = log
        self._active: set[str] = set()
        self._evaluated: dict[str, int] = {t.name: 0 for t in self.targets}
        self._held: dict[str, int] = {t.name: 0 for t in self.targets}
        self._breaches: dict[str, int] = {t.name: 0 for t in self.targets}
        self._last_value: dict[str, float] = {}

    def _observe(self, target: SLOTarget) -> float | None:
        """Current value for a target, or ``None`` below ``min_count``."""
        metrics = self._metrics
        if target.kind == "quantile":
            hist = metrics.get(target.metric)
            if hist is None:
                return None
            stats = hist.stats()
            if stats.count < target.min_count:
                return None
            return float(stats.quantile(target.quantile))
        denominator = metrics.get(target.denominator)
        total = 0.0 if denominator is None else denominator.total()
        if total < target.min_count:
            return None
        numerator = metrics.get(target.numerator)
        part = 0.0 if numerator is None else numerator.total()
        return part / total

    def evaluate(self, *, time: float) -> list[dict[str, Any]]:
        """Evaluate every target once; returns newly-fired breaches."""
        fired: list[dict[str, Any]] = []
        for target in self.targets:
            value = self._observe(target)
            if value is None:
                continue
            name = target.name
            self._last_value[name] = value
            self._evaluated[name] += 1
            if value <= target.threshold:
                self._held[name] += 1
                self._active.discard(name)
            elif name not in self._active:
                self._active.add(name)
                self._breaches[name] += 1
                if self._log is not None and self._log.enabled:
                    self._log.record(
                        "slo-breach",
                        time=time,
                        slo=name,
                        value=value,
                        threshold=target.threshold,
                    )
                fired.append({
                    "slo": name,
                    "value": value,
                    "threshold": target.threshold,
                })
            self._metrics.gauge(
                "svc.slo_attainment",
                description="fraction of evaluated ticks the SLO held",
            ).set(self._held[name] / self._evaluated[name], slo=name)
        return fired

    def status(self) -> list[dict[str, Any]]:
        """Per-target summary (the ``/svcstats`` ``slos`` section)."""
        out: list[dict[str, Any]] = []
        for target in self.targets:
            evaluated = self._evaluated[target.name]
            out.append({
                "name": target.name,
                "objective": target.describe(),
                "threshold": target.threshold,
                "value": self._last_value.get(target.name),
                "breached_now": target.name in self._active,
                "breaches": self._breaches[target.name],
                "evaluated_ticks": evaluated,
                "attainment": (
                    None if evaluated == 0
                    else self._held[target.name] / evaluated
                ),
            })
        return out
