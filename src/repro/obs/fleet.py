"""Fleet telemetry: instance-lifecycle events and cost attribution.

The cloud substrate (:mod:`repro.cloud`) is where search dollars are
actually spent, yet spans and decision records only describe the
*search side* of a run.  :class:`FleetLog` closes the gap: the
simulated provider emits one :class:`FleetEvent` per instance
lifecycle transition (``requested`` → ``provisioning`` → ``running``
→ ``terminated`` / ``revoked``), and the search stack annotates the
log with *attribution context* — which phase, step, trial and
deployment asked for the capacity — so every billing-ledger entry can
be joined back to the decision that incurred it.

Design rules (shared with :mod:`repro.obs.decisions`):

- **Read-only.**  Recording never feeds back into the search: the log
  only copies values the cloud already computed, so a run with fleet
  telemetry on makes byte-identical decisions to one with it off.
- **No-op by default.**  ``NOOP_FLEET`` is a stateless singleton; the
  provider's hot path pays one attribute load and an early return.
- **Ledger join.**  Every ledger entry is written by exactly one
  ``SimulatedCloud.terminate()`` call, which emits exactly one
  ``terminated`` (or ``revoked``) event carrying the entry's index as
  ``ledger_index`` — a 1:1 join, reconciled *exactly* (same floats,
  same summation order) by
  :func:`repro.contracts.check_fleet_attribution`.

Events serialise into the :class:`~repro.obs.recorder.SearchTrace`
artifact as ``kind=fleet`` JSON lines (trace schema v3); each event
dict carries its own ``v`` field so the fleet schema can evolve
independently of the trace envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.obs.bus import NOOP_BUS, EventBus

__all__ = [
    "FLEET_EVENT_KINDS",
    "FLEET_EVENT_VERSION",
    "FleetEvent",
    "FleetLog",
    "NOOP_FLEET",
]

#: Version of the per-event schema (the ``v`` key on serialised events).
FLEET_EVENT_VERSION = 1

#: Recognised lifecycle transitions (plus the spot-price overlay kind).
FLEET_EVENT_KINDS = (
    "requested",
    "provisioning",
    "running",
    "terminated",
    "revoked",
    "launch-failed",
    "spot-price",
)

#: Attribution-context keys threaded from the search stack.
_CTX_KEYS = ("phase", "step", "trial", "deployment")


@dataclass(frozen=True, slots=True)
class FleetEvent:
    """One instance-lifecycle transition, with attribution context.

    Attributes
    ----------
    seq:
        1-based emission order within the run (stable tie-break for
        events sharing a timestamp).
    time:
        Simulated-clock timestamp in seconds.
    event:
        One of :data:`FLEET_EVENT_KINDS`.
    instance_type / count:
        The capacity the transition concerns.
    cluster_id:
        Provider cluster id (int), a synthetic segment id (str) for
        spot-training segments, or ``None`` for events with no
        cluster (``launch-failed``, ``spot-price``).
    purpose:
        Billing purpose tag on ``terminated`` / ``revoked`` events.
    seconds / dollars:
        Billable window and charge on closing events (``terminated``
        / ``revoked``), or the expected setup window on
        ``provisioning`` events.
    ledger_index:
        Index of the :class:`~repro.cloud.billing.LedgerEntry` this
        closing event paid into — the cost-attribution join key.
        ``None`` for non-billing events and for spot-training
        segments (billed outside the ledger).
    spot_factor / bid_factor:
        Spot-market price factor at the event time and the bid it ran
        under (spot paths only).
    phase / step / trial / deployment:
        Attribution context captured when the cluster was requested:
        search phase (``initial`` / ``explore`` / ``final-train`` /
        ``spot-train``), 1-based decision step, 1-based trial index,
        and the deployment string (``"4x c5.xlarge"``).
    """

    seq: int
    time: float
    event: str
    instance_type: str
    count: int
    cluster_id: int | str | None = None
    purpose: str | None = None
    seconds: float | None = None
    dollars: float | None = None
    ledger_index: int | None = None
    spot_factor: float | None = None
    bid_factor: float | None = None
    phase: str | None = None
    step: int | None = None
    trial: int | None = None
    deployment: str | None = None

    def __post_init__(self) -> None:
        if self.event not in FLEET_EVENT_KINDS:
            raise ValueError(
                f"unknown fleet event {self.event!r}; expected one of "
                f"{FLEET_EVENT_KINDS}"
            )
        if self.seq < 1:
            raise ValueError(f"seq must be >= 1, got {self.seq}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    def to_dict(self) -> dict[str, Any]:
        """Serialisable form; ``None`` fields are dropped."""
        doc: dict[str, Any] = {
            "v": FLEET_EVENT_VERSION,
            "seq": self.seq,
            "time": self.time,
            "event": self.event,
            "instance_type": self.instance_type,
            "count": self.count,
        }
        for key in (
            "cluster_id",
            "purpose",
            "seconds",
            "dollars",
            "ledger_index",
            "spot_factor",
            "bid_factor",
            "phase",
            "step",
            "trial",
            "deployment",
        ):
            value = getattr(self, key)
            if value is not None:
                doc[key] = value
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "FleetEvent":
        """Rebuild an event from its serialised form.

        Tolerates unknown keys (forward compatibility within the
        fleet schema) but requires the core identity fields.
        """
        return cls(
            seq=int(doc["seq"]),
            time=float(doc["time"]),
            event=str(doc["event"]),
            instance_type=str(doc["instance_type"]),
            count=int(doc["count"]),
            cluster_id=doc.get("cluster_id"),
            purpose=doc.get("purpose"),
            seconds=doc.get("seconds"),
            dollars=doc.get("dollars"),
            ledger_index=doc.get("ledger_index"),
            spot_factor=doc.get("spot_factor"),
            bid_factor=doc.get("bid_factor"),
            phase=doc.get("phase"),
            step=doc.get("step"),
            trial=doc.get("trial"),
            deployment=doc.get("deployment"),
        )


class FleetLog:
    """Collects :class:`FleetEvent`s and updates fleet metrics.

    The cloud provider calls :meth:`record`; the search stack brackets
    capacity requests with :meth:`annotate` / :meth:`clear` (or, for
    parallel batches, :meth:`begin_batch` + :meth:`batch_member`) so
    that each ``requested`` event captures the attribution context of
    the decision that asked for the instances.  The context is frozen
    per cluster at request time, which is what makes batched probes
    attribute correctly even though their clusters terminate in
    completion order, not launch order.
    """

    def __init__(self, *, metrics: Any = None, bus: EventBus = NOOP_BUS) -> None:
        self._events: list[FleetEvent] = []
        self._metrics = metrics
        self._bus = bus
        self._ctx: dict[str, Any] = {}
        self._batch: dict[str, Any] | None = None
        # cluster_id -> (instance_type, count) for the running gauge
        self._running: dict[int | str, tuple[str, int]] = {}
        # cluster_id -> attribution context frozen at request time
        self._cluster_ctx: dict[int | str, dict[str, Any]] = {}

    @property
    def enabled(self) -> bool:
        """Whether recording is live (``False`` only on the no-op)."""
        return True

    @property
    def events(self) -> tuple[FleetEvent, ...]:
        """All events in emission order."""
        return tuple(self._events)

    # -- attribution context -------------------------------------------

    def annotate(
        self,
        *,
        phase: str | None = None,
        step: int | None = None,
        trial: int | None = None,
        deployment: str | None = None,
    ) -> None:
        """Set the attribution context for subsequent requests."""
        for key, value in (
            ("phase", phase),
            ("step", step),
            ("trial", trial),
            ("deployment", deployment),
        ):
            if value is not None:
                self._ctx[key] = value

    def begin_batch(self, *, phase: str, first_trial: int) -> None:
        """Start a parallel batch: member ``i`` becomes trial
        ``first_trial + i`` (the batch recorder appends trials in
        launch order, so the mapping is deterministic)."""
        self._batch = {"phase": phase, "first_trial": first_trial}

    def batch_member(self, index: int, instance_type: str, count: int) -> None:
        """Point the context at batch member ``index`` (called by the
        profiler just before each member's launch)."""
        self._ctx = {"deployment": f"{count}x {instance_type}"}
        if self._batch is not None:
            trial = self._batch["first_trial"] + index
            self._ctx["phase"] = self._batch["phase"]
            self._ctx["step"] = trial
            self._ctx["trial"] = trial

    def clear(self) -> None:
        """Drop the attribution context (end of probe / batch / train)."""
        self._ctx = {}
        self._batch = None

    # -- event recording -----------------------------------------------

    def record(
        self,
        event: str,
        *,
        time: float,
        instance_type: str,
        count: int,
        cluster_id: int | str | None = None,
        purpose: str | None = None,
        seconds: float | None = None,
        dollars: float | None = None,
        ledger_index: int | None = None,
        spot_factor: float | None = None,
        bid_factor: float | None = None,
    ) -> FleetEvent:
        """Append one event, merging in the attribution context.

        ``requested`` events freeze the current context for their
        cluster; closing events (``terminated`` / ``revoked``) reuse
        the frozen context so attribution survives out-of-order
        termination.
        """
        ctx: Mapping[str, Any]
        if cluster_id is not None and cluster_id in self._cluster_ctx:
            ctx = self._cluster_ctx[cluster_id]
        else:
            ctx = self._ctx
            if event == "requested" and cluster_id is not None:
                frozen = dict(self._ctx)
                self._cluster_ctx[cluster_id] = frozen
                ctx = frozen
        record = FleetEvent(
            seq=len(self._events) + 1,
            time=time,
            event=event,
            instance_type=instance_type,
            count=count,
            cluster_id=cluster_id,
            purpose=purpose,
            seconds=seconds,
            dollars=dollars,
            ledger_index=ledger_index,
            spot_factor=spot_factor,
            bid_factor=bid_factor,
            phase=ctx.get("phase"),
            step=ctx.get("step"),
            trial=ctx.get("trial"),
            deployment=ctx.get("deployment"),
        )
        self._events.append(record)
        self._update_metrics(record)
        if self._bus.enabled:
            self._bus.publish("fleet", record.to_dict())
        return record

    # -- metrics -------------------------------------------------------

    def _update_metrics(self, record: FleetEvent) -> None:
        metrics = self._metrics
        event = record.event
        if event == "running" and record.cluster_id is not None:
            self._running[record.cluster_id] = (
                record.instance_type,
                record.count,
            )
            self._set_running_gauge(record.instance_type)
        elif event in ("terminated", "revoked"):
            if record.cluster_id is not None:
                self._running.pop(record.cluster_id, None)
                self._set_running_gauge(record.instance_type)
            if event == "revoked" and metrics is not None:
                metrics.counter(
                    "fleet.revocations_total",
                    description="spot revocations observed by the fleet log",
                ).inc()
        elif event == "launch-failed" and metrics is not None:
            metrics.counter(
                "fleet.launch_failures_total",
                description="transient capacity failures at launch",
            ).inc(instance_type=record.instance_type)
        elif event == "spot-price" and metrics is not None:
            if record.spot_factor is not None:
                metrics.gauge(
                    "spot.price_factor",
                    description="spot price as a fraction of on-demand",
                ).set(
                    record.spot_factor,
                    instance_type=record.instance_type,
                )

    def _set_running_gauge(self, instance_type: str) -> None:
        if self._metrics is None:
            return
        total = sum(
            count
            for itype, count in self._running.values()
            if itype == instance_type
        )
        self._metrics.gauge(
            "fleet.instances_running",
            description="instances currently in the RUNNING state",
        ).set(float(total), type=instance_type)


class _NoopFleetLog(FleetLog):
    """Inert fleet log: every mutator returns immediately.

    Stateless by construction, so the module-level singleton can be
    shared by every uninstrumented ``SimulatedCloud`` without
    cross-talk.
    """

    def __init__(self) -> None:
        super().__init__()

    @property
    def enabled(self) -> bool:
        return False

    def annotate(self, **_: Any) -> None:  # type: ignore[override]
        return None

    def begin_batch(self, **_: Any) -> None:  # type: ignore[override]
        return None

    def batch_member(self, *args: Any, **kwargs: Any) -> None:
        return None

    def clear(self) -> None:
        return None

    def record(self, *args: Any, **kwargs: Any) -> FleetEvent | None:  # type: ignore[override]
        return None


#: Shared inert singleton — the default ``SimulatedCloud.fleet``.
NOOP_FLEET = _NoopFleetLog()
