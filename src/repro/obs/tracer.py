"""Tracers: the emission side of the observability layer.

Everything in the search stack emits through a :class:`Tracer`.  The
base class *is* the no-op implementation — a stateless singleton whose
``span()`` returns a shared do-nothing context manager, so instrumented
code paths cost one attribute lookup and one method call when tracing
is off (the default).  :class:`RecordingTracer` keeps every span for
later serialisation by :class:`~repro.obs.recorder.RunRecorder`.

The tracer clock is injectable: search runs pass the simulated cloud
clock (``lambda: cloud.clock.now``) so span timestamps reconcile with
billed time; standalone use falls back to the constant
:func:`~repro.obs.bus.ZERO_CLOCK` — never the wall clock.  The one
deliberate wall-time measurement is ``Span.wall_seconds`` (recording
overhead accounting, ``docs/performance.md``); canonical-trace
comparisons strip it.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator

from repro.obs.bus import NOOP_BUS, ZERO_CLOCK, EventBus
from repro.obs.prof import NOOP_PROFILER, PhaseProfiler
from repro.obs.span import Span

__all__ = ["NOOP_TRACER", "RecordingTracer", "Tracer"]


class _NoopSpan:
    """Shared do-nothing span; reentrant because it is stateless."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """No-op tracer; the default everywhere.

    Instrumented code never checks ``enabled`` — it calls ``span()`` /
    ``set_attribute()`` unconditionally and this class makes those
    calls free.  Subclasses that actually record override them.
    """

    enabled: bool = False

    def span(
        self, name: str, attributes: dict[str, Any] | None = None
    ) -> Any:
        """Context manager for one operation; yields the span."""
        return _NOOP_SPAN

    def set_attribute(self, key: str, value: Any) -> None:
        """Annotate the innermost open span (no-op here)."""

    def current_span(self) -> Span | None:
        """The innermost open span, or ``None``."""
        return None

    def adopt(self, span: Any) -> Any:
        """Re-attach a close-capable handle to an already-open span.

        Used by :class:`~repro.core.session.SearchSession` when a
        restored session resumes inside the root span its predecessor
        opened (same process, same tracer): the new owner gets a
        context manager whose ``__exit__`` finishes the span.  The
        no-op tracer returns the shared do-nothing span.
        """
        return _NOOP_SPAN


#: Process-wide shared no-op tracer (stateless, safe to share).
NOOP_TRACER = Tracer()


class _SpanContext:
    """Context manager driving one recorded span's lifecycle."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span", "_wall_start")

    def __init__(
        self,
        tracer: "RecordingTracer",
        name: str,
        attributes: dict[str, Any] | None,
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Span | None = None
        self._wall_start = 0.0

    def __enter__(self) -> Span:
        # wall_seconds is the one intentional wall-time field: overhead
        # accounting only, stripped from canonical-trace comparisons
        self._wall_start = time.perf_counter()  # repro-lint: disable=RL103
        self._span = self._tracer._start(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._span is not None
        if exc_type is not None:
            self._span.set_attribute("error", repr(exc))
        self._tracer._finish(
            self._span,
            time.perf_counter() - self._wall_start,  # repro-lint: disable=RL103
        )
        return False


class RecordingTracer(Tracer):
    """Tracer that keeps every span, in start order.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time in seconds.
        Pass the simulated clock (``lambda: cloud.clock.now``) when one
        exists; defaults to :func:`~repro.obs.bus.ZERO_CLOCK` so an
        un-wired tracer never stamps spans with wall-clock readings
        (``wall_seconds`` is the one explicitly wall-time field).
    bus:
        Optional :class:`~repro.obs.bus.EventBus`.  When live, every
        span close publishes a ``span`` event (the completed payload) —
        which is how watchdog anomalies reach the bus, since they are
        emitted as zero-duration ``anomaly`` spans.  *Root* spans
        (``search``, ``deploy``) additionally publish a ``span-start``
        event when they open, so live readers learn the run's strategy
        up front; child spans do not — they open and close hundreds of
        times per run and their start carries no information their
        close doesn't, so streaming both would double event volume for
        nothing (the trace loader skips ``span-start`` lines anyway).
    profiler:
        Optional :class:`~repro.obs.prof.PhaseProfiler`.  When live,
        every span open/close also enters/exits a profiled phase of the
        same name, so the span tree doubles as the self-profiling call
        tree.  Defaults to the inert ``NOOP_PROFILER``; the profiler
        writes no trace bytes either way (sidecar only), so recordings
        are byte-identical with it on or off.
    """

    enabled = True

    def __init__(
        self,
        *,
        clock: Callable[[], float] | None = None,
        bus: EventBus = NOOP_BUS,
        profiler: PhaseProfiler = NOOP_PROFILER,
    ) -> None:
        self._clock = clock if clock is not None else ZERO_CLOCK
        self._bus = bus
        self._profiler = profiler
        self._stack: list[Span] = []
        self._spans: list[Span] = []
        self._next_id = 1

    # -- emission ------------------------------------------------------------
    def span(
        self, name: str, attributes: dict[str, Any] | None = None
    ) -> _SpanContext:
        return _SpanContext(self, name, attributes)

    def set_attribute(self, key: str, value: Any) -> None:
        if self._stack:
            self._stack[-1].set_attribute(key, value)

    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def adopt(self, span: Span) -> _SpanContext:
        """Hand an already-open span a fresh closing context manager.

        The span must still be open on this tracer (a restored
        :class:`~repro.core.session.SearchSession` adopts the root
        ``search`` span its predecessor opened).  The new manager's
        ``__exit__`` finishes the span; ``wall_seconds`` then covers
        only the adopter's tenure, which canonical comparisons strip
        anyway.
        """
        if span.end is not None:
            raise ValueError(f"cannot adopt finished span {span.name!r}")
        if span not in self._stack:
            raise ValueError(f"span {span.name!r} is not open on this tracer")
        ctx = _SpanContext(self, span.name, None)
        ctx._span = span
        # wall_seconds accounting restarts at adoption (overhead
        # metric only, stripped from canonical-trace comparisons)
        ctx._wall_start = time.perf_counter()  # repro-lint: disable=RL103
        return ctx

    def _start(
        self, name: str, attributes: dict[str, Any] | None
    ) -> Span:
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            start=self._clock(),
            attributes=dict(attributes) if attributes else {},
        )
        self._next_id += 1
        self._stack.append(span)
        self._spans.append(span)
        if self._profiler.enabled:
            self._profiler.enter(name)
        if self._bus.enabled and span.parent_id is None:
            self._bus.publish("span-start", span.to_dict())
        return span

    def _finish(self, span: Span, wall_seconds: float) -> None:
        # the span is tracer-owned state (created by _start, held in
        # self._spans); it only *arrives* as a parameter because the
        # context manager drives the lifecycle
        span.end = self._clock()  # repro-lint: disable=RL102
        span.wall_seconds = wall_seconds  # repro-lint: disable=RL102
        # tolerate out-of-order exits (exceptions unwinding): pop down
        # to and including this span
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        # one exit per _finish: context managers unwind one at a time,
        # so the profiler's phase stack stays paired with span closes
        if self._profiler.enabled:
            self._profiler.exit_()
        if self._bus.enabled:
            self._bus.publish("span", span.to_dict())

    # -- inspection ----------------------------------------------------------
    @property
    def spans(self) -> tuple[Span, ...]:
        """Every span seen so far, in start order."""
        return tuple(self._spans)

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in start order."""
        return [s for s in self._spans if s.name == name]

    def children(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in start order."""
        return [s for s in self._spans if s.parent_id == span.span_id]

    def iter_roots(self) -> Iterator[Span]:
        """Spans with no parent, in start order."""
        return (s for s in self._spans if s.parent_id is None)
