"""Trace forensics: structural diff of two JSONL trace artifacts.

The byte-identity gates that protect every trace schema version report
only pass/fail; when identity breaks, :func:`diff_trace_texts` finds
*why*: the first diverging line (1-based), the record kind and ordering
key on each side, and the exact field-level delta inside the record —
instead of a bare assert.  ``repro diff`` fronts it on the command
line; the bench identity gates embed its report in their failure
output.

Layering keeps this module ignorant of canonicalisation:
``canonical_trace_jsonl`` lives in :mod:`repro.perf.bench` (above
``obs``), so callers wanting a canonical-mode diff canonicalise first
and pass the resulting texts here (``repro diff --canonical`` does
exactly that).

The comparison is structural, not textual: two lines that differ only
in JSON key order or float formatting parse equal and do not diverge.
A line valid on one side but torn/unparseable on the other is itself a
divergence (``reason="parse"``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

__all__ = ["FieldDelta", "TraceDiff", "diff_trace_texts", "render_diff"]

#: Maximum field deltas reported per diverging line (the rest are
#: counted, not listed — one bad record can differ in every field).
MAX_FIELD_DELTAS = 16

_MISSING = object()


@dataclass(frozen=True)
class FieldDelta:
    """One diverging field inside the first diverging record."""

    #: dotted path into the JSON document (``summary.n_steps``,
    #: ``attributes.pruned.prior``); ``<line>`` when a side is not JSON
    path: str
    #: value on side A (``None`` plus ``a_missing`` for an absent key)
    a: Any
    b: Any
    a_missing: bool = False
    b_missing: bool = False

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"path": self.path, "a": self.a, "b": self.b}
        if self.a_missing:
            doc["a_missing"] = True
        if self.b_missing:
            doc["b_missing"] = True
        return doc


@dataclass(frozen=True)
class TraceDiff:
    """Structural comparison result for two JSONL artifacts."""

    #: no structural difference on any line
    identical: bool
    #: labels for the two sides (file paths from the CLI)
    a_name: str = "a"
    b_name: str = "b"
    #: non-empty line counts per side
    a_lines: int = 0
    b_lines: int = 0
    #: 1-based first diverging line (``None`` when identical)
    line: int | None = None
    #: ``"field"`` (records differ), ``"parse"`` (one side not JSON),
    #: ``"length"`` (one side ended early) or ``""`` when identical
    reason: str = ""
    #: record kind on each side at the divergence (``None`` = no line)
    a_kind: str | None = None
    b_kind: str | None = None
    #: ordering key of the diverging record (seq / span_id / step)
    a_key: Any = None
    b_key: Any = None
    #: field-level deltas (capped at :data:`MAX_FIELD_DELTAS`)
    fields: tuple[FieldDelta, ...] = ()
    #: total number of diverging fields (may exceed ``len(fields)``)
    n_field_deltas: int = 0

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable report (CI and gate output)."""
        return {
            "identical": self.identical,
            "a": self.a_name,
            "b": self.b_name,
            "a_lines": self.a_lines,
            "b_lines": self.b_lines,
            "line": self.line,
            "reason": self.reason,
            "a_kind": self.a_kind,
            "b_kind": self.b_kind,
            "a_key": self.a_key,
            "b_key": self.b_key,
            "n_field_deltas": self.n_field_deltas,
            "fields": [delta.to_dict() for delta in self.fields],
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> TraceDiff:
        """Rehydrate a :meth:`to_dict` report (e.g. a bench artifact's
        ``first_divergence``) so gates can :func:`render_diff` it."""
        return cls(
            identical=bool(doc.get("identical", False)),
            a_name=str(doc.get("a", "a")),
            b_name=str(doc.get("b", "b")),
            a_lines=int(doc.get("a_lines", 0)),
            b_lines=int(doc.get("b_lines", 0)),
            line=doc.get("line"),
            reason=str(doc.get("reason", "")),
            a_kind=doc.get("a_kind"),
            b_kind=doc.get("b_kind"),
            a_key=doc.get("a_key"),
            b_key=doc.get("b_key"),
            fields=tuple(
                FieldDelta(
                    path=str(delta.get("path", "")),
                    a=delta.get("a"),
                    b=delta.get("b"),
                    a_missing=bool(delta.get("a_missing", False)),
                    b_missing=bool(delta.get("b_missing", False)),
                )
                for delta in doc.get("fields", ())
            ),
            n_field_deltas=int(doc.get("n_field_deltas", 0)),
        )


def _record_key(doc: Any) -> Any:
    """The record's ordering key, by kind (seq, span_id or step)."""
    if not isinstance(doc, dict):
        return None
    for key in ("seq", "span_id", "step"):
        if key in doc:
            return doc[key]
    return None


def _json_deltas(a: Any, b: Any, path: str, out: list[FieldDelta]) -> None:
    """Collect leaf-level differences between two JSON values."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in a:
                out.append(FieldDelta(sub, None, b[key], a_missing=True))
            elif key not in b:
                out.append(FieldDelta(sub, a[key], None, b_missing=True))
            else:
                _json_deltas(a[key], b[key], sub, out)
        return
    if isinstance(a, list) and isinstance(b, list):
        for i in range(max(len(a), len(b))):
            sub = f"{path}[{i}]"
            if i >= len(a):
                out.append(FieldDelta(sub, None, b[i], a_missing=True))
            elif i >= len(b):
                out.append(FieldDelta(sub, a[i], None, b_missing=True))
            else:
                _json_deltas(a[i], b[i], sub, out)
        return
    if a != b or type(a) is not type(b):
        out.append(FieldDelta(path or "<value>", a, b))


def diff_trace_texts(
    a_text: str,
    b_text: str,
    *,
    a_name: str = "a",
    b_name: str = "b",
) -> TraceDiff:
    """Structurally compare two JSONL texts line by line.

    Blank lines are ignored on both sides.  The first line pair whose
    parsed documents differ (or where exactly one side has a line /
    parses) is the divergence; everything after it is not examined —
    one root cause at a time.
    """
    a_lines = [line for line in a_text.splitlines() if line.strip()]
    b_lines = [line for line in b_text.splitlines() if line.strip()]
    for i in range(max(len(a_lines), len(b_lines))):
        if i >= len(a_lines) or i >= len(b_lines):
            short, doc = (a_name, b_lines[i]) if i >= len(a_lines) else (
                b_name, a_lines[i]
            )
            parsed = _parse(doc)
            present_kind = (
                parsed.get("kind") if isinstance(parsed, dict) else None
            )
            return TraceDiff(
                identical=False,
                a_name=a_name,
                b_name=b_name,
                a_lines=len(a_lines),
                b_lines=len(b_lines),
                line=i + 1,
                reason="length",
                a_kind=None if i >= len(a_lines) else present_kind,
                b_kind=None if i >= len(b_lines) else present_kind,
                a_key=None if i >= len(a_lines) else _record_key(parsed),
                b_key=None if i >= len(b_lines) else _record_key(parsed),
            )
        a_doc = _parse(a_lines[i])
        b_doc = _parse(b_lines[i])
        if a_doc is _MISSING or b_doc is _MISSING:
            if a_doc is _MISSING and b_doc is _MISSING:
                if a_lines[i] == b_lines[i]:
                    continue
            deltas = (FieldDelta(
                "<line>",
                None if a_doc is _MISSING else a_doc,
                None if b_doc is _MISSING else b_doc,
                a_missing=a_doc is _MISSING,
                b_missing=b_doc is _MISSING,
            ),)
            return TraceDiff(
                identical=False,
                a_name=a_name,
                b_name=b_name,
                a_lines=len(a_lines),
                b_lines=len(b_lines),
                line=i + 1,
                reason="parse",
                a_kind=a_doc.get("kind") if isinstance(a_doc, dict) else None,
                b_kind=b_doc.get("kind") if isinstance(b_doc, dict) else None,
                fields=deltas,
                n_field_deltas=1,
            )
        if a_doc == b_doc:
            continue
        deltas: list[FieldDelta] = []
        _json_deltas(a_doc, b_doc, "", deltas)
        return TraceDiff(
            identical=False,
            a_name=a_name,
            b_name=b_name,
            a_lines=len(a_lines),
            b_lines=len(b_lines),
            line=i + 1,
            reason="field",
            a_kind=a_doc.get("kind") if isinstance(a_doc, dict) else None,
            b_kind=b_doc.get("kind") if isinstance(b_doc, dict) else None,
            a_key=_record_key(a_doc),
            b_key=_record_key(b_doc),
            fields=tuple(deltas[:MAX_FIELD_DELTAS]),
            n_field_deltas=len(deltas),
        )
    return TraceDiff(
        identical=True,
        a_name=a_name,
        b_name=b_name,
        a_lines=len(a_lines),
        b_lines=len(b_lines),
    )


def _parse(line: str) -> Any:
    try:
        return json.loads(line)
    except json.JSONDecodeError:
        return _MISSING


def _fmt(value: Any, missing: bool) -> str:
    if missing:
        return "<missing>"
    text = json.dumps(value, sort_keys=True, default=repr)
    if len(text) > 120:
        text = text[:117] + "..."
    return text


def render_diff(diff: TraceDiff) -> str:
    """Human-readable report (what the identity gates print)."""
    if diff.identical:
        return (
            f"identical: {diff.a_name} == {diff.b_name} "
            f"({diff.a_lines} lines)"
        )
    lines = [
        f"traces diverge at line {diff.line}",
        f"  a: {diff.a_name} ({diff.a_lines} lines)",
        f"  b: {diff.b_name} ({diff.b_lines} lines)",
    ]
    if diff.reason == "length":
        longer = diff.a_name if diff.a_lines > diff.b_lines else diff.b_name
        shorter = diff.b_name if diff.a_lines > diff.b_lines else diff.a_name
        kind = diff.a_kind if diff.a_kind is not None else diff.b_kind
        key = diff.a_key if diff.a_key is not None else diff.b_key
        extra = f" (kind={kind}" + (
            f", key={key})" if key is not None else ")"
        ) if kind is not None else ""
        lines.append(
            f"  {shorter} ends first; {longer} has "
            f"{abs(diff.a_lines - diff.b_lines)} extra line(s){extra}"
        )
        return "\n".join(lines)
    if diff.reason == "parse":
        lines.append("  one side is not valid JSON at this line (torn tail?)")
    lines.append(
        f"  kind: a={diff.a_kind} b={diff.b_kind}"
        + (
            f"  key: a={diff.a_key} b={diff.b_key}"
            if diff.a_key is not None or diff.b_key is not None
            else ""
        )
    )
    for delta in diff.fields:
        lines.append(
            f"  field {delta.path}: "
            f"{_fmt(delta.a, delta.a_missing)} != "
            f"{_fmt(delta.b, delta.b_missing)}"
        )
    if diff.n_field_deltas > len(diff.fields):
        lines.append(
            f"  ... and {diff.n_field_deltas - len(diff.fields)} more "
            f"field delta(s)"
        )
    return "\n".join(lines)
