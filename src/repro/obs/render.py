"""Pretty-printing for recorded traces (the ``repro trace`` command).

Formatting helpers come from :mod:`repro.textfmt`, the bottom-layer
module shared with the experiment reports — the observability layer
must stay importable from the bottom of the stack
(``repro.core.engine`` imports ``repro.obs``) and may not depend on
``repro.experiments`` (RL101).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.recorder import SearchTrace
    from repro.obs.span import Span

__all__ = ["render_span_tree", "render_trace"]


def render_trace(trace: "SearchTrace") -> str:
    """Per-step probe table plus run summary for one trace."""
    from repro.textfmt import (
        format_dollars,
        format_hours,
        format_rate,
        format_table,
    )

    rows = []
    for r in trace.probe_rows():
        speed = r["speed"]
        rows.append((
            "" if r["step"] is None else str(r["step"]),
            str(r["deployment"]),
            r["note"],
            format_rate(speed) if speed else (r["failure_reason"] or "-"),
            format_dollars(r["cost_usd"] or 0.0),
            format_dollars(r["spent_usd"] or 0.0),
            format_hours(r["elapsed_s"] or 0.0),
        ))
    table = format_table(
        ["step", "deployment", "note", "speed", "probe $", "spent $",
         "elapsed"],
        rows,
    )
    summary = trace.summary
    lines = [
        f"strategy      : {trace.strategy}",
        f"scenario      : {trace.scenario}",
        "",
        table,
        "",
        f"probes        : {trace.n_probes} "
        f"({format_dollars(trace.probe_dollars_total)} profiling)",
        f"profiling     : {format_hours(summary.get('profile_seconds', 0.0))}, "
        f"{format_dollars(summary.get('profile_dollars', 0.0))}",
        f"best          : {trace.best}",
        f"stop reason   : {trace.stop_reason}",
    ]
    if trace.decisions:
        lines.append(
            f"decisions     : {len(trace.decisions)} recorded "
            f"(mode {trace.decisions[0].mode}; see `repro explain`)"
        )
    anomalies = trace.anomaly_rows()
    if anomalies:
        by_rule: dict[str, int] = {}
        for row in anomalies:
            rule = str(row["rule"])
            by_rule[rule] = by_rule.get(rule, 0) + 1
        detail = ", ".join(
            f"{rule} x{n}" for rule, n in sorted(by_rule.items())
        )
        lines.append(f"anomalies     : {len(anomalies)} ({detail})")
    quantiles = _histogram_quantile_lines(trace)
    if quantiles:
        lines.append("")
        lines.append("histograms (p50/p90/p99):")
        lines.extend(quantiles)
    return "\n".join(lines)


def _histogram_quantile_lines(trace: "SearchTrace") -> list[str]:
    """One line per histogram series with its quantile estimates."""
    lines: list[str] = []
    for name, data in sorted(trace.metrics.items()):
        if data.get("kind") != "histogram":
            continue
        unit = data.get("unit", "")
        for entry in data.get("series", []):
            if "p50" not in entry:
                continue  # pre-quantile (schema v1) metrics snapshot
            labels = entry.get("labels", {})
            label_text = (
                "{" + ", ".join(
                    f"{k}={v}" for k, v in sorted(labels.items())
                ) + "}"
                if labels else ""
            )
            suffix = f" {unit}" if unit else ""
            lines.append(
                f"  {name}{label_text}: n={entry['count']} "
                f"p50={entry['p50']:.4g} p90={entry['p90']:.4g} "
                f"p99={entry['p99']:.4g}{suffix}"
            )
    return lines


def render_span_tree(spans: Sequence["Span"]) -> str:
    """Indented tree of spans with durations and key attributes."""
    by_parent: dict[int | None, list["Span"]] = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)

    lines: list[str] = []

    def walk(parent_id: int | None, depth: int) -> None:
        for span in by_parent.get(parent_id, []):
            attrs = ", ".join(
                f"{k}={v}" for k, v in sorted(span.attributes.items())
            )
            wall = (
                f" [{span.wall_seconds * 1e3:.1f} ms]"
                if span.wall_seconds is not None else ""
            )
            lines.append(
                f"{'  ' * depth}{span.name} "
                f"(+{span.duration:.1f}s{wall})"
                + (f" {{{attrs}}}" if attrs else "")
            )
            walk(span.span_id, depth + 1)

    walk(None, 0)
    return "\n".join(lines)
