"""Process-local metrics registry.

Counters, gauges and histograms keyed by name plus a label set —
``counter("search.probe_dollars_total").inc(1.2, instance_type="p2")``
— mirroring the Prometheus data model at simulator scale.  Instruments
are cheap plain-dict accumulators: strategies record unconditionally
and a run that nobody inspects costs a few dict writes.

A registry can *back-fill* its final state into the simulated cloud's
:class:`~repro.cloud.cloudwatch.MetricStore` (labels become CloudWatch
dimensions), so search-level telemetry lands next to the profiler's
raw throughput series.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.obs.bus import NOOP_BUS, EventBus

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramStats",
    "MetricsRegistry",
    "snapshot_to_prometheus_text",
]

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared name/unit/series bookkeeping."""

    kind: str = ""

    def __init__(self, name: str, unit: str = "", description: str = "") -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.unit = unit
        self.description = description
        self._series: dict[_LabelKey, Any] = {}
        self._bus: EventBus = NOOP_BUS

    def _publish(self, key: _LabelKey, value: float) -> None:
        """Publish one update onto the registry's event bus.

        Counters and gauges publish the post-update series value;
        histograms publish the raw observation.
        """
        self._bus.publish("metric", {
            "name": self.name,
            "instrument": self.kind,
            "labels": dict(key),
            "value": value,
        })

    def labelsets(self) -> list[dict[str, str]]:
        """Every label combination this instrument has seen."""
        return [dict(key) for key in self._series]


class Counter(_Instrument):
    """Monotonically increasing sum per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name}: negative increment {amount}"
            )
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount
        if self._bus.enabled:
            self._publish(key, self._series[key])

    def value(self, **labels: Any) -> float:
        """Current value of one labelled series (0.0 if never touched)."""
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label sets."""
        return sum(self._series.values())


class Gauge(_Instrument):
    """Last-written value per label set."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        """Overwrite the labelled series with ``value``."""
        if not math.isfinite(value):
            raise ValueError(
                f"gauge {self.name}: non-finite value {value!r}"
            )
        key = _label_key(labels)
        self._series[key] = float(value)
        if self._bus.enabled:
            self._publish(key, self._series[key])

    def value(self, **labels: Any) -> float | None:
        """Current value, or ``None`` if never set."""
        return self._series.get(_label_key(labels))


#: Retained-sample cap for quantile estimation; when full, the sample
#: is decimated (every other value kept) and the keep stride doubles.
_QUANTILE_SAMPLE_CAP = 512


@dataclass(slots=True)
class HistogramStats:
    """Streaming aggregate of one histogram series.

    Quantiles are estimated from a deterministic systematic sample:
    every ``stride``-th observation is retained, and when the sample
    exceeds :data:`_QUANTILE_SAMPLE_CAP` it is thinned by half and the
    stride doubles.  Memory stays bounded, the estimate is exact below
    the cap, and — unlike reservoir sampling — identical observation
    streams always produce identical quantiles.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    _sample: list[float] = field(default_factory=list)
    _stride: int = 1

    def observe(self, value: float) -> None:
        if self.count % self._stride == 0:
            self._sample.append(value)
            if len(self._sample) > _QUANTILE_SAMPLE_CAP:
                self._sample = self._sample[::2]
                self._stride *= 2
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (linear interpolation on the sample)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


class Histogram(_Instrument):
    """Streaming count/sum/min/max aggregates per label set."""

    kind = "histogram"

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation."""
        if not math.isfinite(value):
            raise ValueError(
                f"histogram {self.name}: non-finite value {value!r}"
            )
        key = _label_key(labels)
        stats = self._series.get(key)
        if stats is None:
            stats = self._series[key] = HistogramStats()
        stats.observe(value)
        if self._bus.enabled:
            self._publish(key, float(value))

    def stats(self, **labels: Any) -> HistogramStats:
        """Aggregates for one labelled series (zeros if never touched)."""
        return self._series.get(_label_key(labels), HistogramStats())


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent for a given
    name; asking for an existing name with a different instrument kind
    raises.

    When an :class:`~repro.obs.bus.EventBus` is attached (``bus=``
    at construction, or :meth:`attach_bus` later), every update also
    publishes a ``metric`` bus event carrying the post-update value
    (counters/gauges) or the raw observation (histograms).
    """

    def __init__(self, *, bus: EventBus = NOOP_BUS) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self._bus = bus

    def attach_bus(self, bus: EventBus) -> None:
        """Point this registry (and existing instruments) at a bus."""
        self._bus = bus
        for instrument in self._instruments.values():
            instrument._bus = bus

    def _get_or_create(
        self, cls: type, name: str, unit: str, description: str
    ) -> Any:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        instrument = cls(name, unit=unit, description=description)
        instrument._bus = self._bus
        self._instruments[name] = instrument
        return instrument

    def counter(
        self, name: str, *, unit: str = "", description: str = ""
    ) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, unit, description)

    def gauge(
        self, name: str, *, unit: str = "", description: str = ""
    ) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, unit, description)

    def histogram(
        self, name: str, *, unit: str = "", description: str = ""
    ) -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(Histogram, name, unit, description)

    def get(self, name: str) -> _Instrument | None:
        """Look up an instrument without creating it."""
        return self._instruments.get(name)

    def __iter__(self) -> Iterator[_Instrument]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    # -- export --------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable dump of every instrument's series."""
        out: dict[str, Any] = {}
        for name, inst in sorted(self._instruments.items()):
            series = []
            for key, value in inst._series.items():
                entry: dict[str, Any] = {"labels": dict(key)}
                if inst.kind == "histogram":
                    entry.update(
                        count=value.count,
                        sum=value.total,
                        min=value.minimum,
                        max=value.maximum,
                        mean=value.mean,
                        p50=value.p50,
                        p90=value.p90,
                        p99=value.p99,
                    )
                else:
                    entry["value"] = value
                series.append(entry)
            out[name] = {
                "kind": inst.kind,
                "unit": inst.unit,
                "series": series,
            }
        return out

    def to_prometheus_text(self) -> str:
        """Render the registry in the Prometheus text exposition format.

        Deterministic: metric names are sorted, series are sorted by
        their (already-sorted) label tuples, and label values are
        escaped per the format spec.  See
        :func:`snapshot_to_prometheus_text` for the layout.
        """
        descriptions = {
            name: inst.description
            for name, inst in self._instruments.items()
            if inst.description
        }
        return snapshot_to_prometheus_text(
            self.snapshot(), descriptions=descriptions
        )

    def backfill(
        self,
        store: Any,
        *,
        namespace: str = "repro/search",
        timestamp: float = 0.0,
    ) -> int:
        """Write final instrument values into a ``MetricStore``.

        Counters and gauges land as one datum per label set; histograms
        land as ``<name>.count`` / ``<name>.mean`` / ``<name>.max``.
        Labels become CloudWatch-style dimensions.  Returns the number
        of data points written.
        """
        written = 0
        for name, inst in sorted(self._instruments.items()):
            for key, value in inst._series.items():
                dimensions = dict(key)
                if inst.kind == "histogram":
                    for suffix, v in (
                        ("count", float(value.count)),
                        ("mean", value.mean),
                        ("max", value.maximum),
                    ):
                        store.put(
                            namespace, f"{name}.{suffix}", timestamp, v,
                            dimensions=dimensions,
                        )
                        written += 1
                else:
                    store.put(
                        namespace, name, timestamp, float(value),
                        dimensions=dimensions,
                    )
                    written += 1
        return written


# -- Prometheus text exposition ----------------------------------------------
_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")

#: Snapshot quantile keys exposed as Prometheus summary quantiles.
_PROM_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def _prom_name(name: str) -> str:
    """Sanitise a metric name (dots become underscores, etc.)."""
    cleaned = _PROM_NAME_BAD.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_label_name(name: str) -> str:
    cleaned = _PROM_LABEL_BAD.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_escape(value: str) -> str:
    """Escape a label value per the text-format spec."""
    return (
        value.replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _prom_escape_help(value: str) -> str:
    """Escape HELP text (backslash and newline only, per the spec)."""
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(
    labels: Mapping[str, str],
    extra: tuple[tuple[str, str], ...] = (),
) -> str:
    """Render a label block; user labels sorted, ``extra`` appended."""
    items = [
        (_prom_label_name(str(k)), str(v)) for k, v in sorted(labels.items())
    ]
    items.extend(extra)
    if not items:
        return ""
    inner = ",".join(f'{k}="{_prom_escape(v)}"' for k, v in items)
    return "{" + inner + "}"


def _prom_number(value: Any) -> str:
    return repr(float(value))


def snapshot_to_prometheus_text(
    snapshot: Mapping[str, Any],
    *,
    descriptions: Mapping[str, str] | None = None,
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as Prometheus text.

    Works from the serialised snapshot alone, so it applies equally to
    a live registry and to the ``metrics`` section of a saved
    :class:`~repro.obs.recorder.SearchTrace` (the ``repro metrics``
    command).  Counters and gauges render one sample per series;
    histograms render summary-style — ``{quantile="0.5|0.9|0.99"}``
    samples plus ``_sum`` and ``_count``.  Output is deterministic:
    names sorted, series sorted by label tuple, values via ``repr``.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        body = snapshot[name]
        kind = body.get("kind", "gauge")
        prom = _prom_name(name)
        description = (descriptions or {}).get(name, "")
        if description:
            lines.append(f"# HELP {prom} {_prom_escape_help(description)}")
        prom_type = {
            "counter": "counter",
            "gauge": "gauge",
            "histogram": "summary",
        }.get(kind, "untyped")
        lines.append(f"# TYPE {prom} {prom_type}")
        series = sorted(
            body.get("series", []),
            key=lambda entry: sorted(
                (str(k), str(v))
                for k, v in (entry.get("labels") or {}).items()
            ),
        )
        for entry in series:
            labels = {
                str(k): str(v)
                for k, v in (entry.get("labels") or {}).items()
            }
            if kind == "histogram":
                for quantile, key in _PROM_QUANTILES:
                    if key in entry:
                        block = _prom_labels(
                            labels, extra=(("quantile", quantile),)
                        )
                        lines.append(
                            f"{prom}{block} {_prom_number(entry[key])}"
                        )
                lines.append(
                    f"{prom}_sum{_prom_labels(labels)} "
                    f"{_prom_number(entry.get('sum', 0.0))}"
                )
                lines.append(
                    f"{prom}_count{_prom_labels(labels)} "
                    f"{_prom_number(entry.get('count', 0))}"
                )
            else:
                lines.append(
                    f"{prom}{_prom_labels(labels)} "
                    f"{_prom_number(entry.get('value', 0.0))}"
                )
    return "\n".join(lines) + "\n"
