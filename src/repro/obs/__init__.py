"""Observability: tracing, metrics, decision records and run artifacts.

The search stack (engine, strategies, Profiler, MLCD Deployment
Engine) narrates itself through this layer:

- :class:`~repro.obs.tracer.Tracer` — nested spans
  (``search → step → {gp-fit, candidate-scoring, probe}``) with
  attributes; the default :data:`~repro.obs.tracer.NOOP_TRACER` makes
  instrumentation free when nobody is listening;
- :class:`~repro.obs.metrics.MetricsRegistry` — counters / gauges /
  histograms (probes issued, probe dollars by instance type, GP fit
  durations, candidates pruned by reason) that can back-fill into the
  simulated cloud's CloudWatch-style :class:`MetricStore`;
- :class:`~repro.obs.decisions.DecisionLog` — per-step snapshots of
  the acquisition landscape (EI / cost penalty / TEI / feasibility per
  candidate, surrogate health), the substrate for ``repro explain``;
- :class:`~repro.obs.watchdog.Watchdog` — streaming health rules
  (budget burn, EI stagnation, surrogate degradation, protective-stop
  margin) emitting ``anomaly`` spans and metrics;
- :class:`~repro.obs.recorder.RunRecorder` /
  :class:`~repro.obs.recorder.SearchTrace` — a versioned JSONL
  artifact per run, pretty-printed by ``python -m repro.cli trace``
  and interrogated by ``repro explain`` / ``repro report``.

See ``docs/observability.md`` for the span taxonomy, metric names,
decision-record schema and watchdog rules.
"""

from repro.obs.bus import (
    NOOP_BUS,
    BusEvent,
    EventBus,
    ProgressEvent,
)
from repro.obs.decisions import (
    NOOP_DECISIONS,
    CandidateRecord,
    DecisionLog,
    DecisionRecord,
)
from repro.obs.diffs import (
    FieldDelta,
    TraceDiff,
    diff_trace_texts,
    render_diff,
)
from repro.obs.explain import render_explain
from repro.obs.fleet import (
    FLEET_EVENT_VERSION,
    NOOP_FLEET,
    FleetEvent,
    FleetLog,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramStats,
    MetricsRegistry,
    snapshot_to_prometheus_text,
)
from repro.obs.prof import (
    NOOP_PROFILER,
    PROFILE_SCHEMA_VERSION,
    PhaseProfiler,
    folded_stacks,
    load_profile,
    profile_from_trace,
    render_flamegraph_svg,
    render_profile,
    validate_profile,
)
from repro.obs.recorder import (
    SUPPORTED_TRACE_VERSIONS,
    TRACE_SCHEMA_VERSION,
    RunRecorder,
    SearchTrace,
)
from repro.obs.promhttp import (
    MetricsHTTPServer,
    registry_source,
    trace_file_source,
)
from repro.obs.report import render_comparison
from repro.obs.span import Span
from repro.obs.stream import (
    STREAM_RECORD_KINDS,
    TraceStreamWriter,
    follow_trace,
    format_event,
    read_trace_events,
)
from repro.obs.svc import (
    DEFAULT_SLO_TARGETS,
    NOOP_SERVICE,
    SERVICE_EVENT_VERSION,
    ServiceEvent,
    ServiceLog,
    SLOTarget,
    SLOTracker,
)
from repro.obs.timeline import render_attribution, render_timeline
from repro.obs.top import (
    LiveRunState,
    ServiceTopState,
    load_service_state,
    load_state,
    render_service_top,
    render_top,
)
from repro.obs.tracer import NOOP_TRACER, RecordingTracer, Tracer
from repro.obs.watchdog import (
    NOOP_WATCHDOG,
    Anomaly,
    StepHealth,
    Watchdog,
    WatchdogConfig,
)

__all__ = [
    "Anomaly",
    "BusEvent",
    "CandidateRecord",
    "Counter",
    "DEFAULT_SLO_TARGETS",
    "DecisionLog",
    "DecisionRecord",
    "EventBus",
    "FLEET_EVENT_VERSION",
    "FieldDelta",
    "FleetEvent",
    "FleetLog",
    "Gauge",
    "Histogram",
    "HistogramStats",
    "LiveRunState",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "NOOP_BUS",
    "NOOP_DECISIONS",
    "NOOP_FLEET",
    "NOOP_PROFILER",
    "NOOP_SERVICE",
    "NOOP_TRACER",
    "NOOP_WATCHDOG",
    "PROFILE_SCHEMA_VERSION",
    "PhaseProfiler",
    "ProgressEvent",
    "RecordingTracer",
    "RunRecorder",
    "SERVICE_EVENT_VERSION",
    "SLOTarget",
    "SLOTracker",
    "STREAM_RECORD_KINDS",
    "SUPPORTED_TRACE_VERSIONS",
    "SearchTrace",
    "ServiceEvent",
    "ServiceLog",
    "ServiceTopState",
    "Span",
    "StepHealth",
    "TRACE_SCHEMA_VERSION",
    "TraceDiff",
    "TraceStreamWriter",
    "Tracer",
    "Watchdog",
    "WatchdogConfig",
    "diff_trace_texts",
    "folded_stacks",
    "follow_trace",
    "format_event",
    "load_profile",
    "load_service_state",
    "load_state",
    "profile_from_trace",
    "read_trace_events",
    "registry_source",
    "render_comparison",
    "render_diff",
    "render_explain",
    "render_attribution",
    "render_flamegraph_svg",
    "render_profile",
    "render_service_top",
    "render_timeline",
    "render_top",
    "snapshot_to_prometheus_text",
    "trace_file_source",
    "validate_profile",
]
