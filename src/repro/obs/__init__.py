"""Observability: structured tracing, metrics and run artifacts.

The search stack (engine, strategies, Profiler, MLCD Deployment
Engine) narrates itself through this layer:

- :class:`~repro.obs.tracer.Tracer` — nested spans
  (``search → step → {gp-fit, candidate-scoring, probe}``) with
  attributes; the default :data:`~repro.obs.tracer.NOOP_TRACER` makes
  instrumentation free when nobody is listening;
- :class:`~repro.obs.metrics.MetricsRegistry` — counters / gauges /
  histograms (probes issued, probe dollars by instance type, GP fit
  durations, candidates pruned by reason) that can back-fill into the
  simulated cloud's CloudWatch-style :class:`MetricStore`;
- :class:`~repro.obs.recorder.RunRecorder` /
  :class:`~repro.obs.recorder.SearchTrace` — a versioned JSONL
  artifact per run, pretty-printed by ``python -m repro.cli trace``.

See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramStats,
    MetricsRegistry,
)
from repro.obs.recorder import TRACE_SCHEMA_VERSION, RunRecorder, SearchTrace
from repro.obs.span import Span
from repro.obs.tracer import NOOP_TRACER, RecordingTracer, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramStats",
    "MetricsRegistry",
    "NOOP_TRACER",
    "RecordingTracer",
    "RunRecorder",
    "SearchTrace",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
]
