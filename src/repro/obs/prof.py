"""Self-profiling: the phase-timing ledger and flamegraph export.

The paper's thesis — profiling cost must be *measured* before it can be
exploited — applies to this codebase too: ROADMAP item 3 (vectorised
acquisition, stacked Cholesky batching) needs per-phase hot-path
attribution before any of it can be prioritised.  A
:class:`PhaseProfiler` maintains that attribution: exclusive and
inclusive wall-time plus call counts per *phase*, where phases are the
span names already emitted through :class:`~repro.obs.tracer.Tracer`
(``search``, ``step``, ``gp-fit``, ``candidate-scoring``, ``probe``)
plus explicit refinements the spans cannot see (``gp.fit.full`` vs
``gp.fit.incremental``, ``candidate.prune``, ``scheduler.tick``,
``telemetry.sink``).

Two hard rules keep the profiler out of the determinism story:

* it lives **strictly on the wall-clock side** — it never reads the
  simulated clock and nothing it measures feeds back into search
  decisions; and
* it writes **no trace bytes** — the ledger exports only to a sidecar
  ``profile.json`` (:data:`PROFILE_SCHEMA_VERSION` v1), so canonical
  trace artifacts are byte-identical with profiling on or off (gated by
  ``repro bench``).

The default everywhere is :data:`NOOP_PROFILER`, a stateless shared
singleton whose hooks cost one attribute lookup; recording is opt-in
via ``RunRecorder(profile=True)`` / ``MLCDJobService(profile=True)``.

Ledger semantics
----------------
``inclusive_seconds`` for a phase is wall time between entry and exit,
children included; ``exclusive_seconds`` subtracts the inclusive time
of directly nested phases, so exclusive times sum (± timer resolution)
to total profiled wall time.  ``stacks`` keys the same exclusive time
by full phase path (``"search;step;gp-fit"``), which is exactly the
folded-stack format flamegraph tooling consumes
(:func:`folded_stacks`, :func:`render_flamegraph_svg`).

For traces recorded *without* a live profiler,
:func:`profile_from_trace` reconstructs the span-level subset of the
ledger from ``Span.wall_seconds`` — coarser (no sub-span phases) but
available for any schema-v1+ artifact.
"""

from __future__ import annotations

import json
import time
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.recorder import SearchTrace

__all__ = [
    "NOOP_PROFILER",
    "PROFILE_SCHEMA_VERSION",
    "PhaseProfiler",
    "folded_stacks",
    "load_profile",
    "profile_from_trace",
    "render_flamegraph_svg",
    "render_profile",
    "validate_profile",
]

PROFILE_SCHEMA_VERSION = 1
SUPPORTED_PROFILE_VERSIONS = (1,)


class _NoopPhase:
    """Shared do-nothing phase context; reentrant because stateless."""

    __slots__ = ()

    def __enter__(self) -> "_NoopPhase":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP_PHASE = _NoopPhase()


class _PhaseContext:
    """Context manager driving one explicit profiled phase."""

    __slots__ = ("_prof", "_name")

    def __init__(self, prof: "PhaseProfiler", name: str) -> None:
        self._prof = prof
        self._name = name

    def __enter__(self) -> "_PhaseContext":
        self._prof.enter(self._name)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._prof.exit_()
        return False


class PhaseProfiler:
    """Wall-clock phase-timing ledger (see module docstring).

    Hooks (``enter``/``exit_``) are called by
    :class:`~repro.obs.tracer.RecordingTracer` on every span open/close
    when the profiler is attached; :meth:`phase` marks explicit phases
    that are not spans.  All state is internal — the profiler reads the
    wall clock and mutates only itself, so it certifies externally pure
    under RL102 and never perturbs the run it measures.
    """

    enabled = True

    def __init__(self) -> None:
        # open frames: [name, wall_start, child_inclusive_seconds]
        self._stack: list[list[Any]] = []
        # ledger: name -> [count, inclusive_seconds, exclusive_seconds]
        self._phases: dict[str, list[float]] = {}
        # folded stacks: path tuple -> exclusive seconds
        self._stacks: dict[tuple[str, ...], float] = {}
        self._total_seconds = 0.0

    # -- hooks ---------------------------------------------------------------
    def enter(self, name: str) -> None:
        """Open a phase (tracer span-start hook)."""
        # the ledger is wall-time by design: overhead attribution only,
        # never trace bytes (canonical comparisons can't see it)
        now = time.perf_counter()  # repro-lint: disable=RL103
        self._stack.append([name, now, 0.0])

    def exit_(self) -> None:
        """Close the innermost phase (tracer span-finish hook).

        Tolerates an empty stack (exception unwinding past an adopted
        root span) by doing nothing.
        """
        if not self._stack:
            return
        # same wall-only rationale as enter()
        now = time.perf_counter()  # repro-lint: disable=RL103
        path = tuple(frame[0] for frame in self._stack)
        name, started, child_seconds = self._stack.pop()
        inclusive = now - started
        exclusive = inclusive - child_seconds
        stat = self._phases.get(name)
        if stat is None:
            self._phases[name] = [1, inclusive, exclusive]
        else:
            stat[0] += 1
            stat[1] += inclusive
            stat[2] += exclusive
        self._stacks[path] = self._stacks.get(path, 0.0) + exclusive
        if self._stack:
            self._stack[-1][2] += inclusive
        else:
            self._total_seconds += inclusive

    def phase(self, name: str) -> _PhaseContext:
        """Context manager marking an explicit (non-span) phase."""
        return _PhaseContext(self, name)

    # -- export --------------------------------------------------------------
    def merge(self, doc: dict[str, Any]) -> None:
        """Fold another profile document into this ledger.

        The service daemon uses this to aggregate per-job sidecars into
        one service-scope profile next to its own ``scheduler.tick``
        rows.  Counts and seconds add; ``total_seconds`` adds.
        """
        for name, stat in doc.get("phases", {}).items():
            mine = self._phases.get(name)
            if mine is None:
                self._phases[name] = [
                    stat["count"],
                    stat["inclusive_seconds"],
                    stat["exclusive_seconds"],
                ]
            else:
                mine[0] += stat["count"]
                mine[1] += stat["inclusive_seconds"]
                mine[2] += stat["exclusive_seconds"]
        for key, seconds in doc.get("stacks", {}).items():
            path = tuple(key.split(";"))
            self._stacks[path] = self._stacks.get(path, 0.0) + seconds
        self._total_seconds += doc.get("total_seconds", 0.0)

    def to_dict(self) -> dict[str, Any]:
        """The sidecar ``profile.json`` document (schema v1).

        Keys are emitted in sorted order so two ledgers over the same
        phases serialise structurally alike (values are wall times and
        naturally vary run to run).
        """
        return {
            "kind": "profile",
            "schema_version": PROFILE_SCHEMA_VERSION,
            "total_seconds": self._total_seconds,
            "phases": {
                name: {
                    "count": int(stat[0]),
                    "inclusive_seconds": stat[1],
                    "exclusive_seconds": stat[2],
                }
                for name, stat in sorted(self._phases.items())
            },
            "stacks": {
                ";".join(path): seconds
                for path, seconds in sorted(self._stacks.items())
            },
        }

    def write(self, path: str | Path) -> Path:
        """Write the sidecar document; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @property
    def phase_names(self) -> tuple[str, ...]:
        """Ledger phase names, sorted."""
        return tuple(sorted(self._phases))


class _NoopProfiler(PhaseProfiler):
    """Stateless shared no-op profiler; the default everywhere.

    Instrumented code never checks ``enabled`` on the hot path — the
    tracer does once at attach time, and explicit ``phase()`` sites get
    a shared do-nothing context manager.
    """

    enabled = False

    def __init__(self) -> None:  # pragma: no cover - trivial
        super().__init__()

    def enter(self, name: str) -> None:
        pass

    def exit_(self) -> None:
        pass

    def phase(self, name: str) -> Any:
        return _NOOP_PHASE

    def merge(self, doc: dict[str, Any]) -> None:
        pass


#: Process-wide shared no-op profiler (stateless, safe to share).
NOOP_PROFILER = _NoopProfiler()


# -- loading / validation ----------------------------------------------------
def validate_profile(doc: Any, *, source: str = "<dict>") -> dict[str, Any]:
    """Check a profile sidecar document against schema v1.

    Returns the document; raises :class:`ValueError` naming ``source``
    and the offending field otherwise.
    """
    if not isinstance(doc, dict):
        raise ValueError(f"{source}: profile document is not a JSON object")
    if doc.get("kind") != "profile":
        raise ValueError(
            f"{source}: not a profile document (kind={doc.get('kind')!r})"
        )
    version = doc.get("schema_version")
    if version not in SUPPORTED_PROFILE_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_PROFILE_VERSIONS)
        raise ValueError(
            f"{source}: unsupported profile schema version {version!r}; "
            f"supported versions: {supported}"
        )
    phases = doc.get("phases")
    if not isinstance(phases, dict):
        raise ValueError(f"{source}: profile has no phases table")
    for name, stat in phases.items():
        for key in ("count", "inclusive_seconds", "exclusive_seconds"):
            if not isinstance(stat.get(key), (int, float)):
                raise ValueError(
                    f"{source}: phase {name!r} is missing numeric {key!r}"
                )
    if not isinstance(doc.get("stacks"), dict):
        raise ValueError(f"{source}: profile has no stacks table")
    return doc


def load_profile(path: str | Path) -> dict[str, Any]:
    """Read and validate a sidecar ``profile.json``."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    return validate_profile(doc, source=str(path))


def profile_from_trace(trace: "SearchTrace") -> dict[str, Any]:
    """Reconstruct the span-level ledger from a recorded trace.

    Uses ``Span.wall_seconds`` as inclusive time (``0.0`` when absent —
    replayed or synthetic spans), subtracting direct children's wall
    time for exclusive.  Coarser than a live :class:`PhaseProfiler`
    (sub-span phases like ``gp.fit.full`` never appear) but works on
    any trace artifact after the fact.
    """
    by_id = {span.span_id: span for span in trace.spans}
    child_wall: dict[int, float] = {}
    for span in trace.spans:
        if span.parent_id is not None:
            child_wall[span.parent_id] = (
                child_wall.get(span.parent_id, 0.0) + (span.wall_seconds or 0.0)
            )

    def _path(span: Any) -> tuple[str, ...]:
        names: list[str] = []
        cursor = span
        while cursor is not None:
            names.append(cursor.name)
            cursor = (
                by_id.get(cursor.parent_id)
                if cursor.parent_id is not None
                else None
            )
        return tuple(reversed(names))

    phases: dict[str, list[float]] = {}
    stacks: dict[tuple[str, ...], float] = {}
    total = 0.0
    for span in trace.spans:
        inclusive = span.wall_seconds or 0.0
        exclusive = inclusive - child_wall.get(span.span_id, 0.0)
        stat = phases.get(span.name)
        if stat is None:
            phases[span.name] = [1, inclusive, exclusive]
        else:
            stat[0] += 1
            stat[1] += inclusive
            stat[2] += exclusive
        path = _path(span)
        stacks[path] = stacks.get(path, 0.0) + exclusive
        if span.parent_id is None:
            total += inclusive
    return {
        "kind": "profile",
        "schema_version": PROFILE_SCHEMA_VERSION,
        "total_seconds": total,
        "phases": {
            name: {
                "count": int(stat[0]),
                "inclusive_seconds": stat[1],
                "exclusive_seconds": stat[2],
            }
            for name, stat in sorted(phases.items())
        },
        "stacks": {
            ";".join(path): seconds for path, seconds in sorted(stacks.items())
        },
    }


# -- rendering ---------------------------------------------------------------
def render_profile(doc: dict[str, Any]) -> str:
    """Human-readable phase table, hottest exclusive time first."""
    lines = [
        f"profile (schema v{doc.get('schema_version')})  "
        f"total {doc.get('total_seconds', 0.0):.3f}s",
        f"{'phase':<28} {'count':>7} {'incl s':>10} {'excl s':>10} {'excl %':>7}",
    ]
    total = doc.get("total_seconds", 0.0)
    rows = sorted(
        doc.get("phases", {}).items(),
        key=lambda kv: (-kv[1]["exclusive_seconds"], kv[0]),
    )
    for name, stat in rows:
        share = (
            100.0 * stat["exclusive_seconds"] / total if total > 0 else 0.0
        )
        lines.append(
            f"{name:<28} {stat['count']:>7d} "
            f"{stat['inclusive_seconds']:>10.4f} "
            f"{stat['exclusive_seconds']:>10.4f} {share:>6.1f}%"
        )
    return "\n".join(lines)


def folded_stacks(doc: dict[str, Any]) -> str:
    """Folded-stack text (``a;b;c <microseconds>``), sorted by path.

    The value column is integer microseconds of *exclusive* time —
    exactly what ``flamegraph.pl``-style tooling consumes as sample
    counts.  Ordering is deterministic (lexicographic by path).
    """
    lines = []
    for path, seconds in sorted(doc.get("stacks", {}).items()):
        lines.append(f"{path} {int(round(seconds * 1e6))}")
    return "\n".join(lines) + ("\n" if lines else "")


def _stack_tree(doc: dict[str, Any]) -> dict[str, Any]:
    """Nest the folded stacks into a tree of inclusive times."""
    root: dict[str, Any] = {"name": "all", "self": 0.0, "children": {}}
    for path, seconds in sorted(doc.get("stacks", {}).items()):
        node = root
        for part in path.split(";"):
            node = node["children"].setdefault(
                part, {"name": part, "self": 0.0, "children": {}}
            )
        node["self"] += seconds

    def _total(node: dict[str, Any]) -> float:
        node["total"] = node["self"] + sum(
            _total(child) for child in node["children"].values()
        )
        return node["total"]

    _total(root)
    return root


def _frame_color(name: str) -> str:
    """Deterministic warm colour for a frame (crc32, never hash())."""
    digest = zlib.crc32(name.encode("utf-8"))
    red = 205 + digest % 50
    green = 60 + (digest >> 8) % 120
    blue = (digest >> 16) % 60
    return f"rgb({red},{green},{blue})"


def render_flamegraph_svg(
    doc: dict[str, Any], *, title: str = "repro profile"
) -> str:
    """Self-contained flamegraph SVG from a profile document.

    Hand-rolled (no external tooling): one ``<rect>`` + label per
    frame, width proportional to inclusive time, children stacked
    above parents in sorted-name order so output is deterministic for
    a given ledger.
    """
    tree = _stack_tree(doc)
    width, row_height, font_size = 1200.0, 18, 11
    total = tree["total"] or 1.0

    def _depth(node: dict[str, Any]) -> int:
        if not node["children"]:
            return 1
        return 1 + max(_depth(child) for child in node["children"].values())

    depth = _depth(tree)
    height = depth * row_height + 2 * row_height
    rects: list[str] = []

    def _emit(node: dict[str, Any], x: float, level: int) -> None:
        frac = node["total"] / total
        w = frac * width
        if w < 0.25:
            return
        y = height - (level + 2) * row_height
        label = node["name"] if w > 40 else ""
        pct = 100.0 * node["total"] / total
        rects.append(
            f'<g><title>{_escape(node["name"])} '
            f'({node["total"]:.4f}s, {pct:.1f}%)</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" '
            f'height="{row_height - 1}" fill="{_frame_color(node["name"])}" '
            f'rx="2"/>'
            + (
                f'<text x="{x + 3:.2f}" y="{y + row_height - 6}" '
                f'font-size="{font_size}" font-family="monospace">'
                f"{_escape(label)}</text>"
                if label
                else ""
            )
            + "</g>"
        )
        cx = x
        for name in sorted(node["children"]):
            child = node["children"][name]
            _emit(child, cx, level + 1)
            cx += child["total"] / total * width

    _emit(tree, 0.0, 0)
    header = (
        f'<text x="{width / 2:.0f}" y="{row_height - 4}" '
        f'font-size="{font_size + 3}" font-family="monospace" '
        f'text-anchor="middle">{_escape(title)}</text>'
    )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height}" viewBox="0 0 {width:.0f} {height}">'
        f"{header}{''.join(rects)}</svg>\n"
    )


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _iter_phase_rows(doc: dict[str, Any]) -> Iterator[tuple[str, dict[str, Any]]]:
    """Phases in sorted-name order (bench history flattening helper)."""
    yield from sorted(doc.get("phases", {}).items())
