"""Structured trace spans.

A :class:`Span` is one timed, attributed operation in a search run.
Spans nest: ``search → step → {gp-fit, candidate-scoring, probe}`` at
the strategy layer, plus ``profile`` / ``deploy`` spans from the
Profiler and the MLCD Deployment Engine.  Two timebases coexist:

- ``start`` / ``end`` come from the tracer's clock — the *simulated*
  cloud clock when one exists, so span durations line up with billed
  time — and
- ``wall_seconds`` is always real ``perf_counter`` time, which is what
  matters for "how long did the GP fit take" questions the simulated
  clock cannot answer (it does not advance during computation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Span"]


@dataclass(slots=True)
class Span:
    """One operation in a trace.

    Attributes
    ----------
    name:
        Span type (``"search"``, ``"step"``, ``"probe"``, …).
    span_id / parent_id:
        Tree structure; ``parent_id`` is ``None`` for roots.
    start / end:
        Tracer-clock timestamps; ``end`` is ``None`` while open.
    wall_seconds:
        Real elapsed seconds (``None`` while open).
    attributes:
        Arbitrary JSON-serialisable key/value annotations.
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    attributes: dict[str, Any] = field(default_factory=dict)
    end: float | None = None
    wall_seconds: float | None = None

    def set_attribute(self, key: str, value: Any) -> None:
        """Annotate this span."""
        self.attributes[key] = value

    @property
    def finished(self) -> bool:
        """Whether the span has been closed."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Tracer-clock duration; 0.0 while the span is open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (see :mod:`repro.obs.recorder`)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "wall_seconds": self.wall_seconds,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span serialised by :meth:`to_dict`."""
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start=data["start"],
            end=data.get("end"),
            wall_seconds=data.get("wall_seconds"),
            attributes=dict(data.get("attributes", {})),
        )
