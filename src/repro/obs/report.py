"""Multi-run comparison reports (the ``repro report <trace>...`` mode).

Takes any number of saved :class:`~repro.obs.recorder.SearchTrace`
artifacts and renders a side-by-side comparison — probes, profiling
spend, cost-to-best, stop reasons and watchdog anomalies — as markdown
or a self-contained HTML page.  Built on the same saved artifacts as
``repro trace`` / ``repro explain``, so runs from different machines or
branches compare without re-running anything.
"""

from __future__ import annotations

import html as _html
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.recorder import SearchTrace

__all__ = ["comparison_rows", "render_comparison"]


def _cost_to_best(trace: "SearchTrace") -> float | None:
    """Cumulative profiling spend when the winner was first probed."""
    if trace.best is None:
        return None
    for row in trace.probe_rows():
        if row["deployment"] == trace.best and row["spent_usd"] is not None:
            return float(row["spent_usd"])
    return None


def comparison_rows(traces: Sequence["SearchTrace"]) -> list[dict[str, Any]]:
    """One summary dict per trace (the data behind the report table)."""
    rows: list[dict[str, Any]] = []
    for trace in traces:
        summary = trace.summary
        anomalies = trace.anomaly_rows()
        by_rule: dict[str, int] = {}
        for a in anomalies:
            rule = str(a["rule"])
            by_rule[rule] = by_rule.get(rule, 0) + 1
        rows.append({
            "strategy": trace.strategy,
            "scenario": trace.scenario,
            "probes": trace.n_probes,
            "profile_seconds": float(summary.get("profile_seconds", 0.0)),
            "profile_dollars": float(summary.get("profile_dollars", 0.0)),
            "best": trace.best,
            "cost_to_best_usd": _cost_to_best(trace),
            "attributed_usd": (
                trace.attributed_dollars_total if trace.fleet else None
            ),
            "stop_reason": trace.stop_reason,
            "n_decisions": len(trace.decisions),
            "anomalies": by_rule,
        })
    return rows


def render_comparison(
    traces: Sequence["SearchTrace"], *, fmt: str = "markdown"
) -> str:
    """Render a multi-run comparison in ``markdown`` or ``html``."""
    if fmt not in ("markdown", "html"):
        raise ValueError(f"unknown report format {fmt!r}")
    if not traces:
        raise ValueError("no traces to compare")
    markdown = _render_markdown(traces)
    if fmt == "markdown":
        return markdown
    return _wrap_html(markdown)


def _render_markdown(traces: Sequence["SearchTrace"]) -> str:
    from repro.textfmt import format_dollars, format_hours

    rows = comparison_rows(traces)
    headers = [
        "run", "strategy", "scenario", "probes", "profiling",
        "profiling $", "attributed $", "best", "cost-to-best",
        "anomalies",
    ]
    table = [f"| {' | '.join(headers)} |",
             f"|{'|'.join('---' for _ in headers)}|"]
    for i, row in enumerate(rows, start=1):
        anomaly_text = ", ".join(
            f"{rule} x{n}" for rule, n in sorted(row["anomalies"].items())
        ) or "-"
        cost_to_best = (
            format_dollars(row["cost_to_best_usd"])
            if row["cost_to_best_usd"] is not None else "-"
        )
        # "-" means the trace carried no fleet events (recording off
        # or a pre-v3 artifact), not zero attributed spend
        attributed = (
            format_dollars(row["attributed_usd"])
            if row["attributed_usd"] is not None else "-"
        )
        cells = [
            str(i),
            row["strategy"],
            row["scenario"],
            str(row["probes"]),
            format_hours(row["profile_seconds"]),
            format_dollars(row["profile_dollars"]),
            attributed,
            str(row["best"] or "-"),
            cost_to_best,
            anomaly_text,
        ]
        table.append(f"| {' | '.join(cells)} |")

    lines = [
        "# Search run comparison",
        "",
        f"{len(traces)} run(s), compared from saved trace artifacts.",
        "",
        *table,
        "",
        "## Stop reasons",
        "",
    ]
    for i, row in enumerate(rows, start=1):
        lines.append(f"- run {i} ({row['strategy']}): {row['stop_reason']}")
    anomalous = [
        (i, trace) for i, trace in enumerate(traces, start=1)
        if trace.anomaly_rows()
    ]
    if anomalous:
        lines.extend(["", "## Watchdog anomalies", ""])
        for i, trace in anomalous:
            for a in trace.anomaly_rows():
                lines.append(
                    f"- run {i} step {a['step']}: **{a['rule']}** — "
                    f"{a['message']}"
                )
    decided = [
        (i, row) for i, row in enumerate(rows, start=1)
        if row["n_decisions"]
    ]
    if decided:
        lines.extend(["", "## Decision records", ""])
        for i, row in decided:
            lines.append(
                f"- run {i}: {row['n_decisions']} recorded "
                f"(inspect with `repro explain`)"
            )
    return "\n".join(lines) + "\n"


def _wrap_html(markdown: str) -> str:
    """Minimal self-contained HTML rendering of the markdown report.

    Stdlib-only on purpose: handles exactly the constructs
    :func:`_render_markdown` emits (headings, pipe tables, bullet
    lists, paragraphs) rather than general markdown.
    """
    body: list[str] = []
    table_open = False
    header_row = True
    for line in markdown.splitlines():
        stripped = line.strip()
        if stripped.startswith("|"):
            cells = [c.strip() for c in stripped.strip("|").split("|")]
            if all(set(c) <= {"-"} and c for c in cells):
                continue  # the |---|---| separator row
            if not table_open:
                body.append("<table>")
                table_open = True
                header_row = True
            tag = "th" if header_row else "td"
            header_row = False
            body.append(
                "<tr>" + "".join(
                    f"<{tag}>{_escape_inline(c)}</{tag}>" for c in cells
                ) + "</tr>"
            )
            continue
        if table_open:
            body.append("</table>")
            table_open = False
        if stripped.startswith("## "):
            body.append(f"<h2>{_escape_inline(stripped[3:])}</h2>")
        elif stripped.startswith("# "):
            body.append(f"<h1>{_escape_inline(stripped[2:])}</h1>")
        elif stripped.startswith("- "):
            body.append(f"<li>{_escape_inline(stripped[2:])}</li>")
        elif stripped:
            body.append(f"<p>{_escape_inline(stripped)}</p>")
    if table_open:
        body.append("</table>")
    content = "\n".join(body)
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        "<title>Search run comparison</title>\n"
        "<style>body{font-family:sans-serif;margin:2em}"
        "table{border-collapse:collapse}"
        "th,td{border:1px solid #999;padding:0.3em 0.6em;text-align:left}"
        "th{background:#eee}</style></head>\n"
        f"<body>\n{content}\n</body></html>\n"
    )


def _escape_inline(text: str) -> str:
    """HTML-escape, then re-apply the report's bold/code markers."""
    escaped = _html.escape(text)
    for marker, tag in (("**", "strong"), ("`", "code")):
        while escaped.count(marker) >= 2:
            escaped = escaped.replace(marker, f"<{tag}>", 1)
            escaped = escaped.replace(marker, f"</{tag}>", 1)
    return escaped
