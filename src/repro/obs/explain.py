"""Decision explanations: the ``repro explain`` command's renderer.

Answers "why was D(m,n) probed?" and "why did the search stop?" purely
from a saved :class:`~repro.obs.recorder.SearchTrace` — no live world,
no re-running the search.  Everything shown here comes from the
decision records the strategy staged while it was scoring candidates,
so the explanation is the decision, not a reconstruction of it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.decisions import CandidateRecord, DecisionRecord
    from repro.obs.recorder import SearchTrace

__all__ = ["render_explain"]

#: Candidate rows shown in a per-step table before truncating.
_MAX_CANDIDATE_ROWS = 12


def render_explain(
    trace: "SearchTrace", *, step: int | None = None, stop: bool = False
) -> str:
    """Explain a trace: overview, one step (``step=k``) or the stop.

    Raises
    ------
    ValueError
        If the trace carries no decision records (schema-v1 artifact,
        or recording was off), or ``step`` does not exist.
    """
    if not trace.decisions:
        raise ValueError(
            "trace has no decision records — it predates schema v2 or "
            "was recorded with decisions off; re-run with decision "
            "recording enabled (the default for recorded runs)"
        )
    if step is not None:
        record = trace.decision_for_step(step)
        if record is None:
            steps = ", ".join(str(r.step) for r in trace.decisions)
            raise ValueError(
                f"no decision record for step {step}; "
                f"recorded steps: {steps}"
            )
        return _render_step(trace, record)
    if stop:
        return _render_stop(trace)
    return _render_overview(trace)


# -- unit formatting ---------------------------------------------------------


def _constraint_formatter(trace: "SearchTrace") -> Callable[[float], str]:
    """Format constraint-resource amounts in the scenario's units."""
    if trace.scenario.startswith("scenario-2"):
        return lambda v: f"{v / 3600:.2f} h"
    return lambda v: f"${v:.2f}"


def _fmt(value: float | None, pattern: str = "{:.4g}") -> str:
    return "-" if value is None else pattern.format(value)


# -- overview ----------------------------------------------------------------


def _render_overview(trace: "SearchTrace") -> str:
    from repro.textfmt import format_table

    fmt_limit = _constraint_formatter(trace)
    rows = []
    for r in trace.decisions:
        pruned = ", ".join(
            f"{reason}:{n}" for reason, n in sorted(r.pruned.items())
        )
        rows.append((
            str(r.step),
            str(r.n_observations),
            r.chosen or ("(stop)" if r.stop_reason else "-"),
            str(r.n_feasible),
            _fmt(r.best_feasible_ei),
            pruned or "-",
        ))
    table = format_table(
        ["step", "n_obs", "chosen", "feasible", "best EI", "pruned"], rows
    )
    lines = [
        f"strategy      : {trace.strategy}",
        f"scenario      : {trace.scenario}",
        f"decisions     : {len(trace.decisions)} recorded "
        f"(mode {trace.decisions[0].mode})",
        "",
        table,
    ]
    prior_step = _first_prior_prune(trace)
    if prior_step is not None:
        record = trace.decision_for_step(prior_step)
        caps = ", ".join(
            f"{itype} <= {cap}"
            for itype, cap in sorted((record.prior_caps or {}).items())
        ) if record is not None else ""
        lines.append("")
        lines.append(
            f"concave prior first pruned a scale-out neighbourhood at "
            f"step {prior_step}" + (f" (caps: {caps})" if caps else "")
        )
    stop = _stop_record(trace)
    if stop is not None:
        lines.append(
            f"search stopped at step {stop.step}: {stop.stop_reason}"
        )
    else:
        lines.append(f"stop reason   : {trace.stop_reason}")
    anomalies = trace.anomaly_rows()
    if anomalies:
        summary = ", ".join(
            f"{a['rule']}@{a['step']}" for a in anomalies
        )
        lines.append(f"anomalies     : {summary}")
    limit = trace.decisions[-1].limit
    consumed = trace.decisions[-1].consumed
    if limit is not None and consumed is not None:
        lines.append(
            f"constraint    : {fmt_limit(consumed)} of "
            f"{fmt_limit(limit)} consumed at the last decision"
        )
    return "\n".join(lines)


def _first_prior_prune(trace: "SearchTrace") -> int | None:
    for r in trace.decisions:
        if r.pruned.get("prior", 0) > 0:
            return r.step
    return None


def _stop_record(trace: "SearchTrace") -> "DecisionRecord | None":
    for r in trace.decisions:
        if r.stop_reason is not None:
            return r
    return None


# -- one step ----------------------------------------------------------------


def _candidate_rows(
    candidates: tuple["CandidateRecord", ...],
) -> list[tuple[str, ...]]:
    rows = []
    for c in candidates[:_MAX_CANDIDATE_ROWS]:
        status = "ok" if c.feasible else ",".join(c.blocked_by) or "blocked"
        rows.append((
            c.deployment,
            _fmt(c.ei),
            _fmt(c.penalty),
            _fmt(c.score),
            _fmt(c.tei),
            status,
        ))
    return rows


def _render_step(trace: "SearchTrace", record: "DecisionRecord") -> str:
    from repro.textfmt import format_table

    fmt_limit = _constraint_formatter(trace)
    lines = [
        f"step {record.step} of {len(trace.decisions)} "
        f"({trace.strategy}, objective {record.objective or '-'}; "
        f"{record.n_observations} observations)",
    ]
    if record.incumbent is not None:
        lines.append(
            f"incumbent     : {record.incumbent} "
            f"(objective {_fmt(record.incumbent_objective)})"
        )
    if record.limit is not None and record.consumed is not None:
        reserve = (
            f"; reserving {fmt_limit(record.incumbent_cost)} to finish "
            f"on the incumbent"
            if record.incumbent_cost is not None
            else ""
        )
        lines.append(
            f"constraint    : {fmt_limit(record.consumed)} of "
            f"{fmt_limit(record.limit)} consumed{reserve}"
        )
    pruned = ", ".join(
        f"{reason}:{n}" for reason, n in sorted(record.pruned.items())
    )
    lines.append(
        f"candidates    : {record.n_candidates} scored, "
        f"{record.n_feasible} feasible"
        + (f" (pruned {pruned})" if pruned else "")
    )
    if record.prior_caps:
        caps = ", ".join(
            f"{itype} <= {cap}"
            for itype, cap in sorted(record.prior_caps.items())
        )
        lines.append(f"prior caps    : {caps}")
    if record.surrogate:
        s = record.surrogate
        theta = s.get("theta")
        theta_text = (
            "[" + ", ".join(f"{t:.3g}" for t in theta) + "]"
            if theta else "-"
        )
        cond = s.get("gram_condition")
        lines.append(
            f"surrogate     : theta={theta_text} "
            f"LML={_fmt(s.get('log_marginal_likelihood'), '{:.3f}')} "
            f"cond={'inf' if cond is None else f'{cond:.3g}'} "
            f"refit={s.get('refit_mode', '-')}"
        )
    fleet_line = _fleet_state_line(trace, record)
    if fleet_line is not None:
        lines.append(fleet_line)
    if record.candidates:
        lines.append("")
        lines.append(
            f"top candidates by score "
            f"({min(len(record.candidates), _MAX_CANDIDATE_ROWS)} of "
            f"{record.n_candidates}):"
        )
        lines.append(format_table(
            ["deployment", "EI", "PL", "score", "TEI", "status"],
            _candidate_rows(record.candidates),
        ))
        hidden = len(record.candidates) - _MAX_CANDIDATE_ROWS
        if hidden > 0:
            lines.append(f"... {hidden} more recorded")
    lines.append("")
    if record.stop_reason is not None:
        lines.append(f"decision      : STOP — {record.stop_reason}")
        lines.extend(_stop_rationale(record))
    elif record.chosen is not None:
        lines.extend(_chosen_rationale(record))
        if len(record.batch) > 1:
            lines.append(
                "batch         : " + ", ".join(record.batch)
            )
    return "\n".join(lines)


def _fleet_state_line(
    trace: "SearchTrace", record: "DecisionRecord"
) -> str | None:
    """Fleet state when this step's probe requested its cluster.

    Only possible when the trace carries fleet events and the step
    chose a deployment (stops launch nothing).  Deployments are unique
    per search — strategies only probe unvisited candidates — so the
    chosen deployment string identifies its ``requested`` event.
    """
    if not trace.fleet or record.chosen is None:
        return None
    request_time = next(
        (
            e.time for e in trace.fleet
            if e.event == "requested" and e.deployment == record.chosen
        ),
        None,
    )
    if request_time is None:
        return None
    # reconstruct which clusters were RUNNING at the request instant
    running_at: dict[Any, tuple[str, int]] = {}
    spot_factor = None
    for event in trace.fleet:
        if event.time > request_time:
            break
        if event.cluster_id is None:
            if event.event == "spot-price":
                spot_factor = event.spot_factor
            continue
        if event.event == "running":
            running_at[event.cluster_id] = (
                event.instance_type, event.count
            )
        elif event.event in ("terminated", "revoked"):
            running_at.pop(event.cluster_id, None)
    by_type: dict[str, int] = {}
    for itype, count in running_at.values():
        by_type[itype] = by_type.get(itype, 0) + count
    if by_type:
        detail = ", ".join(
            f"{count}x {itype}" for itype, count in sorted(by_type.items())
        )
        state = f"{sum(by_type.values())} instance(s) running ({detail})"
    else:
        state = "no instances running"
    line = (
        f"fleet         : {state} when {record.chosen} was requested "
        f"(t={request_time:.0f} s)"
    )
    if spot_factor is not None:
        line += f"; spot factor {spot_factor:.2f}"
    return line


def _chosen_rationale(record: "DecisionRecord") -> list[str]:
    chosen = next(
        (c for c in record.candidates if c.deployment == record.chosen),
        None,
    )
    lines = [f"decision      : probe {record.chosen}"]
    if chosen is None:
        return lines
    if chosen.penalty is not None and chosen.score is not None:
        lines.append(
            f"                EI {_fmt(chosen.ei)} / "
            f"PL {_fmt(chosen.penalty)} -> score {_fmt(chosen.score)} "
            f"(cost-penalised acquisition, Eqs. 7-8)"
        )
    else:
        lines.append(f"                EI {_fmt(chosen.ei)} (raw acquisition)")
    if chosen.price_per_hour is not None:
        lines.append(
            f"                cluster price ${chosen.price_per_hour:.2f}/h"
        )
    return lines


def _stop_rationale(record: "DecisionRecord") -> list[str]:
    lines: list[str] = []
    reason = record.stop_reason or ""
    if "protective stop" in reason:
        blocked = ", ".join(
            f"{r}:{n}" for r, n in sorted(record.pruned.items())
        )
        lines.append(
            f"                no candidate passed the protective filters "
            f"({blocked or 'none feasible'})"
        )
        if (
            record.limit is not None
            and record.consumed is not None
            and record.incumbent_cost is not None
        ):
            lines.append(
                f"                remaining slack "
                f"{record.limit - record.consumed:.4g} must still cover "
                f"the incumbent's completion ({record.incumbent_cost:.4g} "
                f"in constraint units)"
            )
    elif "converged" in reason:
        lines.append(
            f"                best feasible EI {_fmt(record.best_feasible_ei)} "
            f"no longer justifies any probe cost"
        )
    return lines


# -- the stop ----------------------------------------------------------------


def _render_stop(trace: "SearchTrace") -> str:
    record = _stop_record(trace)
    if record is None:
        return (
            f"the search did not stop on a recorded decision: "
            f"{trace.stop_reason}\n"
            f"(decision records cover explore steps; max-steps and "
            f"exhaustion stops happen outside candidate scoring)"
        )
    return _render_step(trace, record)
