"""Run artifacts: recording a search into a portable trace.

A :class:`RunRecorder` bundles the live halves of the observability
layer (a :class:`~repro.obs.tracer.RecordingTracer`, a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.decisions.DecisionLog` and a
:class:`~repro.obs.watchdog.Watchdog`); finalising it against a
completed :class:`~repro.core.result.SearchResult` yields a
:class:`SearchTrace` — a versioned, plain-JSON-lines artifact holding
the span tree, the decision records, the metric snapshot and a summary
dict.  Traces are assets the same way `repro.io` reports are: probe
dollars were really "paid", so the per-step record is worth keeping
next to every figure.

JSONL layout (one JSON object per line)::

    {"kind": "header", "schema_version": 5, "strategy": ..., ...}
    {"kind": "span", "name": "search", ...}        # one per span
    {"kind": "decision", "step": 1, ...}           # one per decision
    {"kind": "fleet", "event": "requested", ...}   # one per fleet event
    {"kind": "service", "event": "submitted", ...} # one per svc event
    {"kind": "progress", "seq": 7, ...}            # one per heartbeat
    {"kind": "metrics", "data": {...}}             # final line

Schema history: v1 had no ``decision`` lines; v2 had no ``fleet``
lines; v3 had no ``progress`` lines; v4 had no ``service`` lines
(those appear only in service-scope traces streamed by the job
daemon — per-job traces never carry them).  All still load (they come
back with empty tuples, normalised to the current version); anything
else is rejected with an error naming the file and the offending
version.

Traces *streamed* by :class:`~repro.obs.stream.TraceStreamWriter`
are a superset of this layout: records land in bus order (so spans
appear in *finish* order, prefixed by ``span-start`` lines), interim
``metrics`` snapshots may appear mid-file, and a final ``summary``
line carries the header fields that were unknown at stream start.
The loader normalises all of that — ``span-start`` lines are
skipped, the last ``metrics`` line wins, the ``summary`` line
overrides the placeholder header, and spans / decisions / fleet /
progress records are re-sorted into canonical order — so loading a
streamed file yields the same trace as :meth:`RunRecorder.finalize`.
A torn final line (a crashed or still-writing producer) is tolerated
and reported via :attr:`SearchTrace.truncated` instead of raising.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.obs.bus import NOOP_BUS, EventBus, ProgressEvent
from repro.obs.decisions import DecisionLog, DecisionRecord
from repro.obs.fleet import NOOP_FLEET, FleetEvent, FleetLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.prof import NOOP_PROFILER, PhaseProfiler
from repro.obs.span import Span
from repro.obs.svc import ServiceEvent
from repro.obs.tracer import RecordingTracer
from repro.obs.watchdog import NOOP_WATCHDOG, Watchdog, WatchdogConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.result import SearchResult

__all__ = [
    "RunRecorder",
    "SearchTrace",
    "SUPPORTED_TRACE_VERSIONS",
    "TRACE_SCHEMA_VERSION",
]

TRACE_SCHEMA_VERSION = 5
SUPPORTED_TRACE_VERSIONS = (1, 2, 3, 4, 5)


@dataclass(frozen=True)
class SearchTrace:
    """A recorded search run: spans + decisions + metrics, versioned."""

    strategy: str
    scenario: str
    stop_reason: str
    best: str | None
    summary: dict[str, Any]
    spans: tuple[Span, ...]
    decisions: tuple[DecisionRecord, ...] = ()
    fleet: tuple[FleetEvent, ...] = ()
    service: tuple[ServiceEvent, ...] = ()
    progress: tuple[ProgressEvent, ...] = ()
    metrics: dict[str, Any] = field(default_factory=dict)
    schema_version: int = TRACE_SCHEMA_VERSION
    #: Load-time report, not part of the artifact: ``True`` when the
    #: source file ended in a torn (partially written) final line —
    #: a crashed producer, or one still mid-write.
    truncated: bool = False

    # -- derived views -------------------------------------------------------
    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in start order."""
        return [s for s in self.spans if s.name == name]

    def probe_rows(self) -> list[dict[str, Any]]:
        """Per-probe records (one dict per ``probe`` span, in order)."""
        rows = []
        for span in self.find("probe"):
            a = span.attributes
            rows.append({
                "step": a.get("step"),
                "deployment": a.get("deployment"),
                "note": a.get("note", ""),
                "speed": a.get("speed"),
                "cost_usd": a.get("cost_usd"),
                "seconds": a.get("seconds"),
                "spent_usd": a.get("spent_usd"),
                "elapsed_s": a.get("elapsed_s"),
                "failure_reason": a.get("failure_reason", ""),
            })
        return rows

    def decision_for_step(self, step: int) -> DecisionRecord | None:
        """The decision record with the given 1-based step, if any."""
        for record in self.decisions:
            if record.step == step:
                return record
        return None

    def anomaly_rows(self) -> list[dict[str, Any]]:
        """Watchdog anomalies (one dict per ``anomaly`` span, in order)."""
        rows = []
        for span in self.find("anomaly"):
            a = span.attributes
            rows.append({
                "rule": a.get("rule"),
                "step": a.get("step"),
                "message": a.get("message", ""),
            })
        return rows

    def fleet_rows(self) -> list[dict[str, Any]]:
        """Fleet lifecycle events as dicts (one per event, in order)."""
        return [event.to_dict() for event in self.fleet]

    def service_rows(self) -> list[dict[str, Any]]:
        """Service lifecycle events as dicts (one per event, in order)."""
        return [event.to_dict() for event in self.service]

    def progress_rows(self) -> list[dict[str, Any]]:
        """Heartbeat events as dicts (one per event, in bus order)."""
        return [event.to_dict() for event in self.progress]

    @property
    def running(self) -> bool:
        """Whether this is a live (still-streaming) trace snapshot."""
        return self.stop_reason == "running"

    def attributions(self) -> list[FleetEvent]:
        """Closing fleet events joined to ledger entries.

        One event per billing-ledger entry, in ledger order — the
        cost-attribution join.  Spot-training segments (billed outside
        the ledger, ``ledger_index=None``) are excluded.
        """
        billed = [e for e in self.fleet if e.ledger_index is not None]
        return sorted(billed, key=lambda e: e.ledger_index or 0)

    @property
    def attributed_dollars_total(self) -> float:
        """Attributed dollars summed in ledger order.

        Matches ``BillingLedger.total()`` *exactly* (same floats, same
        summation order) when fleet recording covered the whole run —
        enforced live by :func:`repro.contracts.check_fleet_attribution`.
        """
        total = 0.0
        for event in self.attributions():
            total += event.dollars or 0.0
        return total

    @property
    def probe_dollars_total(self) -> float:
        """Sum of per-probe dollar costs recorded in the spans.

        Reconciles exactly with the simulated cloud's billing ledger
        under the ``"profiling"`` purpose tag (asserted in
        ``tests/obs/test_instrumentation.py``).
        """
        return sum(r["cost_usd"] or 0.0 for r in self.probe_rows())

    @property
    def n_probes(self) -> int:
        """Number of probe spans recorded."""
        return len(self.find("probe"))

    def render(self) -> str:
        """Human-readable per-step table plus summary."""
        from repro.obs.render import render_trace

        return render_trace(self)

    def render_spans(self) -> str:
        """Indented span-tree view."""
        from repro.obs.render import render_span_tree

        return render_span_tree(self.spans)

    # -- serialisation -------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialise to the versioned JSONL artifact format."""
        lines = [json.dumps({
            "kind": "header",
            "schema_version": self.schema_version,
            "strategy": self.strategy,
            "scenario": self.scenario,
            "stop_reason": self.stop_reason,
            "best": self.best,
            "summary": self.summary,
        }, sort_keys=True)]
        lines.extend(
            json.dumps({"kind": "span", **s.to_dict()}, sort_keys=True)
            for s in self.spans
        )
        lines.extend(
            json.dumps({"kind": "decision", **r.to_dict()}, sort_keys=True)
            for r in self.decisions
        )
        lines.extend(
            json.dumps({"kind": "fleet", **e.to_dict()}, sort_keys=True)
            for e in self.fleet
        )
        lines.extend(
            json.dumps({"kind": "service", **e.to_dict()}, sort_keys=True)
            for e in self.service
        )
        lines.extend(
            json.dumps({"kind": "progress", **p.to_dict()}, sort_keys=True)
            for p in self.progress
        )
        lines.append(
            json.dumps({"kind": "metrics", "data": self.metrics},
                       sort_keys=True)
        )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str, *, source: str | None = None) -> "SearchTrace":
        """Parse a trace written by :meth:`to_jsonl` or streamed live.

        ``source`` names the artifact in error messages (``load`` passes
        the file path).  Older versions are migrated on load: v1 traces
        parse with no decision records, v1/v2 traces with no fleet
        events, v1–v3 traces with no progress events.

        Streamed artifacts normalise to the canonical layout:
        ``span-start`` lines are skipped, the *last* ``metrics`` line
        wins, a trailing ``summary`` line overrides the placeholder
        header, records re-sort into canonical order (spans by
        ``span_id``, decisions by ``step``, fleet and progress by
        ``seq`` — a stable no-op for artifacts already in order), and
        a torn final line sets :attr:`truncated` instead of raising.

        Raises
        ------
        ValueError
            On malformed non-final lines, a missing header, or an
            unsupported schema version.
        """
        origin = source if source is not None else "<string>"
        header: dict[str, Any] | None = None
        summary_doc: dict[str, Any] | None = None
        spans: list[Span] = []
        decisions: list[DecisionRecord] = []
        fleet: list[FleetEvent] = []
        service: list[ServiceEvent] = []
        progress: list[ProgressEvent] = []
        metrics: dict[str, Any] = {}
        truncated = False
        lines = text.splitlines()
        last_index = max(
            (i for i, line in enumerate(lines) if line.strip()), default=-1
        )
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                if i == last_index and header is not None:
                    # torn final line: a crashed producer, or one still
                    # mid-write — report it, don't refuse the artifact.
                    # (Only once a header parsed; a torn first line is
                    # just not a trace.)
                    truncated = True
                    break
                raise ValueError(
                    f"{origin}: trace line {i + 1} is not valid JSON: {exc}"
                ) from exc
            kind = doc.get("kind")
            if kind == "header":
                header = doc
            elif kind == "span":
                spans.append(Span.from_dict(doc))
            elif kind == "span-start":
                continue  # stream-only echo; the finish line has it all
            elif kind == "decision":
                decisions.append(DecisionRecord.from_dict(doc))
            elif kind == "fleet":
                fleet.append(FleetEvent.from_dict(doc))
            elif kind == "service":
                service.append(ServiceEvent.from_dict(doc))
            elif kind == "progress":
                progress.append(ProgressEvent.from_dict(doc))
            elif kind == "metrics":
                metrics = doc.get("data", {})
            elif kind == "summary":
                summary_doc = doc
            else:
                raise ValueError(
                    f"{origin}: trace line {i + 1}: unknown record kind {kind!r}"
                )
        if header is None:
            raise ValueError(f"{origin}: trace has no header record")
        version = header.get("schema_version")
        if version not in SUPPORTED_TRACE_VERSIONS:
            supported = ", ".join(str(v) for v in SUPPORTED_TRACE_VERSIONS)
            raise ValueError(
                f"unsupported trace schema version {version!r} in {origin}; "
                f"supported versions: {supported}"
            )
        if summary_doc is not None:
            for key in ("strategy", "scenario", "stop_reason", "best", "summary"):
                if key in summary_doc:
                    header[key] = summary_doc[key]
        # older artifacts migrate on load: decision lines arrived in v2,
        # fleet lines in v3, progress lines in v4 and service lines in
        # v5, so missing kinds leave empty tuples and the trace is
        # normalised to the current version (a save() round-trip
        # upgrades the file).
        return cls(
            strategy=header["strategy"],
            scenario=header["scenario"],
            stop_reason=header["stop_reason"],
            best=header.get("best"),
            summary=dict(header.get("summary", {})),
            spans=tuple(sorted(spans, key=lambda s: s.span_id)),
            decisions=tuple(sorted(decisions, key=lambda d: d.step)),
            fleet=tuple(sorted(fleet, key=lambda e: e.seq)),
            service=tuple(sorted(service, key=lambda e: e.seq)),
            progress=tuple(sorted(progress, key=lambda p: p.seq)),
            metrics=metrics,
            schema_version=TRACE_SCHEMA_VERSION,
            truncated=truncated,
        )

    def save(self, path: str | Path) -> Path:
        """Write the JSONL artifact; returns the path."""
        path = Path(path)
        path.write_text(self.to_jsonl())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SearchTrace":
        """Read a trace written by :meth:`save`."""
        path = Path(path)
        return cls.from_jsonl(path.read_text(), source=str(path))


class RunRecorder:
    """Live tracer + metrics + decisions + watchdog for one search run.

    Parameters
    ----------
    clock:
        Tracer timebase; pass the run's simulated clock
        (``lambda: cloud.clock.now``) so span timestamps reconcile
        with billed time.
    decisions:
        Decision-record mode — ``"auto"`` (default: full on the slow
        path, top-k sampled on the fast lane), ``"full"``, ``"topk"``
        or ``"off"``.
    decision_top_k:
        Candidates kept per step in ``topk`` mode.
    watchdog:
        ``True`` (default) arms the health watchdog, ``False`` disables
        it; pass a :class:`WatchdogConfig` to override thresholds.
    fleet:
        ``True`` (default) creates a live :class:`FleetLog`; attach it
        to the run's cloud (``cloud.fleet = recorder.fleet``) to record
        instance-lifecycle events and cost attribution.  ``False``
        leaves the inert ``NOOP_FLEET``.
    bus:
        ``True`` creates a live :class:`~repro.obs.bus.EventBus` (on
        the same clock) and points every recorder component at it, so
        spans, metric updates, decisions, fleet events and progress
        heartbeats publish as one totally-ordered stream.  ``False``
        (default) leaves the inert ``NOOP_BUS`` — recording behaves
        exactly as before the bus existed.
    profile:
        ``True`` attaches a live
        :class:`~repro.obs.prof.PhaseProfiler` to the tracer, building
        the phase-timing ledger (exclusive/inclusive wall time + call
        counts per phase) as the run executes.  The ledger is exported
        only to a sidecar ``profile.json`` (``recorder.prof.write``) —
        never into trace bytes — so the trace artifact is
        byte-identical with profiling on or off.  ``False`` (default)
        leaves the inert ``NOOP_PROFILER``.
    """

    def __init__(
        self,
        *,
        clock=None,
        decisions: str = "auto",
        decision_top_k: int = 8,
        watchdog: bool | WatchdogConfig = True,
        fleet: bool = True,
        bus: bool = False,
        profile: bool = False,
    ) -> None:
        self.bus: EventBus = EventBus(clock=clock) if bus else NOOP_BUS
        self.prof: PhaseProfiler = (
            PhaseProfiler() if profile else NOOP_PROFILER
        )
        self.tracer = RecordingTracer(
            clock=clock, bus=self.bus, profiler=self.prof
        )
        self.metrics = MetricsRegistry(bus=self.bus)
        self.decisions = DecisionLog(
            decisions, top_k=decision_top_k, bus=self.bus
        )
        self.fleet: FleetLog = (
            FleetLog(metrics=self.metrics, bus=self.bus) if fleet else NOOP_FLEET
        )
        if watchdog is False:
            self.watchdog: Watchdog = NOOP_WATCHDOG
        else:
            config = watchdog if isinstance(watchdog, WatchdogConfig) else None
            self.watchdog = Watchdog(
                config, tracer=self.tracer, metrics=self.metrics
            )

    def finalize(self, result: "SearchResult") -> SearchTrace:
        """Freeze the recording into a :class:`SearchTrace`.

        When the bus is live, a final ``summary`` event is published
        first so streaming sinks can complete their artifacts (the
        :class:`~repro.obs.stream.TraceStreamWriter` appends its
        closing ``metrics`` + ``summary`` lines on it — followers use
        the ``summary`` line as the end-of-run signal).
        """
        strategy = result.strategy
        scenario = result.scenario.describe()
        best = None if result.best is None else str(result.best)
        summary = {
            "n_steps": len(result.trials),
            "profile_seconds": result.profile_seconds,
            "profile_dollars": result.profile_dollars,
            "best_measured_speed": result.best_measured_speed,
        }
        if self.bus.enabled:
            self.bus.publish("summary", {
                "strategy": strategy,
                "scenario": scenario,
                "stop_reason": result.stop_reason,
                "best": best,
                "summary": summary,
            })
        return SearchTrace(
            strategy=strategy,
            scenario=scenario,
            stop_reason=result.stop_reason,
            best=best,
            summary=summary,
            spans=self.tracer.spans,
            decisions=self.decisions.records,
            fleet=self.fleet.events,
            progress=self.bus.progress_events,
            metrics=self.metrics.snapshot(),
        )
