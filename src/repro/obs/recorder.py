"""Run artifacts: recording a search into a portable trace.

A :class:`RunRecorder` bundles the live halves of the observability
layer (a :class:`~repro.obs.tracer.RecordingTracer` plus a
:class:`~repro.obs.metrics.MetricsRegistry`); finalising it against a
completed :class:`~repro.core.result.SearchResult` yields a
:class:`SearchTrace` — a versioned, plain-JSON-lines artifact holding
the span tree, the metric snapshot and a summary dict.  Traces are
assets the same way `repro.io` reports are: probe dollars were really
"paid", so the per-step record is worth keeping next to every figure.

JSONL layout (one JSON object per line)::

    {"kind": "header", "schema_version": 1, "strategy": ..., ...}
    {"kind": "span", "name": "search", ...}        # one per span
    {"kind": "metrics", "data": {...}}             # final line
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Span
from repro.obs.tracer import RecordingTracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.result import SearchResult

__all__ = ["RunRecorder", "SearchTrace", "TRACE_SCHEMA_VERSION"]

TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SearchTrace:
    """A recorded search run: spans + metrics + summary, versioned."""

    strategy: str
    scenario: str
    stop_reason: str
    best: str | None
    summary: dict[str, Any]
    spans: tuple[Span, ...]
    metrics: dict[str, Any] = field(default_factory=dict)
    schema_version: int = TRACE_SCHEMA_VERSION

    # -- derived views -------------------------------------------------------
    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in start order."""
        return [s for s in self.spans if s.name == name]

    def probe_rows(self) -> list[dict[str, Any]]:
        """Per-probe records (one dict per ``probe`` span, in order)."""
        rows = []
        for span in self.find("probe"):
            a = span.attributes
            rows.append({
                "step": a.get("step"),
                "deployment": a.get("deployment"),
                "note": a.get("note", ""),
                "speed": a.get("speed"),
                "cost_usd": a.get("cost_usd"),
                "seconds": a.get("seconds"),
                "spent_usd": a.get("spent_usd"),
                "elapsed_s": a.get("elapsed_s"),
                "failure_reason": a.get("failure_reason", ""),
            })
        return rows

    @property
    def probe_dollars_total(self) -> float:
        """Sum of per-probe dollar costs recorded in the spans.

        Reconciles exactly with the simulated cloud's billing ledger
        under the ``"profiling"`` purpose tag (asserted in
        ``tests/obs/test_instrumentation.py``).
        """
        return sum(r["cost_usd"] or 0.0 for r in self.probe_rows())

    @property
    def n_probes(self) -> int:
        """Number of probe spans recorded."""
        return len(self.find("probe"))

    def render(self) -> str:
        """Human-readable per-step table plus summary."""
        from repro.obs.render import render_trace

        return render_trace(self)

    def render_spans(self) -> str:
        """Indented span-tree view."""
        from repro.obs.render import render_span_tree

        return render_span_tree(self.spans)

    # -- serialisation -------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialise to the versioned JSONL artifact format."""
        lines = [json.dumps({
            "kind": "header",
            "schema_version": self.schema_version,
            "strategy": self.strategy,
            "scenario": self.scenario,
            "stop_reason": self.stop_reason,
            "best": self.best,
            "summary": self.summary,
        }, sort_keys=True)]
        lines.extend(
            json.dumps({"kind": "span", **s.to_dict()}, sort_keys=True)
            for s in self.spans
        )
        lines.append(
            json.dumps({"kind": "metrics", "data": self.metrics},
                       sort_keys=True)
        )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "SearchTrace":
        """Parse a trace written by :meth:`to_jsonl`.

        Raises
        ------
        ValueError
            On malformed lines, a missing header, or an unsupported
            schema version.
        """
        header: dict[str, Any] | None = None
        spans: list[Span] = []
        metrics: dict[str, Any] = {}
        for i, line in enumerate(text.splitlines()):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"trace line {i + 1} is not valid JSON: {exc}"
                ) from exc
            kind = doc.get("kind")
            if kind == "header":
                header = doc
            elif kind == "span":
                spans.append(Span.from_dict(doc))
            elif kind == "metrics":
                metrics = doc.get("data", {})
            else:
                raise ValueError(
                    f"trace line {i + 1}: unknown record kind {kind!r}"
                )
        if header is None:
            raise ValueError("trace has no header record")
        version = header.get("schema_version")
        if version != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported trace schema version {version!r}; "
                f"expected {TRACE_SCHEMA_VERSION}"
            )
        return cls(
            strategy=header["strategy"],
            scenario=header["scenario"],
            stop_reason=header["stop_reason"],
            best=header.get("best"),
            summary=dict(header.get("summary", {})),
            spans=tuple(spans),
            metrics=metrics,
            schema_version=version,
        )

    def save(self, path: str | Path) -> Path:
        """Write the JSONL artifact; returns the path."""
        path = Path(path)
        path.write_text(self.to_jsonl())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SearchTrace":
        """Read a trace written by :meth:`save`."""
        return cls.from_jsonl(Path(path).read_text())


class RunRecorder:
    """Live tracer + metrics for one search run.

    Parameters
    ----------
    clock:
        Tracer timebase; pass the run's simulated clock
        (``lambda: cloud.clock.now``) so span timestamps reconcile
        with billed time.
    """

    def __init__(self, *, clock=None) -> None:
        self.tracer = RecordingTracer(clock=clock)
        self.metrics = MetricsRegistry()

    def finalize(self, result: "SearchResult") -> SearchTrace:
        """Freeze the recording into a :class:`SearchTrace`."""
        return SearchTrace(
            strategy=result.strategy,
            scenario=result.scenario.describe(),
            stop_reason=result.stop_reason,
            best=None if result.best is None else str(result.best),
            summary={
                "n_steps": len(result.trials),
                "profile_seconds": result.profile_seconds,
                "profile_dollars": result.profile_dollars,
                "best_measured_speed": result.best_measured_speed,
            },
            spans=self.tracer.spans,
            metrics=self.metrics.snapshot(),
        )
