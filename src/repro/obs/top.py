"""``repro top``: a refreshing terminal dashboard over a trace file.

:class:`LiveRunState` folds streamed trace records (see
:mod:`repro.obs.stream`) into the handful of numbers an operator
watches — current step, budget burn, incumbent, EI trend, fleet
instance counts, the last watchdog anomaly — and
:func:`render_top` draws them as a fixed-width text panel.  The
state machine is pure (records in, strings out) so the dashboard is
testable without a terminal, and ``repro top --once`` renders a
single non-tty snapshot for CI.

The same records power the panel whether they come from a live
streamed file (envelope ``seq``/``time`` present, spans in finish
order) or a finalised artifact (canonical order) — the state only
reads fields both layouts share.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.obs.stream import read_trace_events

__all__ = [
    "LiveRunState",
    "ServiceTopState",
    "load_service_state",
    "load_state",
    "render_service_top",
    "render_top",
]

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _sparkline(values: list[float], width: int = 24) -> str:
    """Render the last ``width`` values as a unicode sparkline."""
    tail = [v for v in values if v is not None][-width:]
    if not tail:
        return ""
    lo, hi = min(tail), max(tail)
    span = hi - lo
    if span <= 0.0:
        return _SPARK_BLOCKS[0] * len(tail)
    out = []
    for v in tail:
        idx = int((v - lo) / span * (len(_SPARK_BLOCKS) - 1))
        out.append(_SPARK_BLOCKS[idx])
    return "".join(out)


def _fmt_dollars(value: float | None) -> str:
    return "—" if value is None else f"${value:,.2f}"


def _fmt_hours(seconds: float | None) -> str:
    return "—" if seconds is None else f"{seconds / 3600.0:.2f}h"


class LiveRunState:
    """Streaming aggregate of one run's trace records."""

    def __init__(self) -> None:
        self.strategy: str | None = None
        self.scenario: str | None = None
        self.stop_reason: str | None = None
        self.best: str | None = None
        self.summary: dict[str, Any] = {}
        self.completed = False
        self.step: int | None = None
        self.phase: str | None = None
        self.n_probes = 0
        self.last_probe: dict[str, Any] | None = None
        self.spent_usd: float | None = None
        self.elapsed_s: float | None = None
        self.consumed: float | None = None
        self.limit: float | None = None
        self.incumbent: str | None = None
        self.incumbent_objective: float | None = None
        self.ei_history: list[float] = []
        self.last_anomaly: dict[str, Any] | None = None
        self.n_events = 0
        self.last_seq: int | None = None
        self.sim_time: float | None = None
        # cluster_id -> (instance_type, count), mirroring FleetLog
        self._running: dict[Any, tuple[str, int]] = {}

    # -- ingestion -----------------------------------------------------
    def apply(self, doc: dict[str, Any]) -> None:
        """Fold one trace record into the state."""
        self.n_events += 1
        seq = doc.get("seq")
        if isinstance(seq, int):
            self.last_seq = max(self.last_seq or 0, seq)
        t = doc.get("time")
        if isinstance(t, (int, float)):
            self.sim_time = max(self.sim_time or 0.0, float(t))
        kind = doc.get("kind")
        if kind in ("header", "summary"):
            for key in ("strategy", "scenario", "stop_reason", "best"):
                value = doc.get(key)
                if value is not None and value != "unknown":
                    setattr(self, key, value)
            if doc.get("summary"):
                self.summary = dict(doc["summary"])
            if self.stop_reason not in (None, "running"):
                self.completed = True
        elif kind == "span-start":
            if doc.get("name") == "search":
                label = doc.get("attributes", {}).get("strategy")
                if label and self.strategy in (None, "unknown"):
                    self.strategy = str(label)
        elif kind == "span":
            self._apply_span(doc)
        elif kind == "decision":
            ei = doc.get("best_feasible_ei")
            if ei is not None:
                self.ei_history.append(float(ei))
            for src, dst in (
                ("incumbent", "incumbent"),
                ("incumbent_objective", "incumbent_objective"),
                ("consumed", "consumed"),
                ("limit", "limit"),
            ):
                if doc.get(src) is not None:
                    setattr(self, dst, doc[src])
        elif kind == "fleet":
            self._apply_fleet(doc)
        elif kind == "progress":
            for key in (
                "step", "phase", "spent_usd", "elapsed_s",
                "consumed", "limit", "incumbent", "incumbent_objective",
            ):
                if doc.get(key) is not None:
                    setattr(self, key, doc[key])

    def apply_many(self, docs: list[dict[str, Any]]) -> None:
        for doc in docs:
            self.apply(doc)

    def _apply_span(self, doc: dict[str, Any]) -> None:
        name = doc.get("name")
        a = doc.get("attributes", {})
        if name == "probe":
            self.n_probes += 1
            self.last_probe = {
                "step": a.get("step"),
                "deployment": a.get("deployment"),
                "speed": a.get("speed"),
                "cost_usd": a.get("cost_usd"),
            }
            if a.get("step") is not None:
                self.step = max(self.step or 0, int(a["step"]))
            if a.get("spent_usd") is not None:
                self.spent_usd = a["spent_usd"]
            if a.get("elapsed_s") is not None:
                self.elapsed_s = a["elapsed_s"]
        elif name == "anomaly":
            self.last_anomaly = {
                "rule": a.get("rule"),
                "step": a.get("step"),
                "message": a.get("message", ""),
            }

    def _apply_fleet(self, doc: dict[str, Any]) -> None:
        event = doc.get("event")
        cluster = doc.get("cluster_id")
        if event == "running" and cluster is not None:
            self._running[cluster] = (
                str(doc.get("instance_type")), int(doc.get("count", 1))
            )
        elif event in ("terminated", "revoked") and cluster is not None:
            self._running.pop(cluster, None)

    # -- derived views -------------------------------------------------
    @property
    def fleet_running(self) -> dict[str, int]:
        """Instances currently RUNNING, summed per type."""
        out: dict[str, int] = {}
        for itype, count in self._running.values():
            out[itype] = out.get(itype, 0) + count
        return dict(sorted(out.items()))

    @property
    def budget_fraction(self) -> float | None:
        if self.limit and self.consumed is not None and self.limit > 0.0:
            return max(0.0, min(1.0, self.consumed / self.limit))
        return None


def load_state(path: str | Path) -> tuple[LiveRunState, bool]:
    """Fold an entire trace file; returns ``(state, torn_tail)``."""
    state = LiveRunState()
    docs, _, torn = read_trace_events(path, 0)
    state.apply_many(docs)
    return state, torn


class ServiceTopState:
    """Streaming aggregate of a *service* trace's records.

    Folds the daemon's ``kind=service`` stream (plus its ``progress``
    heartbeats) into the cross-tenant numbers an operator watches —
    jobs per state per tenant, spend, queueing/dispatch latency, SLO
    breaches.  :meth:`to_stats` emits the same shape the daemon's
    ``/svcstats`` endpoint returns, so :func:`render_service_top`
    draws identically from a live URL or a trace file on disk.
    """

    def __init__(self) -> None:
        self.ticks = 0
        self.sim_time: float | None = None
        self.n_events = 0
        # job id -> current state string
        self._job_state: dict[str, str] = {}
        # job id -> tenant
        self._job_tenant: dict[str, str] = {}
        # tenant -> last known ledger spend (terminal-event dollars)
        self._tenant_spent: dict[str, float] = {}
        self._queue_delays: list[float] = []
        self._dispatch_waits: list[float] = []
        self.deferrals = 0
        self.rejections = 0
        self.oversized = 0
        self.last_breach: dict[str, Any] | None = None
        self.breaches = 0

    def apply(self, doc: dict[str, Any]) -> None:
        """Fold one service-trace record into the state."""
        self.n_events += 1
        t = doc.get("time")
        if isinstance(t, (int, float)):
            self.sim_time = max(self.sim_time or 0.0, float(t))
        kind = doc.get("kind")
        if kind == "progress":
            tick = doc.get("tick")
            if isinstance(tick, int):
                self.ticks = max(self.ticks, tick)
            return
        if kind != "service":
            return
        event = doc.get("event")
        job = doc.get("job")
        tenant = doc.get("tenant")
        if job is not None and tenant is not None:
            self._job_tenant[str(job)] = str(tenant)
        if event == "submitted" and job is not None:
            self._job_state[str(job)] = "queued"
        elif event == "started" and job is not None:
            self._job_state[str(job)] = "running"
        elif event in ("done", "failed", "cancelled", "budget-stopped"):
            if job is not None:
                self._job_state[str(job)] = str(event)
            if tenant is not None and doc.get("dollars") is not None:
                spent = self._tenant_spent.get(str(tenant), 0.0)
                self._tenant_spent[str(tenant)] = spent + float(
                    doc["dollars"]
                )
            if event == "failed" and doc.get("reason") == "oversized-demand":
                self.oversized += 1
        elif event == "rejected":
            self.rejections += 1
        elif event == "deferred":
            self.deferrals += 1
        elif event == "dispatched":
            if doc.get("wait_seconds") is not None:
                self._dispatch_waits.append(float(doc["wait_seconds"]))
            if doc.get("queue_delay_seconds") is not None:
                self._queue_delays.append(float(doc["queue_delay_seconds"]))
        elif event == "slo-breach":
            self.breaches += 1
            self.last_breach = {
                "slo": doc.get("slo"),
                "value": doc.get("value"),
                "threshold": doc.get("threshold"),
            }

    def apply_many(self, docs: list[dict[str, Any]]) -> None:
        for doc in docs:
            self.apply(doc)

    @staticmethod
    def _quantile(values: list[float], q: float) -> float | None:
        if not values:
            return None
        ordered = sorted(values)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def _latency_section(self, values: list[float]) -> dict[str, Any]:
        return {
            "count": len(values),
            "p50": self._quantile(values, 0.50),
            "p90": self._quantile(values, 0.90),
            "p99": self._quantile(values, 0.99),
        }

    def to_stats(self) -> dict[str, Any]:
        """The folded state in the ``/svcstats`` payload shape."""
        counts = {
            state: 0
            for state in (
                "queued", "running", "done", "failed",
                "cancelled", "budget-stopped",
            )
        }
        per_tenant: dict[str, dict[str, Any]] = {}
        for job, state in self._job_state.items():
            counts[state] = counts.get(state, 0) + 1
            tenant = self._job_tenant.get(job, "?")
            entry = per_tenant.setdefault(tenant, {
                "spent_dollars": 0.0,
                "budget_dollars": None,
                "budget_burn": None,
                "active_jobs": 0,
                "jobs_total": 0,
            })
            entry["jobs_total"] += 1
            if state in ("queued", "running"):
                entry["active_jobs"] += 1
        for tenant, spent in self._tenant_spent.items():
            per_tenant.setdefault(tenant, {
                "spent_dollars": 0.0,
                "budget_dollars": None,
                "budget_burn": None,
                "active_jobs": 0,
                "jobs_total": 0,
            })["spent_dollars"] = spent
        slos: list[dict[str, Any]] = []
        if self.last_breach is not None:
            slos.append({
                "name": self.last_breach.get("slo"),
                "breached_now": True,
                "breaches": self.breaches,
                "value": self.last_breach.get("value"),
                "threshold": self.last_breach.get("threshold"),
                "attainment": None,
            })
        return {
            "v": 1,
            "telemetry": True,
            "ticks": self.ticks,
            "time_seconds": self.sim_time or 0.0,
            "jobs": counts,
            "tenants": dict(sorted(per_tenant.items())),
            "queueing": self._latency_section(self._queue_delays),
            "dispatch": self._latency_section(self._dispatch_waits),
            "contention": {
                "reservation_conflicts": float(self.deferrals),
                "oversized_demand": float(self.oversized),
                "admission_rejections": float(self.rejections),
            },
            "slos": slos,
        }


def load_service_state(path: str | Path) -> tuple[ServiceTopState, bool]:
    """Fold an entire service trace; returns ``(state, torn_tail)``."""
    state = ServiceTopState()
    docs, _, torn = read_trace_events(path, 0)
    state.apply_many(docs)
    return state, torn


def _fmt_seconds(value: Any) -> str:
    return "—" if value is None else f"{float(value):.1f}s"


def render_service_top(
    stats: dict[str, Any],
    *,
    source: str = "",
    width: int = 72,
    torn: bool = False,
) -> str:
    """Draw the cross-tenant service panel from a ``/svcstats`` dict."""
    width = max(48, width)
    jobs = stats.get("jobs", {})
    active = jobs.get("queued", 0) + jobs.get("running", 0)
    status = "ACTIVE" if active else "IDLE"
    if torn:
        status += " (torn tail)"
    title = f"repro top --service — {source}" if source else (
        "repro top --service"
    )
    pad = max(1, width - len(title) - len(status))
    lines = [title + " " * pad + status, "─" * width]
    lines.append(
        f"ticks     {stats.get('ticks', 0)}"
        f" · sim t+{stats.get('time_seconds', 0.0):.0f}s"
    )
    lines.append(
        "jobs      " + " · ".join(
            f"{state} {n}" for state, n in jobs.items() if n
        )
        if any(jobs.values()) else "jobs      none"
    )
    lines.append("tenant       active  total      spent     budget  burn")
    for name, t in stats.get("tenants", {}).items():
        budget = t.get("budget_dollars")
        burn = t.get("budget_burn")
        lines.append(
            f"  {name:<10} {t.get('active_jobs', 0):>6} "
            f"{t.get('jobs_total', 0):>6} "
            f"{_fmt_dollars(t.get('spent_dollars')):>10} "
            f"{_fmt_dollars(budget):>10} "
            f"{'—' if burn is None else f'{burn:4.0%}':>5}"
        )
    queueing = stats.get("queueing", {})
    dispatch = stats.get("dispatch", {})
    lines.append(
        f"queueing  p50 {_fmt_seconds(queueing.get('p50'))}"
        f" · p90 {_fmt_seconds(queueing.get('p90'))}"
        f" · p99 {_fmt_seconds(queueing.get('p99'))}"
        f" ({queueing.get('count', 0)} jobs)"
    )
    lines.append(
        f"dispatch  p50 {_fmt_seconds(dispatch.get('p50'))}"
        f" · p90 {_fmt_seconds(dispatch.get('p90'))}"
        f" · p99 {_fmt_seconds(dispatch.get('p99'))}"
        f" ({dispatch.get('count', 0)} probes)"
    )
    contention = stats.get("contention", {})
    lines.append(
        f"contention deferrals {contention.get('reservation_conflicts', 0):g}"
        f" · oversized {contention.get('oversized_demand', 0):g}"
        f" · rejected {contention.get('admission_rejections', 0):g}"
    )
    slos = stats.get("slos", [])
    breached = [s for s in slos if s.get("breached_now")]
    if breached:
        s = breached[0]
        value = s.get("value")
        lines.append(
            f"slo       BREACH {s.get('name')}"
            + ("" if value is None else f" at {value:.3g}")
            + f" (threshold {s.get('threshold')})"
        )
    elif slos:
        worst = min(
            (s for s in slos if s.get("attainment") is not None),
            key=lambda s: s["attainment"],
            default=None,
        )
        if worst is not None:
            lines.append(
                f"slo       ok · worst attainment "
                f"{worst['attainment']:.0%} ({worst.get('name')})"
            )
        else:
            lines.append("slo       ok (no data yet)")
    else:
        lines.append("slo       none tracked")
    lines.append("─" * width)
    return "\n".join(line[: width + 8] for line in lines) + "\n"


def _bar(fraction: float, width: int) -> str:
    filled = int(round(fraction * width))
    filled = max(0, min(width, filled))
    return "█" * filled + "░" * (width - filled)


def render_top(
    state: LiveRunState,
    *,
    source: str = "",
    width: int = 72,
    torn: bool = False,
) -> str:
    """Draw the dashboard panel as plain text (no cursor control)."""
    width = max(48, width)
    status = "DONE" if state.completed else "RUNNING"
    if torn:
        status += " (torn tail)"
    title = f"repro top — {source}" if source else "repro top"
    pad = max(1, width - len(title) - len(status))
    lines = [title + " " * pad + status, "─" * width]

    lines.append(
        f"strategy  {state.strategy or '—'}"
        f"   scenario  {state.scenario or '—'}"
    )
    step = "—" if state.step is None else str(state.step)
    phase = f" · phase {state.phase}" if state.phase else ""
    lines.append(f"step      {step} · probes {state.n_probes}{phase}")

    fraction = state.budget_fraction
    spent = _fmt_dollars(state.spent_usd)
    elapsed = _fmt_hours(state.elapsed_s)
    if fraction is not None:
        bar = _bar(fraction, 20)
        lines.append(
            f"budget    [{bar}] {fraction:4.0%} of limit"
            f" · spent {spent} · elapsed {elapsed}"
        )
    else:
        lines.append(f"budget    spent {spent} · elapsed {elapsed}")

    if state.incumbent:
        objective = (
            f" (objective {state.incumbent_objective:.4g})"
            if state.incumbent_objective is not None
            else ""
        )
        lines.append(f"incumbent {state.incumbent}{objective}")
    else:
        lines.append("incumbent —")

    if state.ei_history:
        spark = _sparkline(state.ei_history)
        lines.append(
            f"EI trend  {spark}  (last {state.ei_history[-1]:.4g})"
        )
    else:
        lines.append("EI trend  —")

    running = state.fleet_running
    if running:
        fleet = " · ".join(f"{n}x {t}" for t, n in running.items())
    else:
        fleet = "0 instances"
    lines.append(f"fleet     {fleet} running")

    if state.last_anomaly:
        a = state.last_anomaly
        lines.append(
            f"anomaly   {a.get('rule')} @ step {a.get('step')}"
            f" — {a.get('message')}"
        )
    else:
        lines.append("anomaly   none")

    if state.completed:
        lines.append(
            f"result    stop={state.stop_reason} best={state.best or '—'}"
        )
    tail = f"events    {state.n_events}"
    if state.last_seq is not None:
        tail += f" (seq {state.last_seq})"
    if state.sim_time is not None:
        tail += f" · sim t+{state.sim_time:.0f}s"
    lines.append(tail)
    lines.append("─" * width)
    return "\n".join(line[: width + 8] for line in lines) + "\n"
