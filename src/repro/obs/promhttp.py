"""Stdlib Prometheus ``/metrics`` endpoint for live and saved runs.

:class:`MetricsHTTPServer` is a tiny ``http.server`` wrapper that
answers ``GET /metrics`` with the Prometheus text exposition
produced by a *source* callable.  Two sources ship:

- :func:`registry_source` renders a live
  :class:`~repro.obs.metrics.MetricsRegistry` — used by
  ``repro deploy --serve-metrics`` to expose the search's registry
  while it runs;
- :func:`trace_file_source` re-reads a (possibly still growing)
  trace file on every scrape and renders its latest ``metrics``
  snapshot — used by ``repro metrics --serve`` to put a Prometheus
  endpoint in front of any artifact, mid-run or post-hoc.

The server binds ``127.0.0.1`` by default, accepts ``port=0`` for an
ephemeral port (tests), serves each request in its own thread, and
suppresses per-request logging.  Scrapes of a live registry race the
search thread by design; the handler retries a handful of times on
``RuntimeError`` (dict mutated during iteration) — a scrape endpoint
wants the next snapshot, not a crash.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "MetricsHTTPServer",
    "registry_source",
    "trace_file_source",
]

_SCRAPE_RETRIES = 5


def registry_source(registry: Any) -> Callable[[], str]:
    """Source over a live :class:`~repro.obs.metrics.MetricsRegistry`."""

    def source() -> str:
        return registry.to_prometheus_text()

    return source


def trace_file_source(path: str | Path) -> Callable[[], str]:
    """Source that re-loads a trace artifact on every scrape.

    Works mid-run on a streamed file: the loader tolerates the torn
    tail and the *last* complete ``metrics`` snapshot line wins.
    """
    from repro.obs.metrics import snapshot_to_prometheus_text
    from repro.obs.recorder import SearchTrace

    path = Path(path)

    def source() -> str:
        trace = SearchTrace.load(path)
        return snapshot_to_prometheus_text(trace.metrics)

    return source


class _Handler(BaseHTTPRequestHandler):
    server: "_Server"  # type: ignore[assignment]

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "only /metrics is served")
            return
        try:
            text = self._scrape()
        except Exception as exc:  # surface source failures as a 500
            body = f"scrape failed: {exc}\n".encode("utf-8")
            self.send_response(500)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        body = text.encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _scrape(self) -> str:
        last: Exception | None = None
        for _ in range(_SCRAPE_RETRIES):
            try:
                return self.server.source()
            except RuntimeError as exc:  # registry mutated mid-snapshot
                last = exc
        raise last if last is not None else RuntimeError("scrape failed")

    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # keep scrapes out of the CLI's stdout/stderr


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    source: Callable[[], str]


class MetricsHTTPServer:
    """Background Prometheus endpoint over a text-exposition source.

    Parameters
    ----------
    source:
        Zero-argument callable returning the exposition text (see
        :func:`registry_source` / :func:`trace_file_source`).
    host / port:
        Bind address; ``port=0`` picks an ephemeral port, available
        as :attr:`port` after construction.
    """

    def __init__(
        self,
        source: Callable[[], str],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._server = _Server((host, port), _Handler)
        self._server.source = source
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def start(self) -> "MetricsHTTPServer":
        """Serve in a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro metrics --serve`` loop)."""
        self._server.serve_forever()

    def stop(self) -> None:
        """Shut the server down and join the background thread."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
