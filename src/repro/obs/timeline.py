"""Fleet timeline and cost-attribution views of a saved trace.

Both renderers work from the ``kind=fleet`` lines of a saved
:class:`~repro.obs.recorder.SearchTrace` alone — no live cloud or
search objects — so a run recorded on one machine renders anywhere:

- :func:`render_timeline` — per-cluster Gantt of the instance
  lifecycle (requested → provisioning → running → terminated/revoked)
  with a spot-price overlay when the trace carries ``spot-price``
  events; text for terminals and golden tests, self-contained HTML
  for sharing.
- :func:`render_attribution` — where the dollars went: every billed
  fleet event joined to its ledger entry, broken down by instance
  type, by search phase (initial / explore / final-train) and by
  step.

Exposed on the CLI as ``repro timeline <trace>`` and
``repro attribute <trace>``.
"""

from __future__ import annotations

import html as _html
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.recorder import SearchTrace

__all__ = ["build_timeline", "render_attribution", "render_timeline"]

_NO_FLEET_MSG = (
    "trace has no fleet events; record the run with a RunRecorder "
    "(fleet recording is on by default) and attach it to the cloud "
    "with cloud.fleet = recorder.fleet"
)


def build_timeline(trace: "SearchTrace") -> list[dict[str, Any]]:
    """One lifecycle row per cluster, in request order.

    Each row carries the cluster's identity (``cluster_id``,
    ``instance_type``, ``count``, ``deployment``), its attribution
    context (``phase`` / ``step`` / ``trial``), the lifecycle times
    (``requested`` / ``running`` / ``end``), how it ended
    (``terminated`` / ``revoked`` / ``None`` if still open when the
    trace froze) and what it billed (``seconds`` / ``dollars`` /
    ``purpose`` / ``ledger_index``).
    """
    rows: dict[Any, dict[str, Any]] = {}
    for event in trace.fleet:
        if event.cluster_id is None:
            continue
        row = rows.get(event.cluster_id)
        if row is None:
            row = rows[event.cluster_id] = {
                "cluster_id": event.cluster_id,
                "instance_type": event.instance_type,
                "count": event.count,
                "deployment": event.deployment,
                "phase": event.phase,
                "step": event.step,
                "trial": event.trial,
                "requested": None,
                "running": None,
                "end": None,
                "end_event": None,
                "purpose": None,
                "seconds": None,
                "dollars": None,
                "ledger_index": None,
            }
        if event.event == "requested":
            row["requested"] = event.time
        elif event.event == "running":
            row["running"] = event.time
        elif event.event in ("terminated", "revoked"):
            row["end"] = event.time
            row["end_event"] = event.event
            row["purpose"] = event.purpose
            row["seconds"] = event.seconds
            row["dollars"] = event.dollars
            row["ledger_index"] = event.ledger_index
    return list(rows.values())


def _spot_series(
    trace: "SearchTrace",
) -> dict[str, list[tuple[float, float]]]:
    """Spot-price overlay points per instance type, in event order."""
    series: dict[str, list[tuple[float, float]]] = {}
    for event in trace.fleet:
        if event.event == "spot-price" and event.spot_factor is not None:
            series.setdefault(event.instance_type, []).append(
                (event.time, event.spot_factor)
            )
    return series


def _time_bounds(trace: "SearchTrace") -> tuple[float, float]:
    times = [event.time for event in trace.fleet]
    return (min(times), max(times)) if times else (0.0, 0.0)


def render_timeline(
    trace: "SearchTrace", *, fmt: str = "text", width: int = 60
) -> str:
    """Render the per-cluster lifecycle Gantt.

    Raises
    ------
    ValueError
        On an unknown format, or a trace without fleet events (older
        schema versions, or recording was off).
    """
    if fmt not in ("text", "html"):
        raise ValueError(f"unknown timeline format {fmt!r}")
    if not trace.fleet:
        raise ValueError(_NO_FLEET_MSG)
    if fmt == "html":
        return _timeline_html(trace)
    return _timeline_text(trace, width=width)


def _column(time: float, t0: float, t1: float, width: int) -> int:
    if t1 <= t0:
        return 0
    position = (time - t0) / (t1 - t0)
    return min(width - 1, max(0, int(position * (width - 1))))


def _timeline_text(trace: "SearchTrace", *, width: int) -> str:
    from repro.textfmt import format_dollars, format_table

    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    rows = build_timeline(trace)
    t0, t1 = _time_bounds(trace)
    revocations = sum(1 for r in rows if r["end_event"] == "revoked")
    failures = sum(
        1 for e in trace.fleet if e.event == "launch-failed"
    )

    table_rows = []
    for row in rows:
        track = ["."] * width
        requested = row["requested"]
        running = row["running"]
        end = row["end"] if row["end"] is not None else t1
        if requested is not None:
            lo = _column(requested, t0, t1, width)
            hi = _column(end, t0, t1, width)
            for col in range(lo, hi + 1):
                track[col] = "~"
            if running is not None:
                run_lo = _column(running, t0, t1, width)
                for col in range(run_lo, hi + 1):
                    track[col] = "#"
            if row["end_event"] == "revoked":
                track[hi] = "x"
        table_rows.append([
            str(row["cluster_id"]),
            row["deployment"] or f"{row['count']}x {row['instance_type']}",
            row["phase"] or "-",
            "-" if row["trial"] is None else str(row["trial"]),
            "-" if requested is None else f"{requested:.0f}",
            "-" if running is None else f"{running:.0f}",
            "-" if row["end"] is None else f"{row['end']:.0f}",
            (
                "-" if row["dollars"] is None
                else format_dollars(row["dollars"])
            ),
            "".join(track),
        ])

    lines = [
        f"fleet timeline — {trace.strategy} / {trace.scenario}",
        (
            f"{len(rows)} cluster(s) over {t0:.0f}..{t1:.0f} s simulated; "
            f"{revocations} revocation(s), {failures} launch failure(s)"
        ),
        "legend: ~ provisioning  # running  x revoked",
        "",
        format_table(
            ["id", "deployment", "phase", "trial", "launch s",
             "ready s", "end s", "billed", "track"],
            table_rows,
        ),
    ]

    spot = _spot_series(trace)
    if spot:
        lines.extend(["", "spot price factor (0..9 = 0.0..1.0):"])
        for itype in sorted(spot):
            overlay = ["."] * width
            for time, factor in spot[itype]:
                digit = min(9, max(0, int(factor * 10)))
                overlay[_column(time, t0, t1, width)] = str(digit)
            lines.append(f"  {itype:<14} {''.join(overlay)}")
    return "\n".join(lines) + "\n"


def _pct(value: float, t0: float, t1: float) -> str:
    if t1 <= t0:
        return "0.000"
    return f"{(value - t0) / (t1 - t0) * 100:.3f}"


def _timeline_html(trace: "SearchTrace") -> str:
    """Self-contained HTML Gantt (inline CSS, no external assets)."""
    from repro.textfmt import format_dollars

    rows = build_timeline(trace)
    t0, t1 = _time_bounds(trace)
    body: list[str] = [
        f"<h1>Fleet timeline — {_html.escape(trace.strategy)}</h1>",
        f"<p>{_html.escape(trace.scenario)}; "
        f"{len(rows)} cluster(s), {t0:.0f}&#8211;{t1:.0f} s simulated."
        f"</p>",
        "<div class=\"chart\">",
    ]
    for row in rows:
        requested = row["requested"]
        running = row["running"]
        end = row["end"] if row["end"] is not None else t1
        label = (
            f"#{row['cluster_id']} "
            f"{row['deployment'] or row['instance_type']}"
        )
        meta = " / ".join(
            part for part in (
                row["phase"],
                None if row["trial"] is None else f"trial {row['trial']}",
                (
                    None if row["dollars"] is None
                    else format_dollars(row["dollars"])
                ),
            ) if part
        )
        bars: list[str] = []
        if requested is not None:
            left = _pct(requested, t0, t1)
            if running is not None:
                prov_width = _pct(running, t0, t1)
                run_width = _pct(end, t0, t1)
                bars.append(
                    f'<div class="bar prov" style="left:{left}%;'
                    f"width:{float(prov_width) - float(left):.3f}%\">"
                    "</div>"
                )
                css = (
                    "run revoked" if row["end_event"] == "revoked"
                    else "run"
                )
                bars.append(
                    f'<div class="bar {css}" style="left:{prov_width}%;'
                    f"width:{float(run_width) - float(prov_width):.3f}%\">"
                    "</div>"
                )
            else:
                end_pct = _pct(end, t0, t1)
                bars.append(
                    f'<div class="bar prov" style="left:{left}%;'
                    f"width:{float(end_pct) - float(left):.3f}%\"></div>"
                )
        body.append(
            '<div class="row">'
            f'<span class="label">{_html.escape(label)}</span>'
            f'<span class="meta">{_html.escape(meta)}</span>'
            f'<div class="lane">{"".join(bars)}</div>'
            "</div>"
        )
    body.append("</div>")

    spot = _spot_series(trace)
    if spot:
        body.append("<h2>Spot price factor</h2>")
        for itype in sorted(spot):
            points = " ".join(
                f"{float(_pct(time, t0, t1)) * 6:.1f},"
                f"{100 - factor * 100:.1f}"
                for time, factor in spot[itype]
            )
            body.append(
                f"<p>{_html.escape(itype)}</p>"
                '<svg viewBox="0 0 600 100" class="spot">'
                f'<polyline fill="none" stroke="#c33" '
                f'stroke-width="2" points="{points}"/></svg>'
            )

    content = "\n".join(body)
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        "<title>Fleet timeline</title>\n"
        "<style>body{font-family:sans-serif;margin:2em}"
        ".row{display:flex;align-items:center;margin:2px 0}"
        ".label{width:14em;font-size:0.85em}"
        ".meta{width:16em;color:#666;font-size:0.75em}"
        ".lane{position:relative;flex:1;height:14px;background:#f4f4f4}"
        ".bar{position:absolute;top:0;height:14px}"
        ".prov{background:#ccc}"
        ".run{background:#4a8}"
        ".revoked{background:#c33}"
        ".spot{width:600px;height:100px;border:1px solid #ddd}"
        "</style></head>\n"
        f"<body>\n{content}\n</body></html>\n"
    )


# -- cost attribution --------------------------------------------------------
def attribution_rows(trace: "SearchTrace") -> list[dict[str, Any]]:
    """One dict per billed fleet event, in ledger order."""
    rows = []
    for event in trace.attributions():
        rows.append({
            "ledger_index": event.ledger_index,
            "time": event.time,
            "instance_type": event.instance_type,
            "count": event.count,
            "purpose": event.purpose,
            "phase": event.phase,
            "step": event.step,
            "trial": event.trial,
            "deployment": event.deployment,
            "seconds": event.seconds,
            "dollars": event.dollars,
        })
    return rows


def _grouped(
    rows: list[dict[str, Any]], key: str
) -> dict[Any, tuple[int, float, float]]:
    """(entries, seconds, dollars) per group value, insertion order."""
    out: dict[Any, tuple[int, float, float]] = {}
    for row in rows:
        group = row[key]
        n, seconds, dollars = out.get(group, (0, 0.0, 0.0))
        out[group] = (
            n + 1,
            seconds + (row["seconds"] or 0.0),
            dollars + (row["dollars"] or 0.0),
        )
    return out


def render_attribution(trace: "SearchTrace") -> str:
    """Render the cost-attribution breakdown of a saved trace.

    Raises
    ------
    ValueError
        If the trace has no fleet events, or none of them joined to a
        ledger entry (nothing to attribute).
    """
    from repro.textfmt import format_dollars, format_table

    if not trace.fleet:
        raise ValueError(_NO_FLEET_MSG)
    rows = attribution_rows(trace)
    if not rows:
        raise ValueError(
            "trace has fleet events but none joined to a billing-ledger "
            "entry (spot segments bill outside the ledger)"
        )
    total = trace.attributed_dollars_total

    def share(dollars: float) -> str:
        if total <= 0:
            return "-"
        return f"{dollars / total * 100:.1f}%"

    lines = [
        f"cost attribution — {trace.strategy} / {trace.scenario}",
        (
            f"{len(rows)} ledger entr{'y' if len(rows) == 1 else 'ies'} "
            f"attributed, {format_dollars(total)} total "
            f"(summed in ledger order)"
        ),
        "",
        "by instance type:",
    ]
    by_type = _grouped(rows, "instance_type")
    lines.append(format_table(
        ["instance type", "entries", "seconds", "dollars", "share"],
        [
            [itype, str(n), f"{seconds:.0f}", format_dollars(dollars),
             share(dollars)]
            for itype, (n, seconds, dollars) in sorted(by_type.items())
        ],
    ))

    lines.extend(["", "by phase:"])
    by_phase = _grouped(rows, "phase")
    lines.append(format_table(
        ["phase", "entries", "dollars", "share"],
        [
            [phase or "(unattributed)", str(n), format_dollars(dollars),
             share(dollars)]
            for phase, (n, _, dollars) in sorted(
                by_phase.items(), key=lambda kv: (kv[0] is None, kv[0] or "")
            )
        ],
    ))

    lines.extend(["", "by step:"])
    step_rows = []
    by_step = _grouped(rows, "step")
    for step, (n, _, dollars) in sorted(
        by_step.items(),
        key=lambda kv: (kv[0] is None, kv[0] if kv[0] is not None else 0),
    ):
        deployments = sorted({
            row["deployment"] for row in rows
            if row["step"] == step and row["deployment"]
        })
        step_rows.append([
            "-" if step is None else str(step),
            ", ".join(deployments) or "-",
            str(n),
            format_dollars(dollars),
            share(dollars),
        ])
    lines.append(format_table(
        ["step", "deployment", "entries", "dollars", "share"], step_rows,
    ))
    return "\n".join(lines) + "\n"
