"""Streaming trace sink and cross-process follow-mode reader.

The write side, :class:`TraceStreamWriter`, is an
:class:`~repro.obs.bus.EventBus` sink that appends one JSON line per
bus event and flushes after every write, so the artifact on disk is
*tailable mid-run* — by ``repro trace --follow``, ``repro top``, or
plain ``tail -f``.  The streamed layout is a superset of the
canonical :class:`~repro.obs.recorder.SearchTrace` JSONL (see that
module's docstring); ``SearchTrace.from_jsonl`` normalises it back,
so a streamed file loads into the *same* trace the recorder
finalises (asserted in ``tests/obs/test_stream.py``).

The read side is crash-tolerant by construction: records are parsed
only up to the last complete line, a torn tail (a producer mid-write
or crashed) is reported rather than raised, and
:func:`follow_trace` polls the growing file until the final
``summary`` record — the end-of-run signal the writer emits last.
"""

from __future__ import annotations

import json
import time as _time
from pathlib import Path
from typing import Any, Iterator

from repro.obs.bus import BusEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import TRACE_SCHEMA_VERSION

__all__ = [
    "STREAM_RECORD_KINDS",
    "TraceStreamWriter",
    "follow_trace",
    "format_event",
    "read_trace_events",
]

#: Every record kind a streamed trace file can carry — the writer's
#: subscribed bus kinds plus the file-level ``header`` and ``metrics``
#: snapshot records it writes itself.  ``repro trace --follow --kinds``
#: validates its filter tokens against this set.
STREAM_RECORD_KINDS: frozenset[str] = frozenset(
    ("header", "metrics", "span-start", "span", "decision", "fleet",
     "service", "progress", "summary")
)


class TraceStreamWriter:
    """Bus sink that streams a trace artifact, flushed per event.

    Parameters
    ----------
    path:
        Destination JSONL file (truncated at construction; the
        placeholder header is written immediately so followers can
        attach before the first event).
    metrics:
        Optional live :class:`~repro.obs.metrics.MetricsRegistry`.
        When given, a ``metrics`` snapshot line is appended every
        ``snapshot_every`` ``progress`` events (so followers see
        recent gauge state) and before the closing ``summary`` line.
    snapshot_every:
        Interim snapshot cadence, in progress events.  Snapshots are
        by far the largest records (a full registry dump), so writing
        one per heartbeat would dominate the stream's cost; the
        loader only keeps the *last* one regardless, and live readers
        tolerate a few heartbeats of gauge staleness.

    The writer never rewrites earlier bytes — finalisation *appends*
    the closing ``metrics`` + ``summary`` lines — so follower offsets
    stay valid for the lifetime of the file.
    """

    #: Per-update ``metric`` events are skipped (see __call__), so the
    #: bus can avoid constructing them when the writer is the only sink.
    interested_kinds = frozenset(
        ("span-start", "span", "decision", "fleet", "service",
         "progress", "summary")
    )

    def __init__(
        self,
        path: str | Path,
        *,
        metrics: MetricsRegistry | None = None,
        snapshot_every: int = 8,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self.path = Path(path)
        self._metrics = metrics
        self._snapshot_every = snapshot_every
        self._progress_seen = 0
        # unbuffered binary: one os-level write per record, so a crash
        # can tear at most the final line (no user-space buffer to
        # lose) and followers see each record the moment it is written
        self._fh = open(self.path, "wb", buffering=0)
        self._closed = False
        self._completed = False
        self._write({
            "kind": "header",
            "schema_version": TRACE_SCHEMA_VERSION,
            "strategy": "unknown",
            "scenario": "unknown",
            "stop_reason": "running",
            "best": None,
            "summary": {},
            "live": True,
        })

    @property
    def completed(self) -> bool:
        """Whether the closing ``summary`` line has been written."""
        return self._completed

    def __call__(self, event: BusEvent) -> None:
        """Consume one bus event (the sink interface)."""
        if self._closed or self._completed:
            return
        kind = event.kind
        if kind == "metric":
            # Per-update metric events would bloat the file; the
            # periodic snapshot lines below carry the same state.
            return
        if kind == "summary":
            self._write_metrics()
            self._write(event.to_dict())
            self._completed = True
            return
        self._write(event.to_dict())
        if kind == "progress":
            self._progress_seen += 1
            if self._progress_seen % self._snapshot_every == 0:
                self._write_metrics()

    def _write_metrics(self) -> None:
        if self._metrics is not None:
            self._write({"kind": "metrics", "data": self._metrics.snapshot()})

    def _write(self, doc: dict[str, Any]) -> None:
        # one write per record: a crash can tear at most the final
        # line, which the loader tolerates
        self._fh.write((json.dumps(doc, sort_keys=True) + "\n").encode())

    def close(self) -> None:
        """Close the file handle (idempotent)."""
        if not self._closed:
            self._closed = True
            self._fh.close()

    def __enter__(self) -> "TraceStreamWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- read side ---------------------------------------------------------------

def read_trace_events(
    path: str | Path, offset: int = 0
) -> tuple[list[dict[str, Any]], int, bool]:
    """Parse complete JSONL records starting at byte ``offset``.

    Returns ``(docs, new_offset, torn)`` where ``new_offset`` is the
    position after the last complete line (pass it back to resume)
    and ``torn`` reports a trailing partial line — a producer
    mid-write, or a crash.  Torn bytes are *not* consumed, so a
    subsequent call re-reads them once the line completes.

    Raises
    ------
    ValueError
        If a *complete* line is not valid JSON — real corruption, as
        opposed to an unfinished write.
    """
    with open(path, "rb") as fh:
        fh.seek(offset)
        chunk = fh.read()
    docs: list[dict[str, Any]] = []
    consumed = 0
    end = 0
    torn = False
    while True:
        newline = chunk.find(b"\n", end)
        if newline < 0:
            torn = bool(chunk[end:].strip())
            break
        raw = chunk[end:newline]
        end = newline + 1
        consumed = end
        if raw.strip():
            try:
                docs.append(json.loads(raw.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise ValueError(
                    f"{path}: malformed trace line at byte "
                    f"{offset + consumed - len(raw) - 1}: {exc}"
                ) from exc
    return docs, offset + consumed, torn


def follow_trace(
    path: str | Path,
    *,
    poll_interval: float = 0.2,
    timeout: float | None = None,
    kinds: set[str] | frozenset[str] | None = None,
) -> Iterator[dict[str, Any]]:
    """Yield trace records from a growing file until the run ends.

    Tails ``path`` cross-process: records stream out as the producer
    flushes them.  The generator terminates when

    - a ``summary`` record arrives (the writer's end-of-run signal),
    - the header proves the artifact is already complete (its
      ``stop_reason`` is final) and EOF is reached, or
    - ``timeout`` seconds pass with no new record (``None`` waits
      forever; a missing file counts as "no new record" so a
      follower may attach before the producer creates the file).

    ``kinds`` restricts what is *yielded* to those record kinds
    (``repro trace --follow --kinds``); the liveness/termination
    logic still reads every record, so filtering out ``header`` or
    ``summary`` cannot make the follower hang past end-of-run.
    """
    path = Path(path)
    offset = 0
    waited = 0.0
    live: bool | None = None
    while True:
        if path.exists():
            docs, offset, torn = read_trace_events(path, offset)
        else:
            docs, torn = [], False
        for doc in docs:
            if kinds is None or doc.get("kind") in kinds:
                yield doc
            if doc.get("kind") == "header":
                live = doc.get("stop_reason") == "running"
            elif doc.get("kind") == "summary":
                return
        if docs:
            waited = 0.0
            continue  # drain before sleeping
        if live is False and not torn:
            return  # completed artifact: EOF is the end
        if timeout is not None and waited >= timeout:
            return
        _time.sleep(poll_interval)
        waited += poll_interval


# -- human-readable event lines (repro trace --follow) -----------------------

def _fmt_dollars(value: Any) -> str:
    return f"${value:,.2f}" if isinstance(value, (int, float)) else "$?"


def format_event(doc: dict[str, Any]) -> str | None:
    """One-line rendering of a streamed record, or ``None`` to skip.

    Skips the noisy kinds (``span-start`` except the run root,
    ``metrics`` snapshots, per-update ``metric`` events) so a
    ``--follow`` session reads like a run log.
    """
    kind = doc.get("kind")
    seq = doc.get("seq")
    t = doc.get("time")
    prefix = ""
    if seq is not None and t is not None:
        prefix = f"[{int(seq):05d} t+{float(t):9.1f}s] "
    if kind == "header":
        if doc.get("stop_reason") == "running":
            return "· run starting (streaming)"
        return f"· {doc.get('strategy')} | {doc.get('scenario')}"
    if kind == "span-start":
        if doc.get("name") == "search":
            a = doc.get("attributes", {})
            label = a.get("strategy") or "search"
            return f"{prefix}▶ search started ({label})"
        return None
    if kind == "span":
        name = doc.get("name")
        a = doc.get("attributes", {})
        if name == "probe":
            speed = a.get("speed")
            speed_s = f"{speed:.1f} samples/s" if speed else "failed"
            return (
                f"{prefix}probe    step {a.get('step', '?')}: "
                f"{a.get('deployment')} → {speed_s} "
                f"({_fmt_dollars(a.get('cost_usd'))})"
            )
        if name == "anomaly":
            return (
                f"{prefix}anomaly  {a.get('rule')}: {a.get('message', '')}"
            )
        if name in ("search", "deploy", "final-train"):
            wall = doc.get("wall_seconds")
            wall_s = f" in {wall:.2f}s wall" if wall is not None else ""
            return f"{prefix}■ {name} finished{wall_s}"
        return None
    if kind == "decision":
        chosen = doc.get("chosen")
        outcome = (
            f"chose {chosen}"
            if chosen
            else f"stop: {doc.get('stop_reason')}"
        )
        ei = doc.get("best_feasible_ei")
        ei_s = f", best EI {ei:.4g}" if ei is not None else ""
        return f"{prefix}decision step {doc.get('step')}: {outcome}{ei_s}"
    if kind == "fleet":
        base = (
            f"{prefix}fleet    {doc.get('event')} "
            f"{doc.get('count')}x {doc.get('instance_type')}"
        )
        if doc.get("dollars") is not None:
            base += f" ({_fmt_dollars(doc.get('dollars'))})"
        return base
    if kind == "service":
        parts = [str(doc.get("event"))]
        if doc.get("job"):
            parts.append(str(doc.get("job")))
        if doc.get("tenant"):
            parts.append(f"tenant={doc.get('tenant')}")
        if doc.get("reason"):
            parts.append(f"reason={doc.get('reason')}")
        if doc.get("wait_seconds") is not None:
            parts.append(f"waited {doc.get('wait_seconds'):.1f}s")
        if doc.get("queue_delay_seconds") is not None:
            parts.append(f"queued {doc.get('queue_delay_seconds'):.1f}s")
        if doc.get("slo"):
            parts.append(
                f"{doc.get('slo')}: {doc.get('value'):.3g} "
                f"> {doc.get('threshold'):.3g}"
            )
        if doc.get("dollars") is not None:
            parts.append(_fmt_dollars(doc.get("dollars")))
        return f"{prefix}service  {' '.join(parts)}"
    if kind == "progress":
        spent = doc.get("spent_usd")
        elapsed = doc.get("elapsed_s")
        parts = [f"step {doc.get('step')}" if doc.get("step") else
                 str(doc.get("phase") or "heartbeat")]
        if spent is not None:
            parts.append(f"spent {_fmt_dollars(spent)}")
        if elapsed is not None:
            parts.append(f"elapsed {elapsed / 3600.0:.2f}h")
        if doc.get("incumbent"):
            parts.append(f"incumbent {doc.get('incumbent')}")
        return f"{prefix}progress {', '.join(parts)}"
    if kind == "summary":
        return (
            f"{prefix}✓ finished: stop={doc.get('stop_reason')} "
            f"best={doc.get('best')}"
        )
    return None
