"""Decision records: per-step snapshots of the acquisition landscape.

A :class:`DecisionRecord` captures *why* the engine probed what it
probed — per-candidate acquisition values, cost penalties, feasibility
and the protective filters that blocked the rest — plus the surrogate
health at the moment of the decision.  Records are staged by the
strategy while it scores candidates (:meth:`DecisionLog.publish`) and
frozen by the search loop once the step's outcome is known
(:meth:`DecisionLog.commit`), so a record always pairs the landscape
with the probe (or stop) it produced.

Recording is read-only by construction: the log consumes arrays the
strategy already computed and never feeds anything back, so a run with
recording enabled makes byte-identical decisions to one without
(asserted in ``tests/obs/test_decisions.py``).

Modes
-----

``full``
    every candidate is recorded — the default for the slow path.
``topk``
    only the ``top_k`` highest-scoring candidates are kept per step
    (the chosen candidate is always the top-1, so it is never dropped)
    — the default sampling mode for the fast lane.
``auto``
    resolved to ``full`` or ``topk`` at :meth:`DecisionLog.begin_run`
    from the strategy's lane.
``off``
    the no-op; :data:`NOOP_DECISIONS` is the module singleton and the
    ``SearchContext`` default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.obs.bus import NOOP_BUS, EventBus

__all__ = [
    "DECISION_MODES",
    "NOOP_DECISIONS",
    "CandidateRecord",
    "DecisionLog",
    "DecisionRecord",
]

DECISION_MODES = ("auto", "full", "topk", "off")


def _finite_or_none(value: Any) -> float | None:
    """JSON cannot encode inf/nan; map non-finite floats to None."""
    if value is None:
        return None
    out = float(value)
    return out if math.isfinite(out) else None


@dataclass(frozen=True, slots=True)
class CandidateRecord:
    """One candidate's view of the acquisition landscape at one step."""

    deployment: str
    ei: float
    score: float | None
    penalty: float | None = None
    tei: float | None = None
    price_per_hour: float | None = None
    feasible: bool = True
    blocked_by: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "deployment": self.deployment,
            "ei": _finite_or_none(self.ei),
            "score": _finite_or_none(self.score),
            "penalty": _finite_or_none(self.penalty),
            "tei": _finite_or_none(self.tei),
            "price_per_hour": _finite_or_none(self.price_per_hour),
            "feasible": self.feasible,
            "blocked_by": list(self.blocked_by),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CandidateRecord":
        return cls(
            deployment=str(data["deployment"]),
            ei=float(data["ei"]) if data.get("ei") is not None else 0.0,
            score=data.get("score"),
            penalty=data.get("penalty"),
            tei=data.get("tei"),
            price_per_hour=data.get("price_per_hour"),
            feasible=bool(data.get("feasible", True)),
            blocked_by=tuple(data.get("blocked_by", ())),
        )


@dataclass(frozen=True, slots=True)
class DecisionRecord:
    """The full decision taken at one engine step.

    ``step`` counts *decisions* (1-based), not probes: the initial
    design phase takes no decisions, and a stop is a decision with
    ``chosen=None`` and a ``stop_reason``.
    """

    step: int
    n_observations: int
    objective: str
    mode: str
    n_candidates: int
    n_feasible: int
    best_feasible_ei: float | None
    incumbent: str | None
    incumbent_objective: float | None
    incumbent_cost: float | None
    consumed: float | None
    limit: float | None
    chosen: str | None
    batch: tuple[str, ...]
    stop_reason: str | None
    pruned: dict[str, int]
    prior_caps: dict[str, int]
    surrogate: dict[str, Any]
    candidates: tuple[CandidateRecord, ...]

    def to_dict(self) -> dict[str, Any]:
        surrogate = {
            key: (_finite_or_none(value) if isinstance(value, float) else value)
            for key, value in self.surrogate.items()
        }
        return {
            "step": self.step,
            "n_observations": self.n_observations,
            "objective": self.objective,
            "mode": self.mode,
            "n_candidates": self.n_candidates,
            "n_feasible": self.n_feasible,
            "best_feasible_ei": _finite_or_none(self.best_feasible_ei),
            "incumbent": self.incumbent,
            "incumbent_objective": _finite_or_none(self.incumbent_objective),
            "incumbent_cost": _finite_or_none(self.incumbent_cost),
            "consumed": _finite_or_none(self.consumed),
            "limit": _finite_or_none(self.limit),
            "chosen": self.chosen,
            "batch": list(self.batch),
            "stop_reason": self.stop_reason,
            "pruned": dict(self.pruned),
            "prior_caps": dict(self.prior_caps),
            "surrogate": surrogate,
            "candidates": [c.to_dict() for c in self.candidates],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DecisionRecord":
        return cls(
            step=int(data["step"]),
            n_observations=int(data.get("n_observations", 0)),
            objective=str(data.get("objective", "")),
            mode=str(data.get("mode", "full")),
            n_candidates=int(data.get("n_candidates", 0)),
            n_feasible=int(data.get("n_feasible", 0)),
            best_feasible_ei=data.get("best_feasible_ei"),
            incumbent=data.get("incumbent"),
            incumbent_objective=data.get("incumbent_objective"),
            incumbent_cost=data.get("incumbent_cost"),
            consumed=data.get("consumed"),
            limit=data.get("limit"),
            chosen=data.get("chosen"),
            batch=tuple(data.get("batch", ())),
            stop_reason=data.get("stop_reason"),
            pruned={str(k): int(v) for k, v in data.get("pruned", {}).items()},
            prior_caps={
                str(k): int(v) for k, v in data.get("prior_caps", {}).items()
            },
            surrogate=dict(data.get("surrogate", {})),
            candidates=tuple(
                CandidateRecord.from_dict(c) for c in data.get("candidates", ())
            ),
        )


@dataclass(slots=True)
class _Staged:
    """Arrays published by the strategy, pending the step's outcome.

    ``deployments`` holds whatever objects the strategy published;
    they are stringified lazily at commit, for the kept candidates
    only — in ``topk`` mode that is ~top_k strings per step instead
    of one per grid point.  ``price_per_hour_fn`` is the matching
    lazy form of ``prices_per_hour`` (a per-index lookup, evaluated
    only for kept candidates)."""

    deployments: Sequence[Any]
    ei: np.ndarray
    scores: np.ndarray
    penalty: np.ndarray | None
    tei: np.ndarray | None
    prices_per_hour: np.ndarray | None
    price_per_hour_fn: Callable[[int], float] | None
    feasible: np.ndarray | None
    blocked: dict[str, np.ndarray]
    objective: str
    incumbent: str | None
    incumbent_objective: float | None
    incumbent_cost: float | None
    consumed: float | None
    limit: float | None
    best_feasible_ei: float | None


class DecisionLog:
    """Collects one :class:`DecisionRecord` per engine decision.

    The log is intentionally dumb: strategies stage what they already
    computed, the search loop commits.  Nothing in here feeds back into
    the search, so recording cannot perturb decisions.
    """

    def __init__(
        self, mode: str = "auto", *, top_k: int = 8, bus: EventBus = NOOP_BUS
    ) -> None:
        if mode not in DECISION_MODES:
            raise ValueError(
                f"unknown decision mode {mode!r}; expected one of {DECISION_MODES}"
            )
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        self._mode = mode
        self._bus = bus
        self.top_k = int(top_k)
        self._resolved: str | None = None
        self._records: list[DecisionRecord] = []
        self._staged: _Staged | None = None
        self._pruned: dict[str, int] = {}
        self._step = 0

    @property
    def enabled(self) -> bool:
        return self._mode != "off"

    @property
    def mode(self) -> str:
        """The effective recording mode ('full' or 'topk' once resolved)."""
        if self._resolved is not None:
            return self._resolved
        return "full" if self._mode == "auto" else self._mode

    @property
    def records(self) -> tuple[DecisionRecord, ...]:
        return tuple(self._records)

    def begin_run(self, *, fast_lane: bool) -> None:
        """Resolve 'auto' mode from the strategy's lane at search start."""
        if self._mode == "auto":
            self._resolved = "topk" if fast_lane else "full"
        elif self._mode in ("full", "topk"):
            self._resolved = self._mode

    def note_pruned(self, reason: str, count: int) -> None:
        """Stage a pruning count observed outside candidate scoring.

        The concave prior filters candidates before any score exists
        (in ``candidate_deployments``), so its count cannot be derived
        from a blocked mask at commit time.
        """
        if not self.enabled or count <= 0:
            return
        self._pruned[reason] = self._pruned.get(reason, 0) + int(count)

    def publish(
        self,
        *,
        deployments: Sequence[Any],
        ei: np.ndarray,
        scores: np.ndarray,
        penalty: np.ndarray | None = None,
        tei: np.ndarray | None = None,
        prices_per_hour: np.ndarray | None = None,
        price_per_hour_fn: Callable[[int], float] | None = None,
        feasible: np.ndarray | None = None,
        blocked: Mapping[str, np.ndarray] | None = None,
        objective: str = "",
        incumbent: str | None = None,
        incumbent_objective: float | None = None,
        incumbent_cost: float | None = None,
        consumed: float | None = None,
        limit: float | None = None,
        best_feasible_ei: float | None = None,
    ) -> None:
        """Stage the scored landscape; a no-op when recording is off.

        ``deployments`` entries are stringified lazily, only for the
        candidates the record keeps; ``price_per_hour_fn`` is the lazy
        alternative to a full ``prices_per_hour`` array (in ``topk``
        mode a full-grid gather per step would dwarf the cost of the
        handful of values actually recorded)."""
        if not self.enabled:
            return
        self._staged = _Staged(
            deployments=list(deployments),
            ei=np.array(ei, dtype=float, copy=True),
            scores=np.array(scores, dtype=float, copy=True),
            penalty=None if penalty is None else np.array(penalty, dtype=float),
            tei=None if tei is None else np.array(tei, dtype=float),
            prices_per_hour=(
                None
                if prices_per_hour is None
                else np.array(prices_per_hour, dtype=float)
            ),
            price_per_hour_fn=price_per_hour_fn,
            feasible=None if feasible is None else np.array(feasible, dtype=bool),
            blocked={k: np.array(v, dtype=bool) for k, v in (blocked or {}).items()},
            objective=objective,
            incumbent=incumbent,
            incumbent_objective=incumbent_objective,
            incumbent_cost=incumbent_cost,
            consumed=consumed,
            limit=limit,
            best_feasible_ei=best_feasible_ei,
        )

    def commit(
        self,
        *,
        n_observations: int,
        chosen: str | None = None,
        batch: Sequence[str] = (),
        stop_reason: str | None = None,
        prior_caps: Mapping[str, int] | None = None,
        surrogate: Mapping[str, Any] | None = None,
    ) -> DecisionRecord | None:
        """Freeze the staged landscape into a record; returns it, or None."""
        if not self.enabled:
            self._staged = None
            self._pruned = {}
            return None
        self._step += 1
        staged = self._staged
        pruned = dict(self._pruned)
        candidates: tuple[CandidateRecord, ...] = ()
        n_candidates = 0
        n_feasible = 0
        objective = ""
        incumbent = incumbent_objective = incumbent_cost = None
        consumed = limit = best_feasible_ei = None
        if staged is not None:
            n_candidates = len(staged.deployments)
            feasible = staged.feasible
            if feasible is None:
                feasible = np.isfinite(staged.scores)
            n_feasible = int(np.count_nonzero(feasible))
            for reason, mask in staged.blocked.items():
                n_blocked = int(np.count_nonzero(mask))
                if n_blocked:
                    pruned[reason] = pruned.get(reason, 0) + n_blocked
            candidates = tuple(
                self._candidate(staged, feasible, i)
                for i in self._record_indices(staged.scores)
            )
            objective = staged.objective
            incumbent = staged.incumbent
            incumbent_objective = staged.incumbent_objective
            incumbent_cost = staged.incumbent_cost
            consumed = staged.consumed
            limit = staged.limit
            best_feasible_ei = staged.best_feasible_ei
        record = DecisionRecord(
            step=self._step,
            n_observations=int(n_observations),
            objective=objective,
            mode=self.mode,
            n_candidates=n_candidates,
            n_feasible=n_feasible,
            best_feasible_ei=_finite_or_none(best_feasible_ei),
            incumbent=incumbent,
            incumbent_objective=_finite_or_none(incumbent_objective),
            incumbent_cost=_finite_or_none(incumbent_cost),
            consumed=_finite_or_none(consumed),
            limit=_finite_or_none(limit),
            chosen=chosen,
            batch=tuple(str(d) for d in batch),
            stop_reason=stop_reason,
            pruned=pruned,
            prior_caps={str(k): int(v) for k, v in (prior_caps or {}).items()},
            surrogate=dict(surrogate or {}),
            candidates=candidates,
        )
        self._records.append(record)
        self._staged = None
        self._pruned = {}
        if self._bus.enabled:
            self._bus.publish("decision", record.to_dict())
        return record

    def _record_indices(self, scores: np.ndarray) -> list[int]:
        """Which candidate indices to keep, ordered by descending score.

        Infeasible candidates carry ``-inf`` scores, so they sort last;
        ties break by index (stable sort) for determinism.  In ``topk``
        mode the chosen candidate is the global argmax, i.e. always
        index 0 of the kept list.
        """
        order = np.argsort(-scores, kind="stable")
        if self.mode == "topk":
            order = order[: self.top_k]
        return [int(i) for i in order]

    @staticmethod
    def _candidate(
        staged: _Staged, feasible: np.ndarray, i: int
    ) -> CandidateRecord:
        score = float(staged.scores[i])
        blocked_by = tuple(
            sorted(
                reason
                for reason, mask in staged.blocked.items()
                if bool(mask[i])
            )
        )
        if staged.prices_per_hour is not None:
            price = float(staged.prices_per_hour[i])
        elif staged.price_per_hour_fn is not None:
            price = float(staged.price_per_hour_fn(i))
        else:
            price = None
        return CandidateRecord(
            deployment=str(staged.deployments[i]),
            ei=float(staged.ei[i]),
            score=score if math.isfinite(score) else None,
            penalty=None if staged.penalty is None else float(staged.penalty[i]),
            tei=None if staged.tei is None else float(staged.tei[i]),
            price_per_hour=price,
            feasible=bool(feasible[i]),
            blocked_by=blocked_by,
        )


#: Shared disabled log — the ``SearchContext`` default.  Stateless by
#: construction (every mutator returns before touching state), so
#: sharing one instance across contexts is safe.
NOOP_DECISIONS = DecisionLog(mode="off")
