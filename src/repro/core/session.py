"""Resumable search sessions: the engine loop, inverted.

Historically :meth:`~repro.core.engine.SearchStrategy.search` owned a
closed ``while`` loop — profile, record, refit, propose — that could
only run start-to-finish inside one call.  :class:`SearchSession`
inverts that control flow into a step-in/step-out state machine:

- :meth:`SearchSession.next_action` advances the search up to (but not
  through) the next probe and returns either a :class:`ProbeRequest`
  (what the strategy wants measured next) or :class:`Stop`;
- :meth:`SearchSession.execute_pending` runs the pending request
  through the session's own profiler (the canonical in-process path);
- :meth:`SearchSession.feed` ingests probe results an external
  executor produced against the same cloud;
- :meth:`SearchSession.to_dict` / :meth:`SearchSession.from_dict`
  serialise the session between steps so a search survives a process
  restart.

``SearchStrategy.search()`` is now a thin driver over a session, and
``tests/core/test_session.py`` asserts the resulting ``SearchTrace``
is byte-identical (canonical form) to the historical loop's.

Snapshots deliberately capture only *search* state — the trial trace,
the GP fit schedule, the initial design and consumed strategy RNG
state — not the simulated cloud or the recorder.  Restore replays the
trials and fit calls against a muted copy of the supplied context to
rebuild the surrogate bit-for-bit (GP restart draws are seeded per fit
from ``(seed, n_observations)``, and rank-1 updates replay in recorded
order), then reattaches the live telemetry sinks.  The host owns the
cloud: a restored session must be given a context whose ledger and
clock carry the pre-snapshot spend, or the resource accounting in its
result will not cover the earlier probes (``docs/service.md``).

Every stop path funnels through one exit point, which also closes a
long-standing observability gap: the legacy loop committed no decision
record for ``"search space exhausted"``, ``"no observations possible"``
or initial-design-only ``"max steps reached"`` stops, leaving
``repro explain --stop`` unable to reconstruct those runs from the
artifact.  The session commits a terminal decision record on every
stop path that the step itself did not already record.
"""

from __future__ import annotations

import logging
from collections.abc import Mapping
from dataclasses import dataclass, replace
from typing import Any

from repro import contracts
from repro.core.engine import SearchContext, SearchStrategy
from repro.core.result import SearchResult, TrialRecord
from repro.core.search_space import Deployment
from repro.obs import (
    NOOP_BUS,
    NOOP_DECISIONS,
    NOOP_PROFILER,
    NOOP_TRACER,
    NOOP_WATCHDOG,
    MetricsRegistry,
)
from repro.profiling.profiler import ProfileResult

__all__ = ["ProbeRequest", "SNAPSHOT_VERSION", "SearchSession", "Stop"]

logger = logging.getLogger(__name__)

#: Session snapshot schema version (``to_dict()["version"]``).
SNAPSHOT_VERSION = 1

#: Session phases.
PHASE_INITIAL = "initial"
PHASE_EXPLORE = "explore"
PHASE_STOPPED = "stopped"


@dataclass(frozen=True, slots=True)
class ProbeRequest:
    """One probe (or one concurrent batch) the session wants executed.

    Attributes
    ----------
    deployments:
        Deployments to profile, in launch order.  Sequential strategies
        request one at a time; batched strategies request a whole wave.
    phase:
        ``"initial"`` or ``"explore"`` — the step phase the probes
        belong to (also the trial ``note``).
    batched:
        Execute as one concurrent wave via
        :meth:`~repro.profiling.profiler.Profiler.profile_batch`
        (money is summed, wall-clock collapses to the longest member).
    """

    deployments: tuple[Deployment, ...]
    phase: str
    batched: bool = False

    @property
    def deployment(self) -> Deployment:
        """The single requested deployment (head of the batch)."""
        return self.deployments[0]


@dataclass(frozen=True, slots=True)
class Stop:
    """The search is over; ``SearchSession.result`` holds the outcome."""

    reason: str


class SearchSession:
    """Step-in/step-out state machine for one search run.

    Drive it with :meth:`next_action` + :meth:`execute_pending` (or
    :meth:`feed`), or call :meth:`run` to drain it in one call — which
    is exactly what ``SearchStrategy.search()`` does.

    The session owns the run-scoped state the legacy loop kept in
    locals: the engine, the trial list, the initial design, the default
    stop reason and the open ``search`` / ``step`` spans.  Spans are
    driven manually (``__enter__`` / ``__exit__``) because a step now
    straddles two calls: it opens in :meth:`next_action` and closes
    when its probe results have been recorded.
    """

    def __init__(self, strategy: SearchStrategy, context: SearchContext) -> None:
        self.strategy = strategy
        self.context = context
        self.engine = strategy._make_engine(context)
        self.trials: list[TrialRecord] = []
        self.phase = PHASE_INITIAL
        self.stop_reason: str | None = None
        self._pending: ProbeRequest | None = None
        self._fed = 0
        self._result: SearchResult | None = None
        #: ``len(trials)`` at each ``engine.fit()`` call, in order —
        #: the replay schedule that makes restore reproduce the GP's
        #: incremental-update sequence exactly.
        self._fit_trials: list[int] = []
        self._profiling_before = context.profiler.cloud.ledger.total(
            "profiling"
        )
        self._search_cm: Any = None
        self._search_span: Any = None
        self._step_cm: Any = None
        self._step_span: Any = None
        context.decisions.begin_run(fast_lane=strategy.fast_lane)
        self._open_search_span()
        self._initial = list(strategy.initial_deployments(context))
        self._initial_idx = 0

    # -- driving -------------------------------------------------------------
    @property
    def pending(self) -> ProbeRequest | None:
        """The outstanding probe request, if any."""
        return self._pending

    @property
    def result(self) -> SearchResult | None:
        """The final result once the session has stopped."""
        return self._result

    def next_action(self) -> ProbeRequest | Stop:
        """Advance to the next probe request, or stop.

        Idempotent while a request is outstanding: the same
        :class:`ProbeRequest` is returned until its results arrive via
        :meth:`execute_pending` or :meth:`feed`.
        """
        if self.phase == PHASE_STOPPED:
            return Stop(self.stop_reason or "stopped")
        if self._pending is not None:
            return self._pending
        try:
            if self.phase == PHASE_INITIAL:
                request = self._next_initial()
                if request is not None:
                    return request
                self.phase = PHASE_EXPLORE
            return self._next_explore()
        except BaseException as exc:
            self._abort(exc)
            raise

    def execute_pending(self) -> list[ProfileResult]:
        """Run the pending request through the session's own profiler.

        This is the canonical in-process execution path — identical
        probe spans, fleet attribution and billing to the legacy loop.
        """
        if self._pending is None:
            raise RuntimeError("no pending probe request to execute")
        request = self._pending
        strategy, context, engine = self.strategy, self.context, self.engine
        try:
            if request.batched:
                fleet = context.profiler.cloud.fleet
                # batch member i becomes trial first_trial + i
                # (_record_batch appends in launch order), so the fleet
                # log can attribute each member's clusters
                fleet.begin_batch(
                    phase=request.phase, first_trial=len(self.trials) + 1
                )
                try:
                    results = context.profiler.profile_batch(
                        [
                            (d.instance_type, d.count)
                            for d in request.deployments
                        ],
                        context.job,
                    )
                finally:
                    fleet.clear()
                strategy._record_batch(
                    context, engine, results, self.trials, request.phase
                )
            else:
                results = [
                    strategy._probe(
                        context, engine, d, self.trials, request.phase
                    )
                    for d in request.deployments
                ]
        except BaseException as exc:
            self._abort(exc)
            raise
        self._pending = None
        self._fed = 0
        self._close_step_span()
        return results

    def feed(self, result: ProfileResult) -> None:
        """Ingest one probe result an external executor produced.

        Results must arrive in the request's launch order and must have
        been produced against the *session's* cloud — the billing
        contracts reconcile trial costs against the session ledger at
        finalisation.  The probe span is attribute-only (``fed``): the
        measurement already happened, so there is no duration to trace.
        """
        if self._pending is None:
            raise RuntimeError("feed() without a pending probe request")
        request = self._pending
        expected = request.deployments[self._fed]
        if (result.instance_type, result.count) != (
            expected.instance_type,
            expected.count,
        ):
            raise ValueError(
                f"fed result is {result.instance_type} x{result.count}, "
                f"expected {expected}"
            )
        strategy, context, engine = self.strategy, self.context, self.engine
        deployment = engine.add_observation(result)
        with context.tracer.span("probe", {
            "deployment": str(deployment),
            "instance_type": deployment.instance_type,
            "count": deployment.count,
            "note": request.phase,
            "fed": True,
        }) as span:
            self.trials.append(TrialRecord(
                step=len(self.trials) + 1,
                deployment=deployment,
                measured_speed=result.speed,
                profile_seconds=result.seconds,
                profile_dollars=result.dollars,
                elapsed_seconds=context.elapsed_seconds(),
                spent_dollars=context.spent_dollars(),
                note=request.phase,
                failure_reason=result.failure_reason,
            ))
            strategy._record_probe_telemetry(
                context, span, result, len(self.trials)
            )
        strategy.on_observation(context, result)
        strategy._emit_progress(context, engine, self.trials, request.phase)
        self._fed += 1
        if self._fed == len(request.deployments):
            self._pending = None
            self._fed = 0
            self._close_step_span()

    def run(self) -> SearchResult:
        """Drain the session to completion and return its result."""
        while True:
            action = self.next_action()
            if isinstance(action, Stop):
                if self._result is None:
                    raise RuntimeError(
                        f"session stopped without a result: {action.reason}"
                    )
                return self._result
            self.execute_pending()

    # -- the state machine ---------------------------------------------------
    def _next_initial(self) -> ProbeRequest | None:
        """The next initial-design request, or None to enter explore."""
        strategy = self.strategy
        if strategy.batched:
            if self._initial_idx:
                return None
            self._initial_idx = 1
            # initial design: all probes in one concurrent wave
            batch = self._initial[: strategy.max_steps]
            if not batch:
                return None
            self._open_step_span({"phase": "initial", "batch": len(batch)})
            self._pending = ProbeRequest(
                tuple(batch), PHASE_INITIAL, batched=True
            )
            return self._pending
        if (
            self._initial_idx < len(self._initial)
            and len(self.trials) < strategy.max_steps
        ):
            deployment = self._initial[self._initial_idx]
            self._initial_idx += 1
            self._open_step_span({"phase": "initial"})
            self._pending = ProbeRequest(
                (deployment,), PHASE_INITIAL, batched=False
            )
            return self._pending
        return None

    def _next_explore(self) -> ProbeRequest | Stop:
        """One explore iteration: fit, score, select — or stop."""
        strategy, context, engine = self.strategy, self.context, self.engine
        if len(self.trials) >= strategy.max_steps:
            return self._stop("max steps reached")
        if engine.n_observations == 0:
            return self._stop("no observations possible")
        self._open_step_span({"phase": "explore"})
        engine.fit()
        self._fit_trials.append(len(self.trials))
        candidates = strategy.candidate_deployments(context, engine)
        if not candidates:
            self._close_step_span()
            return self._stop("search space exhausted")
        with context.tracer.span(
            "candidate-scoring", {"n_candidates": len(candidates)}
        ) as scoring_span:
            scores = strategy.score_candidates(context, engine, candidates)
            # selection stays inside the span so its attributes are
            # final when it closes: streamed span events snapshot at
            # finish, so a late set_attribute would desynchronise live
            # artifacts from the finalised trace
            reason = strategy.should_stop(context, engine, candidates, scores)
            probes: list[Deployment] = []
            if reason is None:
                probes = strategy.select_probes(
                    context,
                    engine,
                    candidates,
                    scores,
                    scoring_span,
                    strategy.max_steps - len(self.trials),
                )
        if reason is not None or not probes:
            stop_reason = (
                reason if reason is not None
                else strategy.empty_selection_stop_reason
            )
            self._step_span.set_attribute("stop_reason", stop_reason)
            strategy._commit_decision(
                context, engine, stop_reason=stop_reason
            )
            self._close_step_span()
            return self._stop(stop_reason, committed=True)
        if strategy.batched:
            self._step_span.set_attribute("batch", len(probes))
            strategy._commit_decision(
                context, engine, chosen=probes[0], batch=probes
            )
        else:
            strategy._commit_decision(context, engine, chosen=probes[0])
        self._pending = ProbeRequest(
            tuple(probes), PHASE_EXPLORE, batched=strategy.batched
        )
        return self._pending

    def _stop(self, reason: str, *, committed: bool = False) -> Stop:
        """Single exit point for every stop path."""
        self.stop_reason = reason
        if not committed:
            self._commit_terminal_decision(reason)
        self._finalize()
        self.phase = PHASE_STOPPED
        return Stop(reason)

    def _commit_terminal_decision(self, reason: str) -> None:
        """Decision record for stops the legacy loop left silent.

        Guarantees every completed search with decisions enabled
        carries at least one record naming its stop reason, so
        ``repro explain --stop`` works from the artifact alone even for
        ``"search space exhausted"`` / ``"no observations possible"`` /
        initial-design-only ``"max steps reached"`` runs.  Unlike
        ``_commit_decision`` this does not feed the watchdog: the
        legacy loop emitted nothing here, and watchdog anomalies
        surface as spans — which survive canonical-trace comparison.
        """
        decisions = self.context.decisions
        if not decisions.enabled:
            return
        snapshot = self.strategy.decision_snapshot()
        decisions.commit(
            n_observations=self.engine.n_observations,
            stop_reason=reason,
            prior_caps=snapshot.get("prior_caps", {}),
            surrogate=self.engine.surrogate_health(),
        )

    def _finalize(self) -> None:
        """Close the search span, check contracts, build the result."""
        strategy, context, engine = self.strategy, self.context, self.engine
        selection = strategy.select_best(context, engine)
        best, best_speed = (
            (None, 0.0) if selection is None else selection
        )
        self._search_span.set_attribute("stop_reason", self.stop_reason)
        self._search_span.set_attribute("n_steps", len(self.trials))
        self._search_span.set_attribute(
            "best", None if best is None else str(best)
        )
        self._close_search_span()
        ledger = context.profiler.cloud.ledger
        contracts.check_search_billing(
            self.trials, ledger.total("profiling") - self._profiling_before
        )
        contracts.check_ledger(ledger)
        contracts.check_fleet_attribution(
            ledger, context.profiler.cloud.fleet
        )
        context.metrics.gauge("search.steps_to_stop").set(
            len(self.trials), strategy=strategy.name
        )
        logger.info(
            "%s finished after %d probes: best=%s (%.2f samples/s), "
            "profiling %.2f h / $%.2f, stop: %s",
            strategy.name, len(self.trials), best, best_speed,
            context.elapsed_seconds() / 3600, context.spent_dollars(),
            self.stop_reason,
        )
        self._result = SearchResult(
            strategy=strategy.name,
            scenario=context.scenario,
            trials=tuple(self.trials),
            best=best,
            best_measured_speed=best_speed,
            profile_seconds=context.elapsed_seconds(),
            profile_dollars=context.spent_dollars(),
            stop_reason=self.stop_reason,
        )

    def _abort(self, exc: BaseException) -> None:
        """Close open spans with the error, like ``with`` unwinding."""
        self._close_step_span(exc)
        self._close_search_span(exc)
        self.phase = PHASE_STOPPED
        self.stop_reason = f"error: {exc!r}"
        self._pending = None

    # -- manual span lifecycle -----------------------------------------------
    def _open_search_span(self) -> None:
        self._search_cm = self.context.tracer.span(
            "search", self.strategy.search_span_attributes(self.context)
        )
        self._search_span = self._search_cm.__enter__()

    def _close_search_span(self, exc: BaseException | None = None) -> None:
        cm = self._search_cm
        self._search_cm = None
        self._search_span = None
        if cm is not None:
            if exc is None:
                cm.__exit__(None, None, None)
            else:
                cm.__exit__(type(exc), exc, exc.__traceback__)

    def _open_step_span(self, attributes: dict[str, Any]) -> None:
        self._step_cm = self.context.tracer.span("step", attributes)
        self._step_span = self._step_cm.__enter__()

    def _close_step_span(self, exc: BaseException | None = None) -> None:
        cm = self._step_cm
        self._step_cm = None
        self._step_span = None
        if cm is not None:
            if exc is None:
                cm.__exit__(None, None, None)
            else:
                cm.__exit__(type(exc), exc, exc.__traceback__)

    # -- snapshots -----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable snapshot of the session between steps.

        Only quiescent sessions snapshot: a pending request means a
        step span is open and half a step's effects are unrecorded.
        """
        if self._pending is not None:
            raise RuntimeError(
                "cannot snapshot a session with a pending probe request; "
                "execute or feed it first"
            )
        if self.phase == PHASE_STOPPED:
            raise RuntimeError(
                "cannot snapshot a stopped session; read .result instead"
            )
        return {
            "version": SNAPSHOT_VERSION,
            "strategy": self.strategy.name,
            "phase": self.phase,
            "max_steps": self.strategy.max_steps,
            "initial": [
                [d.instance_type, d.count] for d in self._initial
            ],
            "initial_idx": self._initial_idx,
            "trials": [
                {
                    "step": t.step,
                    "instance_type": t.deployment.instance_type,
                    "count": t.deployment.count,
                    "measured_speed": t.measured_speed,
                    "profile_seconds": t.profile_seconds,
                    "profile_dollars": t.profile_dollars,
                    "elapsed_seconds": t.elapsed_seconds,
                    "spent_dollars": t.spent_dollars,
                    "note": t.note,
                    "failure_reason": t.failure_reason,
                }
                for t in self.trials
            ],
            "fit_trials": list(self._fit_trials),
            "profiling_before": self._profiling_before,
            "strategy_state": self.strategy.state_snapshot(),
        }

    @classmethod
    def from_dict(
        cls,
        snapshot: Mapping[str, Any],
        *,
        strategy: SearchStrategy,
        context: SearchContext,
    ) -> "SearchSession":
        """Rebuild a session from a snapshot against a live context.

        ``strategy`` must be configured identically to the snapshotted
        one (its mutable state is reset by ``restore_state`` and
        rebuilt by replay, so passing the original instance is fine).
        The surrogate replays against a muted copy of ``context`` —
        restore emits no spans, metrics, decisions or progress for
        steps already recorded.  The host supplies the cloud: the
        context's ledger and clock must carry the pre-snapshot spend
        for resource accounting to stay truthful.

        If ``context.tracer`` still has the predecessor's ``search``
        span open (same-process resume), the session adopts it;
        otherwise (fresh recorder after a restart) it opens a new root
        span and the pre-snapshot spans live only in the old artifact.
        """
        version = snapshot.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported session snapshot version: {version!r}"
            )
        if snapshot["strategy"] != strategy.name:
            raise ValueError(
                f"snapshot was taken by strategy {snapshot['strategy']!r}, "
                f"got {strategy.name!r}"
            )
        if int(snapshot["max_steps"]) != strategy.max_steps:
            raise ValueError(
                f"snapshot max_steps={snapshot['max_steps']} does not "
                f"match strategy max_steps={strategy.max_steps}"
            )
        session = cls.__new__(cls)
        session.strategy = strategy
        session.context = context
        session.trials = []
        session.phase = str(snapshot["phase"])
        session.stop_reason = None
        session._pending = None
        session._fed = 0
        session._result = None
        session._fit_trials = [int(n) for n in snapshot["fit_trials"]]
        session._profiling_before = float(snapshot["profiling_before"])
        session._initial = [
            Deployment(str(t), int(n)) for t, n in snapshot["initial"]
        ]
        session._initial_idx = int(snapshot["initial_idx"])
        session._step_cm = None
        session._step_span = None
        quiet = replace(
            context,
            tracer=NOOP_TRACER,
            metrics=MetricsRegistry(),
            decisions=NOOP_DECISIONS,
            watchdog=NOOP_WATCHDOG,
            bus=NOOP_BUS,
            prof=NOOP_PROFILER,
        )
        strategy.restore_state(snapshot.get("strategy_state", {}))
        session.engine = strategy._make_engine(quiet)
        pending_fits = list(session._fit_trials)
        for doc in snapshot["trials"]:
            while pending_fits and pending_fits[0] == len(session.trials):
                session.engine.fit()
                pending_fits.pop(0)
            result = ProfileResult(
                instance_type=str(doc["instance_type"]),
                count=int(doc["count"]),
                speed=float(doc["measured_speed"]),
                seconds=float(doc["profile_seconds"]),
                dollars=float(doc["profile_dollars"]),
                iteration_speeds=(),
                extensions=0,
                failed=bool(doc["failure_reason"]),
                failure_reason=str(doc["failure_reason"]),
            )
            session.engine.add_observation(result)
            session.trials.append(TrialRecord(
                step=int(doc["step"]),
                deployment=Deployment(
                    str(doc["instance_type"]), int(doc["count"])
                ),
                measured_speed=float(doc["measured_speed"]),
                profile_seconds=float(doc["profile_seconds"]),
                profile_dollars=float(doc["profile_dollars"]),
                elapsed_seconds=float(doc["elapsed_seconds"]),
                spent_dollars=float(doc["spent_dollars"]),
                note=str(doc["note"]),
                failure_reason=str(doc["failure_reason"]),
            ))
            strategy.on_observation(quiet, result)
        while pending_fits and pending_fits[0] == len(session.trials):
            session.engine.fit()
            pending_fits.pop(0)
        if pending_fits:
            raise ValueError(
                "snapshot fit schedule is inconsistent with its trials"
            )
        session.engine.context = context
        context.decisions.begin_run(fast_lane=strategy.fast_lane)
        current = context.tracer.current_span()
        if current is not None and getattr(current, "name", "") == "search":
            session._search_cm = context.tracer.adopt(current)
            session._search_span = current
        else:
            session._search_cm = None
            session._search_span = None
            session._open_search_span()
        return session
