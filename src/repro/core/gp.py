"""Gaussian-process regression, from scratch (the paper's prior function).

"We follow the convention of using Gaussian Process as the prior
function [...] because of its good flexibility and tractability."
(Sec. III-C.)

Implementation notes:

- targets are standardised internally, so kernel output scales start
  near 1 regardless of whether speeds are 10 or 10,000 samples/s;
- the posterior uses a jittered Cholesky factorisation (never a matrix
  inverse);
- hyperparameters maximise the log marginal likelihood with analytic
  gradients (via :meth:`Kernel.gradient`) under multi-restart L-BFGS-B,
  seeded for reproducibility.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy import linalg, optimize

from repro import contracts
from repro.core.kernels import Kernel, default_deployment_kernel

__all__ = ["GaussianProcess"]

_JITTER = 1e-10
_MAX_JITTER_TRIES = 6

#: Objective value returned by :meth:`GaussianProcess._neg_lml_and_grad`
#: when the covariance at a candidate theta is not positive definite.
#: Restart results at (or above) this penalty carry no likelihood
#: information and must never be adopted as "best".
_CHOL_FAILURE_PENALTY = 1e25


def _spectrum_diagnostics(K: np.ndarray) -> str:
    """Eigenvalue range and condition estimate of a symmetrised matrix."""
    try:
        eigvals = np.linalg.eigvalsh((K + K.T) / 2.0)
    except linalg.LinAlgError:  # pragma: no cover - eigvalsh on finite
        return "spectrum unavailable"
    lo, hi = float(eigvals[0]), float(eigvals[-1])
    cond = hi / lo if lo > 0 else np.inf
    return (
        f"eigenvalues in [{lo:.3e}, {hi:.3e}], "
        f"condition estimate {cond:.3e}"
    )


def _chol_with_jitter_level(
    K: np.ndarray, kernel: Kernel | None = None
) -> tuple[np.ndarray, float]:
    """``(L, jitter)`` — Cholesky factor plus the jitter that succeeded.

    The jitter level is what rank-1 border updates must add to new
    diagonal entries so an incrementally extended factor stays the
    exact factorisation of ``K + jitter * I``.
    """
    contracts.check_gram(K, kernel)
    jitter = _JITTER
    for _ in range(_MAX_JITTER_TRIES):
        try:
            L = linalg.cholesky(
                K + jitter * np.eye(K.shape[0]), lower=True
            )
            return L, jitter
        except linalg.LinAlgError:
            jitter *= 100.0
    theta = (
        "unknown" if kernel is None
        else np.array2string(np.asarray(kernel.theta), precision=6)
    )
    raise linalg.LinAlgError(
        f"covariance ({K.shape[0]}x{K.shape[0]}) not positive definite "
        f"even with jitter {jitter:g}: {_spectrum_diagnostics(K)}; "
        f"kernel theta {theta}"
    )


def _chol_with_jitter(
    K: np.ndarray, kernel: Kernel | None = None
) -> np.ndarray:
    """Cholesky factor of ``K`` with a bounded escalating jitter ladder.

    On final failure the error carries the kernel hyperparameters and
    an eigenvalue/condition-number diagnosis, so the failing covariance
    can be reconstructed from the message alone.
    """
    return _chol_with_jitter_level(K, kernel)[0]


class GaussianProcess:
    """GP regressor with marginal-likelihood hyperparameter fitting.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to the mixed categorical/Matérn
        deployment kernel.
    optimize_restarts:
        Number of random restarts for hyperparameter optimisation
        (the incumbent hyperparameters are always one of the starts).
        0 disables fitting and keeps the current hyperparameters.
    seed:
        Seed for restart sampling.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        *,
        optimize_restarts: int = 3,
        seed: int = 0,
    ) -> None:
        if optimize_restarts < 0:
            raise ValueError(
                f"optimize_restarts must be >= 0, got {optimize_restarts}"
            )
        self.kernel = kernel if kernel is not None else default_deployment_kernel()
        self.optimize_restarts = optimize_restarts
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._X: np.ndarray | None = None
        self._y_raw: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._L: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._chol_jitter = _JITTER

    # -- fitting -----------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._L is not None

    @property
    def n_observations(self) -> int:
        """Number of recorded observations."""
        return 0 if self._X is None else self._X.shape[0]

    def _standardise(self, y: np.ndarray) -> np.ndarray:
        self._y_mean = float(np.mean(y))
        std = float(np.std(y))
        self._y_std = std if std > 1e-12 else 1.0
        return (y - self._y_mean) / self._y_std

    def _neg_lml_and_grad(
        self, theta: np.ndarray, X: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray]:
        self.kernel.theta = theta
        K, dK = self.kernel.gradient(X)
        try:
            L = _chol_with_jitter(K)
        except linalg.LinAlgError:
            return 1e25, np.zeros_like(theta)
        alpha = linalg.cho_solve((L, True), y)
        lml = (
            -0.5 * float(y @ alpha)
            - float(np.sum(np.log(np.diag(L))))
            - 0.5 * len(y) * np.log(2.0 * np.pi)
        )
        # dLML/dtheta_i = 0.5 tr((alpha alpha^T - K^{-1}) dK_i)
        Kinv = linalg.cho_solve((L, True), np.eye(len(y)))
        inner = np.outer(alpha, alpha) - Kinv
        grad = 0.5 * np.einsum("ij,pij->p", inner, dK)
        return -lml, -grad

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Fit hyperparameters and the posterior to ``(X, y)``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != len(y):
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {len(y)} entries"
            )
        if len(y) == 0:
            raise ValueError("cannot fit a GP to zero observations")
        self._X = X
        self._y_raw = y
        ys = self._standardise(y)

        if self.optimize_restarts > 0 and len(y) >= 2:
            bounds = self.kernel.bounds
            incumbent = self.kernel.theta.copy()
            # Restart starts are drawn from an RNG derived from
            # (seed, n): the draws for a fit at n observations are the
            # same whether or not earlier fits happened, so a refit
            # *schedule* that skips steps cannot perturb hyperparameter
            # search determinism.
            rng = np.random.default_rng((self._seed, len(y)))
            starts = [incumbent]
            for _ in range(self.optimize_restarts - 1):
                starts.append(np.array([
                    rng.uniform(lo, hi) for lo, hi in bounds
                ]))
            best_theta, best_val = None, np.inf
            for start in starts:
                res = optimize.minimize(
                    self._neg_lml_and_grad,
                    start,
                    args=(X, ys),
                    jac=True,
                    bounds=bounds,
                    method="L-BFGS-B",
                )
                # A restart stuck at the Cholesky-failure penalty never
                # achieved a finite log marginal likelihood: its theta
                # is not even factorisable, let alone "best".
                if res.fun < best_val and res.fun < _CHOL_FAILURE_PENALTY:
                    best_val, best_theta = res.fun, res.x
            # _neg_lml_and_grad sets kernel.theta as a side effect of
            # every evaluation, so the kernel is left at whatever point
            # the last optimizer run touched; restore the winner — or
            # the incumbent, when no restart found a finite LML.
            self.kernel.theta = (
                best_theta if best_theta is not None else incumbent
            )

        K = self.kernel(X)
        self._L, self._chol_jitter = _chol_with_jitter_level(K, self.kernel)
        self._alpha = linalg.cho_solve((self._L, True), ys)
        return self

    # -- incremental updates (the surrogate fast lane) -----------------------------
    def observe(self, x: np.ndarray, y: float) -> "GaussianProcess":
        """Append one observation in O(n²) via a Cholesky border update.

        Hyperparameters are kept; the factor of ``K + jitter*I`` is
        extended by one row, targets are re-standardised over the full
        history, and ``alpha`` is recomputed — so the posterior is
        *exactly* what :meth:`fit` with ``optimize_restarts=0`` would
        produce on the extended data (up to floating-point rounding).

        Falls back to a full refactorisation at the current
        hyperparameters if the bordered matrix is not positive definite
        at the stored jitter level.
        """
        if self._X is None or self._L is None:
            raise RuntimeError("observe() before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape != (1, self._X.shape[1]):
            raise ValueError(
                f"x must be a single {self._X.shape[1]}-feature row, "
                f"got shape {x.shape}"
            )
        X_new = np.vstack([self._X, x])
        y_new = np.append(self._y_raw, float(y))
        k = self.kernel(self._X, x).ravel()
        k_ss = float(self.kernel.diag(x)[0]) + self._chol_jitter
        l12 = linalg.solve_triangular(self._L, k, lower=True)
        l22_sq = k_ss - float(l12 @ l12)
        if l22_sq <= 0.0:
            # bordered matrix not PD at this jitter: refactorise fully
            # (keeps hyperparameters, may escalate the jitter ladder)
            self._X, self._y_raw = X_new, y_new
            ys = self._standardise(y_new)
            self._L, self._chol_jitter = _chol_with_jitter_level(
                self.kernel(X_new), self.kernel
            )
            self._alpha = linalg.cho_solve((self._L, True), ys)
            return self
        n = X_new.shape[0]
        L = np.zeros((n, n))
        L[: n - 1, : n - 1] = self._L
        L[n - 1, : n - 1] = l12
        L[n - 1, n - 1] = np.sqrt(l22_sq)
        self._X, self._y_raw, self._L = X_new, y_new, L
        ys = self._standardise(y_new)
        self._alpha = linalg.cho_solve((L, True), ys)
        return self

    def set_targets(self, y: np.ndarray) -> "GaussianProcess":
        """Replace the targets without touching ``X`` or the factor.

        O(n²).  Needed because the engine's dynamic speed floor can
        retroactively move failed-probe targets when a new slowest
        success arrives; the covariance (a function of ``X`` only) is
        unaffected, so only standardisation and ``alpha`` change.
        """
        if self._X is None or self._L is None:
            raise RuntimeError("set_targets() before fit()")
        y = np.asarray(y, dtype=float).ravel()
        if len(y) != self._X.shape[0]:
            raise ValueError(
                f"y has {len(y)} entries but the GP holds "
                f"{self._X.shape[0]} observations"
            )
        self._y_raw = y
        ys = self._standardise(y)
        self._alpha = linalg.cho_solve((self._L, True), ys)
        return self

    # -- prediction ----------------------------------------------------------------
    def predict(self, Xstar: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at ``Xstar``.

        Returns
        -------
        (mu, sigma):
            Arrays of shape ``(len(Xstar),)`` in the original target
            units.
        """
        if self._X is None or self._L is None or self._alpha is None:
            raise RuntimeError("predict() before fit()")
        Xstar = np.atleast_2d(np.asarray(Xstar, dtype=float))
        Ks = self.kernel(self._X, Xstar)  # (n, m)
        mu = Ks.T @ self._alpha
        v = linalg.solve_triangular(self._L, Ks, lower=True)
        # prior variance at test points: O(m) diagonal, never the
        # full m x m matrix
        prior_var = self.kernel.diag(Xstar)
        var = np.maximum(prior_var - np.sum(v**2, axis=0), 1e-12)
        mu_out = mu * self._y_std + self._y_mean
        sigma_out = np.sqrt(var) * self._y_std
        contracts.check_posterior(mu_out, sigma_out)
        return mu_out, sigma_out

    def sample(
        self,
        Xstar: np.ndarray,
        n_samples: int = 1,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Draw joint posterior function samples at ``Xstar``.

        Returns
        -------
        ndarray of shape ``(n_samples, len(Xstar))`` in original target
        units.  Used by Thompson-sampling acquisition.
        """
        if self._X is None or self._L is None or self._alpha is None:
            raise RuntimeError("sample() before fit()")
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        rng = rng if rng is not None else self._rng
        Xstar = np.atleast_2d(np.asarray(Xstar, dtype=float))
        Ks = self.kernel(self._X, Xstar)
        mu = Ks.T @ self._alpha
        v = linalg.solve_triangular(self._L, Ks, lower=True)
        cov = self.kernel(Xstar) - v.T @ v
        # joint draw needs the full posterior covariance factorised
        Lp = _chol_with_jitter((cov + cov.T) / 2.0, self.kernel)
        z = rng.standard_normal((Xstar.shape[0], n_samples))
        draws = mu[None, :] + (Lp @ z).T
        return draws * self._y_std + self._y_mean

    def log_marginal_likelihood(self) -> float:
        """LML of the standardised targets at the current hyperparameters."""
        if self._y_raw is None or self._L is None or self._alpha is None:
            raise RuntimeError("log_marginal_likelihood() before fit()")
        ys = (self._y_raw - self._y_mean) / self._y_std
        return (
            -0.5 * float(ys @ self._alpha)
            - float(np.sum(np.log(np.diag(self._L))))
            - 0.5 * len(ys) * np.log(2.0 * np.pi)
        )

    def health(self) -> dict[str, Any]:
        """Diagnostic snapshot of the fitted surrogate.

        The Gram condition number comes from the Cholesky factor the
        posterior actually uses (``cond2(K) = cond2(L)^2``, via the
        singular values of ``L``), so it reflects the jittered matrix
        being solved against, not the raw kernel.  Read-only: nothing
        here mutates the GP.
        """
        if self._L is None or self._y_raw is None:
            raise RuntimeError("health() before fit()")
        singular = np.linalg.svd(self._L, compute_uv=False)
        smallest = float(singular[-1])
        if smallest > 0.0:
            condition = float((float(singular[0]) / smallest) ** 2)
        else:
            condition = float("inf")
        return {
            "theta": [float(t) for t in np.asarray(self.kernel.theta).ravel()],
            "log_marginal_likelihood": float(self.log_marginal_likelihood()),
            "gram_condition": condition,
            "jitter": float(self._chol_jitter),
            "n_observations": int(self.n_observations),
        }
