"""Core contribution: HeterBO and its Bayesian-optimization machinery.

Layout:

- :mod:`repro.core.kernels` / :mod:`repro.core.gp` — from-scratch
  Gaussian-process regression (the BO prior function, Sec. III-C);
- :mod:`repro.core.acquisition` — EI/UCB/POI and the constraint-aware
  True Expected Improvement of Eqs. 5–6;
- :mod:`repro.core.search_space` — the deployment space ``D(m, n)``;
- :mod:`repro.core.scenarios` — the paper's three user scenarios
  (Eqs. 1–3);
- :mod:`repro.core.prior` — the concave scale-out prior;
- :mod:`repro.core.engine` — the GP-driven search loop shared by
  HeterBO and the BO baselines;
- :mod:`repro.core.session` — the loop inverted into a resumable
  step-in/step-out :class:`~repro.core.session.SearchSession`;
- :mod:`repro.core.heterbo` — the HeterBO search method itself.
"""

from repro.core.advisor import OfflineAdvisor, Recommendation
from repro.core.acquisition import (
    expected_improvement_max,
    expected_improvement_min,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.core.engine import GPSearchEngine, SearchStrategy
from repro.core.gp import GaussianProcess
from repro.core.heterbo import HeterBO
from repro.core.kernels import (
    CategoricalKernel,
    ConstantKernel,
    Kernel,
    Matern52Kernel,
    ProductKernel,
    RBFKernel,
    SumKernel,
    WhiteKernel,
)
from repro.core.parallel import ParallelHeterBO
from repro.core.pareto import ParetoPoint, pareto_front, search_pareto_front
from repro.core.prior import ConcaveScaleOutPrior
from repro.core.result import DeploymentReport, SearchResult, TrialRecord
from repro.core.scenarios import Objective, Scenario, ScenarioKind
from repro.core.search_space import Deployment, DeploymentSpace
from repro.core.session import ProbeRequest, SearchSession, Stop

__all__ = [
    "CategoricalKernel",
    "ConcaveScaleOutPrior",
    "ConstantKernel",
    "Deployment",
    "DeploymentReport",
    "DeploymentSpace",
    "GPSearchEngine",
    "GaussianProcess",
    "HeterBO",
    "Kernel",
    "Matern52Kernel",
    "Objective",
    "OfflineAdvisor",
    "ParallelHeterBO",
    "ParetoPoint",
    "ProbeRequest",
    "ProductKernel",
    "RBFKernel",
    "Recommendation",
    "Scenario",
    "ScenarioKind",
    "SearchResult",
    "SearchSession",
    "SearchStrategy",
    "Stop",
    "SumKernel",
    "TrialRecord",
    "WhiteKernel",
    "expected_improvement_max",
    "expected_improvement_min",
    "pareto_front",
    "probability_of_improvement",
    "search_pareto_front",
    "upper_confidence_bound",
]
