"""Time/cost Pareto analysis of observed deployments.

A search produces measurements of many deployments; the user's real
trade-off is two-dimensional (training time vs training cost).  This
module extracts the Pareto-efficient subset of a search trace so MLCD
can show the user *all* of their non-dominated options, not just the
scenario's argmin — the multi-objective reporting extension from
DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import SearchResult
from repro.core.search_space import Deployment, DeploymentSpace

__all__ = ["ParetoPoint", "pareto_front", "search_pareto_front"]


@dataclass(frozen=True, slots=True)
class ParetoPoint:
    """One non-dominated deployment option."""

    deployment: Deployment
    measured_speed: float
    train_seconds: float
    train_dollars: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """Strictly better on one axis, no worse on the other."""
        return (
            self.train_seconds <= other.train_seconds
            and self.train_dollars <= other.train_dollars
            and (
                self.train_seconds < other.train_seconds
                or self.train_dollars < other.train_dollars
            )
        )


def pareto_front(points: list[ParetoPoint]) -> list[ParetoPoint]:
    """Non-dominated subset, sorted by ascending training time.

    Deduplicates identical (time, cost) pairs, keeping the first.
    """
    ordered = sorted(
        points, key=lambda p: (p.train_seconds, p.train_dollars)
    )
    front: list[ParetoPoint] = []
    best_cost = float("inf")
    seen: set[tuple[float, float]] = set()
    for p in ordered:
        key = (p.train_seconds, p.train_dollars)
        if key in seen:
            continue
        if p.train_dollars < best_cost:
            front.append(p)
            best_cost = p.train_dollars
            seen.add(key)
    return front


def search_pareto_front(
    result: SearchResult,
    space: DeploymentSpace,
    total_samples: int,
) -> list[ParetoPoint]:
    """Pareto-efficient deployments among a search's successful probes.

    Uses measured speeds; times/costs are full-training projections,
    matching what the scenario objectives optimise.
    """
    if total_samples <= 0:
        raise ValueError(f"total_samples must be positive, got {total_samples}")
    points = []
    for trial in result.trials:
        if trial.failed:
            continue
        seconds = total_samples / trial.measured_speed
        dollars = seconds * space.hourly_price(trial.deployment) / 3600.0
        points.append(ParetoPoint(
            deployment=trial.deployment,
            measured_speed=trial.measured_speed,
            train_seconds=seconds,
            train_dollars=dollars,
        ))
    return pareto_front(points)
