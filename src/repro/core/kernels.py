"""Covariance kernels for Gaussian-process regression, from scratch.

All hyperparameters live in log space (``theta``), which makes the
positivity constraint implicit and conditions the marginal-likelihood
optimisation.  Every kernel provides analytic gradients of the
covariance matrix w.r.t. ``theta``; the property-based tests check them
against finite differences.

The deployment space is mixed discrete: dimension 0 is an instance-type
*index* (categorical — "c5.xlarge" and "p3.16xlarge" are not 14 apart
in any meaningful metric) and dimension 1 is ``log2(n)``.  The default
deployment kernel is therefore
``Constant * (Categorical(dim 0) * Matern52(dim 1)) + White``.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "CategoricalKernel",
    "ConstantKernel",
    "Kernel",
    "Matern52Kernel",
    "ProductKernel",
    "RBFKernel",
    "SumKernel",
    "WhiteKernel",
    "default_deployment_kernel",
]

_LOG_BOUND = (np.log(1e-5), np.log(1e5))


def _as_2d(X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X[:, None]
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    return X


class Kernel(abc.ABC):
    """Covariance function with log-space hyperparameters.

    Subclasses implement :meth:`__call__` (cross-covariance) and
    :meth:`gradient` (covariance plus per-hyperparameter gradients on a
    single input set).
    """

    @property
    @abc.abstractmethod
    def theta(self) -> np.ndarray:
        """Current hyperparameters, log-transformed."""

    @theta.setter
    @abc.abstractmethod
    def theta(self, value: np.ndarray) -> None: ...

    @property
    @abc.abstractmethod
    def bounds(self) -> list[tuple[float, float]]:
        """Per-hyperparameter (low, high) bounds in log space."""

    @abc.abstractmethod
    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        """Covariance matrix between rows of ``X`` and ``Z`` (or ``X``)."""

    @abc.abstractmethod
    def gradient(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(K(X, X), dK)`` where ``dK[i]`` is ∂K/∂theta_i."""

    def diag(self, X: np.ndarray) -> np.ndarray:
        """``diag(K(X, X))`` in O(n) — predictive-variance hot path.

        The default falls back to the full matrix; concrete kernels
        override with closed forms.
        """
        return np.diag(self(X)).copy()

    @property
    def n_params(self) -> int:
        """Number of hyperparameters."""
        return len(self.theta)

    def _set_theta_checked(self, value: np.ndarray, expected: int) -> np.ndarray:
        value = np.asarray(value, dtype=float).ravel()
        if value.shape != (expected,):
            raise ValueError(
                f"{type(self).__name__} expects {expected} hyperparameters, "
                f"got shape {value.shape}"
            )
        if not np.all(np.isfinite(value)):
            raise ValueError(f"non-finite theta: {value}")
        return value

    # operator sugar -----------------------------------------------------------
    def __mul__(self, other: "Kernel") -> "ProductKernel":
        return ProductKernel(self, other)

    def __add__(self, other: "Kernel") -> "SumKernel":
        return SumKernel(self, other)


def _log_bounds(
    bounds: tuple[float, float] | None, default: tuple[float, float]
) -> tuple[float, float]:
    """Validate raw-space (low, high) bounds and convert to log space."""
    if bounds is None:
        return default
    lo, hi = bounds
    if not 0 < lo < hi:
        raise ValueError(f"bounds must satisfy 0 < low < high, got {bounds}")
    return (float(np.log(lo)), float(np.log(hi)))


class ConstantKernel(Kernel):
    """``k(x, z) = variance`` — the output-scale factor."""

    def __init__(
        self,
        variance: float = 1.0,
        bounds: tuple[float, float] | None = None,
    ) -> None:
        if variance <= 0:
            raise ValueError(f"variance must be positive, got {variance}")
        self._log_variance = float(np.log(variance))
        self._bounds = _log_bounds(bounds, _LOG_BOUND)

    @property
    def variance(self) -> float:
        """Current variance hyperparameter (raw space)."""
        return float(np.exp(self._log_variance))

    @property
    def theta(self) -> np.ndarray:
        return np.array([self._log_variance])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        (self._log_variance,) = self._set_theta_checked(value, 1)

    @property
    def bounds(self) -> list[tuple[float, float]]:
        return [self._bounds]

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        X = _as_2d(X)
        Z = X if Z is None else _as_2d(Z)
        return np.full((X.shape[0], Z.shape[0]), self.variance)

    def gradient(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        K = self(X)
        # d variance / d log variance = variance, so dK = K.
        return K, K[None, :, :].copy()

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(_as_2d(X).shape[0], self.variance)


class WhiteKernel(Kernel):
    """``k(x, z) = noise * 1[x is z]`` — observation noise.

    Off-diagonal is zero even for coincident points in cross-covariance
    (noise is per-observation, not per-location).
    """

    def __init__(
        self,
        noise: float = 1e-4,
        bounds: tuple[float, float] | None = None,
    ) -> None:
        if noise <= 0:
            raise ValueError(f"noise must be positive, got {noise}")
        self._log_noise = float(np.log(noise))
        self._bounds = _log_bounds(bounds, (np.log(1e-8), np.log(1e2)))

    @property
    def noise(self) -> float:
        """Current noise hyperparameter (raw space)."""
        return float(np.exp(self._log_noise))

    @property
    def theta(self) -> np.ndarray:
        return np.array([self._log_noise])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        (self._log_noise,) = self._set_theta_checked(value, 1)

    @property
    def bounds(self) -> list[tuple[float, float]]:
        return [self._bounds]

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        X = _as_2d(X)
        if Z is None:
            return self.noise * np.eye(X.shape[0])
        Z = _as_2d(Z)
        return np.zeros((X.shape[0], Z.shape[0]))

    def gradient(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        K = self(X)
        return K, K[None, :, :].copy()

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(_as_2d(X).shape[0], self.noise)


class RBFKernel(Kernel):
    """Squared-exponential kernel with ARD lengthscales.

    ``k(x, z) = exp(-0.5 * sum_d ((x_d - z_d) / l_d)^2)``; restrict to a
    subset of input dimensions with ``dims``.
    """

    def __init__(
        self,
        lengthscales: float | list[float] = 1.0,
        dims: list[int] | None = None,
        bounds: tuple[float, float] | None = None,
    ) -> None:
        ls = np.atleast_1d(np.asarray(lengthscales, dtype=float))
        if np.any(ls <= 0):
            raise ValueError(f"lengthscales must be positive, got {ls}")
        self._log_ls = np.log(ls)
        self._bounds = _log_bounds(bounds, _LOG_BOUND)
        self.dims = list(dims) if dims is not None else None
        if self.dims is not None and len(self.dims) != len(ls):
            raise ValueError(
                f"dims ({len(self.dims)}) and lengthscales ({len(ls)}) "
                "length mismatch"
            )

    @property
    def lengthscales(self) -> np.ndarray:
        """Current lengthscales (raw space)."""
        return np.exp(self._log_ls)

    @property
    def theta(self) -> np.ndarray:
        return self._log_ls.copy()

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self._log_ls = self._set_theta_checked(value, len(self._log_ls))

    @property
    def bounds(self) -> list[tuple[float, float]]:
        return [self._bounds] * len(self._log_ls)

    def _select(self, X: np.ndarray) -> np.ndarray:
        X = _as_2d(X)
        if self.dims is not None:
            return X[:, self.dims]
        if X.shape[1] != len(self._log_ls) and len(self._log_ls) == 1:
            # isotropic over all dims
            return X
        if X.shape[1] != len(self._log_ls):
            raise ValueError(
                f"X has {X.shape[1]} dims but kernel has "
                f"{len(self._log_ls)} lengthscales"
            )
        return X

    def _scaled_sqdist(
        self, X: np.ndarray, Z: np.ndarray
    ) -> np.ndarray:
        ls = self.lengthscales
        Xs, Zs = X / ls, Z / ls
        d2 = (
            np.sum(Xs**2, axis=1)[:, None]
            + np.sum(Zs**2, axis=1)[None, :]
            - 2.0 * Xs @ Zs.T
        )
        return np.maximum(d2, 0.0)

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        Xs = self._select(X)
        Zs = Xs if Z is None else self._select(Z)
        return np.exp(-0.5 * self._scaled_sqdist(Xs, Zs))

    def gradient(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        Xs = self._select(X)
        K = np.exp(-0.5 * self._scaled_sqdist(Xs, Xs))
        ls = self.lengthscales
        grads = np.empty((len(ls), K.shape[0], K.shape[1]))
        for d in range(len(ls)):
            if len(ls) == 1 and Xs.shape[1] > 1:
                diff2 = self._scaled_sqdist(Xs, Xs)
            else:
                diff2 = ((Xs[:, d][:, None] - Xs[None, :, d]) / ls[d]) ** 2
            # d/d log l of exp(-0.5 diff^2/l^2-part) = K * diff2
            grads[d] = K * diff2
        return K, grads

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.ones(_as_2d(X).shape[0])


class Matern52Kernel(Kernel):
    """Matérn ν=5/2 kernel (isotropic over selected dims).

    The standard surrogate choice for computer-systems response
    surfaces (CherryPick uses Matérn 5/2): once-differentiable sample
    paths suit performance curves better than the RBF's infinite
    smoothness.
    """

    _SQRT5 = float(np.sqrt(5.0))

    def __init__(
        self,
        lengthscale: float = 1.0,
        dims: list[int] | None = None,
        bounds: tuple[float, float] | None = None,
    ) -> None:
        if lengthscale <= 0:
            raise ValueError(f"lengthscale must be positive, got {lengthscale}")
        self._log_ls = float(np.log(lengthscale))
        self._bounds = _log_bounds(bounds, _LOG_BOUND)
        self.dims = list(dims) if dims is not None else None

    @property
    def lengthscale(self) -> float:
        """Current lengthscale (raw space)."""
        return float(np.exp(self._log_ls))

    @property
    def theta(self) -> np.ndarray:
        return np.array([self._log_ls])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        (self._log_ls,) = self._set_theta_checked(value, 1)

    @property
    def bounds(self) -> list[tuple[float, float]]:
        return [self._bounds]

    def _select(self, X: np.ndarray) -> np.ndarray:
        X = _as_2d(X)
        return X[:, self.dims] if self.dims is not None else X

    @staticmethod
    def _dist(X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        d2 = (
            np.sum(X**2, axis=1)[:, None]
            + np.sum(Z**2, axis=1)[None, :]
            - 2.0 * X @ Z.T
        )
        return np.sqrt(np.maximum(d2, 0.0))

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        Xs = self._select(X)
        Zs = Xs if Z is None else self._select(Z)
        r = self._dist(Xs, Zs) / self.lengthscale
        s = self._SQRT5 * r
        return (1.0 + s + s**2 / 3.0) * np.exp(-s)

    def gradient(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        Xs = self._select(X)
        r = self._dist(Xs, Xs) / self.lengthscale
        s = self._SQRT5 * r
        K = (1.0 + s + s**2 / 3.0) * np.exp(-s)
        # dK/d log l = (s^2/3) * (1 + s) * exp(-s)
        dK = (s**2 / 3.0) * (1.0 + s) * np.exp(-s)
        return K, dK[None, :, :]

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.ones(_as_2d(X).shape[0])


class CategoricalKernel(Kernel):
    """Exchangeable kernel over one integer-coded categorical dimension.

    ``k(x, z) = 1`` when the categories match and ``exp(-1/l)`` when
    they differ: ``l → 0`` makes types independent, ``l → ∞`` pools
    them.  The GP learns from the data how much instance types share.
    """

    def __init__(
        self,
        lengthscale: float = 1.0,
        dim: int = 0,
        bounds: tuple[float, float] | None = None,
    ) -> None:
        if lengthscale <= 0:
            raise ValueError(f"lengthscale must be positive, got {lengthscale}")
        self._log_ls = float(np.log(lengthscale))
        self._bounds = _log_bounds(bounds, (np.log(1e-2), np.log(1e3)))
        self.dim = int(dim)

    @property
    def lengthscale(self) -> float:
        """Current lengthscale (raw space)."""
        return float(np.exp(self._log_ls))

    @property
    def cross_correlation(self) -> float:
        """Covariance between two distinct categories."""
        return float(np.exp(-1.0 / self.lengthscale))

    @property
    def theta(self) -> np.ndarray:
        return np.array([self._log_ls])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        (self._log_ls,) = self._set_theta_checked(value, 1)

    @property
    def bounds(self) -> list[tuple[float, float]]:
        return [self._bounds]

    def _mismatch(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        xc = _as_2d(X)[:, self.dim]
        zc = _as_2d(Z)[:, self.dim]
        return (np.abs(xc[:, None] - zc[None, :]) > 1e-9).astype(float)

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        Z = X if Z is None else Z
        mism = self._mismatch(X, Z)
        return np.where(mism > 0, self.cross_correlation, 1.0)

    def gradient(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        mism = self._mismatch(X, X)
        K = np.where(mism > 0, self.cross_correlation, 1.0)
        # k = exp(-1/l); dk/d log l = k / l  (only where categories differ)
        dK = np.where(mism > 0, K / self.lengthscale, 0.0)
        return K, dK[None, :, :]

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.ones(_as_2d(X).shape[0])


class _Composite(Kernel):
    """Shared hyperparameter plumbing for binary composite kernels."""

    def __init__(self, left: Kernel, right: Kernel) -> None:
        self.left = left
        self.right = right

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([self.left.theta, self.right.theta])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float).ravel()
        nl = self.left.n_params
        if value.shape != (nl + self.right.n_params,):
            raise ValueError(
                f"{type(self).__name__} expects "
                f"{nl + self.right.n_params} hyperparameters, "
                f"got shape {value.shape}"
            )
        self.left.theta = value[:nl]
        self.right.theta = value[nl:]

    @property
    def bounds(self) -> list[tuple[float, float]]:
        return self.left.bounds + self.right.bounds


class ProductKernel(_Composite):
    """``k = k_left * k_right`` (elementwise)."""

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        return self.left(X, Z) * self.right(X, Z)

    def gradient(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        Kl, dKl = self.left.gradient(X)
        Kr, dKr = self.right.gradient(X)
        grads = np.concatenate([dKl * Kr[None], dKr * Kl[None]], axis=0)
        return Kl * Kr, grads

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.left.diag(X) * self.right.diag(X)


class SumKernel(_Composite):
    """``k = k_left + k_right``."""

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        return self.left(X, Z) + self.right(X, Z)

    def gradient(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        Kl, dKl = self.left.gradient(X)
        Kr, dKr = self.right.gradient(X)
        return Kl + Kr, np.concatenate([dKl, dKr], axis=0)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.left.diag(X) + self.right.diag(X)


def default_deployment_kernel() -> Kernel:
    """The kernel used over ``(type index, log2 n)`` deployment features.

    Hyperparameter bounds encode the physics of the problem and keep
    small-sample marginal-likelihood fits honest:

    - the Matérn lengthscale along ``log2 n`` is capped at 2.5 octaves —
      the scale-out curve genuinely bends within a few doublings, and
      an unbounded fit on early observations (which often share a
      single ``n``) would otherwise flatten the surrogate and collapse
      extrapolation uncertainty;
    - observation noise is capped well below the signal variance —
      profiling jitter is a few percent, and letting the fit explain
      real structure as noise would blind the acquisition;
    - signal variance is kept from collapsing for the same reason.
    """
    return (
        ConstantKernel(1.0, bounds=(0.05, 1e3))
        * (
            CategoricalKernel(1.0, dim=0, bounds=(1e-2, 10.0))
            * Matern52Kernel(1.0, dims=[1], bounds=(0.25, 2.5))
        )
        + WhiteKernel(1e-3, bounds=(1e-6, 0.05))
    )
