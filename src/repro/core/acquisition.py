"""Acquisition functions (paper Sec. II-D and III-C).

The three classical acquisitions the paper discusses — EI, UCB, POI —
plus the constraint-aware True Expected Improvement (TEI, Eqs. 5–6)
and the heterogeneous-cost penalisation (Eqs. 7–8) that together form
HeterBO's acquisition.

Sign conventions: the BO engine *minimises* an objective (training
time or monetary cost), so the minimisation EI is primary; the
maximisation variants are provided for the speed-space view used in
the paper's illustrative figures.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = [
    "expected_improvement_max",
    "expected_improvement_min",
    "probability_of_improvement",
    "true_expected_improvement",
    "upper_confidence_bound",
]


def _validate(mu: np.ndarray, sigma: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    mu = np.asarray(mu, dtype=float)
    sigma = np.asarray(sigma, dtype=float)
    if mu.shape != sigma.shape:
        raise ValueError(
            f"mu shape {mu.shape} != sigma shape {sigma.shape}"
        )
    if np.any(sigma < 0):
        raise ValueError("sigma must be non-negative")
    return mu, sigma


def expected_improvement_min(
    mu: np.ndarray, sigma: np.ndarray, best: float, xi: float = 0.0
) -> np.ndarray:
    """EI for a *minimisation* objective (Eq. 4, adapted to min).

    ``EI(D) = (best - mu - xi) Φ(z) + sigma φ(z)`` with
    ``z = (best - mu - xi) / sigma``.  Zero-variance points return the
    deterministic improvement ``max(best - mu - xi, 0)``.
    """
    mu, sigma = _validate(mu, sigma)
    delta = best - mu - xi
    out = np.maximum(delta, 0.0)
    positive = sigma > 0
    if np.any(positive):
        # denormal sigmas can overflow the division; clip z to +-40,
        # beyond which cdf is exactly {0, 1} and pdf exactly 0 in
        # float64, so the clipped values are not approximations
        with np.errstate(over="ignore", divide="ignore"):
            z = np.clip(delta[positive] / sigma[positive], -40.0, 40.0)
        out = out.astype(float)
        out[positive] = delta[positive] * stats.norm.cdf(z) + sigma[
            positive
        ] * stats.norm.pdf(z)
    return np.maximum(out, 0.0)


def expected_improvement_max(
    mu: np.ndarray, sigma: np.ndarray, best: float, xi: float = 0.0
) -> np.ndarray:
    """EI for a *maximisation* objective (e.g. training speed)."""
    return expected_improvement_min(-np.asarray(mu, dtype=float), sigma, -best, xi)


def probability_of_improvement(
    mu: np.ndarray, sigma: np.ndarray, best: float, xi: float = 0.0
) -> np.ndarray:
    """POI for a minimisation objective: ``P(y < best - xi)``."""
    mu, sigma = _validate(mu, sigma)
    delta = best - mu - xi
    out = (delta > 0).astype(float)
    positive = sigma > 0
    with np.errstate(over="ignore", divide="ignore"):
        z = np.clip(delta[positive] / sigma[positive], -40.0, 40.0)
    out[positive] = stats.norm.cdf(z)
    return out


def upper_confidence_bound(
    mu: np.ndarray, sigma: np.ndarray, kappa: float = 2.0
) -> np.ndarray:
    """Lower-confidence bound score for minimisation (named UCB per the
    paper); *larger is better*: ``-(mu - kappa sigma)``."""
    mu, sigma = _validate(mu, sigma)
    if kappa < 0:
        raise ValueError(f"kappa must be >= 0, got {kappa}")
    return -(mu - kappa * sigma)


def true_expected_improvement(
    ei: np.ndarray,
    *,
    constraint_limit: float,
    consumed: float,
    probe_cost: np.ndarray,
    projected_completion: np.ndarray,
) -> np.ndarray:
    """True Expected Improvement: remaining slack after a probe (Eqs. 5–6).

    The paper defines, for a deadline ``Tmax``:
    ``TEI(D) = Tmax - Tprofile - S / EI(D)``, and analogously for a
    budget with ``× P(m)``.  Read as: the slack left after (a) spending
    the probe's cost and (b) completing training at the improved rate
    the probe is expected to unlock.  ``S / EI`` alone degenerates as
    EI → 0, so we expose the completion term as an explicit argument
    (``projected_completion``: the candidate's projected total training
    time or cost, computed by the caller from the EI-adjusted speed) —
    the semantics of Eqs. 5–6 with a non-degenerate denominator.

    A negative TEI marks the probe *infeasible*: exploring it could
    strand the user unable to finish within the constraint.

    Parameters
    ----------
    ei:
        Expected improvement of each candidate (used only for shape
        validation; retained to mirror the paper's signature).
    constraint_limit:
        ``Tmax`` (seconds) or ``Cmax`` (dollars).
    consumed:
        Time elapsed / money spent so far.
    probe_cost:
        ``T_profile`` or ``C_profile`` per candidate (Eqs. 7–8).
    projected_completion:
        Projected training time/cost per candidate after the probe.
    """
    ei = np.asarray(ei, dtype=float)
    probe_cost = np.asarray(probe_cost, dtype=float)
    projected_completion = np.asarray(projected_completion, dtype=float)
    if ei.shape != probe_cost.shape or ei.shape != projected_completion.shape:
        raise ValueError(
            "ei, probe_cost and projected_completion must share a shape; "
            f"got {ei.shape}, {probe_cost.shape}, {projected_completion.shape}"
        )
    if np.any(probe_cost < 0) or np.any(projected_completion < 0):
        raise ValueError("costs must be non-negative")
    if consumed < 0:
        raise ValueError(f"consumed must be >= 0, got {consumed}")
    return constraint_limit - consumed - probe_cost - projected_completion
